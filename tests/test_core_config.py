"""Tests for protocol parameters and run options."""

import pytest

from repro.core.config import ProtocolParams, RunOptions, default_round_cap
from repro.errors import ProtocolConfigError


class TestProtocolParams:
    def test_capacity_is_floor_cd(self):
        assert ProtocolParams(c=2.5, d=3).capacity == 7
        assert ProtocolParams(c=2.0, d=3).capacity == 6
        assert ProtocolParams(c=1.0, d=1).capacity == 1

    def test_d_must_be_positive_int(self):
        with pytest.raises(ProtocolConfigError):
            ProtocolParams(c=2.0, d=0)
        with pytest.raises(ProtocolConfigError):
            ProtocolParams(c=2.0, d=-1)
        with pytest.raises(ProtocolConfigError):
            ProtocolParams(c=2.0, d=2.5)  # type: ignore[arg-type]

    def test_bool_d_rejected(self):
        with pytest.raises(ProtocolConfigError):
            ProtocolParams(c=2.0, d=True)  # type: ignore[arg-type]

    def test_c_below_one_rejected(self):
        with pytest.raises(ProtocolConfigError):
            ProtocolParams(c=0.9, d=2)

    def test_c_non_finite_rejected(self):
        with pytest.raises(ProtocolConfigError):
            ProtocolParams(c=float("inf"), d=2)
        with pytest.raises(ProtocolConfigError):
            ProtocolParams(c=float("nan"), d=2)

    def test_frozen(self):
        p = ProtocolParams(c=2.0, d=2)
        with pytest.raises(Exception):
            p.c = 3.0  # type: ignore[misc]


class TestRunOptions:
    def test_default_cap_scales_with_log(self):
        assert default_round_cap(2) == 60  # floor kicks in
        assert default_round_cap(10**6) > default_round_cap(10**3)

    def test_cap_for_uses_override(self):
        assert RunOptions(max_rounds=5).cap_for(10**6) == 5

    def test_cap_for_default(self):
        n = 4096
        assert RunOptions().cap_for(n) == default_round_cap(n)

    def test_bad_override_rejected_at_construction(self):
        # Validation happens in __post_init__, before any use, so a bad
        # cap fails fast instead of blowing up mid-sweep.
        with pytest.raises(ProtocolConfigError):
            RunOptions(max_rounds=0)
        with pytest.raises(ProtocolConfigError):
            RunOptions(max_rounds=-3)
