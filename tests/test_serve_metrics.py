"""Tests for repro.serve.metrics — the dependency-free metric registry."""

import math

import pytest

from repro.serve import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotone(self):
        c = Counter("reqs")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_render(self):
        c = Counter("reqs")
        c.inc(3)
        assert c.render() == ["reqs 3"]


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("backlog")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13
        assert g.snapshot() == 13


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram("lat", buckets=(1, 2, 4))
        for v in (0, 1, 1.5, 3, 100):
            h.observe(v)
        # cumulative: ≤1 → 2 (0 and 1), ≤2 → 3, ≤4 → 4, +Inf → 5
        assert h.counts == [2, 1, 1, 1]
        assert h.total == 5
        assert h.sum == pytest.approx(105.5)
        assert h.min == 0 and h.max == 100

    def test_quantiles_interpolated(self):
        h = Histogram("lat", buckets=(0, 1, 2, 4, 8))
        h.observe_many([1] * 50 + [3] * 50)
        assert h.quantile(0.5) == pytest.approx(1.0)
        # p95 lands inside the (2, 4] bucket; interpolation stays in it
        assert 2.0 <= h.quantile(0.95) <= 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_inf_bucket_clamps_to_max(self):
        h = Histogram("lat", buckets=(1,))
        h.observe_many([10, 20, 30])
        assert h.quantile(0.99) == 30

    def test_empty_is_nan(self):
        h = Histogram("lat")
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.mean)

    def test_render_cumulative_and_count(self):
        h = Histogram("lat", buckets=(1, 2))
        h.observe_many([0.5, 1.5, 5])
        lines = h.render()
        assert 'lat_bucket{le="1"} 1' in lines
        assert 'lat_bucket{le="2"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert "lat_count 3" in lines

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())


class TestRegistry:
    def test_idempotent_accessors(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "help text")
        b = reg.counter("x")
        assert a is b
        assert "x" in reg
        assert reg.get("x") is a

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_render_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("reqs", "requests served").inc(7)
        reg.gauge("backlog").set(3)
        text = reg.render_text()
        assert "# HELP reqs requests served" in text
        assert "# TYPE reqs counter" in text
        assert "reqs 7" in text
        assert "# TYPE backlog gauge" in text
        assert text.endswith("\n")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        h = reg.histogram("h", buckets=(1, 10))
        h.observe_many([0.5, 5, 50])
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["h"]["count"] == 3
        assert {"p50", "p95", "p99", "mean", "min", "max"} <= set(snap["h"])

    def test_snapshot_hooks_fire(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        seen = []
        reg.add_snapshot_hook(seen.append)
        out = reg.fire_snapshot_hooks()
        assert seen == [out]
        assert out["c"] == 1


class TestNdjsonSnapshotHook:
    def test_spools_one_record_per_snapshot(self, tmp_path):
        import json

        from repro.serve.metrics import ndjson_snapshot_hook

        reg = MetricsRegistry()
        c = reg.counter("c")
        path = tmp_path / "snaps.ndjson"
        ticks = iter(range(100))
        reg.add_snapshot_hook(
            ndjson_snapshot_hook(str(path), clock=lambda: float(next(ticks)))
        )
        for _ in range(3):
            c.inc()
            reg.fire_snapshot_hooks()
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert [r["time"] for r in records] == [0.0, 1.0, 2.0]
        assert [r["metrics"]["c"] for r in records] == [1, 2, 3]

    def test_appends_across_hook_instances(self, tmp_path):
        from repro.serve.metrics import ndjson_snapshot_hook

        reg = MetricsRegistry()
        reg.counter("c")
        path = tmp_path / "snaps.ndjson"
        for _ in range(2):  # a restarted service reuses the same spool
            hook = ndjson_snapshot_hook(str(path), clock=lambda: 0.0)
            hook(reg.snapshot())
        assert len(path.read_text().splitlines()) == 2

class TestQuantileBoundaries:
    def test_q0_returns_min_not_bucket_bound(self):
        # Regression: rank 0 used to fall through to the first bucket's
        # upper bound (bounds[0]) instead of the observed minimum.
        h = Histogram("lat", buckets=(10, 20))
        h.observe_many([3, 15, 18])
        assert h.quantile(0.0) == 3
        assert h.quantile(1.0) == 18

    def test_boundaries_with_empty_leading_bucket(self):
        h = Histogram("lat", buckets=(1, 2, 4))
        h.observe_many([1.5, 3.0])  # nothing lands in the (≤1) bucket
        assert h.quantile(0.0) == 1.5
        assert h.quantile(1.0) == 3.0

    def test_boundaries_empty_histogram_still_nan(self):
        h = Histogram("lat")
        assert math.isnan(h.quantile(0.0))
        assert math.isnan(h.quantile(1.0))


class TestNonfiniteObservations:
    def test_nan_and_inf_do_not_poison_buckets(self):
        h = Histogram("lat", buckets=(1, 2))
        h.observe_many([0.5, float("nan"), float("inf"), float("-inf")])
        assert h.counts == [1, 0, 0]
        assert h.total == 1
        assert h.sum == pytest.approx(0.5)
        assert h.nonfinite == 3
        assert h.mean == pytest.approx(0.5)

    def test_nonfinite_rendered_only_when_present(self):
        h = Histogram("lat", buckets=(1,))
        h.observe(0.5)
        assert not any("nonfinite" in line for line in h.render())
        h.observe(float("nan"))
        assert "lat_nonfinite 1" in h.render()
        snap = h.snapshot()
        assert snap["nonfinite"] == 1
        assert math.isfinite(snap["mean"])


class TestMergeSemantics:
    def test_counter_merge_sums(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(4)
        a.merge_state(b.state_dict())
        assert a.value == 7

    def test_gauge_merge_sum_vs_max(self):
        s1, s2 = Gauge("g", merge="sum"), Gauge("g", merge="sum")
        s1.set(3)
        s2.set(4)
        s1.merge_state(s2.state_dict())
        assert s1.value == 7
        m1, m2 = Gauge("g", merge="max"), Gauge("g", merge="max")
        m1.set(3)
        m2.set(4)
        m1.merge_state(m2.state_dict())
        assert m1.value == 4

    def test_gauge_rejects_unknown_merge(self):
        with pytest.raises(ValueError):
            Gauge("g", merge="median")

    def test_histogram_merge_matches_combined(self):
        # Bucket-wise merge of two shard histograms must equal one
        # histogram that observed every sample.
        buckets = (1, 2, 4, 8)
        xs = [0.5, 1.5, 3.0, 7.0, 100.0]
        ys = [0.1, 2.5, 9.0, float("nan")]
        h1, h2 = Histogram("lat", buckets=buckets), Histogram("lat", buckets=buckets)
        combined = Histogram("lat", buckets=buckets)
        h1.observe_many(xs)
        h2.observe_many(ys)
        combined.observe_many(xs + ys)
        h1.merge_state(h2.state_dict())
        assert h1.counts == combined.counts
        assert h1.total == combined.total
        assert h1.sum == pytest.approx(combined.sum)
        assert h1.min == combined.min and h1.max == combined.max
        assert h1.nonfinite == combined.nonfinite
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h1.quantile(q) == pytest.approx(combined.quantile(q))

    def test_histogram_merge_rejects_bucket_mismatch(self):
        h1 = Histogram("lat", buckets=(1, 2))
        h2 = Histogram("lat", buckets=(1, 4))
        with pytest.raises(ValueError):
            h1.merge_state(h2.state_dict())

    def test_registry_merge_creates_and_folds(self):
        from repro.serve import merge_registry_states

        regs = []
        for k in range(3):
            reg = MetricsRegistry()
            reg.counter("reqs").inc(k + 1)
            reg.gauge("backlog", merge="sum").set(k)
            reg.gauge("live", merge="max").set(10 * (k + 1))
            reg.histogram("lat", buckets=(1, 2)).observe_many([0.5, k + 0.5])
            regs.append(reg)
        merged = merge_registry_states([r.state_dict() for r in regs])
        assert merged.get("reqs").value == 6
        assert merged.get("backlog").value == 3
        assert merged.get("live").value == 30
        assert merged.get("lat").total == 6

    def test_registry_merge_kind_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(ValueError):
            a.merge_state(b.state_dict())
