"""Tests for the vectorized round engine."""

import numpy as np
import pytest

from repro.core import (
    ProtocolParams,
    RunOptions,
    TraceLevel,
    run_protocol,
    run_raes,
    run_saer,
)
from repro.core.engine import draw_destinations
from repro.errors import (
    GraphValidationError,
    NonTerminationError,
    ProtocolConfigError,
)
from repro.graphs import BipartiteGraph, random_regular_bipartite
from repro.rng import RandomTape


class TestBasicRuns:
    def test_completes_with_comfortable_c(self, regular_graph):
        res = run_saer(regular_graph, c=4.0, d=2, seed=0)
        assert res.completed
        assert res.assigned_balls == res.total_balls == 2 * regular_graph.n_clients
        assert res.alive_balls == 0

    def test_load_invariant(self, regular_graph):
        for seed in range(3):
            res = run_saer(regular_graph, c=1.5, d=4, seed=seed)
            assert res.max_load <= res.params.capacity

    def test_loads_sum_to_assigned(self, regular_graph):
        res = run_saer(regular_graph, c=2.0, d=3, seed=1)
        assert res.loads.sum() == res.assigned_balls

    def test_work_is_twice_requests(self, regular_graph):
        res = run_saer(regular_graph, c=4.0, d=2, seed=2, trace=TraceLevel.BASIC)
        assert res.work == 2 * int(np.sum(res.trace.requests))

    def test_work_lower_bound(self, regular_graph):
        # every ball is sent at least once, each send costs 2 messages
        res = run_saer(regular_graph, c=4.0, d=2, seed=3)
        assert res.work >= 2 * res.total_balls

    def test_raes_completes(self, regular_graph):
        res = run_raes(regular_graph, c=2.0, d=2, seed=4)
        assert res.completed
        assert res.protocol == "raes"

    def test_deterministic_given_seed(self, regular_graph):
        a = run_saer(regular_graph, c=1.5, d=4, seed=99)
        b = run_saer(regular_graph, c=1.5, d=4, seed=99)
        assert a.rounds == b.rounds
        assert a.work == b.work
        assert np.array_equal(a.loads, b.loads)

    def test_different_seeds_differ(self, regular_graph):
        a = run_saer(regular_graph, c=1.5, d=4, seed=1)
        b = run_saer(regular_graph, c=1.5, d=4, seed=2)
        assert not np.array_equal(a.loads, b.loads)

    def test_summary_keys(self, regular_graph):
        s = run_saer(regular_graph, c=2.0, d=2, seed=0).summary()
        for k in ("protocol", "rounds", "work", "max_load", "completed"):
            assert k in s


class TestTapeSemantics:
    def test_tape_replay_reproduces_run(self, regular_graph):
        tape = RandomTape(seed=42)
        a = run_saer(regular_graph, c=1.5, d=4, tape=tape)
        tape.rewind()
        b = run_saer(regular_graph, c=1.5, d=4, tape=tape)
        assert a.rounds == b.rounds and a.work == b.work
        assert np.array_equal(a.loads, b.loads)

    def test_seed_and_tape_mutually_exclusive(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_saer(regular_graph, c=2.0, d=2, seed=1, tape=RandomTape(seed=2))

    def test_slot_mode_consumes_nd_per_round(self, regular_graph):
        tape = RandomTape(seed=0)
        res = run_saer(regular_graph, c=4.0, d=2, tape=tape, slot_mode=True)
        assert tape.position == res.rounds * regular_graph.n_clients * 2

    def test_alive_mode_consumes_less_after_round1(self, regular_graph):
        tape = RandomTape(seed=0)
        res = run_saer(regular_graph, c=4.0, d=2, tape=tape, slot_mode=False)
        if res.rounds > 1:
            assert tape.position < res.rounds * regular_graph.n_clients * 2

    def test_slot_and_alive_modes_agree_round1(self, regular_graph):
        # With c high enough to finish in one round the two modes are
        # byte-identical (no dead slots yet).
        t1, t2 = RandomTape(seed=7), RandomTape(seed=7)
        a = run_saer(regular_graph, c=8.0, d=2, tape=t1, slot_mode=False)
        b = run_saer(regular_graph, c=8.0, d=2, tape=t2, slot_mode=True)
        if a.rounds == b.rounds == 1:
            assert np.array_equal(a.loads, b.loads)


class TestDrawDestinations:
    def test_maps_uniform_to_neighbor_row(self):
        g = BipartiteGraph.from_edges(2, 4, [(0, 1), (0, 3), (1, 0), (1, 2)])
        senders = np.array([0, 0, 1, 1])
        u = np.array([0.0, 0.99, 0.0, 0.51])
        dest = draw_destinations(g, senders, u)
        assert dest.tolist() == [1, 3, 0, 2]

    def test_u_close_to_one_stays_in_range(self):
        g = BipartiteGraph.from_edges(1, 3, [(0, 0), (0, 1), (0, 2)])
        dest = draw_destinations(g, np.array([0]), np.array([0.9999999999999999]))
        assert dest[0] == 2


class TestDemands:
    def test_general_demands_respected(self, regular_graph):
        n = regular_graph.n_clients
        demands = np.zeros(n, dtype=np.int64)
        demands[: n // 2] = 2
        res = run_saer(regular_graph, c=4.0, d=3, demands=demands, seed=0)
        assert res.completed
        assert res.total_balls == int(demands.sum())

    def test_zero_demands_complete_in_zero_rounds(self, regular_graph):
        res = run_saer(
            regular_graph,
            c=2.0,
            d=2,
            demands=np.zeros(regular_graph.n_clients, dtype=np.int64),
            seed=0,
        )
        assert res.completed and res.rounds == 0 and res.work == 0

    def test_demands_above_d_rejected(self, regular_graph):
        demands = np.full(regular_graph.n_clients, 5, dtype=np.int64)
        with pytest.raises(ProtocolConfigError):
            run_saer(regular_graph, c=2.0, d=4, demands=demands, seed=0)

    def test_wrong_shape_rejected(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_saer(regular_graph, c=2.0, d=2, demands=np.array([1, 2]), seed=0)


class TestFailureModes:
    def test_isolated_client_rejected_up_front(self):
        g = BipartiteGraph.from_edges(3, 3, [(0, 0), (1, 1)])  # client 2 isolated
        with pytest.raises(GraphValidationError):
            run_saer(g, c=2.0, d=1, seed=0)

    def test_isolated_client_ok_with_zero_demand(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0)])
        res = run_saer(g, c=2.0, d=1, demands=np.array([1, 0]), seed=0)
        assert res.completed

    def test_round_cap_returns_incomplete(self):
        # c=1, d=4 burns out: capacity 4 but expected 4 received/server.
        g = random_regular_bipartite(64, 16, seed=0)
        res = run_saer(g, c=1.0, d=4, seed=1, options=RunOptions(max_rounds=20))
        assert not res.completed
        assert res.rounds == 20
        assert res.alive_balls > 0

    def test_raise_on_cap(self):
        g = random_regular_bipartite(64, 16, seed=0)
        with pytest.raises(NonTerminationError) as exc_info:
            run_saer(
                g, c=1.0, d=4, seed=1, options=RunOptions(max_rounds=10, raise_on_cap=True)
            )
        assert exc_info.value.result is not None
        assert not exc_info.value.result.completed

    def test_unknown_policy_rejected(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_protocol(regular_graph, ProtocolParams(c=2.0, d=2), "bogus", seed=0)


class TestTraceLevels:
    def test_none_has_no_trace(self, regular_graph):
        res = run_saer(regular_graph, c=2.0, d=2, seed=0, trace=TraceLevel.NONE)
        assert res.trace is None

    def test_basic_counts_rounds(self, regular_graph):
        res = run_saer(regular_graph, c=2.0, d=2, seed=0, trace=TraceLevel.BASIC)
        assert res.trace.n_rounds == res.rounds
        assert res.trace.alive_before[0] == res.total_balls
        assert int(np.sum(res.trace.accepted)) == res.assigned_balls

    def test_full_records_proof_quantities(self, regular_graph):
        res = run_saer(regular_graph, c=1.5, d=4, seed=0, trace=TraceLevel.FULL)
        tr = res.trace
        assert len(tr.s_t) == res.rounds
        assert len(tr.k_t) == res.rounds
        # S_t <= K_t (eq. 3), pointwise
        assert np.all(np.asarray(tr.s_t) <= np.asarray(tr.k_t) + 1e-9)
        # K_t is non-decreasing (it is a cumulative sum)
        assert np.all(np.diff(np.asarray(tr.k_t)) >= -1e-12)

    def test_trace_work_matches_result(self, regular_graph):
        res = run_saer(regular_graph, c=2.0, d=2, seed=0, trace=TraceLevel.BASIC)
        assert res.trace.work_cum[-1] == res.work

    def test_record_loads_off(self, regular_graph):
        res = run_saer(
            regular_graph, c=2.0, d=2, seed=0, options=RunOptions(record_loads=False)
        )
        assert res.loads is None


class TestBurnedMonotonicity:
    def test_blocked_total_non_decreasing(self, regular_graph):
        res = run_saer(regular_graph, c=1.5, d=4, seed=5, trace=TraceLevel.BASIC)
        blocked = np.asarray(res.trace.blocked_total)
        assert np.all(np.diff(blocked) >= 0)

    def test_s_t_non_decreasing_for_saer(self, regular_graph):
        res = run_saer(regular_graph, c=1.5, d=4, seed=6, trace=TraceLevel.FULL)
        s = np.asarray(res.trace.s_t)
        assert np.all(np.diff(s) >= -1e-12)
