"""Tests for sequential and parallel baseline allocators."""

import numpy as np
import pytest

from repro.baselines import (
    godfrey_greedy,
    greedy_best_of_k,
    one_choice,
    run_parallel_greedy,
    run_threshold_protocol,
)
from repro.core.config import RunOptions
from repro.errors import GraphValidationError, ProtocolConfigError
from repro.graphs import BipartiteGraph, complete_bipartite, random_regular_bipartite


class TestOneChoice:
    def test_all_assigned_and_conserved(self, regular_graph):
        res = one_choice(regular_graph, d=2, seed=0)
        assert res.completed
        assert res.assigned_balls == res.total_balls == 2 * regular_graph.n_clients
        assert res.loads.sum() == res.total_balls

    def test_destinations_respect_neighborhoods(self):
        g = BipartiteGraph.from_edges(2, 3, [(0, 0), (1, 2)])
        res = one_choice(g, d=3, seed=1)
        assert res.loads.tolist() == [3, 0, 3]

    def test_work_is_two_per_ball(self, regular_graph):
        res = one_choice(regular_graph, d=2, seed=0)
        assert res.work == 2 * res.total_balls

    def test_isolated_client_rejected(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0)])
        with pytest.raises(GraphValidationError):
            one_choice(g, d=1, seed=0)

    def test_no_load_disclosure(self, regular_graph):
        assert not one_choice(regular_graph, d=1, seed=0).discloses_loads


class TestGreedyBestOfK:
    def test_beats_one_choice_on_dense_graph(self):
        """The power of two choices: best-of-2 max load well below
        one-choice on the complete graph (Azar et al.)."""
        g = complete_bipartite(512, 512)
        mc = one_choice(g, d=1, seed=0).max_load
        g2 = greedy_best_of_k(g, d=1, k=2, seed=0).max_load
        assert g2 < mc

    def test_k1_equals_one_choice_distribution(self, regular_graph):
        res = greedy_best_of_k(regular_graph, d=1, k=1, seed=5)
        assert res.completed
        assert res.loads.sum() == res.total_balls

    def test_discloses_loads(self, regular_graph):
        assert greedy_best_of_k(regular_graph, d=1, k=2, seed=0).discloses_loads

    def test_work_scales_with_k(self, regular_graph):
        w2 = greedy_best_of_k(regular_graph, d=1, k=2, seed=0).work
        w4 = greedy_best_of_k(regular_graph, d=1, k=4, seed=0).work
        assert w4 > w2

    def test_bad_k(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            greedy_best_of_k(regular_graph, d=1, k=0)

    def test_deterministic(self, regular_graph):
        a = greedy_best_of_k(regular_graph, d=2, k=2, seed=3)
        b = greedy_best_of_k(regular_graph, d=2, k=2, seed=3)
        assert np.array_equal(a.loads, b.loads)


class TestGodfreyGreedy:
    def test_near_optimal_on_regular_graph(self, regular_graph):
        """Scanning the whole Ω(log n) neighborhood achieves max load
        within a whisker of the optimum d (Godfrey's theorem regime)."""
        d = 2
        res = godfrey_greedy(regular_graph, d=d, seed=0)
        assert res.completed
        assert res.max_load <= d + 2

    def test_no_worse_than_best_of_2(self, regular_graph):
        g2 = greedy_best_of_k(regular_graph, d=2, k=2, seed=1).max_load
        gf = godfrey_greedy(regular_graph, d=2, seed=1).max_load
        assert gf <= g2

    def test_work_is_neighborhood_scan(self, regular_graph):
        res = godfrey_greedy(regular_graph, d=1, seed=0)
        deg = int(regular_graph.client_degrees[0])
        assert res.work == res.total_balls * (2 * deg + 2)


class TestThresholdProtocol:
    def test_completes_and_respects_cumulative_cap(self, regular_graph):
        res = run_threshold_protocol(regular_graph, d=2, threshold=2, cumulative_cap=6, seed=0)
        assert res.completed
        assert res.max_load <= 6

    def test_per_round_threshold_bounds_load_growth(self, regular_graph):
        res = run_threshold_protocol(regular_graph, d=2, threshold=1, seed=1)
        assert res.completed
        assert res.max_load <= res.rounds  # at most T=1 accepted per round

    def test_partial_acceptance_splits_batches(self):
        """Unlike SAER's all-or-nothing batches, threshold accepts up to
        T from an oversized batch."""
        g = BipartiteGraph.from_edges(2, 2, [(0, 0), (1, 0), (0, 1), (1, 1)])
        res = run_threshold_protocol(g, d=2, threshold=1, seed=2)
        assert res.completed

    def test_impossible_cap_does_not_hang(self):
        g = BipartiteGraph.from_edges(2, 1, [(0, 0), (1, 0)])
        res = run_threshold_protocol(
            g, d=2, threshold=4, cumulative_cap=1, seed=0, options=RunOptions(max_rounds=10)
        )
        assert not res.completed
        assert res.rounds == 10

    def test_bad_params(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_threshold_protocol(regular_graph, d=0, threshold=1)
        with pytest.raises(ProtocolConfigError):
            run_threshold_protocol(regular_graph, d=1, threshold=0)
        with pytest.raises(ProtocolConfigError):
            run_threshold_protocol(regular_graph, d=1, threshold=1, cumulative_cap=0)


class TestParallelGreedy:
    def test_completes(self, regular_graph):
        res = run_parallel_greedy(regular_graph, d=2, k=2, seed=0)
        assert res.completed
        assert res.loads.sum() == res.total_balls

    def test_each_ball_assigned_once(self, regular_graph):
        res = run_parallel_greedy(regular_graph, d=3, k=2, seed=1)
        assert res.assigned_balls == res.total_balls

    def test_more_grants_converges_faster(self, regular_graph):
        slow = run_parallel_greedy(regular_graph, d=2, k=2, grants_per_round=1, seed=2)
        fast = run_parallel_greedy(regular_graph, d=2, k=2, grants_per_round=4, seed=2)
        assert fast.rounds <= slow.rounds

    def test_work_counts_k_requests(self, regular_graph):
        res = run_parallel_greedy(regular_graph, d=1, k=3, seed=0)
        # first round alone costs 2*3 per ball
        assert res.work >= 6 * res.total_balls

    def test_bad_params(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_parallel_greedy(regular_graph, d=1, k=0)
