"""Tests for the CSR bipartite graph structure."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graphs import BipartiteGraph


def tiny() -> BipartiteGraph:
    # 3 clients, 4 servers
    return BipartiteGraph.from_edges(
        3, 4, [(0, 0), (0, 2), (1, 1), (1, 2), (1, 3), (2, 0)]
    )


class TestConstruction:
    def test_sizes(self):
        g = tiny()
        assert g.n_clients == 3 and g.n_servers == 4 and g.n_edges == 6

    def test_neighbors_sorted(self):
        g = tiny()
        assert g.neighbors_of_client(1).tolist() == [1, 2, 3]
        assert g.neighbors_of_server(0).tolist() == [0, 2]

    def test_degrees(self):
        g = tiny()
        assert g.client_degrees.tolist() == [2, 3, 1]
        assert g.server_degrees.tolist() == [2, 1, 2, 1]

    def test_empty_graph(self):
        g = BipartiteGraph.from_edges(2, 2, [])
        assert g.n_edges == 0
        assert g.has_isolated_clients()

    def test_from_neighbor_lists(self):
        g = BipartiteGraph.from_neighbor_lists([[0, 1], [1]], n_servers=2)
        assert g.n_edges == 3
        assert g.neighbors_of_client(0).tolist() == [0, 1]

    def test_out_of_range_client_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_edges(2, 2, [(2, 0)])

    def test_out_of_range_server_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_edges(2, 2, [(0, 5)])

    def test_negative_index_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_edges(2, 2, [(-1, 0)])

    def test_duplicate_edges_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_edges(2, 2, [(0, 1), (0, 1)])

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_edges(2, 2, np.array([[0, 1, 2]]))

    def test_negative_sizes_rejected(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_edges(-1, 2, [])


class TestInvariants:
    def test_validate_passes_on_good_graph(self):
        tiny().validate()

    def test_validate_catches_direction_mismatch(self):
        g = tiny()
        bad = BipartiteGraph(
            n_clients=g.n_clients,
            n_servers=g.n_servers,
            client_indptr=g.client_indptr,
            client_indices=g.client_indices.copy(),
            server_indptr=g.server_indptr,
            server_indices=g.server_indices.copy(),
        )
        bad.client_indices[0] = 1  # break the forward edge set only
        with pytest.raises(GraphValidationError):
            bad.validate()

    def test_validate_catches_bad_indptr(self):
        g = tiny()
        ptr = g.client_indptr.copy()
        ptr[1] = 99
        bad = BipartiteGraph(
            n_clients=3,
            n_servers=4,
            client_indptr=ptr,
            client_indices=g.client_indices,
            server_indptr=g.server_indptr,
            server_indices=g.server_indices,
        )
        with pytest.raises(GraphValidationError):
            bad.validate()

    def test_degree_sums_match(self, regular_graph):
        assert regular_graph.client_degrees.sum() == regular_graph.server_degrees.sum()

    def test_min_max_helpers(self):
        g = tiny()
        assert g.degree_min_clients() == 1
        assert g.degree_max_servers() == 2


class TestConversions:
    def test_edges_roundtrip(self):
        g = tiny()
        g2 = BipartiteGraph.from_edges(3, 4, g.edges())
        assert np.array_equal(g.client_indptr, g2.client_indptr)
        assert np.array_equal(g.client_indices, g2.client_indices)

    def test_to_scipy_shape_and_degrees(self):
        g = tiny()
        a = g.to_scipy()
        assert a.shape == (3, 4)
        assert np.array_equal(np.asarray(a.sum(axis=1)).ravel(), g.client_degrees)
        assert np.array_equal(np.asarray(a.sum(axis=0)).ravel(), g.server_degrees)

    def test_scipy_matvec_counts_neighborhood_mass(self):
        g = tiny()
        served = np.array([1.0, 0.0, 1.0, 0.0])
        per_client = g.to_scipy() @ served
        # client 0 neighbors {0,2} -> 2; client 1 {1,2,3} -> 1; client 2 {0} -> 1
        assert per_client.tolist() == [2.0, 1.0, 1.0]

    def test_to_networkx(self):
        g = tiny()
        nx_g = g.to_networkx()
        assert nx_g.number_of_nodes() == 7
        assert nx_g.number_of_edges() == 6
        assert nx_g.has_edge(("c", 1), ("s", 3))


class TestFromCsr:
    def test_matches_from_edges(self):
        g = tiny()
        g2 = BipartiteGraph.from_csr(
            3, 4, g.client_indptr, g.client_indices, name=g.name
        )
        assert np.array_equal(g.client_indptr, g2.client_indptr)
        assert np.array_equal(g.client_indices, g2.client_indices)
        assert np.array_equal(g.server_indptr, g2.server_indptr)
        assert np.array_equal(g.server_indices, g2.server_indices)
        g2.validate()

    def test_empty_rows_and_empty_graph(self):
        g = BipartiteGraph.from_csr(
            3, 2, np.array([0, 0, 1, 1]), np.array([1])
        )
        assert g.client_degrees.tolist() == [0, 1, 0]
        assert g.neighbors_of_server(1).tolist() == [1]
        empty = BipartiteGraph.from_csr(2, 2, np.zeros(3, dtype=np.int64), np.empty(0))
        assert empty.n_edges == 0
        empty.validate()

    def test_rejects_unsorted_row(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_csr(1, 3, np.array([0, 2]), np.array([2, 0]))

    def test_rejects_duplicate_in_row(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_csr(1, 3, np.array([0, 2]), np.array([1, 1]))

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_csr(1, 3, np.array([0, 1]), np.array([5]))
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_csr(2, 3, np.array([0, 1]), np.array([0]))

    def test_rejects_bad_indptr(self):
        with pytest.raises(GraphValidationError):
            BipartiteGraph.from_csr(2, 3, np.array([0, 2, 1]), np.array([0, 1]))

    def test_reverse_adjacency_consistent(self, regular_graph):
        g2 = BipartiteGraph.from_csr(
            regular_graph.n_clients,
            regular_graph.n_servers,
            regular_graph.client_indptr,
            regular_graph.client_indices,
        )
        assert np.array_equal(g2.server_indptr, regular_graph.server_indptr)
        assert np.array_equal(g2.server_indices, regular_graph.server_indices)
