"""Tests for the ablation runner and the A3 sampling variant."""

import numpy as np
import pytest

from repro.core.engine import draw_destinations_distinct, run_saer
from repro.errors import ProtocolConfigError
from repro.experiments.ablations import run_ablations
from repro.graphs import BipartiteGraph


class TestDistinctSampling:
    def test_destinations_distinct_within_client(self, regular_graph):
        rng = np.random.default_rng(0)
        clients = np.array([0, 3, 7])
        counts = np.array([4, 1, 5])
        dest = draw_destinations_distinct(regular_graph, clients, counts, rng.random(10))
        assert len(set(dest[:4].tolist())) == 4
        assert len(set(dest[5:].tolist())) == 5

    def test_destinations_belong_to_neighborhoods(self, regular_graph):
        rng = np.random.default_rng(1)
        clients = np.array([2, 5])
        counts = np.array([3, 3])
        dest = draw_destinations_distinct(regular_graph, clients, counts, rng.random(6))
        n0 = set(regular_graph.neighbors_of_client(2).tolist())
        n1 = set(regular_graph.neighbors_of_client(5).tolist())
        assert set(dest[:3].tolist()) <= n0
        assert set(dest[3:].tolist()) <= n1

    def test_wraps_when_balls_exceed_degree(self):
        g = BipartiteGraph.from_edges(1, 2, [(0, 0), (0, 1)])
        rng = np.random.default_rng(2)
        dest = draw_destinations_distinct(g, np.array([0]), np.array([5]), rng.random(5))
        # first two distinct, then a fresh pass
        assert len(set(dest[:2].tolist())) == 2
        assert set(dest.tolist()) <= {0, 1}

    def test_uniform_count_mismatch(self, regular_graph):
        with pytest.raises(ValueError):
            draw_destinations_distinct(
                regular_graph, np.array([0]), np.array([2]), np.array([0.5])
            )

    def test_run_saer_without_replacement_invariants(self, regular_graph):
        res = run_saer(regular_graph, 1.5, 4, seed=3, sampling="without_replacement")
        assert res.max_load <= res.params.capacity
        assert res.assigned_balls + res.alive_balls == res.total_balls

    def test_incompatible_with_slot_mode(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_saer(
                regular_graph, 2.0, 2, seed=0, sampling="without_replacement", slot_mode=True
            )

    def test_unknown_sampling_rejected(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_saer(regular_graph, 2.0, 2, seed=0, sampling="bogus")


class TestAblationRunner:
    def test_small_run_shape(self):
        rows, meta = run_ablations(n=128, c=1.5, d=4, trials=2, processes=1, seed=9)
        assert len(rows) == 4
        variants = {r["variant"] for r in rows}
        assert "saer (baseline)" in variants
        assert "distinct-sampling" in variants
        for row in rows:
            assert row["max_load_worst"] <= row["capacity"]
            assert row["completed"] == row["trials"]
