"""Tests for the ablation runner and the A3 sampling variant."""

import numpy as np
import pytest

from repro.core.engine import draw_destinations_distinct, run_saer
from repro.errors import ProtocolConfigError
from repro.experiments.ablations import run_ablations
from repro.graphs import BipartiteGraph


class TestDistinctSampling:
    def test_destinations_distinct_within_client(self, regular_graph):
        rng = np.random.default_rng(0)
        clients = np.array([0, 3, 7])
        counts = np.array([4, 1, 5])
        dest = draw_destinations_distinct(regular_graph, clients, counts, rng.random(10))
        assert len(set(dest[:4].tolist())) == 4
        assert len(set(dest[5:].tolist())) == 5

    def test_destinations_belong_to_neighborhoods(self, regular_graph):
        rng = np.random.default_rng(1)
        clients = np.array([2, 5])
        counts = np.array([3, 3])
        dest = draw_destinations_distinct(regular_graph, clients, counts, rng.random(6))
        n0 = set(regular_graph.neighbors_of_client(2).tolist())
        n1 = set(regular_graph.neighbors_of_client(5).tolist())
        assert set(dest[:3].tolist()) <= n0
        assert set(dest[3:].tolist()) <= n1

    def test_wraps_when_balls_exceed_degree(self):
        g = BipartiteGraph.from_edges(1, 2, [(0, 0), (0, 1)])
        rng = np.random.default_rng(2)
        dest = draw_destinations_distinct(g, np.array([0]), np.array([5]), rng.random(5))
        # first two distinct, then a fresh pass
        assert len(set(dest[:2].tolist())) == 2
        assert set(dest.tolist()) <= {0, 1}

    def test_uniform_count_mismatch(self, regular_graph):
        with pytest.raises(ValueError):
            draw_destinations_distinct(
                regular_graph, np.array([0]), np.array([2]), np.array([0.5])
            )

    def test_run_saer_without_replacement_invariants(self, regular_graph):
        res = run_saer(regular_graph, 1.5, 4, seed=3, sampling="without_replacement")
        assert res.max_load <= res.params.capacity
        assert res.assigned_balls + res.alive_balls == res.total_balls

    def test_incompatible_with_slot_mode(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_saer(
                regular_graph, 2.0, 2, seed=0, sampling="without_replacement", slot_mode=True
            )

    def test_unknown_sampling_rejected(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_saer(regular_graph, 2.0, 2, seed=0, sampling="bogus")


class TestAblationRunner:
    def test_small_run_shape(self):
        rows, meta = run_ablations(n=128, c=1.5, d=4, trials=2, processes=1, seed=9)
        assert len(rows) == 4
        variants = {r["variant"] for r in rows}
        assert "saer (baseline)" in variants
        assert "distinct-sampling" in variants
        for row in rows:
            assert row["max_load_worst"] <= row["capacity"]
            assert row["completed"] == row["trials"]


class TestDistinctSamplingVectorized:
    """The segmented Fisher–Yates rewrite must replay the per-client
    reference loop bit-for-bit under matching uniform tapes."""

    def test_bit_equivalent_to_reference_loop(self, regular_graph, trust_graph):
        from repro.core.engine import _draw_destinations_distinct_loop

        rng = np.random.default_rng(42)
        for g in (regular_graph, trust_graph):
            for _ in range(10):
                n_act = int(rng.integers(1, g.n_clients + 1))
                clients = np.sort(rng.choice(g.n_clients, size=n_act, replace=False))
                counts = rng.integers(0, 7, size=n_act)
                u = rng.random(int(counts.sum()))
                ref = _draw_destinations_distinct_loop(g, clients, counts, u)
                vec = draw_destinations_distinct(g, clients, counts, u)
                assert np.array_equal(ref, vec)

    def test_bit_equivalent_with_wraparound(self):
        from repro.core.engine import _draw_destinations_distinct_loop

        g = BipartiteGraph.from_edges(2, 3, [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2)])
        rng = np.random.default_rng(3)
        clients = np.array([0, 1])
        counts = np.array([7, 8])  # both exceed the degrees -> fresh passes
        u = rng.random(15)
        assert np.array_equal(
            _draw_destinations_distinct_loop(g, clients, counts, u),
            draw_destinations_distinct(g, clients, counts, u),
        )

    def test_empty_counts(self, regular_graph):
        out = draw_destinations_distinct(
            regular_graph, np.array([0, 1]), np.array([0, 0]), np.empty(0)
        )
        assert out.size == 0

    def test_isolated_client_with_balls_rejected(self):
        from repro.errors import GraphValidationError

        # client 1 has no neighbors; drawing for it must fail loudly
        # rather than read another client's row.
        g = BipartiteGraph.from_edges(2, 2, [(0, 0), (0, 1)])
        with pytest.raises(GraphValidationError):
            draw_destinations_distinct(
                g, np.array([0, 1]), np.array([1, 1]), np.array([0.5, 0.5])
            )
        # degree-0 clients with zero balls are fine
        out = draw_destinations_distinct(
            g, np.array([0, 1]), np.array([2, 0]), np.array([0.1, 0.9])
        )
        assert out.size == 2
