"""Tests for repro.serve.router + repro.serve.fleet — sharded serving.

The load-bearing invariants: the shard map is a deterministic partition
with consistent-hash stability, the router's shard choice composes with
the worker's in-shard draw to the single-process destination law, and
fleet-level accounting (assigned + retried + dropped == submitted)
matches the single-process run *exactly* on a drained trace.
"""

import asyncio

import numpy as np
import pytest

import repro
from repro.faults import FaultSchedule, FaultSpec
from repro.graphs.bipartite import BipartiteGraph
from repro.serve import (
    FleetConfig,
    FleetService,
    SaerService,
    ServeConfig,
    ServingState,
    ShardMap,
    choose_shards,
    merge_tallies,
)
from repro.serve.protocol import REASON_UNAVAILABLE


def _drain(service):
    return asyncio.run(service.drain())


def _tally(futures):
    out = {"assigned": 0, "retry": 0, "dropped": 0, "unresolved": 0}
    for fut in futures:
        if not fut.done():
            out["unresolved"] += 1
        else:
            out[fut.result().outcome] += 1
    return out


def _graph_with_isolated(n, k, seed, isolated):
    """A trust graph with the given clients' neighborhoods emptied."""
    g = repro.graphs.trust_subsets(n, n, k, seed=seed)
    indptr = g.client_indptr.copy()
    indices = g.client_indices
    keep = np.ones(indices.size, dtype=bool)
    for v in isolated:
        keep[indptr[v]: indptr[v + 1]] = False
    cs = np.zeros(indices.size + 1, dtype=np.int64)
    np.cumsum(keep, out=cs[1:])
    return BipartiteGraph.from_csr(
        n, n, cs[indptr], indices[keep], name="isolated-test"
    )


def _replay(service, trace_arrivals):
    """Submit per-round arrival lists, run rounds, drain; return futures."""
    futures = []
    for batch in trace_arrivals:
        for client, balls in batch:
            futures.extend(service.submit(int(client), int(balls)))
        service.run_round()
    _drain(service)
    return futures


def _poisson_arrivals(n, rounds, rate, seed):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(rounds):
        vs, ks = np.unique(
            rng.integers(0, n, size=rng.poisson(rate * n)), return_counts=True
        )
        out.append(list(zip(vs.tolist(), ks.tolist())))
    return out


class TestShardMap:
    def test_partition_covers_every_server_once(self):
        smap = ShardMap(500, 4, seed=3)
        assert smap.shard_of.shape == (500,)
        assert smap.shard_of.min() >= 0 and smap.shard_of.max() < 4
        assert int(smap.counts.sum()) == 500
        # local ids enumerate 0..count-1 within each shard
        for k in range(4):
            members = smap.servers_of(k)
            assert members.size == smap.counts[k]
            assert np.array_equal(
                np.sort(smap.local_of[members]), np.arange(members.size)
            )

    def test_contiguous_blocks(self):
        smap = ShardMap(10, 2, strategy="contiguous")
        assert smap.shard_of.tolist() == [0] * 5 + [1] * 5

    def test_hash_stability_under_growth(self):
        # Consistent hashing: growing k -> k+1 moves ≈ 1/(k+1) of the
        # servers, far below the ~(k)/(k+1) a naive modulo remap moves.
        n = 4000
        a = ShardMap(n, 4, seed=9)
        b = ShardMap(n, 5, seed=9)
        moved = float(np.mean(a.shard_of != b.shard_of))
        assert moved < 0.40  # ideal 0.20; generous slack for vnode variance

    def test_deterministic_across_builds(self):
        a = ShardMap(300, 3, seed=5)
        b = ShardMap(300, 3, seed=5)
        assert np.array_equal(a.shard_of, b.shard_of)
        c = ShardMap(300, 3, seed=6)
        assert not np.array_equal(a.shard_of, c.shard_of)

    def test_sub_degrees_rows_sum_to_degree(self):
        g = repro.graphs.trust_subsets(128, 128, 8, seed=2)
        smap = ShardMap(128, 3, seed=1)
        sub = smap.sub_degrees(g)
        assert sub.shape == (128, 3)
        degs = np.diff(g.client_indptr)
        assert np.array_equal(sub.sum(axis=1), degs)

    def test_subgraph_preserves_edges(self):
        g = repro.graphs.trust_subsets(64, 64, 6, seed=4)
        smap = ShardMap(64, 2, seed=0)
        for shard in range(2):
            sub, members = smap.subgraph(g, shard)
            assert sub.n_clients == 64
            assert sub.n_servers == members.size
            for v in range(64):
                local = sub.neighbors_of_client(v)
                back = members[local]
                expect = [
                    s for s in g.neighbors_of_client(v).tolist()
                    if smap.shard_of[s] == shard
                ]
                assert back.tolist() == expect

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ShardMap(10, 0)
        with pytest.raises(ValueError):
            ShardMap(10, 2, strategy="modulo")
        g = repro.graphs.trust_subsets(16, 16, 4, seed=1)
        with pytest.raises(ValueError):
            ShardMap(8, 2).sub_degrees(g)


class TestChooseShards:
    def test_marginal_proportional_to_sub_degree(self):
        # owner 0 has sub-degrees (2, 3): shard 1 must get exactly the
        # u >= 0.4 mass under the inverse-CDF construction.
        cum = np.cumsum(np.array([[2, 3]]), axis=1)
        owners = np.zeros(1000, dtype=np.int64)
        u = np.linspace(0.0, 0.999, 1000)
        shard = choose_shards(owners, u, cum)
        frac1 = float(np.mean(shard == 1))
        assert frac1 == pytest.approx(3 / 5, abs=0.01)

    def test_empty_or_dead_shard_never_chosen(self):
        # middle column zeroed (dead shard) — never selected
        sub = np.array([[4, 0, 4]])
        cum = np.cumsum(sub, axis=1)
        shard = choose_shards(
            np.zeros(64, dtype=np.int64), np.linspace(0, 0.999, 64), cum
        )
        assert set(shard.tolist()) == {0, 2}

    def test_zero_live_degree_flagged_out_of_range(self):
        cum = np.cumsum(np.array([[0, 0]]), axis=1)
        shard = choose_shards(
            np.zeros(3, dtype=np.int64), np.array([0.1, 0.5, 0.9]), cum
        )
        assert shard.tolist() == [2, 2, 2]


class TestMergeTallies:
    def test_keywise_sum_with_missing_keys(self):
        merged = merge_tallies([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert merged == {"a": 1, "b": 5, "c": 4}


class TestFleetConservation:
    def test_fleet_matches_single_process_exactly(self):
        # Same graph (with genuinely isolated clients), same trace, same
        # protocol parameters: single process vs 2- and 3-worker fleets
        # must produce the *same* accounting totals — drops are a
        # router-side function of trace + graph, and everything else
        # assigns on a drained recovery-on trace.
        n = 256
        isolated = [7, 100]
        g = _graph_with_isolated(n, 6, seed=3, isolated=isolated)
        arrivals = _poisson_arrivals(n, rounds=40, rate=0.2, seed=5)

        state = ServingState(g, 2.0, 4, recovery=8, seed=77, track_tags=True)
        single = SaerService(state, ServeConfig(max_batch=1 << 30))
        base = _tally(_replay(single, arrivals))
        assert base["dropped"] > 0  # the isolated clients saw traffic
        assert base["unresolved"] == 0

        for workers in (2, 3):
            fleet = FleetService(
                g, 2.0, 4,
                config=FleetConfig(workers=workers),
                recovery=8, seed=77,
            )
            try:
                got = _tally(_replay(fleet, arrivals))
            finally:
                fleet.close()
            assert got == base, f"workers={workers} diverged from single"

    def test_fleet_byz_conservation_identity(self):
        # With Byzantine servers the totals need not match the honest
        # run, but every submitted ball still resolves exactly once and
        # the absorbed ledger is only additive.
        n = 128
        g = repro.graphs.trust_subsets(n, n, 8, seed=2)
        faults = FaultSchedule(
            [FaultSpec(kind="byz_server", fraction=0.1, start=0)], seed=4
        )
        arrivals = _poisson_arrivals(n, rounds=30, rate=0.2, seed=9)
        fleet = FleetService(
            g, 2.0, 4,
            config=FleetConfig(workers=2, max_wait_rounds=32),
            recovery=8, seed=21, faults=faults,
        )
        try:
            tally = _tally(_replay(fleet, arrivals))
            stats = fleet.stats()
        finally:
            fleet.close()
        submitted = sum(tally.values())
        assert tally["unresolved"] == 0
        assert tally["assigned"] + tally["retry"] + tally["dropped"] == submitted
        assert stats["byz_absorbed"] > 0

    def test_fleet_metrics_merge_matches_outcomes(self):
        n = 128
        g = repro.graphs.trust_subsets(n, n, 8, seed=6)
        arrivals = _poisson_arrivals(n, rounds=20, rate=0.2, seed=1)
        fleet = FleetService(
            g, 2.0, 4, config=FleetConfig(workers=2), recovery=8, seed=8
        )
        try:
            tally = _tally(_replay(fleet, arrivals))
            merged = fleet.fleet_metrics()
        finally:
            fleet.close()
        # Router-side counters agree with the futures...
        assert merged.get("fleet_assigned_total").value == tally["assigned"]
        # ...and so does the merged sum of the per-shard services.
        assert merged.get("serve_assigned_total").value == tally["assigned"]
        # Per-shard latency histograms merged bucket-wise into one.
        lat = merged.get("serve_assign_latency_rounds")
        assert lat.total == tally["assigned"]


class TestFleetChaos:
    def test_shard_sigkill_quarantine_readmit_recovers(self):
        # Kill one of two shard processes mid-replay via the process
        # fault schedule.  The router must quarantine the shard, route
        # around it, respawn it from checkpoint after the sit-out, and
        # — with the caller resubmitting Retry("unavailable") balls —
        # recover at least 95% assignment.
        n = 256
        g = repro.graphs.trust_subsets(n, n, 8, seed=2)
        process_faults = FaultSchedule(
            [FaultSpec(kind="crash", fraction=0.5, start=10, end=11)], seed=5
        )
        cfg = FleetConfig(workers=2, checkpoint_every=4, reply_timeout=10.0)
        fleet = FleetService(
            g, 2.0, 4, config=cfg, recovery=8, seed=13,
            process_faults=process_faults,
        )
        rng = np.random.default_rng(1)
        submitted = 0
        assigned = 0
        reasons = set()
        pending = []  # (future, client) — retries resubmit the same client

        def settle():
            nonlocal assigned
            still = []
            for fut, client in pending:
                if not fut.done():
                    still.append((fut, client))
                    continue
                out = fut.result()
                if out.outcome == "assigned":
                    assigned += 1
                elif out.outcome == "retry":
                    reasons.add(out.reason)
                    still.append((fleet.submit(client, 1)[0], client))
            pending[:] = still

        try:
            for _ in range(40):
                for v in rng.integers(0, n, size=20).tolist():
                    pending.append((fleet.submit(v, 1)[0], v))
                    submitted += 1
                fleet.run_round()
                settle()
            for _ in range(200):
                settle()
                if not pending:
                    break
                fleet.run_round()
            snap = fleet.metrics.snapshot()
        finally:
            fleet.close()
        assert snap["fleet_shard_kills_total"] >= 1
        assert snap["fleet_quarantine_events_total"] >= 1
        assert snap["fleet_respawns_total"] >= 1
        assert not pending
        assert assigned / submitted >= 0.95
        if reasons:
            assert reasons <= {REASON_UNAVAILABLE, "timeout"}


class TestFleetLifecycle:
    def test_close_idempotent_and_context_manager(self):
        g = repro.graphs.trust_subsets(64, 64, 4, seed=1)
        with FleetService(g, 2.0, 4, config=FleetConfig(workers=2), seed=0) as fleet:
            fleet.submit(3, 2)
            fleet.run_round()
        fleet.close()  # second close is a no-op
        with pytest.raises(ValueError):
            fleet.run_round()

    def test_shutdown_resolves_leftovers(self):
        g = repro.graphs.trust_subsets(64, 64, 4, seed=1)
        fleet = FleetService(
            g, 2.0, 4, config=FleetConfig(workers=2), recovery=None, seed=0
        )
        futs = fleet.submit(5, 3)
        asyncio.run(fleet.shutdown())
        assert all(f.done() for f in futs)
        # post-shutdown submissions resolve immediately as Retry
        extra = fleet.submit(5, 1)[0]
        assert extra.done() and extra.result().outcome == "retry"

    def test_validates_args(self):
        g = repro.graphs.trust_subsets(32, 32, 4, seed=1)
        with pytest.raises(ValueError):
            FleetConfig(workers=0)
        client_faults = FaultSchedule(
            [FaultSpec(kind="byz_client_dup", fraction=0.1)], seed=0
        )
        with pytest.raises(ValueError):
            FleetService(
                g, 2.0, 4, config=FleetConfig(workers=2),
                process_faults=client_faults,
            )
        fleet = FleetService(g, 2.0, 4, config=FleetConfig(workers=2), seed=0)
        try:
            with pytest.raises(ValueError):
                fleet.submit(99, 1)
            with pytest.raises(ValueError):
                fleet.submit(0, 0)
        finally:
            fleet.close()
