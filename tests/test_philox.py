"""The Philox counter lineage: KATs, fill parity, stream identity, gates.

The contract under test: ``seed_mode="philox"`` is its *own* golden
lineage (never bit-parity with PCG64) whose draws are pure functions of
``(trial words, round, slot)`` — so every kernel gate, thread count,
execution path (serial / pooled / spool-resume), and chunking must
produce identical bits, pinned by ``tests/data/philox_golden.json``.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.batch import (
    EngineBuffers,
    available_kernels,
    resolve_kernel,
    run_trials_batched,
)
from repro.batch.device import philox_uniforms_device
from repro.batch.kernels import (
    PHILOX_CHUNK,
    SEED_MODES,
    CupyKernel,
    _REGISTRY,
    _warned,
    fill_uniforms,
    philox_fill,
    resolve_seed_mode,
)
from repro.core.config import ProtocolParams
from repro.errors import PlanError, ProtocolConfigError, ResumeMismatchError
from repro.experiments.runners import _saer_plan
from repro.graphs import near_regular, random_regular_bipartite
from repro.durable.journal import plan_fingerprint, seed_token
from repro.parallel.aggregate import as_table
from repro.plan import ParameterGrid, SeedSpec, execute
from repro.rng import (
    make_rng,
    philox4x32,
    philox_seed_words,
    philox_trial_words,
    philox_uniforms,
    spawn_seeds,
)

GOLDEN = Path(__file__).parent / "data" / "philox_golden.json"
PARAMS = ProtocolParams(c=1.5, d=4)
RESULT_FIELDS = ("completed", "rounds", "work", "assigned_balls", "max_load")


def run_philox(graph, policy="saer", *, kernel="numpy", threads=None, seeds=None):
    return run_trials_batched(
        graph, PARAMS, policy, seeds=seeds or spawn_seeds(123, 4),
        kernel=kernel, threads=threads, seed_mode="philox",
    )


def signature(res):
    return tuple(
        tuple(np.asarray(getattr(res, f)).tolist()) for f in RESULT_FIELDS
    ) + (hashlib.sha256(
        np.ascontiguousarray(res.loads, dtype=np.int64).tobytes()
    ).hexdigest(),)


# ---------------------------------------------------------------------------
# Reference primitive: Random123 known-answer vectors and stream laws
# ---------------------------------------------------------------------------


class TestPhilox4x32:
    def test_known_answer_zero(self):
        out = philox4x32(np.zeros((4, 1), np.uint32), np.zeros(2, np.uint32))
        assert [hex(int(w)) for w in out[:, 0]] == [
            "0x6627e8d5", "0xe169c58d", "0xbc57ac4c", "0x9b00dbd8",
        ]

    def test_known_answer_ones_complement(self):
        ctr = np.full((4, 1), 0xFFFFFFFF, np.uint32)
        key = np.full(2, 0xFFFFFFFF, np.uint32)
        out = philox4x32(ctr, key)
        assert [hex(int(w)) for w in out[:, 0]] == [
            "0x408f276d", "0x41c83b0e", "0xa20bc7c6", "0x6d5451fd",
        ]

    def test_counter_shape_validation(self):
        with pytest.raises(ValueError, match="4 words"):
            philox4x32(np.zeros((3, 1), np.uint32), np.zeros(2, np.uint32))
        with pytest.raises(ValueError, match="2 words"):
            philox4x32(np.zeros((4, 1), np.uint32), np.zeros(3, np.uint32))

    def test_vectorized_matches_columnwise(self):
        rng = np.random.default_rng(5)
        ctr = rng.integers(0, 2**32, size=(4, 17), dtype=np.uint32)
        key = rng.integers(0, 2**32, size=2, dtype=np.uint32)
        full = philox4x32(ctr, key)
        for j in range(17):
            col = philox4x32(ctr[:, j : j + 1], key)
            assert np.array_equal(full[:, j], col[:, 0])


class TestPhiloxUniforms:
    def test_prefix_and_overfill_invariance(self):
        w = philox_seed_words(42)
        full = philox_uniforms(w, 3, 1001)
        for n in (1, 2, 7, 500, 1000):
            assert np.array_equal(philox_uniforms(w, 3, n), full[:n])

    def test_unit_interval_and_53_bit_grid(self):
        w = philox_seed_words(7)
        u = philox_uniforms(w, 1, 4096)
        assert np.all(u >= 0.0) and np.all(u < 1.0)
        assert np.array_equal(u, np.round(u * 2**53) / 2**53)

    def test_rounds_and_trials_are_distinct_streams(self):
        w1, w2 = philox_seed_words(1), philox_seed_words(2)
        assert not np.array_equal(
            philox_uniforms(w1, 1, 64), philox_uniforms(w1, 2, 64)
        )
        assert not np.array_equal(
            philox_uniforms(w1, 1, 64), philox_uniforms(w2, 1, 64)
        )

    def test_seed_words_reject_generator(self):
        with pytest.raises(TypeError, match="Generator"):
            philox_seed_words(make_rng(3))

    def test_trial_words_shape(self):
        assert philox_trial_words([]).shape == (0, 4)
        words = philox_trial_words(spawn_seeds(9, 5))
        assert words.shape == (5, 4) and words.dtype == np.uint32
        assert np.array_equal(words[2], philox_seed_words(spawn_seeds(9, 5)[2]))


# ---------------------------------------------------------------------------
# The C fill against the numpy reference, at every chunking
# ---------------------------------------------------------------------------


class TestPhiloxFill:
    def test_fill_matches_reference_any_partition(self):
        words = philox_trial_words(spawn_seeds(31, 6))
        expect = np.concatenate(
            [philox_uniforms(words[a], 9, 700) for a in range(6)]
        )
        for threads in (1, 2, 4):
            u = np.empty(6 * 700)
            philox_fill(
                u, np.arange(6), np.full(6, 700, np.int64), words, 9,
                threads=threads,
            )
            assert np.array_equal(u, expect)

    def test_fill_subset_of_trials(self):
        words = philox_trial_words(spawn_seeds(31, 6))
        active = np.array([1, 4])
        sent = np.array([33, PHILOX_CHUNK + 5], dtype=np.int64)
        u = np.empty(int(sent.sum()))
        philox_fill(u, active, sent, words, 2)
        assert np.array_equal(u[:33], philox_uniforms(words[1], 2, 33))
        assert np.array_equal(u[33:], philox_uniforms(words[4], 2, PHILOX_CHUNK + 5))

    def test_fill_empty_is_noop(self):
        u = np.full(4, -1.0)
        philox_fill(u, np.empty(0, np.int64), np.empty(0, np.int64),
                    np.empty((0, 4), np.uint32), 1)
        assert np.all(u == -1.0)


class TestFillUniformsNdarray:
    def test_accepts_ndarray_active_and_sent(self):
        # S2 regression: call sites pass engine arrays straight through.
        gens = [make_rng(s) for s in spawn_seeds(5, 3)]
        gens2 = [make_rng(s) for s in spawn_seeds(5, 3)]
        u1, u2 = np.empty(60), np.empty(60)
        fill_uniforms(u1, np.array([0, 2]), np.array([25, 35]), gens,
                      np.empty((3, 256)), np.full(3, 256, dtype=np.int64))
        fill_uniforms(u2, [0, 2], [25, 35], gens2, np.empty((3, 256)),
                      np.full(3, 256, dtype=np.int64))
        assert np.array_equal(u1, u2)


# ---------------------------------------------------------------------------
# Stream identity: gates × threads × serial / pooled / spool-resume
# ---------------------------------------------------------------------------


class TestStreamIdentity:
    @pytest.fixture(scope="class")
    def graphs(self):
        return {
            "regular": random_regular_bipartite(256, 8, seed=3),
            "near_regular": near_regular(192, 4, 12, seed=9),
        }

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN.read_text())

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    @pytest.mark.parametrize("threads", [None, 2, 4])
    def test_every_gate_matches_golden_lineage(self, graphs, golden, policy, threads):
        case = f"regular_{policy}"
        pin = golden["cases"][case]
        for kernel in available_kernels():
            if kernel == "cupy":
                continue  # availability-dependent; covered by the fake below
            res = run_philox(graphs["regular"], policy, kernel=kernel,
                             threads=threads)
            for f in RESULT_FIELDS:
                got = np.asarray(getattr(res, f)).astype(int).tolist()
                assert got == pin[f], (kernel, threads, f)
            loads = hashlib.sha256(
                np.ascontiguousarray(res.loads, dtype=np.int64).tobytes()
            ).hexdigest()
            assert loads == pin["loads_sha256"], (kernel, threads)

    def test_irregular_graph_identical_across_gates(self, graphs, golden):
        pin = golden["cases"]["near_regular_saer"]
        for kernel in available_kernels():
            if kernel == "cupy":
                continue
            res = run_philox(graphs["near_regular"], "saer", kernel=kernel)
            assert np.asarray(res.rounds).tolist() == pin["rounds"], kernel
            assert np.asarray(res.work).tolist() == pin["work"], kernel

    def test_distinct_from_pcg64_lineage(self, graphs):
        ph = run_philox(graphs["regular"], "saer")
        pcg = run_trials_batched(
            graphs["regular"], PARAMS, "saer", seeds=spawn_seeds(123, 4),
            kernel="numpy", seed_mode="pair",  # env-proof: CI exports philox
        )
        assert signature(ph) != signature(pcg)

    def test_buffer_reuse_does_not_change_bits(self, graphs):
        bufs = EngineBuffers()
        first = run_trials_batched(
            graphs["regular"], PARAMS, "saer", seeds=spawn_seeds(123, 4),
            kernel="cext", seed_mode="philox", buffers=bufs,
        )
        again = run_trials_batched(
            graphs["regular"], PARAMS, "saer", seeds=spawn_seeds(123, 4),
            kernel="cext", seed_mode="philox", buffers=bufs,
        )
        assert signature(first) == signature(again)

    def test_serial_pooled_and_spool_resume_identical(self, tmp_path):
        grid = ParameterGrid(n=[128, 256], c=[1.5], d=[4])

        def run(processes, spool=None, resume=None):
            plan = _saer_plan(
                grid, trials=3, seed=42, processes=processes,
                backend="batched", kernel="numpy", seed_mode="philox",
                spool=spool,
            )
            return as_table(execute(plan, resume=resume))

        serial = run(1)
        pooled = run(2)
        spool_dir = str(tmp_path / "spool")
        spooled = run(2, spool=spool_dir)
        resumed = run(2, spool=spool_dir, resume=spool_dir)
        for col in ("rounds", "work", "max_load", "completed"):
            ref = serial.column(col)
            for other in (pooled, spooled, resumed):
                assert np.array_equal(ref, other.column(col)), col


# ---------------------------------------------------------------------------
# Plan integration: fingerprint axis, validation, resume rejection
# ---------------------------------------------------------------------------


class TestPlanSeedMode:
    def _plan(self, mode, backend="batched"):
        return _saer_plan(
            ParameterGrid(n=[64], c=[1.5], d=[4]), trials=2, seed=5,
            processes=1, backend=backend,
            seed_mode=mode if mode != "pair" else None,
        )

    def test_seed_modes_registry(self):
        assert SEED_MODES == ("pair", "direct", "philox")
        assert resolve_seed_mode("philox") == "philox"
        assert resolve_seed_mode(None) in SEED_MODES
        with pytest.raises(ValueError, match="unknown seed mode"):
            resolve_seed_mode("weyl")

    def test_fingerprint_includes_seed_mode(self):
        pair = plan_fingerprint(self._plan("pair"))
        philox = plan_fingerprint(self._plan("philox"))
        assert pair != philox

    def test_describe_reports_seed_mode(self):
        assert self._plan("philox").describe()["seed_mode"] == "philox"

    def test_philox_requires_batched_backend(self):
        with pytest.raises(PlanError, match="batched"):
            self._plan("philox", backend="reference").validate()

    def test_philox_requires_seed_mode_aware_batch_fn(self):
        import dataclasses

        plan = self._plan("philox")

        def legacy_batch(graph, point, p_seeds):  # no seed_mode kwarg
            raise AssertionError("never called")

        crippled = dataclasses.replace(
            plan, work=dataclasses.replace(plan.work, batch=legacy_batch)
        )
        with pytest.raises(PlanError, match="seed_mode"):
            crippled.validate()

    def test_resume_under_different_mode_rejected(self, tmp_path):
        grid = ParameterGrid(n=[64], c=[1.5], d=[4])
        spool = str(tmp_path / "spool")

        def run(mode, resume=None):
            plan = _saer_plan(
                grid, trials=2, seed=5, processes=1, backend="batched",
                kernel="numpy", seed_mode=mode, spool=spool,
            )
            return execute(plan, resume=resume)

        run("philox")
        with pytest.raises(ResumeMismatchError):
            run(None, resume=spool)

    def test_plan_bits_immune_to_seed_mode_env(self, monkeypatch):
        # A plan's worker pins the plan's own seed mode, so exporting
        # REPRO_SEED_MODE (as the philox CI legs do) must not change the
        # bits of a pair-mode plan run.
        grid = ParameterGrid(n=[64], c=[1.5], d=[4])

        def run():
            plan = _saer_plan(
                grid, trials=2, seed=5, processes=1, backend="batched",
                kernel="numpy",
            )
            return execute(plan)

        monkeypatch.delenv("REPRO_SEED_MODE", raising=False)
        clean = run()
        monkeypatch.setenv("REPRO_SEED_MODE", "philox")
        polluted = run()
        assert np.array_equal(clean.column("work"), polluted.column("work"))
        assert np.array_equal(clean.column("rounds"), polluted.column("rounds"))

    def test_explicit_seed_token_carries_mode(self):
        pair = seed_token(SeedSpec(seeds=(1, 2, 3)))
        philox = seed_token(SeedSpec(seeds=(1, 2, 3), mode="philox"))
        assert len(pair) == 2  # historical 2-element shape kept for "pair"
        assert philox == pair + ["philox"]  # the mode is bit-determining


# ---------------------------------------------------------------------------
# The cupy gate: device twin parity without a GPU, clean fallback
# ---------------------------------------------------------------------------


class _FakeCupy:
    """numpy with cupy's module surface — the CI stand-in for a GPU."""

    def __getattr__(self, name):
        return getattr(np, name)

    @staticmethod
    def asnumpy(a):
        return np.asarray(a)


@pytest.fixture
def fake_cupy_gate():
    kern: CupyKernel = _REGISTRY["cupy"]
    saved = (kern._cupy, kern._checked)
    kern._cupy, kern._checked = _FakeCupy(), True
    try:
        yield kern
    finally:
        kern._cupy, kern._checked = saved


class TestCupyGate:
    def test_device_uniforms_match_reference(self):
        words = philox_trial_words(spawn_seeds(11, 3))
        sent = np.array([130, 7, 258], dtype=np.int64)
        seg_id = np.repeat(np.arange(3), sent)
        starts = np.concatenate(([0], np.cumsum(sent)[:-1]))
        slot = np.arange(int(sent.sum())) - np.repeat(starts, sent)
        u = philox_uniforms_device(np, words, seg_id, slot, 4)
        expect = np.concatenate(
            [philox_uniforms(words[a], 4, int(sent[a])) for a in range(3)]
        )
        assert np.array_equal(u, expect)

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    def test_fake_device_run_matches_cpu_gates(self, fake_cupy_gate, policy):
        g = random_regular_bipartite(128, 6, seed=2)
        device = run_trials_batched(
            g, PARAMS, policy, seeds=spawn_seeds(55, 3), kernel="cupy",
            seed_mode="philox",
        )
        host = run_trials_batched(
            g, PARAMS, policy, seeds=spawn_seeds(55, 3), kernel="numpy",
            seed_mode="philox",
        )
        assert signature(device) == signature(host)

    def test_cupy_rejects_pcg64_modes(self, fake_cupy_gate):
        g = random_regular_bipartite(64, 4, seed=2)
        with pytest.raises(ProtocolConfigError, match="philox"):
            run_trials_batched(
                g, PARAMS, "saer", seeds=spawn_seeds(1, 2), kernel="cupy",
                seed_mode="pair",  # explicit: REPRO_SEED_MODE must not rescue it
            )

    def test_unavailable_cupy_warns_once_and_falls_back(self):
        kern: CupyKernel = _REGISTRY["cupy"]
        saved = (kern._cupy, kern._checked)
        kern._cupy, kern._checked = None, True
        saved_warned = set(_warned)
        _warned.clear()
        try:
            with pytest.warns(RuntimeWarning, match="unavailable"):
                assert resolve_kernel("cupy").name == "numpy"
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second resolve: silent
                assert resolve_kernel("cupy").name == "numpy"
        finally:
            kern._cupy, kern._checked = saved
            _warned.clear()
            _warned.update(saved_warned)
