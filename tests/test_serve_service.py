"""Tests for repro.serve.service + protocol: micro-batching, failure
paths (isolated clients, stalls, disconnects), and the NDJSON wire."""

import asyncio
import json

import numpy as np
import pytest

from repro.graphs import BipartiteGraph, trust_subsets
from repro.serve import (
    Assigned,
    AssignRequest,
    BallFuture,
    Dropped,
    ProtocolError,
    Retry,
    SaerService,
    ServeConfig,
    ServingState,
    decode_request,
    decode_response,
    encode_outcome,
    encode_response,
    serve_tcp,
)
from repro.serve.protocol import (
    REASON_BACKPRESSURE,
    REASON_ISOLATED,
    REASON_SHUTDOWN,
    REASON_TIMEOUT,
)


@pytest.fixture()
def graph():
    return trust_subsets(64, 64, 8, seed=11)


def _service(graph, **cfg):
    state = ServingState(graph, 2.0, 4, recovery=8, seed=33, track_tags=True)
    return SaerService(state, ServeConfig(**cfg)) if cfg else SaerService(state)


def _isolated_service():
    """Client 3 has no servers; balls submitted there can never serve."""
    edges = [(c, s) for c in range(3) for s in range(4)]
    g = BipartiteGraph.from_edges(4, 4, edges)
    state = ServingState(g, 2.0, 4, seed=1, track_tags=True)
    return SaerService(state)


def _stalled_service(graph, **cfg):
    """Every server burned, recovery disabled: no ball ever assigns."""
    state = ServingState(graph, 2.0, 4, recovery=None, seed=2, track_tags=True)
    state.cum_received[:] = state.capacity + 1
    state.burned[:] = True
    return SaerService(state, ServeConfig(**cfg)) if cfg else SaerService(state)


class TestProtocolCodec:
    def test_assign_round_trip(self):
        msg = decode_request('{"op":"assign","client":7,"balls":2,"id":"r1"}')
        assert msg["op"] == "assign"
        req = msg["request"]
        assert req == AssignRequest(client=7, balls=2, id="r1")

    def test_control_ops(self):
        for op in ("metrics", "stats", "ping"):
            assert decode_request(json.dumps({"op": op, "id": 1})) == {"op": op, "id": 1}

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1,2]",
            '{"op":"frobnicate"}',
            '{"op":"assign"}',
            '{"op":"assign","client":"x"}',
            '{"op":"assign","client":1,"balls":0}',
            '{"op":"assign","client":-1}',
        ],
    )
    def test_garbage_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_outcome_wire_round_trip(self):
        for outcome in (Assigned(3, 2), Retry(REASON_TIMEOUT), Dropped(REASON_ISOLATED)):
            line = encode_response({"id": "x", "ball": 0, **encode_outcome(outcome)})
            assert line.endswith(b"\n")
            back = decode_response(line)
            assert back["outcome_obj"] == outcome


class TestBallFuture:
    def test_set_once(self):
        f = BallFuture()
        assert not f.done()
        with pytest.raises(asyncio.InvalidStateError):
            f.result()
        f.set_result(Assigned(1, 0))
        assert f.done() and f.result() == Assigned(1, 0)
        with pytest.raises(asyncio.InvalidStateError):
            f.set_result(Assigned(2, 0))

    def test_callback_orders(self):
        seen = []
        f = BallFuture()
        f.add_done_callback(lambda fut: seen.append("before"))
        f.set_result(Retry("x"))
        f.add_done_callback(lambda fut: seen.append("after"))  # fires immediately
        assert seen == ["before", "after"]

    def test_wait_bridges_to_asyncio(self, graph):
        svc = _service(graph)

        async def go():
            fut = svc.submit(0)[0]
            svc.run_round()
            return await fut.wait()

        out = asyncio.run(go())
        assert isinstance(out, Assigned)


class TestServiceRounds:
    def test_submit_and_assign(self, graph):
        svc = _service(graph)
        futs = svc.submit(5, balls=3)
        assert len(futs) == 3 and svc.pending == 3
        assigned = svc.run_round()
        assert assigned == 3
        for f in futs:
            out = f.result()
            assert isinstance(out, Assigned)
            assert out.latency_rounds == 0
            assert 0 <= out.server < graph.n_servers
        assert svc.in_flight == 0

    def test_submit_validation(self, graph):
        svc = _service(graph)
        with pytest.raises(ValueError):
            svc.submit(-1)
        with pytest.raises(ValueError):
            svc.submit(graph.n_clients)
        with pytest.raises(ValueError):
            svc.submit(0, balls=0)

    def test_isolated_client_dropped_matches_state_accounting(self):
        """The serve failure path must use the simulator's accounting:
        unservable balls resolve as Dropped AND count in state.dropped."""
        svc = _isolated_service()
        ok = svc.submit(0)[0]
        doomed = svc.submit(3, balls=2)
        svc.run_round()
        assert isinstance(ok.result(), Assigned)
        for f in doomed:
            assert f.result() == Dropped(REASON_ISOLATED)
        assert svc.state.dropped == 2
        assert svc.metrics.get("serve_dropped_total").value == 2

    def test_backpressure_immediate_retry(self, graph):
        svc = _service(graph, max_pending=2)
        futs = svc.submit(0, balls=5)
        resolved = [f for f in futs if f.done()]
        assert len(resolved) == 3  # room for 2, the rest bounce
        assert all(f.result() == Retry(REASON_BACKPRESSURE) for f in resolved)
        assert svc.pending == 2

    def test_stall_without_recovery_leaves_futures_pending(self, graph):
        svc = _stalled_service(graph)
        futs = svc.submit(1, balls=4)
        for _ in range(20):
            svc.run_round()
        assert all(not f.done() for f in futs)  # no timeout policy: they wait
        assert svc.state.backlog == 4
        assert svc.state.burned_fraction == 1.0

    def test_stall_with_timeout_policy_sheds_as_retry(self, graph):
        svc = _stalled_service(graph, max_wait_rounds=5)
        futs = svc.submit(1, balls=4)
        for _ in range(6):
            svc.run_round()
        assert all(f.result() == Retry(REASON_TIMEOUT) for f in futs)
        assert svc.state.backlog == 0
        assert svc.metrics.get("serve_retried_total").value == 4

    def test_latency_counts_rounds_waited(self, graph):
        svc = _stalled_service(graph)
        fut = svc.submit(2)[0]
        svc.run_round()
        svc.run_round()
        # heal the servers; the third round assigns at latency 2
        svc.state.cum_received[:] = 0
        svc.state.burned[:] = False
        svc.run_round()
        assert fut.result().latency_rounds == 2

    def test_shutdown_resolves_leftovers(self, graph):
        svc = _stalled_service(graph)
        futs = svc.submit(0, balls=3)

        async def go():
            await svc.start()
            await svc.shutdown()

        asyncio.run(go())
        assert all(f.result() == Retry(REASON_SHUTDOWN) for f in futs)
        # submissions after shutdown bounce immediately
        late = svc.submit(0)[0]
        assert late.result() == Retry(REASON_SHUTDOWN)

    def test_metrics_populated(self, graph):
        svc = _service(graph)
        svc.submit(0, balls=2)
        svc.run_round()
        m = svc.metrics
        assert m.get("serve_requests_total").value == 1
        assert m.get("serve_balls_total").value == 2
        assert m.get("serve_assigned_total").value == 2
        assert m.get("serve_rounds_total").value == 1
        assert m.get("serve_assign_latency_rounds").total == 2
        assert m.get("serve_round_seconds").total == 1

    def test_snapshot_hook_cadence(self, graph):
        svc = _service(graph, snapshot_every=2)
        snaps = []
        svc.metrics.add_snapshot_hook(snaps.append)
        for _ in range(5):
            svc.run_round()
        assert len(snaps) == 2  # rounds 2 and 4

    def test_stats_shape(self, graph):
        svc = _service(graph)
        svc.submit(1)
        svc.run_round()
        s = svc.stats()
        assert s["round"] == 1
        assert s["assigned_total"] == 1
        assert s["kernel"] == "numpy"
        assert "serve_backlog" in s["metrics"]

    def test_requires_tag_tracking(self, graph):
        state = ServingState(graph, 2.0, 4, seed=0)  # track_tags off
        with pytest.raises(ValueError):
            SaerService(state)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(tick=0)
        with pytest.raises(ValueError):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServeConfig(max_pending=0)
        with pytest.raises(ValueError):
            ServeConfig(max_wait_rounds=0)


class TestMicroBatching:
    def test_ticker_fires_rounds(self, graph):
        async def go():
            svc = _service(graph, tick=0.01)
            await svc.start()
            fut = svc.submit(4)[0]
            out = await asyncio.wait_for(fut.wait(), timeout=2.0)
            await svc.shutdown()
            return out

        assert isinstance(asyncio.run(go()), Assigned)

    def test_full_batch_kicks_before_tick(self, graph):
        async def go():
            # A tick this long would time the test out — only the
            # max_batch kick can complete the futures in time.
            svc = _service(graph, tick=30.0, max_batch=4)
            await svc.start()
            futs = svc.submit(0, balls=4)
            out = await asyncio.wait_for(futs[-1].wait(), timeout=2.0)
            await svc.shutdown()
            return out

        assert isinstance(asyncio.run(go()), Assigned)

    def test_drain_empties_backlog(self, graph):
        async def go():
            svc = _service(graph)
            for client in range(10):
                svc.submit(client, balls=5)
            rounds = await svc.drain()
            return svc.in_flight, rounds

        in_flight, rounds = asyncio.run(go())
        assert in_flight == 0
        assert rounds >= 1


class TestTcpFrontEnd:
    def _boot(self, svc):
        return serve_tcp(svc, "127.0.0.1", 0)

    def test_assign_over_wire(self, graph):
        async def go():
            svc = _service(graph, tick=0.01)
            server = await self._boot(svc)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(encode_response({"op": "assign", "client": 3, "balls": 2, "id": "r1"}))
            await writer.drain()
            outs = [decode_response(await reader.readline()) for _ in range(2)]
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await svc.shutdown()
            return outs

        outs = asyncio.run(go())
        assert {o["ball"] for o in outs} == {0, 1}
        for o in outs:
            assert o["id"] == "r1"
            assert isinstance(o["outcome_obj"], Assigned)

    def test_control_ops_and_garbage(self, graph):
        async def go():
            svc = _service(graph, tick=0.01)
            server = await self._boot(svc)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for payload in (
                {"op": "ping", "id": "p"},
                {"op": "stats", "id": "s"},
                {"op": "metrics", "id": "m"},
            ):
                writer.write(encode_response(payload))
            writer.write(b"this is not json\n")
            await writer.drain()
            lines = [json.loads(await reader.readline()) for _ in range(4)]
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await svc.shutdown()
            return lines

        pong, stats, metrics, err = asyncio.run(go())
        assert pong == {"id": "p", "pong": True}
        assert stats["stats"]["n_clients"] == 64
        assert "serve_rounds_total" in metrics["metrics"]
        assert "invalid JSON" in err["error"]

    def test_client_disconnect_mid_flight(self, graph):
        """A client that vanishes before its round fires must not take
        the service down; its outcome is simply discarded."""

        async def go():
            # Huge tick: the round will NOT fire while the client is
            # connected — the disconnect happens strictly mid-flight.
            svc = _service(graph, tick=30.0)
            server = await self._boot(svc)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(encode_response({"op": "assign", "client": 1, "id": "gone"}))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)  # let the server observe the EOF
            # The ball is still queued; firing the round now resolves a
            # future whose connection is gone — must not raise.
            assigned = svc.run_round()
            # The service stays healthy for the next client.
            reader2, writer2 = await asyncio.open_connection("127.0.0.1", port)
            writer2.write(encode_response({"op": "ping", "id": "p2"}))
            await writer2.drain()
            pong = json.loads(await reader2.readline())
            writer2.close()
            await writer2.wait_closed()
            server.close()
            await server.wait_closed()
            await svc.shutdown()
            return assigned, pong

        assigned, pong = asyncio.run(go())
        assert assigned == 1
        assert pong == {"id": "p2", "pong": True}
