"""Tests for the unified execution-plan layer (:mod:`repro.plan`).

Three pillars:

* **validation / round-trip** — a :class:`RunPlan` is data; bad axis
  combinations fail loudly at validation time, good ones survive a
  field round-trip;
* **parity matrix** — ``execute(plan)`` across backend × graph-mode ×
  results-carrier must be *bit-identical* to the pre-refactor outputs
  captured in ``tests/data/plan_golden.json`` (generated at the seed
  commit, pinned seeds);
* **columnar monte_carlo** — the results spool extended to
  :func:`repro.parallel.monte_carlo` must match the per-trial objects
  row-for-row.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import PlanError
from repro.experiments import runners as R
from repro.graphs.families import build_point_graph, canonical_degree, family_spec
from repro.parallel import ResultTable, monte_carlo
from repro.parallel.sweep import ParameterGrid, run_sweep
from repro.plan import (
    BackendSpec,
    BatchWorker,
    ExecSpec,
    GraphSpec,
    PerTrialWorker,
    ResultSpec,
    RunPlan,
    SeedSpec,
    WorkSpec,
    execute,
)

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "plan_golden.json").read_text()
)


def _noop_record(graph, point, seed):
    return {"v": 0}


def _noop_batch(graph, point, seeds):
    return [{"v": 0} for _ in seeds]


def _noop_batch_kernel(graph, point, seeds, kernel=None):
    return [{"v": 0} for _ in seeds]


def _noop_batch_full(graph, point, seeds, kernel=None, threads=None):
    return [{"v": 0} for _ in seeds]


def _probe_threads_batch(graph, point, seeds, kernel=None, threads=None):
    """Worker-side probe: what thread budget would the engine resolve?"""
    import os

    from repro.batch.kernels import resolve_threads

    eff = resolve_threads(threads)
    return [{"eff_threads": eff, "worker_pid": os.getpid()} for _ in seeds]


def _plan(**overrides) -> RunPlan:
    base = dict(
        grid=ParameterGrid(n=[64]),
        work=WorkSpec(record=_noop_record, batch=_noop_batch),
        trials=1,
    )
    base.update(overrides)
    return RunPlan(**base)


class TestPlanValidation:
    def test_valid_default_plan(self):
        _plan().validate()

    def test_unknown_backend(self):
        with pytest.raises(PlanError, match="unknown backend"):
            _plan(backend=BackendSpec(name="gpu")).validate()

    def test_batched_requires_batch_work(self):
        plan = _plan(
            work=WorkSpec(record=_noop_record),
            backend=BackendSpec(name="batched"),
        )
        with pytest.raises(PlanError, match="work.batch"):
            plan.validate()

    def test_kernel_requires_batched(self):
        with pytest.raises(PlanError, match="kernel"):
            _plan(backend=BackendSpec(name="reference", kernel="cext")).validate()

    def test_unknown_kernel(self):
        with pytest.raises(PlanError, match="unknown kernel"):
            _plan(backend=BackendSpec(name="batched", kernel="fpga")).validate()

    def test_kernel_needs_kernel_capable_batch_fn(self):
        # _noop_batch takes no kernel= — must fail at validate time, not
        # as a TypeError inside a pool worker.
        plan = _plan(backend=BackendSpec(name="batched", kernel="numpy"))
        with pytest.raises(PlanError, match="kernel= keyword"):
            plan.validate()

    def test_threads_require_batched(self):
        with pytest.raises(PlanError, match="threads"):
            _plan(backend=BackendSpec(name="reference", threads=2)).validate()

    def test_threads_must_be_positive_int(self):
        for bad in (0, -1, 2.5):
            plan = _plan(
                work=WorkSpec(record=_noop_record, batch=_noop_batch_full),
                backend=BackendSpec(name="batched", threads=bad),
            )
            with pytest.raises(PlanError, match="threads"):
                plan.validate()

    def test_threads_need_threads_capable_batch_fn(self):
        # _noop_batch_kernel takes kernel= but no threads= — fail at
        # validate time, not as a TypeError inside a pool worker.
        plan = _plan(
            work=WorkSpec(record=_noop_record, batch=_noop_batch_kernel),
            backend=BackendSpec(name="batched", threads=2),
        )
        with pytest.raises(PlanError, match="threads= keyword"):
            plan.validate()

    def test_cached_needs_dir(self):
        with pytest.raises(PlanError, match="cache_dir"):
            _plan(graph=GraphSpec(mode="cached")).validate()

    def test_pinned_needs_graph(self):
        with pytest.raises(PlanError, match="pinned"):
            _plan(graph=GraphSpec(mode="pinned")).validate()

    def test_generate_rejects_pinned_graph(self):
        with pytest.raises(PlanError, match="pinned graph"):
            _plan(graph=GraphSpec(mode="generate", graph=object())).validate()

    def test_direct_seeds_need_pinned_graph(self):
        plan = _plan(seeds=SeedSpec(mode="direct", seeds=(1,)))
        with pytest.raises(PlanError, match="direct"):
            plan.validate()

    def test_explicit_seed_cardinality(self):
        plan = _plan(trials=3, seeds=SeedSpec(seeds=(1, 2)))
        with pytest.raises(PlanError, match="explicit seeds"):
            plan.validate()

    def test_root_and_explicit_seeds_conflict(self):
        with pytest.raises(PlanError, match="not both"):
            _plan(seeds=SeedSpec(root=1, seeds=(2,))).validate()

    def test_serial_contradicting_processes(self):
        with pytest.raises(PlanError, match="serial"):
            _plan(execution=ExecSpec(mode="serial", processes=4)).validate()

    def test_unknown_results_mode(self):
        with pytest.raises(PlanError, match="results mode"):
            _plan(results=ResultSpec(mode="arrow")).validate()

    def test_negative_trials(self):
        with pytest.raises(PlanError, match="trials"):
            _plan(trials=-1).validate()

    def test_non_mapping_points(self):
        with pytest.raises(PlanError, match="points must be dicts"):
            _plan(grid=[("n", 64)]).validate()


class TestPlanRoundTrip:
    def test_fields_survive_and_describe(self):
        plan = _plan(
            trials=4,
            seeds=SeedSpec(root=7),
            work=WorkSpec(record=_noop_record, batch=_noop_batch_kernel),
            backend=BackendSpec(name="batched", kernel="numpy"),
            execution=ExecSpec(mode="serial"),
            results=ResultSpec(mode="columnar"),
        )
        plan.validate()
        d = plan.describe()
        assert d["backend"] == "batched" and d["kernel"] == "numpy"
        assert d["graph"] == "generate" and d["results"] == "columnar"
        assert d["points"] == 1 and d["trials"] == 4
        assert d["processes"] == 1  # serial resolves to one process

    def test_override_returns_new_plan(self):
        plan = _plan()
        other = plan.override(trials=9)
        assert other.trials == 9 and plan.trials == 1
        assert other.work is plan.work

    def test_explicit_point_list_passthrough(self):
        pts = [{"n": 64, "tag": "a"}, {"n": 128, "tag": "b"}]
        plan = _plan(grid=pts)
        plan.validate()
        assert plan.points() == pts
        assert plan.n_tasks() == 2


class TestExecuteParityMatrix:
    """execute(plan) must be bit-identical to the pre-refactor engine.

    Goldens were captured from the pre-plan `_saer_sweep` dispatcher
    (PR 3 state) with pinned seeds; every (backend × graph × results)
    cell must reproduce them exactly.
    """

    SEED, TRIALS = 13, 2

    def _grid(self):
        return ParameterGrid(n=[64], c=[1.5, 4.0], d=[4])

    def _pinned_graph(self):
        g_seed = np.random.SeedSequence(self.SEED).spawn(
            len(self._grid()) * self.TRIALS + 1
        )[-1]
        return build_point_graph({"n": 64}, g_seed)

    @pytest.mark.parametrize("backend", ["reference", "batched"])
    @pytest.mark.parametrize("results", ["records", "columnar"])
    def test_generate(self, backend, results):
        recs = execute(R._saer_plan(
            self._grid(), trials=self.TRIALS, seed=self.SEED, processes=1,
            backend=backend, results=results,
        ))
        if results == "columnar":
            assert isinstance(recs, ResultTable)
        assert list(recs) == GOLDEN[f"sweep/{backend}/generate"]

    @pytest.mark.parametrize("backend", ["reference", "batched"])
    @pytest.mark.parametrize("results", ["records", "columnar"])
    def test_cached(self, backend, results, tmp_path):
        recs = execute(R._saer_plan(
            self._grid(), trials=self.TRIALS, seed=self.SEED, processes=1,
            backend=backend, graph_cache=str(tmp_path), results=results,
        ))
        assert list(recs) == GOLDEN[f"sweep/{backend}/cached"]
        assert list(tmp_path.glob("regular-*.npz"))  # the cache was used

    @pytest.mark.parametrize("backend", ["reference", "batched"])
    @pytest.mark.parametrize("results", ["records", "columnar"])
    def test_pinned(self, backend, results):
        recs = execute(R._saer_plan(
            self._grid(), trials=self.TRIALS, seed=self.SEED, processes=1,
            backend=backend, graph=self._pinned_graph(), results=results,
        ))
        assert list(recs) == GOLDEN[f"sweep/{backend}/pinned"]

    def test_pool_matches_serial(self):
        a = execute(R._saer_plan(
            self._grid(), trials=self.TRIALS, seed=self.SEED, processes=1,
            backend="batched", results="columnar",
        ))
        b = execute(R._saer_plan(
            self._grid(), trials=self.TRIALS, seed=self.SEED, processes=2,
            backend="batched", results="columnar",
        ))
        assert list(a) == list(b) == GOLDEN["sweep/batched/generate"]

    def test_kernel_python_gate_is_bit_identical(self):
        recs = execute(R._saer_plan(
            self._grid(), trials=self.TRIALS, seed=self.SEED, processes=1,
            backend="batched", results="columnar", kernel="python",
        ))
        assert list(recs) == GOLDEN["sweep/batched/generate"]

    @pytest.mark.parametrize("kernel", [None, "python"])
    def test_golden_holds_under_threads_4(self, kernel):
        """BackendSpec(threads=4) must not move a single bit: the numpy
        gate ignores threads, the compiled gates partition trials with
        data-determined chunks — plan_golden.json pins both."""
        recs = execute(R._saer_plan(
            self._grid(), trials=self.TRIALS, seed=self.SEED, processes=1,
            backend="batched", results="columnar", kernel=kernel,
            kernel_threads=4,
        ))
        assert list(recs) == GOLDEN["sweep/batched/generate"]


# Maps each golden rows/ entry back to its runner invocation.
_ROW_RUNS = {
    "e01/reference": ("run_e01_completion", dict(ns=(64, 128), trials=2, seed=1, processes=1)),
    "e01/batched": ("run_e01_completion", dict(ns=(64, 128), trials=2, seed=1, processes=1, backend="batched")),
    "e02/reference": ("run_e02_work", dict(ns=(64, 128), trials=2, seed=7, processes=1)),
    "e02/batched": ("run_e02_work", dict(ns=(64, 128), trials=2, seed=7, processes=1, backend="batched")),
    "e03": ("run_e03_max_load", dict(n=64, settings=((2.0, 2),), families=("regular", "trust"), trials=2, seed=303, processes=1)),
    "e04": ("run_e04_burned_fraction", dict(ns=(64,), trials=2, include_paper_c=False, seed=404, processes=1)),
    "e05": ("run_e05_dominance", dict(ns=(64,), cs=(1.5,), trials=2, seed=505, processes=1)),
    "e06/reference": ("run_e06_c_threshold", dict(n=64, cs=(1.5, 4.0), trials=2, seed=1, processes=1)),
    "e06/batched": ("run_e06_c_threshold", dict(n=64, cs=(1.5, 4.0), trials=2, seed=1, processes=1, backend="batched")),
    "e06/reference/share": ("run_e06_c_threshold", dict(n=64, cs=(1.5, 4.0), trials=2, seed=1, processes=1, share_graph=True)),
    "e06/batched/share": ("run_e06_c_threshold", dict(n=64, cs=(1.5, 4.0), trials=2, seed=1, processes=1, backend="batched", share_graph=True)),
    "e07/reference": ("run_e07_degree_sweep", dict(n=64, trials=2, seed=707, processes=1)),
    "e07/batched": ("run_e07_degree_sweep", dict(n=64, trials=2, seed=707, processes=1, backend="batched")),
    "e08/reference": ("run_e08_almost_regular", dict(n=64, ratios=(1, 2), trials=2, seed=808, processes=1)),
    "e08/batched": ("run_e08_almost_regular", dict(n=64, ratios=(1, 2), trials=2, seed=808, processes=1, backend="batched")),
    "e09": ("run_e09_baselines", dict(n=64, trials=2, seed=909, processes=1)),
    "e10": ("run_e10_stage1", dict(n=256, seed=5)),
    "e11": ("run_e11_alive_decay", dict(ns=(128,), trials=2, seed=1111, processes=1)),
    "e12": ("run_e12_dynamic", dict(n=64, rates=(0.1, 1.0), horizon=60, trials=1, seed=1212, processes=1)),
}


class TestRunnerRowsGolden:
    """Every E-runner's table rows, bit-identical to the pre-plan state."""

    @pytest.mark.parametrize("name", sorted(_ROW_RUNS))
    def test_rows_match_golden(self, name):
        runner_name, kwargs = _ROW_RUNS[name]
        rows, _meta = getattr(R, runner_name)(**kwargs)
        want = GOLDEN[f"rows/{name}"]
        assert len(rows) == len(want)
        for got_row, want_row in zip(rows, want):
            assert got_row == want_row

    @pytest.mark.parametrize("backend", ["reference", "batched"])
    def test_per_trial_records_match_golden(self, backend):
        _rows, meta = R.run_e01_completion(
            ns=(64, 128), trials=2, seed=1, processes=1, backend=backend,
            results="records",
        )
        assert list(meta["records"]) == GOLDEN[f"records/e01/{backend}"]


class TestCanonicalWorkers:
    """The two canonical paths replace the old per-experiment adapters."""

    def test_per_trial_worker_pair_spawn_matches_manual(self):
        point = {"n": 64, "c": 2.0, "d": 2}
        seed = np.random.SeedSequence(5)
        worker = PerTrialWorker(R._saer_run_record)
        got = worker(point, seed, 0)
        g_seed, p_seed = np.random.SeedSequence(5).spawn(2)
        want = R._saer_run_record(build_point_graph(point, g_seed), point, p_seed)
        assert got == want

    def test_batch_worker_matches_per_trial_worker(self):
        point = {"n": 64, "c": 2.0, "d": 2}
        seeds = np.random.SeedSequence(6).spawn(3)
        block = BatchWorker(R._saer_batch_block)(point, seeds, [0, 1, 2])
        per_trial = [
            PerTrialWorker(R._saer_run_record)(point, ss, i)
            for i, ss in enumerate(np.random.SeedSequence(6).spawn(3))
        ]
        # The batched path conditions all trials on the first trial's
        # graph seed; compare protocol outcomes on that shared graph.
        g_seed, _ = np.random.SeedSequence(6).spawn(3)[0].spawn(2)
        graph = build_point_graph(point, g_seed)
        p_seeds = [ss.spawn(2)[1] for ss in np.random.SeedSequence(6).spawn(3)]
        want = [R._saer_run_record(graph, point, ps) for ps in p_seeds]
        assert block.records() == [
            dict(point, trial=i, **rec) for i, rec in enumerate(want)
        ]
        assert len(per_trial) == 3  # reference path: one fresh graph each

    def test_worker_cardinality_check_still_applies(self):
        def short_batch(graph, point, seeds):
            return [{"v": 1}]

        plan = _plan(
            trials=3,
            work=WorkSpec(record=_noop_record, batch=short_batch),
            backend=BackendSpec(name="batched"),
        )
        with pytest.raises(ValueError, match="3 trials"):
            execute(plan)


class TestKernelThreadsDispatch:
    """Oversubscription guard: pool workers default kernel threads to 1.

    Threads multiply processes — an environment-wide
    ``REPRO_KERNEL_THREADS`` inherited by pool workers would run
    processes × threads runnable threads.  Pool worker initializers
    reset the env gate to 1; only an explicit plan-level budget
    (``BackendSpec.threads``, traveling in the pickled worker, capped
    by ``execute`` against the process count) threads pooled kernels.
    """

    def _probe_plan(self, *, threads=None, mode="auto", processes=1):
        return RunPlan(
            grid=ParameterGrid(n=[16, 32]),
            work=WorkSpec(record=_noop_record, batch=_probe_threads_batch),
            trials=2,
            seeds=SeedSpec(root=3),
            backend=BackendSpec(name="batched", threads=threads),
            execution=ExecSpec(mode=mode, processes=processes),
        )

    def test_pool_workers_default_to_one_thread(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "4")
        recs = execute(self._probe_plan(mode="pool", processes=2))
        assert recs and all(r["eff_threads"] == 1 for r in recs)
        assert any(r["worker_pid"] != __import__("os").getpid() for r in recs)

    def test_serial_runs_keep_the_env_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "4")
        recs = execute(self._probe_plan(mode="serial"))
        assert recs and all(r["eff_threads"] == 4 for r in recs)

    def test_explicit_plan_budget_reaches_pool_workers_capped(self, monkeypatch):
        from repro.parallel.pool import available_cpus

        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        recs = execute(self._probe_plan(threads=4, mode="pool", processes=2))
        want = max(1, min(4, available_cpus() // 2))
        assert recs and all(r["eff_threads"] == want for r in recs)

    def test_explicit_budget_uncapped_when_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_THREADS", raising=False)
        recs = execute(self._probe_plan(threads=4, mode="serial"))
        assert recs and all(r["eff_threads"] == 4 for r in recs)

    def test_monte_carlo_pool_workers_reset_env(self, monkeypatch):
        """The reset is a map_parallel property, not a plan-layer one:
        every pooled dispatch (monte_carlo included) gets it."""
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "4")
        recs = monte_carlo(
            _mc_probe_block, 4, seed=0, processes=2, backend="batched",
            batch_size=2,
        )
        assert recs and all(r["eff_threads"] == 1 for r in recs)


def _mc_probe_block(seed_seqs, indices):
    from repro.batch.kernels import resolve_threads

    eff = resolve_threads(None)
    return [{"eff_threads": eff} for _ in indices]


class TestMonteCarloColumnar:
    """Satellite: the columnar spool extended to parallel.monte_carlo."""

    @staticmethod
    def _trial(seed_seq, index):
        rng = np.random.default_rng(seed_seq)
        return {"index": index, "value": float(rng.random())}

    @classmethod
    def _trial_block(cls, seed_seqs, indices):
        return [cls._trial(s, i) for s, i in zip(seed_seqs, indices)]

    def test_per_trial_row_for_row(self):
        recs = monte_carlo(self._trial, 7, seed=3, processes=1)
        table = monte_carlo(self._trial, 7, seed=3, processes=1, results="columnar")
        assert isinstance(table, ResultTable)
        assert list(table) == recs

    def test_batched_row_for_row(self):
        recs = monte_carlo(
            self._trial_block, 9, seed=11, processes=1, backend="batched",
            batch_size=4,
        )
        table = monte_carlo(
            self._trial_block, 9, seed=11, processes=1, backend="batched",
            batch_size=4, results="columnar",
        )
        assert isinstance(table, ResultTable)
        assert list(table) == recs

    def test_parallel_matches_serial(self):
        a = monte_carlo(
            self._trial_block, 8, seed=2, processes=1, backend="batched",
            batch_size=2, results="columnar",
        )
        b = monte_carlo(
            self._trial_block, 8, seed=2, processes=2, backend="batched",
            batch_size=2, results="columnar",
        )
        assert list(a) == list(b)

    def test_zero_trials(self):
        table = monte_carlo(self._trial, 0, seed=0, results="columnar")
        assert isinstance(table, ResultTable) and len(table) == 0

    def test_non_dict_results_rejected(self):
        with pytest.raises(ValueError, match="dict-like"):
            monte_carlo(
                lambda seed_seq, i: i, 3, seed=0, processes=1, results="columnar"
            )

    def test_unknown_results_mode_rejected(self):
        with pytest.raises(ValueError, match="results mode"):
            monte_carlo(self._trial, 3, seed=0, results="arrow")


class TestRunSweepExtensions:
    @staticmethod
    def _point(point, seed_seq, trial):
        rng = np.random.default_rng(seed_seq)
        return {"value": point["a"] * 10 + float(rng.random())}

    def test_explicit_point_list(self):
        pts = [{"a": 2}, {"a": 1}]  # order preserved, not re-sorted
        recs = run_sweep(self._point, pts, n_trials=2, seed=4, processes=1)
        assert [r["a"] for r in recs] == [2, 2, 1, 1]

    def test_explicit_seeds_override_spawn(self):
        grid = ParameterGrid(a=[1, 2])
        seeds = np.random.SeedSequence(9).spawn(4)
        via_root = run_sweep(self._point, grid, n_trials=2, seed=9, processes=1)
        via_seeds = run_sweep(self._point, grid, n_trials=2, seeds=seeds, processes=1)
        assert via_root == via_seeds

    def test_seed_and_seeds_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            run_sweep(
                self._point, ParameterGrid(a=[1]), n_trials=1, seed=1,
                seeds=[np.random.SeedSequence(0)],
            )

    def test_wrong_seed_count(self):
        with pytest.raises(ValueError, match="explicit seeds"):
            run_sweep(
                self._point, ParameterGrid(a=[1, 2]), n_trials=2,
                seeds=[np.random.SeedSequence(0)],
            )


class TestResultTableHelpers:
    def _table(self):
        return ResultTable.from_records(
            [
                {"n": 64, "fam": "a", "v": 1.0},
                {"n": 128, "fam": "a", "v": 2.0},
                {"n": 64, "fam": "b", "v": 3.0},
            ]
        )

    def test_where_filters_rows(self):
        t = self._table()
        sub = t.where(n=64)
        assert len(sub) == 2 and [r["v"] for r in sub] == [1.0, 3.0]
        sub2 = t.where(n=64, fam="b")
        assert list(sub2) == [{"n": 64, "fam": "b", "v": 3.0}]

    def test_where_on_object_column(self):
        t = ResultTable.from_records(
            [{"k": None, "v": 1}, {"k": 2, "v": 2}, {"k": None, "v": 3}]
        )
        assert [r["v"] for r in t.where(k=None)] == [1, 3]

    def test_concat_unions_columns(self):
        a = ResultTable.from_records([{"x": 1}])
        b = ResultTable.from_records([{"x": 2, "y": 3.0}])
        t = ResultTable.concat([a, b])
        assert list(t) == [{"x": 1, "y": None}, {"x": 2, "y": 3.0}]

    def test_concat_empty(self):
        assert len(ResultTable.concat([])) == 0


class TestPlanSmoke:
    def test_smoke_covers_backends(self):
        from repro.experiments.smoke import run_plan_smoke

        rows, ok = run_plan_smoke(only=["E1", "E5"], processes=1)
        assert ok
        by_exp = {(r["experiment"], r["backend"]) for r in rows}
        # E1 declares the backend axis → two runs; E5 has one canonical path.
        assert ("E1", "reference") in by_exp and ("E1", "batched") in by_exp
        assert ("E5", "reference") in by_exp and ("E5", "batched") not in by_exp
        assert all(r["status"] == "ok" for r in rows)

    def test_smoke_unknown_only_filter_fails(self):
        from repro.experiments.smoke import run_plan_smoke

        rows, ok = run_plan_smoke(only=["E99"], processes=1)
        assert not ok
        assert rows and rows[0]["status"].startswith("error: unknown experiment")

    def test_smoke_only_filter_strips_whitespace(self):
        from repro.experiments.smoke import run_plan_smoke

        rows, ok = run_plan_smoke(only=[" e5 "], processes=1)
        assert ok and {r["experiment"] for r in rows} == {"E5"}


class TestFamilyVocabulary:
    def test_canonical_degree_matches_runner_alias(self):
        assert R._regular_degree is canonical_degree
        assert canonical_degree(1024) == 100

    def test_family_spec_defaults(self):
        fam, _builder, params = family_spec({"n": 256})
        assert fam == "regular" and params["degree"] == canonical_degree(256)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            family_spec({"n": 64, "family": "hypercube"})
