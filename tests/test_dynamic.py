"""Tests for the dynamic (online arrivals + churn) extension."""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.batch import available_kernels
from repro.dynamic import (
    BatchArrivals,
    PoissonArrivals,
    RewireChurn,
    run_dynamic_saer,
)
from repro.errors import ProtocolConfigError
from repro.graphs import trust_subsets


@pytest.fixture(scope="module")
def dyn_graph():
    return trust_subsets(128, 128, 12, seed=55)


class TestArrivalProcesses:
    def test_poisson_mean(self):
        rng = np.random.default_rng(0)
        proc = PoissonArrivals(rate_per_client=0.5)
        totals = [proc.sample(rng, 100, t).sum() for t in range(200)]
        assert abs(np.mean(totals) - 50.0) < 5.0
        assert proc.expected_per_round(100) == 50.0

    def test_poisson_zero_rate(self):
        rng = np.random.default_rng(0)
        assert PoissonArrivals(0.0).sample(rng, 10, 0).sum() == 0

    def test_poisson_negative_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-0.1)

    def test_batch_period(self):
        rng = np.random.default_rng(0)
        proc = BatchArrivals(batch_size=30, period=3)
        assert proc.sample(rng, 10, 0).sum() == 30
        assert proc.sample(rng, 10, 1).sum() == 0
        assert proc.sample(rng, 10, 3).sum() == 30
        assert proc.expected_per_round(10) == 10.0

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            BatchArrivals(-1)
        with pytest.raises(ValueError):
            BatchArrivals(1, period=0)


class TestChurn:
    def test_preserves_degrees(self, dyn_graph):
        rng = np.random.default_rng(1)
        lists = [dyn_graph.neighbors_of_client(v).copy() for v in range(dyn_graph.n_clients)]
        degrees = [len(x) for x in lists]
        churn = RewireChurn(rate=1.0)
        churn.apply(rng, lists, dyn_graph.n_servers)
        assert [len(x) for x in lists] == degrees
        for row in lists:
            assert np.unique(row).size == row.size  # still distinct
            assert row.min() >= 0 and row.max() < dyn_graph.n_servers

    def test_zero_rate_no_op(self, dyn_graph):
        rng = np.random.default_rng(2)
        lists = [dyn_graph.neighbors_of_client(v).copy() for v in range(8)]
        before = [x.copy() for x in lists]
        assert RewireChurn(0.0).apply(rng, lists, dyn_graph.n_servers) == 0
        for a, b in zip(before, lists):
            assert np.array_equal(a, b)

    def test_rate_one_rewires_all(self, dyn_graph):
        rng = np.random.default_rng(3)
        lists = [dyn_graph.neighbors_of_client(v).copy() for v in range(16)]
        assert RewireChurn(1.0).apply(rng, lists, dyn_graph.n_servers) == 16

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            RewireChurn(1.5)


class TestDynamicSimulator:
    def test_zero_arrivals_stays_empty(self, dyn_graph):
        res = run_dynamic_saer(dyn_graph, 2.0, 4, PoissonArrivals(0.0), horizon=20, seed=0)
        assert res.backlog.max() == 0
        assert res.latencies.size == 0
        assert res.is_metastable()

    def test_subcritical_is_metastable(self, dyn_graph):
        res = run_dynamic_saer(
            dyn_graph, 2.0, 4, PoissonArrivals(0.1), horizon=300, recovery=8, seed=1
        )
        assert res.is_metastable()
        assert res.backlog[-1] < 5 * res.offered_load

    def test_no_recovery_diverges_under_sustained_load(self, dyn_graph):
        """Without recovery every server eventually burns; backlog must
        grow linearly — the E12 control row."""
        res = run_dynamic_saer(
            dyn_graph, 2.0, 4, PoissonArrivals(0.5), horizon=300, recovery=None, seed=2
        )
        assert not res.is_metastable()
        assert res.burned_fraction[-1] == 1.0
        assert res.backlog[-1] > res.backlog[res.horizon // 2]

    def test_supercritical_diverges_even_with_recovery(self, dyn_graph):
        res = run_dynamic_saer(
            dyn_graph, 2.0, 4, PoissonArrivals(3.0), horizon=200, recovery=8, seed=3
        )
        assert not res.is_metastable()

    def test_latencies_recorded_and_nonnegative(self, dyn_graph):
        res = run_dynamic_saer(
            dyn_graph, 2.0, 4, PoissonArrivals(0.2), horizon=100, recovery=8, seed=4
        )
        assert res.latencies.size > 0
        assert res.latencies.min() >= 0
        stats = res.latency_stats()
        assert stats["p50"] <= stats["p95"]

    def test_churn_runs(self, dyn_graph):
        res = run_dynamic_saer(
            dyn_graph,
            2.0,
            4,
            PoissonArrivals(0.2),
            horizon=100,
            churn=RewireChurn(0.1),
            recovery=8,
            seed=5,
        )
        assert res.rewired_clients.sum() > 0
        assert res.is_metastable()

    def test_burst_arrivals_absorbed(self, dyn_graph):
        res = run_dynamic_saer(
            dyn_graph,
            2.0,
            4,
            BatchArrivals(batch_size=64, period=10),
            horizon=200,
            recovery=8,
            seed=6,
        )
        assert res.is_metastable()

    def test_summary_keys(self, dyn_graph):
        res = run_dynamic_saer(dyn_graph, 2.0, 4, PoissonArrivals(0.1), horizon=50, seed=7)
        s = res.summary()
        for k in ("final_backlog", "backlog_slope", "metastable", "latency_mean"):
            assert k in s

    def test_validation(self, dyn_graph):
        with pytest.raises(ProtocolConfigError):
            run_dynamic_saer(dyn_graph, 2.0, 4, PoissonArrivals(0.1), horizon=0)
        with pytest.raises(ProtocolConfigError):
            run_dynamic_saer(dyn_graph, 2.0, 4, PoissonArrivals(0.1), horizon=10, recovery=0)

    def test_deterministic_for_seed(self, dyn_graph):
        a = run_dynamic_saer(dyn_graph, 2.0, 4, PoissonArrivals(0.2), horizon=60, seed=8)
        b = run_dynamic_saer(dyn_graph, 2.0, 4, PoissonArrivals(0.2), horizon=60, seed=8)
        assert np.array_equal(a.backlog, b.backlog)
        assert np.array_equal(a.latencies, b.latencies)


# ---------------------------------------------------------------------------
# Golden bit-identity: the ServingState refactor vs the pre-refactor
# monolithic simulator (series captured at PR 5, before the serve layer).
# ---------------------------------------------------------------------------

_GOLDEN_PATH = Path(__file__).parent / "data" / "dynamic_golden.json"
with open(_GOLDEN_PATH) as _fh:
    _GOLDEN = json.load(_fh)


def _golden_arrivals(spec):
    kind = spec[0]
    if kind == "poisson":
        return PoissonArrivals(spec[1])
    if kind == "batch":
        return BatchArrivals(spec[1], spec[2])
    raise ValueError(f"unknown golden arrival spec {spec!r}")


class TestGoldenBitIdentity:
    """Every series of every golden case must match exactly — same RNG
    stream, same order, same integers — under every kernel gate.  The
    E12 control rows (``e12_*``) are among the cases, so the plan
    goldens cannot move either."""

    @pytest.mark.parametrize("kernel", available_kernels())
    @pytest.mark.parametrize("name", sorted(_GOLDEN))
    def test_bit_identical_to_pre_refactor(self, name, kernel):
        case = _GOLDEN[name]
        cfg = case["config"]
        # config.k is null for cases that used the canonical degree; the
        # resolved value is recorded at the case's top level either way.
        graph = trust_subsets(cfg["n"], cfg["n"], case["k"], seed=cfg["seed_graph"])
        res = run_dynamic_saer(
            graph,
            cfg["c"],
            cfg["d"],
            _golden_arrivals(cfg["arrivals"]),
            cfg["horizon"],
            churn=RewireChurn(cfg["churn"]) if cfg["churn"] else None,
            recovery=cfg["recovery"],
            seed=cfg["seed"],
            kernel=kernel,
        )
        for series in (
            "backlog",
            "arrivals",
            "assigned",
            "rewired_clients",
            "latencies",
        ):
            got = getattr(res, series if series != "arrivals" else "arrivals")
            assert got.tolist() == case[series], f"{name}: {series} diverged"
        assert res.burned_fraction.tolist() == pytest.approx(case["burned_fraction"])
        assert res.dropped == case["dropped"]
        assert res.offered_load == pytest.approx(case["offered_load"])


class TestSummaryConsistency:
    """The summary() normalization satellite: uniform quantile rounding
    and well-defined horizon=1 / empty-series corners."""

    def test_latency_quantiles_all_rounded(self, dyn_graph):
        res = run_dynamic_saer(
            dyn_graph, 2.0, 4, PoissonArrivals(0.3), horizon=80, recovery=8, seed=21
        )
        s = res.summary()
        for key in ("latency_mean", "latency_p50", "latency_p95", "latency_p99"):
            assert s[key] == round(s[key], 3), key
        assert s["latency_p50"] <= s["latency_p95"] <= s["latency_p99"]

    def test_horizon_one_consistent(self, dyn_graph):
        res = run_dynamic_saer(
            dyn_graph, 2.0, 4, BatchArrivals(32, 1), horizon=1, recovery=8, seed=22
        )
        s = res.summary()
        # With a single recorded round, "final" and "2nd half mean"
        # describe the same number.
        assert s["horizon"] == 1
        assert s["mean_backlog_2nd_half"] == float(s["final_backlog"])
        assert s["backlog_slope"] == 0.0
        assert isinstance(s["metastable"], bool)

    def test_empty_latencies_are_nan_not_crash(self, dyn_graph):
        res = run_dynamic_saer(
            dyn_graph, 2.0, 4, PoissonArrivals(0.0), horizon=3, seed=23
        )
        s = res.summary()
        assert math.isnan(s["latency_mean"])
        assert math.isnan(s["latency_p95"])
        assert s["final_backlog"] == 0
        assert s["mean_backlog_2nd_half"] == 0.0

    def test_second_half_window_is_shared(self, dyn_graph):
        res = run_dynamic_saer(
            dyn_graph, 2.0, 4, PoissonArrivals(0.4), horizon=9, recovery=8, seed=24
        )
        half = res.backlog[res.horizon // 2 :]
        assert res.summary()["mean_backlog_2nd_half"] == pytest.approx(half.mean())
