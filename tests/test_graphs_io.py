"""Round-trip tests for graph serialization."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graphs import random_regular_bipartite
from repro.graphs.io import load_edgelist, load_npz, save_edgelist, save_npz


def graphs_equal(a, b) -> bool:
    return (
        a.n_clients == b.n_clients
        and a.n_servers == b.n_servers
        and np.array_equal(a.client_indptr, b.client_indptr)
        and np.array_equal(a.client_indices, b.client_indices)
        and np.array_equal(a.server_indptr, b.server_indptr)
        and np.array_equal(a.server_indices, b.server_indices)
    )


class TestNpz:
    def test_roundtrip(self, tmp_path):
        g = random_regular_bipartite(40, 7, seed=3)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        g2 = load_npz(path)
        assert graphs_equal(g, g2)
        assert g2.name == g.name

    def test_load_validates(self, tmp_path):
        g = random_regular_bipartite(10, 3, seed=0)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        # corrupt: rewrite with a broken indices array
        data = dict(np.load(path, allow_pickle=False))
        data["client_indices"] = data["client_indices"].copy()
        data["client_indices"][0] = 99
        np.savez_compressed(path, **data)
        with pytest.raises(GraphValidationError):
            load_npz(path)

    def test_version_check(self, tmp_path):
        g = random_regular_bipartite(10, 3, seed=0)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(GraphValidationError):
            load_npz(path)


class TestEdgelist:
    def test_roundtrip(self, tmp_path):
        g = random_regular_bipartite(25, 4, seed=7)
        path = tmp_path / "g.edges"
        save_edgelist(g, path)
        g2 = load_edgelist(path)
        assert graphs_equal(g, g2)
        assert g2.name == g.name

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1\n1 0\n")
        with pytest.raises(GraphValidationError):
            load_edgelist(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# n_clients=2 n_servers=2\n\n0 0\n\n1 1\n")
        g = load_edgelist(path)
        assert g.n_edges == 2


class TestGraphCache:
    def test_build_then_hit(self, tmp_path):
        from repro.graphs.io import cached_graph
        from repro.graphs import trust_subsets

        calls = []

        def builder(**kw):
            calls.append(kw)
            return trust_subsets(**kw)

        params = {"n_clients": 30, "n_servers": 30, "k": 5}
        a = cached_graph(builder, "trust", params, 7, tmp_path)
        b = cached_graph(builder, "trust", params, 7, tmp_path)
        assert len(calls) == 1  # second call served from disk
        assert graphs_equal(a, b)
        assert len(list(tmp_path.glob("trust-*.npz"))) == 1

    def test_distinct_keys_per_params_and_seed(self, tmp_path):
        from repro.graphs.io import graph_cache_key

        k1 = graph_cache_key("trust", {"n": 10, "k": 3}, 1)
        k2 = graph_cache_key("trust", {"n": 10, "k": 4}, 1)
        k3 = graph_cache_key("trust", {"n": 10, "k": 3}, 2)
        assert len({k1, k2, k3}) == 3

    def test_seed_sequence_keys_stable_and_distinct(self):
        from repro.graphs.io import graph_cache_key

        root = np.random.SeedSequence(5)
        a, b = root.spawn(2)
        ka = graph_cache_key("er", {"n": 4}, a)
        ka2 = graph_cache_key("er", {"n": 4}, np.random.SeedSequence(5).spawn(2)[0])
        kb = graph_cache_key("er", {"n": 4}, b)
        assert ka == ka2
        assert ka != kb

    def test_uncacheable_seed_builds_fresh(self, tmp_path):
        from repro.graphs.io import cached_graph, graph_cache_key
        from repro.graphs import trust_subsets

        assert graph_cache_key("trust", {}, None) is None
        g = cached_graph(
            trust_subsets, "trust", {"n_clients": 8, "n_servers": 8, "k": 2}, None, tmp_path
        )
        assert g.n_edges == 16
        assert list(tmp_path.glob("*.npz")) == []

    def test_no_cache_dir_builds_fresh(self):
        from repro.graphs.io import cached_graph
        from repro.graphs import trust_subsets

        g = cached_graph(
            trust_subsets, "trust", {"n_clients": 8, "n_servers": 8, "k": 2}, 3, None
        )
        assert g.n_edges == 16

    def test_cached_load_matches_fresh_build(self, tmp_path):
        from repro.graphs.io import cached_graph
        from repro.graphs import random_regular_bipartite

        params = {"n": 40, "degree": 6}
        fresh = random_regular_bipartite(**params, seed=11)
        cached_graph(random_regular_bipartite, "regular", params, 11, tmp_path)
        loaded = cached_graph(random_regular_bipartite, "regular", params, 11, tmp_path)
        assert graphs_equal(fresh, loaded)
        assert loaded.name == fresh.name

    def test_entry_gets_checksum_sidecar(self, tmp_path):
        from repro.graphs import trust_subsets
        from repro.graphs.io import cached_graph

        params = {"n_clients": 8, "n_servers": 8, "k": 2}
        cached_graph(trust_subsets, "trust", params, 3, tmp_path)
        (npz,) = tmp_path.glob("trust-*.npz")
        sidecar = tmp_path / (npz.name + ".sha256")
        assert sidecar.exists()
        import hashlib

        assert sidecar.read_text().strip() == hashlib.sha256(npz.read_bytes()).hexdigest()

    def test_corrupt_entry_regenerated_not_crashed(self, tmp_path):
        from repro.graphs import trust_subsets
        from repro.graphs.io import cached_graph

        params = {"n_clients": 8, "n_servers": 8, "k": 2}
        first = cached_graph(trust_subsets, "trust", params, 3, tmp_path)
        (npz,) = tmp_path.glob("trust-*.npz")
        npz.write_bytes(b"truncated garbage")  # bit rot / torn write
        with pytest.warns(UserWarning, match="checksum"):
            again = cached_graph(trust_subsets, "trust", params, 3, tmp_path)
        assert graphs_equal(first, again)
        # The bad entry was evicted and rewritten: a third call is a
        # clean, warning-free hit.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            third = cached_graph(trust_subsets, "trust", params, 3, tmp_path)
        assert graphs_equal(first, third)

    def test_unreadable_entry_without_sidecar_regenerated(self, tmp_path):
        from repro.graphs import trust_subsets
        from repro.graphs.io import cached_graph

        params = {"n_clients": 8, "n_servers": 8, "k": 2}
        first = cached_graph(trust_subsets, "trust", params, 3, tmp_path)
        (npz,) = tmp_path.glob("trust-*.npz")
        (tmp_path / (npz.name + ".sha256")).unlink()  # pre-checksum-era entry
        npz.write_bytes(b"not an npz")
        with pytest.warns(UserWarning, match="unreadable"):
            again = cached_graph(trust_subsets, "trust", params, 3, tmp_path)
        assert graphs_equal(first, again)
