"""Round-trip tests for graph serialization."""

import numpy as np
import pytest

from repro.errors import GraphValidationError
from repro.graphs import random_regular_bipartite
from repro.graphs.io import load_edgelist, load_npz, save_edgelist, save_npz


def graphs_equal(a, b) -> bool:
    return (
        a.n_clients == b.n_clients
        and a.n_servers == b.n_servers
        and np.array_equal(a.client_indptr, b.client_indptr)
        and np.array_equal(a.client_indices, b.client_indices)
        and np.array_equal(a.server_indptr, b.server_indptr)
        and np.array_equal(a.server_indices, b.server_indices)
    )


class TestNpz:
    def test_roundtrip(self, tmp_path):
        g = random_regular_bipartite(40, 7, seed=3)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        g2 = load_npz(path)
        assert graphs_equal(g, g2)
        assert g2.name == g.name

    def test_load_validates(self, tmp_path):
        g = random_regular_bipartite(10, 3, seed=0)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        # corrupt: rewrite with a broken indices array
        data = dict(np.load(path, allow_pickle=False))
        data["client_indices"] = data["client_indices"].copy()
        data["client_indices"][0] = 99
        np.savez_compressed(path, **data)
        with pytest.raises(GraphValidationError):
            load_npz(path)

    def test_version_check(self, tmp_path):
        g = random_regular_bipartite(10, 3, seed=0)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(GraphValidationError):
            load_npz(path)


class TestEdgelist:
    def test_roundtrip(self, tmp_path):
        g = random_regular_bipartite(25, 4, seed=7)
        path = tmp_path / "g.edges"
        save_edgelist(g, path)
        g2 = load_edgelist(path)
        assert graphs_equal(g, g2)
        assert g2.name == g.name

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1\n1 0\n")
        with pytest.raises(GraphValidationError):
            load_edgelist(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# n_clients=2 n_servers=2\n\n0 0\n\n1 1\n")
        g = load_edgelist(path)
        assert g.n_edges == 2
