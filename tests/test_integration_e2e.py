"""End-to-end integration: the full pipeline a study would run.

graph generation → serialization round-trip → parallel Monte-Carlo sweep
→ aggregation → scaling fit → formatted table.  Exercises the seams
between subsystems that the unit tests cover in isolation.
"""

import numpy as np

import repro
from repro.analysis import fit_powerlaw, format_table, load_stats
from repro.graphs.io import load_npz, save_npz
from repro.parallel import ParameterGrid, run_sweep, summarize


def _trial(point, seed_seq, trial):
    g_seed, p_seed = seed_seq.spawn(2)
    g = repro.graphs.trust_subsets(point["n"], point["n"], point["k"], seed=g_seed)
    res = repro.run_saer(g, point["c"], point["d"], seed=p_seed)
    stats = load_stats(res.loads, capacity=res.params.capacity)
    return {
        "completed": res.completed,
        "rounds": res.rounds,
        "work": res.work,
        "max_load": res.max_load,
        "gini": stats.gini,
    }


class TestEndToEnd:
    def test_full_pipeline(self, tmp_path):
        # 1. graph round-trips through disk unchanged
        g = repro.graphs.random_regular_bipartite(128, 49, seed=5)
        path = tmp_path / "workload.npz"
        save_npz(g, path)
        g2 = load_npz(path)
        assert np.array_equal(g.client_indices, g2.client_indices)

        # 2. the reloaded graph produces the identical run for a seed
        a = repro.run_saer(g, 1.5, 4, seed=9)
        b = repro.run_saer(g2, 1.5, 4, seed=9)
        assert a.rounds == b.rounds and np.array_equal(a.loads, b.loads)

        # 3. parallel sweep over n with per-trial independence
        grid = ParameterGrid(n=[64, 128, 256], k=[36], c=[2.0], d=[4])
        recs = run_sweep(_trial, grid, n_trials=3, seed=11, processes=2)
        assert len(recs) == 9
        assert all(r["completed"] for r in recs)

        # 4. aggregation and scaling fit: work grows ~linearly in n
        rows = []
        for n in (64, 128, 256):
            bucket = [r for r in recs if r["n"] == n]
            rows.append(
                {
                    "n": n,
                    "work_mean": summarize([r["work"] for r in bucket])["mean"],
                    "rounds_median": summarize([r["rounds"] for r in bucket])["median"],
                    "gini_mean": round(summarize([r["gini"] for r in bucket])["mean"], 3),
                }
            )
        fit = fit_powerlaw([r["n"] for r in rows], [r["work_mean"] for r in rows])
        assert 0.8 <= fit.slope <= 1.2

        # 5. the table renders with every column
        table = format_table(rows, title="e2e")
        assert "work_mean" in table and "256" in table

    def test_pipeline_reproducible_across_process_counts(self):
        grid = ParameterGrid(n=[64], k=[36], c=[2.0], d=[4])
        serial = run_sweep(_trial, grid, n_trials=4, seed=13, processes=1)
        parallel = run_sweep(_trial, grid, n_trials=4, seed=13, processes=4)
        assert serial == parallel
