"""Property-based tests (hypothesis) on core invariants.

These sample small random topologies and parameters and assert the
invariants the paper's correctness rests on: load caps, ball
conservation, burned-set monotonicity, coupling dominance, tape
determinism, and graph structural consistency.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import TraceLevel, run_coupled, run_raes, run_saer
from repro.core.config import RunOptions
from repro.graphs import BipartiteGraph, random_regular_bipartite, trust_subsets
from repro.rng import RandomTape
from repro.theory import alpha_for, gamma_products, gamma_sequence

# Keep examples small: the suite must stay fast, and the invariants are
# size-independent.
_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_params(draw):
    n = draw(st.integers(min_value=8, max_value=48))
    degree = draw(st.integers(min_value=2, max_value=min(n, 10)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, degree, seed


@st.composite
def protocol_params(draw):
    c = draw(st.floats(min_value=1.0, max_value=8.0, allow_nan=False))
    d = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return c, d, seed


class TestGraphProperties:
    @_settings
    @given(graph_params())
    def test_regular_generator_structure(self, params):
        n, degree, seed = params
        g = random_regular_bipartite(n, degree, seed=seed)
        assert np.all(g.client_degrees == degree)
        assert np.all(g.server_degrees == degree)
        g.validate()  # full CSR + cross-direction consistency

    @_settings
    @given(graph_params())
    def test_trust_generator_structure(self, params):
        n, degree, seed = params
        g = trust_subsets(n, n, degree, seed=seed)
        assert np.all(g.client_degrees == degree)
        assert int(g.server_degrees.sum()) == n * degree
        g.validate()

    @_settings
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=0,
            max_size=40,
            unique=True,
        )
    )
    def test_from_edges_roundtrip(self, edges):
        g = BipartiteGraph.from_edges(8, 8, edges)
        assert g.n_edges == len(edges)
        back = {(int(v), int(u)) for v, u in g.edges()}
        assert back == set(edges)
        g.validate()


class TestProtocolInvariants:
    @_settings
    @given(graph_params(), protocol_params())
    def test_saer_invariants(self, gparams, pparams):
        n, degree, gseed = gparams
        c, d, pseed = pparams
        g = random_regular_bipartite(n, degree, seed=gseed)
        res = run_saer(g, c, d, seed=pseed, options=RunOptions(max_rounds=80))
        cap = res.params.capacity
        # 1. load cap is unconditional
        assert res.max_load <= cap
        assert res.loads.max(initial=0) <= cap
        # 2. ball conservation
        assert res.assigned_balls + res.alive_balls == res.total_balls
        assert int(res.loads.sum()) == res.assigned_balls
        # 3. completion semantics
        if res.completed:
            assert res.alive_balls == 0
        # 4. work accounting: 2 messages per request, >= one round trip/ball
        assert res.work % 2 == 0
        assert res.work >= 2 * min(res.total_balls, res.assigned_balls)

    @_settings
    @given(graph_params(), protocol_params())
    def test_raes_invariants(self, gparams, pparams):
        n, degree, gseed = gparams
        c, d, pseed = pparams
        g = random_regular_bipartite(n, degree, seed=gseed)
        res = run_raes(g, c, d, seed=pseed, options=RunOptions(max_rounds=80))
        assert res.max_load <= res.params.capacity
        assert res.assigned_balls + res.alive_balls == res.total_balls

    @_settings
    @given(graph_params(), protocol_params())
    def test_burned_monotone_and_s_le_k(self, gparams, pparams):
        n, degree, gseed = gparams
        c, d, pseed = pparams
        g = random_regular_bipartite(n, degree, seed=gseed)
        res = run_saer(
            g, c, d, seed=pseed, options=RunOptions(max_rounds=60), trace=TraceLevel.FULL
        )
        blocked = np.asarray(res.trace.blocked_total)
        assert np.all(np.diff(blocked) >= 0)
        assert np.all(
            np.asarray(res.trace.s_t) <= np.asarray(res.trace.k_t) + 1e-9
        )

    @_settings
    @given(graph_params(), protocol_params())
    def test_tape_determinism(self, gparams, pparams):
        n, degree, gseed = gparams
        c, d, pseed = pparams
        g = random_regular_bipartite(n, degree, seed=gseed)
        tape = RandomTape(seed=pseed)
        a = run_saer(g, c, d, tape=tape, options=RunOptions(max_rounds=60))
        tape.rewind()
        b = run_saer(g, c, d, tape=tape, options=RunOptions(max_rounds=60))
        assert a.rounds == b.rounds and a.work == b.work
        assert np.array_equal(a.loads, b.loads)


class TestCouplingProperty:
    @_settings
    @given(graph_params(), protocol_params())
    def test_dominance_always(self, gparams, pparams):
        """Corollary 2's pathwise form: on ANY sampled graph and (c, d),
        the coupled RAES alive set is nested in SAER's, every round."""
        n, degree, gseed = gparams
        c, d, pseed = pparams
        g = random_regular_bipartite(n, degree, seed=gseed)
        cp = run_coupled(g, c, d, seed=pseed, options=RunOptions(max_rounds=60))
        assert cp.nested_every_round
        assert np.all(cp.alive_raes <= cp.alive_saer)


class TestRecurrenceProperties:
    @_settings
    @given(
        st.floats(min_value=8.0, max_value=256.0, allow_nan=False),
        st.integers(min_value=2, max_value=30),
    )
    def test_gamma_bounded_and_products_decay(self, c, t_max):
        alpha = alpha_for(c)
        gam = gamma_sequence(c, t_max)
        assert np.all(gam[1:] <= 1.0 / alpha + 1e-9)
        prods = gamma_products(c, t_max)
        # corrected Lemma-12 product bound (see recurrences docstring)
        for t in range(1, t_max + 1):
            assert prods[t] <= alpha ** (-(t - 1)) + 1e-9

    @_settings
    @given(st.floats(min_value=1.0, max_value=512.0, allow_nan=False))
    def test_gamma_limit_below_one_iff_decay(self, c):
        gam = gamma_sequence(c, 60)
        if c >= 8.0:
            # regime with α >= 2: sequence stays below 1/2
            assert gam[-1] <= 0.5 + 1e-9
        assert np.all(gam >= 0)
