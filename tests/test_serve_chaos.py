"""Chaos tests: checkpoint/restore, kill-and-resume, and self-healing.

The contracts under test:

* :meth:`ServingState.checkpoint` / :meth:`SaerService.checkpoint` are
  *complete*: a restored system continues with accounting bit-identical
  to one that was never interrupted — including mid-flight balls, fault
  schedules, quarantine, and the protocol RNG stream.
* The self-healing path (retry backoff + health quarantine + brownout
  shedding) recovers ≥95% assignment when 10% of servers crash
  mid-replay over real TCP.
* Quarantine never strands a routable ball (hypothesis property pinned
  against :meth:`ServingState._refilter`'s guard).
"""

import asyncio
import json
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import CheckpointError
from repro.faults import FaultSchedule, FaultSpec, HealthPolicy
from repro.graphs import trust_subsets
from repro.serve import SaerService, ServeConfig, ServingState, serve_tcp
from repro.serve.loadgen import (
    RetryPolicy,
    build_report,
    check_report,
    make_arrivals,
    run_chaos,
    sample_trace,
)
from repro.serve.protocol import REASON_BROWNOUT, Retry


@pytest.fixture()
def graph():
    return trust_subsets(128, 128, 12, seed=4)


def _state(graph, **kw):
    kw.setdefault("recovery", 8)
    kw.setdefault("seed", 9)
    kw.setdefault("track_tags", True)
    return ServingState(graph, 2.0, 4, **kw)


def _drive(svc, trace):
    """Driven-mode replay: submit each round's counts, then run the round."""
    for counts in trace:
        for client in np.nonzero(counts)[0].tolist():
            svc.submit(int(client), int(counts[client]))
        svc.run_round()


def _drain(svc, limit=500):
    rounds = 0
    while svc.in_flight and rounds < limit:
        svc.run_round()
        rounds += 1
    return rounds


def _accounting(svc):
    s = svc.state
    return {
        "round_no": s.round_no,
        "assigned_total": s.assigned_total,
        "dropped": s.dropped,
        "backlog": s.backlog,
        "byz_absorbed": s.byz_absorbed,
        "cum_received": s.cum_received.copy(),
        "burned": s.burned.copy(),
        "burn_clock": s.burn_clock.copy(),
    }


def _assert_same_accounting(a, b):
    for key in ("round_no", "assigned_total", "dropped", "backlog", "byz_absorbed"):
        assert a[key] == b[key], key
    for key in ("cum_received", "burned", "burn_clock"):
        assert np.array_equal(a[key], b[key]), key


class TestStateCheckpoint:
    def test_round_trip_bit_identical(self, graph, tmp_path):
        """Continue vs save/load/continue produce identical route outcomes."""
        sch = FaultSchedule(
            (FaultSpec("crash", 0.15, start=3), FaultSpec("byz_server", 0.1)),
            seed=7,
        )
        cont = _state(graph, faults=sch, track_tags=False)
        rng = np.random.default_rng(1)
        trace = [rng.poisson(0.3, graph.n_clients).astype(np.int64) for _ in range(20)]
        for counts in trace[:10]:
            cont.round_begin()
            cont.admit_counts(counts)
            cont.route()
        path = tmp_path / "state.ckpt"
        cont.save(path)
        rest = ServingState.load(path)
        for counts in trace[10:]:
            for state in (cont, rest):
                state.round_begin()
                state.admit_counts(counts)
            a, b = cont.route(), rest.route()
            assert a.assigned == b.assigned
            assert a.backlog == b.backlog
            assert np.array_equal(a.latencies, b.latencies)
            assert np.array_equal(a.assigned_servers, b.assigned_servers)
        assert cont.assigned_total == rest.assigned_total
        assert cont.byz_absorbed == rest.byz_absorbed
        assert np.array_equal(cont.cum_received, rest.cum_received)

    def test_checkpoint_is_picklable_with_quarantine(self, graph):
        state = _state(graph)
        state.set_quarantine([0, 1, 2])
        ckpt = pickle.loads(pickle.dumps(state.checkpoint()))
        rest = ServingState.from_checkpoint(ckpt)
        assert rest.quarantined_count == 3
        rest.readmit([0, 1, 2])
        assert rest.quarantined is None  # collapsed back to the fast path

    def test_rejects_garbage(self):
        with pytest.raises(CheckpointError):
            ServingState.from_checkpoint("junk")
        with pytest.raises(CheckpointError):
            ServingState.from_checkpoint({"not": "a checkpoint"})

    def test_rejects_version_skew(self, graph):
        ckpt = _state(graph).checkpoint()
        ckpt["version"] = 999
        with pytest.raises(CheckpointError):
            ServingState.from_checkpoint(ckpt)


class TestServiceCheckpoint:
    def test_killed_and_restored_matches_unkilled(self, graph):
        """The ISSUE's acceptance bar: a service checkpointed mid-flight
        and rebuilt finishes with accounting identical to one that was
        never interrupted."""
        config = ServeConfig(max_batch=1 << 30, max_wait_rounds=16)
        # A crash window forces an admitted-but-unassigned backlog, so
        # the checkpoint really carries mid-flight balls (both queued
        # and inside the state's ball table).
        sch = FaultSchedule((FaultSpec("crash", 0.4, start=4, end=12),), seed=5)
        control = SaerService(_state(graph, faults=sch), config)
        victim = SaerService(_state(graph, faults=sch), config)
        trace = sample_trace(make_arrivals("poisson", 0.6), graph.n_clients, 16, 6)

        _drive(control, trace)
        _drain(control)

        _drive(victim, trace[:8])
        for client in np.nonzero(trace[8])[0].tolist():
            victim.submit(int(client), int(trace[8][client]))
        assert victim.pending > 0  # queued balls at checkpoint time
        assert victim.state.n_alive > 0  # admitted backlog too
        ckpt = pickle.loads(pickle.dumps(victim.checkpoint()))
        restored = SaerService.from_checkpoint(ckpt, config)
        # Every admitted in-flight ball got a fresh future, so drain
        # accounting (timeout evictions included) matches the original.
        assert restored.in_flight == victim.in_flight
        restored.run_round()  # round 8's balls were already queued
        _drive(restored, trace[9:])
        _drain(restored)

        assert restored.in_flight == 0
        _assert_same_accounting(_accounting(control), _accounting(restored))

    def test_restored_tags_never_collide(self, graph):
        svc = SaerService(_state(graph), ServeConfig(max_batch=1 << 30))
        svc.submit(0, 5)
        ckpt = svc.checkpoint()
        restored = SaerService.from_checkpoint(ckpt, svc.config)
        before = set(restored._futures)
        restored.submit(1, 3)
        new = set(restored._futures) - before
        assert len(new) == 3 and not (new & before)

    def test_rejects_garbage(self):
        with pytest.raises(CheckpointError):
            SaerService.from_checkpoint("junk")
        with pytest.raises(CheckpointError):
            SaerService.from_checkpoint({"not": "a checkpoint"})

    def test_health_state_survives_restore(self, graph):
        policy = HealthPolicy(fail_streak=2, quarantine_rounds=8)
        config = ServeConfig(max_batch=1 << 30, health=policy)
        svc = SaerService(_state(graph), config)
        svc.state.set_quarantine([3, 4])
        svc._health.observe(
            np.full(graph.n_servers, 4, np.int64),
            np.full(graph.n_servers, 4, np.int64),
        )
        restored = SaerService.from_checkpoint(svc.checkpoint(), config)
        assert restored.state.quarantined_count == 2
        assert restored._health is not None
        a, b = restored._health.state(), svc._health.state()
        assert set(a) == set(b)
        for key in a:
            assert np.array_equal(a[key], b[key]), key


class TestTcpKillRestore:
    def test_tcp_kill_restore_accounting_identical(self, graph):
        """Kill the TCP server mid-replay, restore the service from its
        checkpoint behind a fresh listener, finish the replay: final
        accounting is bit-identical to the never-killed control.

        Rounds are driven manually (the tick is parked at 60 s) so the
        wall clock cannot perturb round boundaries; a ``ping`` barrier
        after each round's submissions guarantees the server admitted
        them before the round fires.
        """
        config = ServeConfig(tick=60.0, max_batch=1 << 30, max_wait_rounds=16)
        trace = sample_trace(make_arrivals("poisson", 0.25), graph.n_clients, 12, 3)

        async def submit_rounds(svc, port, part):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            rid = [10_000_000]

            async def barrier():
                rid[0] += 1
                writer.write(
                    (json.dumps({"op": "ping", "id": rid[0]}) + "\n").encode()
                )
                await writer.drain()
                while True:
                    msg = json.loads(await reader.readline())
                    if msg.get("pong") and msg.get("id") == rid[0]:
                        return

            for counts in part:
                for client in np.nonzero(counts)[0].tolist():
                    rid[0] += 1
                    writer.write(
                        (
                            json.dumps(
                                {
                                    "op": "assign",
                                    "client": int(client),
                                    "balls": int(counts[client]),
                                    "id": rid[0],
                                }
                            )
                            + "\n"
                        ).encode()
                    )
                await barrier()
                svc.run_round()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

        async def go():
            control = SaerService(_state(graph), config)
            victim = SaerService(_state(graph), config)

            ctl_server = await serve_tcp(control, "127.0.0.1", 0)
            ctl_port = ctl_server.sockets[0].getsockname()[1]
            vic_server = await serve_tcp(victim, "127.0.0.1", 0)
            vic_port = vic_server.sockets[0].getsockname()[1]

            await submit_rounds(control, ctl_port, trace)
            await submit_rounds(victim, vic_port, trace[:6])

            # Kill: checkpoint first (shutdown clears the pending queue),
            # then tear the listener and the old service down.
            ckpt = pickle.loads(pickle.dumps(victim.checkpoint()))
            vic_server.close()
            await vic_server.wait_closed()
            await victim.shutdown()

            restored = SaerService.from_checkpoint(ckpt, config)
            new_server = await serve_tcp(restored, "127.0.0.1", 0)
            new_port = new_server.sockets[0].getsockname()[1]
            await submit_rounds(restored, new_port, trace[6:])

            _drain(control)
            _drain(restored)

            for server, svc in ((ctl_server, control), (new_server, restored)):
                server.close()
                await server.wait_closed()
                await svc.shutdown()
            return _accounting(control), _accounting(restored)

        control_acc, restored_acc = asyncio.run(go())
        _assert_same_accounting(control_acc, restored_acc)


class TestChaosRecovery:
    def test_crash_10pct_recovers_assign_rate(self, graph):
        """The ISSUE's chaos bar: 10% of servers crash mid-replay over
        real TCP; client backoff + server quarantine recover ≥0.95
        assignment."""
        sch = FaultSchedule((FaultSpec("crash", 0.1, start=8),), seed=3)
        state = _state(graph, faults=sch)
        config = ServeConfig(
            tick=0.01,
            max_batch=1 << 30,
            max_wait_rounds=8,
            health=HealthPolicy(fail_streak=3, quarantine_rounds=256),
        )
        svc = SaerService(state, config)
        trace = sample_trace(make_arrivals("poisson", 0.3), graph.n_clients, 30, 6)
        retry = RetryPolicy(max_attempts=5, base_delay=1.0, max_delay=8.0, seed=2)

        run = asyncio.run(run_chaos(svc, trace, tick=0.01, settle_s=30.0, retry=retry))

        submitted = run["submitted"]
        assert submitted == sum(int(c.sum()) for c in trace)
        assert run["tally"]["assigned"] / submitted >= 0.95
        # The health loop actually fired on the corpses.
        assert run["stats"]["metrics"]["serve_quarantine_events_total"] > 0

        report = build_report("chaos", {}, {}, run)
        assert check_report(report, min_assign_rate=0.95, max_p95=None) == []


class TestBrownout:
    def test_shed_fraction_is_deterministic(self, graph):
        svc = SaerService(
            _state(graph),
            ServeConfig(max_batch=1 << 30, brownout_threshold=0.5, brownout_shed=0.5),
        )
        svc._brownout_active = True
        futs = svc.submit(0, 10)
        shed = [f for f in futs if f.done() and isinstance(f.result(), Retry)]
        assert len(futs) == 10 and len(shed) == 5
        assert all(f.result().reason == REASON_BROWNOUT for f in shed)

    def test_shed_accumulator_carries_fractions(self, graph):
        svc = SaerService(
            _state(graph),
            ServeConfig(max_batch=1 << 30, brownout_threshold=0.5, brownout_shed=0.5),
        )
        svc._brownout_active = True
        shed = 0
        for _ in range(4):  # 0.5 per ball: Bresenham sheds exactly every 2nd
            fut = svc.submit(0, 1)[0]
            shed += fut.done() and isinstance(fut.result(), Retry)
        assert shed == 2

    def test_latch_follows_burned_fraction(self, graph):
        # No recovery + a huge burst burns the whole fleet, which must
        # latch brownout; the healthy control round must not.
        svc = SaerService(
            _state(graph, recovery=None),
            ServeConfig(
                max_batch=1 << 30, brownout_threshold=0.3, brownout_shed=1.0
            ),
        )
        assert not svc._brownout_active
        for client in range(graph.n_clients):
            svc.submit(client, 40)
        svc.run_round()
        assert svc.state.burned_fraction > 0.3
        assert svc._brownout_active
        fut = svc.submit(0, 1)[0]
        assert fut.done() and fut.result().reason == REASON_BROWNOUT
        assert svc.stats()["brownout"] is True


class TestQuarantine:
    def test_quarantine_and_readmit_cycle(self, graph):
        state = _state(graph)
        original = [nl.copy() for nl in state.neighbor_lists]
        assert state.set_quarantine([5, 6]) == 2
        assert state.set_quarantine([5]) == 0  # idempotent
        assert state.quarantined_count == 2
        for nl in state.neighbor_lists:
            assert 5 not in nl and 6 not in nl
        assert state.readmit([5]) == 1
        assert state.readmit([5]) == 0
        assert state.readmit([6]) == 1
        assert state.quarantined is None  # fast path restored
        for a, b in zip(state.neighbor_lists, original):
            assert np.array_equal(a, b)

    def test_quarantine_bounds_checked(self, graph):
        state = _state(graph)
        with pytest.raises(ValueError):
            state.set_quarantine([graph.n_servers])
        state.set_quarantine([0])
        with pytest.raises(ValueError):
            state.readmit([-1])

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_quarantine_never_strands_a_routable_ball(self, data):
        """Property: whatever gets quarantined (in any number of waves),
        every client that could route a ball before still can."""
        n_s = data.draw(st.integers(min_value=2, max_value=16), label="n_servers")
        n_c = data.draw(st.integers(min_value=1, max_value=16), label="n_clients")
        k = data.draw(st.integers(min_value=1, max_value=n_s), label="degree")
        seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
        graph = trust_subsets(n_c, n_s, k, seed=seed)
        state = ServingState(graph, 2.0, 4, seed=0, track_tags=True)
        routable = np.flatnonzero(state.degs > 0)
        waves = data.draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=n_s - 1),
                    min_size=1,
                    max_size=n_s,
                ),
                min_size=1,
                max_size=4,
            ),
            label="waves",
        )
        for wave in waves:
            if data.draw(st.booleans(), label="readmit_some"):
                state.readmit(np.asarray(wave[:1], dtype=np.int64))
            state.set_quarantine(np.asarray(wave, dtype=np.int64))
            assert np.all(state.degs[routable] > 0)
