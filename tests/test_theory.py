"""Tests for the theory module: recurrences, bounds, concentration."""

import math

import numpy as np
import pytest

from repro.theory import (
    alpha_for,
    c_min_almost_regular,
    c_min_regular,
    chernoff_upper_tail,
    chernoff_upper_tail_threshold,
    completion_horizon,
    delta_sequence,
    gamma_products,
    gamma_sequence,
    lemma12_holds,
    min_degree_required,
    mobd_tail,
    one_choice_max_load_estimate,
    stage1_length,
    whp_failure_bound,
    work_bound,
)
from repro.theory.concentration import binomial_upper_tail
from repro.theory.recurrences import stage1_length_bound


class TestGammaSequence:
    def test_base_case(self):
        gam = gamma_sequence(c=32, t_max=0)
        assert gam[0] == 1.0

    def test_gamma1_closed_form(self):
        """γ_1 = (2/c)·Π_{j<1} γ_j = 2/c (eq. 11)."""
        for c in (8.0, 16.0, 32.0, 100.0):
            assert gamma_sequence(c, 1)[1] == pytest.approx(2.0 / c)

    def test_increment_form_eq21(self):
        """γ_{t+1} = γ_t + (2/c)·Π_{j≤t} γ_j (eq. 21)."""
        c = 32.0
        gam = gamma_sequence(c, 6)
        for t in range(1, 6):
            assert gam[t + 1] == pytest.approx(gam[t] + (2 / c) * np.prod(gam[: t + 1]))

    def test_monotone_increasing(self):
        gam = gamma_sequence(32, 20)
        assert np.all(np.diff(gam[1:]) >= -1e-15)

    def test_ratio_parameter_scales_gamma1(self):
        assert gamma_sequence(32, 1, ratio=2.0)[1] == pytest.approx(4.0 / 32.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gamma_sequence(0, 5)
        with pytest.raises(ValueError):
            gamma_sequence(8, -1)


class TestGammaProducts:
    def test_p0_and_p1(self):
        prods = gamma_products(32, 3)
        assert prods[0] == 1.0
        assert prods[1] == 1.0  # Π over j<1 is γ_0 = 1
        assert prods[2] == pytest.approx(gamma_sequence(32, 1)[1])

    def test_products_decay_geometrically(self):
        """Lemma 12 (iii), corrected quantifier: Π_{j<t} γ_j <= α^{-t}
        for t >= 2 (the paper states t >= 1, an off-by-one — at t=1 the
        product is γ_0 = 1; see lemma12_holds docstring)."""
        c = 32.0
        alpha = alpha_for(c)
        prods = gamma_products(c, 10)
        for t in range(2, 11):
            assert prods[t] <= alpha ** (-t) + 1e-12
        # at t=2 the bound is exactly tight: γ_1 = 2/c = α^{-2}
        assert prods[2] == pytest.approx(alpha**-2)
        # the all-t corrected form
        for t in range(1, 11):
            assert prods[t] <= alpha ** (-(t - 1)) + 1e-12


class TestLemma12:
    def test_alpha_formula(self):
        assert alpha_for(32.0) == pytest.approx(4.0)
        assert alpha_for(8.0) == pytest.approx(2.0)
        assert alpha_for(32.0, ratio=2.0) == pytest.approx(math.sqrt(8.0))

    def test_holds_at_paper_c(self):
        assert lemma12_holds(32.0, 50)
        assert lemma12_holds(100.0, 50)

    def test_holds_at_boundary(self):
        assert lemma12_holds(8.0, 50)

    def test_fails_below_boundary(self):
        assert not lemma12_holds(7.0, 50)

    def test_gamma_bounded_by_inverse_alpha(self):
        c = 32.0
        gam = gamma_sequence(c, 40)
        assert np.all(gam[1:] <= 1.0 / alpha_for(c) + 1e-12)

    def test_ratio_variant(self):
        # c >= 32ρ keeps the general-case sequence in regime
        assert lemma12_holds(64.0, 30, ratio=2.0)
        assert not lemma12_holds(8.0, 30, ratio=2.0)


class TestStage1Length:
    def test_definition_minimality(self):
        """T is the *smallest* t with d·Δ·Π_{j<t} γ_j <= 12 log n."""
        n, d, delta, c = 4096, 4, 144, 32.0
        T = stage1_length(n, d, delta, c)
        prods = gamma_products(c, T + 1)
        target = 12 * math.log2(n)
        assert d * delta * prods[T] <= target
        if T > 1:
            assert d * delta * prods[T - 1] > target

    def test_closed_form_bound(self):
        """Lemma 13: T <= (1/2)·log(dΔ/(12 log n)) for c >= 32."""
        n, d, delta = 4096, 4, 144
        T = stage1_length(n, d, delta, 32.0)
        assert T <= max(1.0, stage1_length_bound(n, d, delta)) + 1

    def test_small_mass_gives_t1(self):
        assert stage1_length(1024, 1, 2, 32.0) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            stage1_length(1, 1, 10, 32.0)


class TestDeltaSequence:
    def test_formula(self):
        n, d, delta, c = 1024, 4, 100, 72.0
        seq = delta_sequence(n, d, delta, c, t_start=2, t_end=4)
        expect = 0.25 + 24 * 2 * math.log2(n) / (c * d * delta)
        assert seq[0] == pytest.approx(expect)
        assert seq.size == 3

    def test_below_half_under_paper_c(self):
        """Lemma 14 needs δ_t <= 1/2 for t <= 3 log n; guaranteed when
        c >= 288/(η d) and Δ >= η log² n."""
        n, d = 1024, 4
        delta = math.ceil(math.log2(n) ** 2)
        eta = delta / math.log2(n) ** 2
        c = c_min_regular(eta, d)
        horizon = completion_horizon(n)
        seq = delta_sequence(n, d, delta, c, t_start=1, t_end=horizon)
        assert np.all(seq <= 0.5 + 1e-12)

    def test_bad_range(self):
        with pytest.raises(ValueError):
            delta_sequence(64, 1, 10, 32.0, t_start=5, t_end=4)


class TestBounds:
    def test_c_min_regular(self):
        assert c_min_regular(1.0, 4) == max(32.0, 288.0 / 4)
        assert c_min_regular(100.0, 4) == 32.0

    def test_c_min_almost_regular(self):
        assert c_min_almost_regular(1.0, 4, rho=1.0) == max(32.0, 72.0)
        assert c_min_almost_regular(100.0, 4, rho=2.0) == 64.0
        with pytest.raises(ValueError):
            c_min_almost_regular(1.0, 4, rho=0.5)

    def test_completion_horizon_base2(self):
        assert completion_horizon(1024) == 30
        assert completion_horizon(2) == 3
        assert completion_horizon(1) == 1

    def test_min_degree(self):
        assert min_degree_required(1024, 1.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            min_degree_required(1024, -1.0)

    def test_work_bound(self):
        assert work_bound(100, 4) == 1600.0
        with pytest.raises(ValueError):
            work_bound(0, 1)

    def test_whp_budget(self):
        assert whp_failure_bound(1000) == pytest.approx(1e-6)
        assert whp_failure_bound(1) == 1.0


class TestConcentration:
    def test_chernoff_value(self):
        assert chernoff_upper_tail(30.0, 1.0) == pytest.approx(math.exp(-10.0))

    def test_chernoff_eps_range(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(10.0, 1.5)
        with pytest.raises(ValueError):
            chernoff_upper_tail(10.0, 0.0)

    def test_chernoff_threshold_inverse(self):
        mu = 100.0
        eps = chernoff_upper_tail_threshold(mu, 1e-4)
        assert chernoff_upper_tail(mu, eps) == pytest.approx(1e-4, rel=1e-6)

    def test_chernoff_threshold_infeasible(self):
        """Below Θ(log n) mass no ε <= 1 suffices — the reason the proof
        switches to Stage II."""
        assert chernoff_upper_tail_threshold(1.0, 1e-9) == math.inf

    def test_mobd_matches_mcdiarmid(self):
        # f with n coordinates, each Lipschitz 1, deviation M: e^{-2M²/n}
        assert mobd_tail(10.0, np.ones(100)) == pytest.approx(math.exp(-2.0))

    def test_mobd_zero_betas(self):
        assert mobd_tail(1.0, [0.0, 0.0]) == 0.0
        assert mobd_tail(0.0, [0.0]) == 1.0

    def test_one_choice_scale(self):
        est = one_choice_max_load_estimate(10**6)
        assert 4.0 < est < 8.0  # ln(1e6)/lnln(1e6) ≈ 5.26

    def test_binomial_tail_exact_small(self):
        # P(Bin(2, 0.5) >= 1) = 3/4
        assert binomial_upper_tail(2, 0.5, 1) == pytest.approx(0.75)
        assert binomial_upper_tail(2, 0.5, 0) == 1.0
        assert binomial_upper_tail(2, 0.5, 3) == 0.0
