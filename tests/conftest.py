"""Shared fixtures: small graphs sized so the whole suite stays fast."""

from __future__ import annotations

import pytest

from repro.graphs import (
    complete_bipartite,
    paper_extremal,
    random_regular_bipartite,
    trust_subsets,
)


@pytest.fixture(scope="session")
def regular_graph():
    """128×128 16-regular graph — the workhorse topology."""
    return random_regular_bipartite(n=128, degree=16, seed=12345)


@pytest.fixture(scope="session")
def small_regular_graph():
    """32×32 8-regular — for the slower agent-level tests."""
    return random_regular_bipartite(n=32, degree=8, seed=999)


@pytest.fixture(scope="session")
def trust_graph():
    """Godfrey-style random clusters, 128 clients, degree 12."""
    return trust_subsets(128, 128, 12, seed=777)


@pytest.fixture(scope="session")
def extremal_graph():
    """The paper's heavy-client / weak-server example, n=256."""
    return paper_extremal(256, eta=0.5, seed=4242)


@pytest.fixture(scope="session")
def dense_graph():
    """Complete bipartite 64×64 — the classic balls-into-bins setting."""
    return complete_bipartite(64, 64)
