"""Tests for ASCII plots and load-distribution statistics."""

import numpy as np
import pytest

from repro.analysis import histogram, load_stats, series_panel, sparkline


class TestSparkline:
    def test_length_capped_by_width(self):
        s = sparkline(range(1000), width=50)
        assert len(s) <= 50

    def test_flat_zero_series(self):
        assert set(sparkline([0, 0, 0])) == {" "}

    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3, 4], width=5)
        # non-decreasing character density
        ramp = " .:-=+*#%@"
        levels = [ramp.index(ch) for ch in s]
        assert levels == sorted(levels)
        assert levels[-1] == len(ramp) - 1  # max maps to densest char

    def test_empty(self):
        assert sparkline([]) == ""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sparkline([-1, 2])


class TestHistogram:
    def test_integer_loads_one_bin_each(self):
        out = histogram([0, 1, 1, 2, 2, 2], bins=10)
        lines = out.splitlines()
        # bins 0,1,2 plus the footer
        assert len(lines) == 4
        assert lines[2].strip().endswith("3")  # count of load-2

    def test_counts_sum(self):
        data = np.random.default_rng(0).integers(0, 5, 100)
        out = histogram(data)
        counts = [int(line.rsplit(" ", 1)[1]) for line in out.splitlines()[:-1]]
        assert sum(counts) == 100

    def test_empty(self):
        assert histogram([]) == "(no data)"


class TestSeriesPanel:
    def test_labels_and_rows(self):
        out = series_panel({"a": [1, 2, 3], "bb": [3, 2, 1]})
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].strip().startswith("a")
        assert "max=3" in lines[0]

    def test_empty(self):
        assert series_panel({}) == "(no series)"


class TestLoadStats:
    def test_uniform_loads(self):
        s = load_stats([3, 3, 3, 3], capacity=6)
        assert s.max_load == 3
        assert s.mean_load == 3.0
        assert s.imbalance == 1.0
        assert s.gini == pytest.approx(0.0, abs=1e-12)
        assert s.at_capacity_fraction == 0.0

    def test_concentrated_loads(self):
        s = load_stats([0, 0, 0, 12])
        assert s.max_load == 12
        assert s.imbalance == 4.0
        assert s.gini == pytest.approx(0.75)
        assert s.nonzero_servers == 1

    def test_at_capacity_fraction(self):
        s = load_stats([6, 6, 3, 0], capacity=6)
        assert s.at_capacity_fraction == 0.5

    def test_empty_and_zero(self):
        s = load_stats([])
        assert s.max_load == 0 and s.gini == 0.0
        z = load_stats([0, 0])
        assert z.imbalance == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            load_stats([[1, 2]])
        with pytest.raises(ValueError):
            load_stats([-1, 2])

    def test_as_dict(self):
        d = load_stats([1, 2, 3], capacity=4).as_dict()
        for key in ("max_load", "gini", "imbalance", "at_capacity_frac"):
            assert key in d

    def test_on_real_run(self, regular_graph):
        import repro

        res = repro.run_saer(regular_graph, 1.5, 4, seed=0)
        s = load_stats(res.loads, capacity=res.params.capacity)
        assert s.total_load == res.assigned_balls
        assert s.max_load == res.max_load
        assert 0.0 <= s.gini <= 1.0


class TestMetricSnapshots:
    def _spool(self, tmp_path, n=5):
        import json

        path = tmp_path / "snaps.ndjson"
        with open(path, "w") as fh:
            for i in range(n):
                fh.write(
                    json.dumps(
                        {
                            "seq": i,
                            "time": float(i),
                            "metrics": {
                                "serve_backlog": i * 10.0,
                                "serve_round_seconds": {"count": i, "p95": 0.01 * i},
                            },
                        }
                    )
                    + "\n"
                )
        return path

    def test_load_and_trajectory(self, tmp_path):
        from repro.analysis import load_metric_snapshots, metric_trajectory

        snaps = load_metric_snapshots(self._spool(tmp_path))
        assert len(snaps) == 5
        seq, vals = metric_trajectory(snaps, "serve_backlog")
        assert np.array_equal(seq, np.arange(5))
        assert np.array_equal(vals, np.arange(5) * 10.0)

    def test_histogram_needs_field(self, tmp_path):
        from repro.analysis import load_metric_snapshots, metric_trajectory

        snaps = load_metric_snapshots(self._spool(tmp_path))
        with pytest.raises(ValueError):
            metric_trajectory(snaps, "serve_round_seconds")
        _seq, p95 = metric_trajectory(snaps, "serve_round_seconds", field="p95")
        assert p95[-1] == pytest.approx(0.04)

    def test_torn_lines_skipped(self, tmp_path):
        from repro.analysis import load_metric_snapshots

        path = self._spool(tmp_path, n=3)
        with open(path, "a") as fh:
            fh.write('{"seq": 3, "time"')  # torn mid-write
        snaps = load_metric_snapshots(path)
        assert len(snaps) == 3
