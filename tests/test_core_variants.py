"""Tests for the §4 client-side variants: retry budgets and backoff."""

import numpy as np
import pytest

import repro
from repro.core import run_saer_with_backoff, run_saer_with_retry_budget
from repro.core.config import RunOptions
from repro.errors import ProtocolConfigError
from repro.graphs import random_regular_bipartite


class TestRetryBudget:
    def test_unlimited_budget_matches_plain_saer(self, regular_graph):
        tape = repro.RandomTape(seed=1)
        plain = repro.run_saer(regular_graph, 1.5, 4, tape=tape)
        tape.rewind()
        var = run_saer_with_retry_budget(regular_graph, 1.5, 4, budget=None, tape=tape)
        assert var.dropped_balls == 0
        assert var.run.rounds == plain.rounds
        assert var.run.work == plain.work
        assert np.array_equal(var.run.loads, plain.loads)

    def test_budget_one_drops_every_rejection(self):
        g = random_regular_bipartite(64, 16, seed=0)
        var = run_saer_with_retry_budget(g, 1.0, 4, budget=1, seed=2)
        # capacity == expected load: many rejections, each a drop
        assert var.run.completed  # settled: everything assigned or dropped
        assert var.dropped_balls > 0
        assert var.run.assigned_balls + var.dropped_balls == var.run.total_balls

    def test_settles_even_in_burnout_regime(self):
        """With a finite budget the protocol always terminates, even where
        plain SAER stalls forever (the c=1 burnout regime of E6)."""
        g = random_regular_bipartite(64, 16, seed=1)
        var = run_saer_with_retry_budget(
            g, 1.0, 4, budget=5, seed=3, options=RunOptions(max_rounds=100)
        )
        assert var.run.completed
        assert var.run.rounds < 100

    def test_larger_budget_drops_fewer(self):
        g = random_regular_bipartite(128, 32, seed=2)
        small = run_saer_with_retry_budget(g, 1.2, 4, budget=2, seed=4)
        large = run_saer_with_retry_budget(g, 1.2, 4, budget=20, seed=4)
        assert large.dropped_balls <= small.dropped_balls

    def test_load_cap_holds(self, regular_graph):
        var = run_saer_with_retry_budget(regular_graph, 1.5, 4, budget=3, seed=5)
        assert var.run.max_load <= var.run.params.capacity

    def test_bad_budget(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_saer_with_retry_budget(regular_graph, 2.0, 2, budget=0, seed=0)

    def test_summary_has_drop_count(self, regular_graph):
        var = run_saer_with_retry_budget(regular_graph, 1.5, 4, budget=3, seed=6)
        assert "dropped_balls" in var.summary()


class TestBackoff:
    def test_prob_one_assigns_everything(self, regular_graph):
        var = run_saer_with_backoff(regular_graph, 1.5, 4, retry_prob=1.0, seed=1)
        assert var.run.completed
        assert var.deferred_sends == 0

    def test_partial_prob_defers_sends(self, regular_graph):
        var = run_saer_with_backoff(regular_graph, 1.5, 4, retry_prob=0.5, seed=2)
        assert var.run.completed
        assert var.deferred_sends > 0

    def test_backoff_trades_rounds_for_collisions(self, regular_graph):
        """Lower retry probability ⇒ more rounds but no more total work
        than ~the plain run (each deferred send is a send not made)."""
        eager = run_saer_with_backoff(regular_graph, 1.5, 4, retry_prob=1.0, seed=3)
        lazy = run_saer_with_backoff(regular_graph, 1.5, 4, retry_prob=0.3, seed=3)
        assert lazy.run.rounds >= eager.run.rounds
        assert lazy.run.completed

    def test_load_cap_and_conservation(self, regular_graph):
        var = run_saer_with_backoff(regular_graph, 1.5, 4, retry_prob=0.5, seed=4)
        run = var.run
        assert run.max_load <= run.params.capacity
        assert run.assigned_balls + run.alive_balls == run.total_balls
        assert int(run.loads.sum()) == run.assigned_balls

    def test_deterministic_for_seed(self, regular_graph):
        a = run_saer_with_backoff(regular_graph, 1.5, 4, retry_prob=0.5, seed=7)
        b = run_saer_with_backoff(regular_graph, 1.5, 4, retry_prob=0.5, seed=7)
        assert a.run.rounds == b.run.rounds
        assert np.array_equal(a.run.loads, b.run.loads)

    def test_bad_prob(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_saer_with_backoff(regular_graph, 2.0, 2, retry_prob=0.0, seed=0)
        with pytest.raises(ProtocolConfigError):
            run_saer_with_backoff(regular_graph, 2.0, 2, retry_prob=1.5, seed=0)
