"""Tests for the trial-vectorized batched engine (`repro.batch`).

The load-bearing contract is *trial-for-trial bit-equivalence*: for
matching per-trial seeds, the batched engine must produce exactly the
results the reference engine (`repro.core.engine.run_protocol`) produces
— rounds, work, completion, max load, blocked servers, and the full
per-server load vector.  Everything else (results adapter, API
validation, backend plumbing) is secondary.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchedRaesPolicy,
    BatchedSaerPolicy,
    BatchResult,
    run_raes_batched,
    run_saer_batched,
    run_trials_batched,
)
from repro.core.config import ProtocolParams, RunOptions
from repro.core.engine import run_protocol
from repro.errors import NonTerminationError, ProtocolConfigError
from repro.graphs import BipartiteGraph, near_regular, random_regular_bipartite, trust_subsets
from repro.rng import spawn_seeds


def assert_trials_match_reference(graph, params, policy, seeds, demands=None, options=None):
    """Per-trial equality of every RunResult-visible field."""
    batch = run_trials_batched(
        graph, params, policy, seeds=seeds, demands=demands, options=options
    )
    for i, seed in enumerate(seeds):
        ref = run_protocol(
            graph, params, policy, seed=seed, demands=demands, options=options
        )
        got = (
            int(batch.rounds[i]),
            int(batch.work[i]),
            bool(batch.completed[i]),
            int(batch.assigned_balls[i]),
            int(batch.max_load[i]),
            int(batch.blocked_servers[i]),
        )
        want = (
            ref.rounds,
            ref.work,
            ref.completed,
            ref.assigned_balls,
            ref.max_load,
            ref.blocked_servers,
        )
        assert got == want, f"trial {i}: batched {got} != reference {want}"
        assert np.array_equal(batch.loads[i], ref.loads)
    return batch


class TestEquivalence:
    """Batched == reference, trial for trial, under matching seeds."""

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    @pytest.mark.parametrize("c,d", [(1.5, 4), (1.2, 3), (2.0, 2), (1.0, 1)])
    def test_regular_graph(self, regular_graph, policy, c, d):
        seeds = spawn_seeds(1001, 8)
        assert_trials_match_reference(regular_graph, ProtocolParams(c=c, d=d), policy, seeds)

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    def test_irregular_graph(self, policy):
        graph = near_regular(96, 8, 20, seed=6)
        seeds = spawn_seeds(1002, 8)
        assert_trials_match_reference(graph, ProtocolParams(c=1.5, d=4), policy, seeds)

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    def test_trust_graph(self, trust_graph, policy):
        seeds = spawn_seeds(1003, 6)
        assert_trials_match_reference(trust_graph, ProtocolParams(c=2.0, d=3), policy, seeds)

    def test_integer_seeds(self, regular_graph):
        # Plain int seeds must hit the same default_rng streams too.
        seeds = [11, 22, 33, 44]
        assert_trials_match_reference(regular_graph, ProtocolParams(c=1.5, d=4), "saer", seeds)

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    def test_heterogeneous_demands(self, regular_graph, policy):
        rng = np.random.default_rng(9)
        demands = rng.integers(0, 5, size=regular_graph.n_clients)
        seeds = spawn_seeds(1004, 6)
        assert_trials_match_reference(
            regular_graph, ProtocolParams(c=1.5, d=4), policy, seeds, demands=demands
        )

    def test_isolated_client_with_zero_demand(self):
        # A degree-0 client is legal iff its demand is 0; both engines
        # must agree on the edge case.
        graph = BipartiteGraph.from_edges(3, 3, [(0, 0), (0, 1), (2, 2), (2, 0)])
        demands = np.array([2, 0, 2])
        seeds = spawn_seeds(1005, 5)
        assert_trials_match_reference(
            graph, ProtocolParams(c=2.0, d=2), "saer", seeds, demands=demands
        )

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    def test_round_cap_equivalence(self, regular_graph, policy):
        # c=1.2 stalls; both engines must report identical capped trials.
        seeds = spawn_seeds(1006, 6)
        assert_trials_match_reference(
            regular_graph,
            ProtocolParams(c=1.2, d=4),
            policy,
            seeds,
            options=RunOptions(max_rounds=5),
        )

    def test_large_graph_wide_dtypes(self):
        # n > 2^15 forces the engine off the int16 fast dtypes.
        graph = random_regular_bipartite(40_000, 12, seed=8)
        seeds = spawn_seeds(1007, 3)
        assert_trials_match_reference(graph, ProtocolParams(c=2.0, d=2), "saer", seeds)

    def test_to_run_results_adapter(self, regular_graph):
        params = ProtocolParams(c=1.5, d=4)
        seeds = spawn_seeds(1008, 5)
        batch = run_trials_batched(regular_graph, params, "saer", seeds=seeds)
        for i, (adapted, seed) in enumerate(zip(batch.to_run_results(), seeds)):
            ref = run_protocol(regular_graph, params, "saer", seed=seed)
            assert adapted.summary() == ref.summary(), f"trial {i}"
            assert np.array_equal(adapted.loads, ref.loads)


class TestPropertyBasedEquivalence:
    """Satellite: seeded-random graphs/demands never break equivalence."""

    @settings(max_examples=30, deadline=None)
    @given(
        case_seed=st.integers(min_value=0, max_value=10_000),
        n_clients=st.integers(min_value=1, max_value=10),
        n_servers=st.integers(min_value=1, max_value=10),
        d=st.integers(min_value=1, max_value=3),
        c=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
        policy=st.sampled_from(["saer", "raes"]),
        n_trials=st.integers(min_value=1, max_value=5),
        cap=st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
    )
    def test_random_graphs_and_demands(
        self, case_seed, n_clients, n_servers, d, c, policy, n_trials, cap
    ):
        rng = np.random.default_rng(case_seed)
        adjacency = rng.random((n_clients, n_servers)) < 0.4
        edges = np.argwhere(adjacency)
        graph = BipartiteGraph.from_edges(n_clients, n_servers, edges)
        demands = rng.integers(0, d + 1, size=n_clients)
        demands[graph.client_degrees == 0] = 0  # isolated ⇒ no balls
        seeds = spawn_seeds(case_seed + 1, n_trials)
        options = RunOptions(max_rounds=cap) if cap is not None else None
        assert_trials_match_reference(
            graph, ProtocolParams(c=float(c), d=d), policy, seeds,
            demands=demands, options=options,
        )


class TestBatchResult:
    def test_shapes_and_accounting(self, regular_graph):
        batch = run_saer_batched(regular_graph, 1.5, 4, n_trials=7, seed=3)
        assert len(batch) == 7
        for field in (batch.completed, batch.rounds, batch.work, batch.max_load):
            assert field.shape == (7,)
        assert batch.loads.shape == (7, regular_graph.n_servers)
        assert np.all(batch.assigned_balls + batch.alive_balls == batch.total_balls)
        assert 0.0 <= batch.completion_rate <= 1.0

    def test_summary_keys(self, regular_graph):
        batch = run_raes_batched(regular_graph, 2.0, 2, n_trials=4, seed=5)
        summary = batch.summary()
        for key in ("protocol", "trials", "completion_rate", "rounds_median", "capacity"):
            assert key in summary
        assert summary["protocol"] == "raes"
        assert summary["trials"] == 4

    def test_record_loads_off(self, regular_graph):
        batch = run_saer_batched(
            regular_graph, 1.5, 4, n_trials=3, seed=3, options=RunOptions(record_loads=False)
        )
        assert batch.loads is None
        results = batch.to_run_results()
        assert all(r.loads is None for r in results)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchResult(
                protocol="saer",
                graph_name="g",
                n_clients=2,
                n_servers=2,
                params=ProtocolParams(c=2.0, d=1),
                n_trials=3,
                completed=np.ones(2, dtype=bool),  # wrong length
                rounds=np.ones(3, dtype=np.int64),
                work=np.ones(3, dtype=np.int64),
                total_balls=2,
                assigned_balls=np.ones(3, dtype=np.int64),
                max_load=np.ones(3, dtype=np.int64),
                blocked_servers=np.zeros(3, dtype=np.int64),
            )


class TestEngineApi:
    def test_seed_spawning_matches_explicit_seeds(self, regular_graph):
        a = run_saer_batched(regular_graph, 1.5, 4, n_trials=5, seed=42)
        b = run_saer_batched(regular_graph, 1.5, 4, seeds=spawn_seeds(42, 5))
        assert np.array_equal(a.rounds, b.rounds)
        assert np.array_equal(a.work, b.work)
        assert np.array_equal(a.loads, b.loads)

    def test_zero_trials(self, regular_graph):
        batch = run_saer_batched(regular_graph, 1.5, 4, n_trials=0)
        assert len(batch) == 0
        assert batch.to_run_results() == []
        assert bool(batch.completed.all())

    def test_zero_demands_complete_in_zero_rounds(self, regular_graph):
        demands = np.zeros(regular_graph.n_clients, dtype=np.int64)
        batch = run_saer_batched(regular_graph, 1.5, 4, n_trials=3, seed=1, demands=demands)
        assert np.all(batch.completed)
        assert np.all(batch.rounds == 0)
        assert np.all(batch.work == 0)

    def test_conflicting_trial_spec_rejected(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_saer_batched(regular_graph, 1.5, 4, n_trials=3, seeds=spawn_seeds(0, 4))
        with pytest.raises(ProtocolConfigError):
            run_saer_batched(regular_graph, 1.5, 4, seeds=spawn_seeds(0, 4), seed=1)
        with pytest.raises(ProtocolConfigError):
            run_saer_batched(regular_graph, 1.5, 4)
        with pytest.raises(ProtocolConfigError):
            run_saer_batched(regular_graph, 1.5, 4, n_trials=-1)

    def test_unknown_policy_rejected(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_trials_batched(regular_graph, ProtocolParams(c=2.0, d=2), "nope", n_trials=2)

    def test_policy_instance_accepted(self, regular_graph):
        pol = BatchedRaesPolicy(3, regular_graph.n_servers, ProtocolParams(c=2.0, d=2).capacity)
        batch = run_trials_batched(
            regular_graph, ProtocolParams(c=2.0, d=2), pol, n_trials=3, seed=7
        )
        assert batch.protocol == "raes"

    def test_raise_on_cap_carries_batch_result(self, regular_graph):
        with pytest.raises(NonTerminationError) as excinfo:
            run_saer_batched(
                regular_graph, 1.2, 4, n_trials=4, seed=2,
                options=RunOptions(max_rounds=2, raise_on_cap=True),
            )
        result = excinfo.value.result
        assert isinstance(result, BatchResult)
        assert not result.completed.all()
        assert np.all(result.rounds[~result.completed] == 2)

    def test_max_load_invariant(self, regular_graph):
        for policy in ("saer", "raes"):
            batch = run_trials_batched(
                regular_graph, ProtocolParams(c=1.5, d=4), policy, n_trials=6, seed=8
            )
            assert np.all(batch.max_load <= batch.params.capacity)


class TestBatchedPolicies:
    def test_saer_burned_is_derived(self):
        pol = BatchedSaerPolicy(2, 4, capacity=3)
        received = np.array([[2, 4, 0, 1], [0, 0, 5, 0]], dtype=np.int64)
        accept = pol.decide_dense(np.arange(2), received)
        assert accept.tolist() == [[True, False, True, True], [True, True, False, True]]
        assert pol.burned.tolist() == [
            [False, True, False, False],
            [False, False, True, False],
        ]
        assert pol.blocked_counts().tolist() == [1, 1]

    def test_invalid_construction(self):
        with pytest.raises(ProtocolConfigError):
            BatchedSaerPolicy(-1, 4, 2)
        with pytest.raises(ProtocolConfigError):
            BatchedSaerPolicy(2, -1, 2)
        with pytest.raises(ProtocolConfigError):
            BatchedSaerPolicy(2, 4, 0)
