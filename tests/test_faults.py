"""Tests for repro.faults — specs, schedules, overlays, and health.

The determinism contract under test: all fault randomness comes from
the schedule's own seed, so (a) ``f=0`` is bit-identical to no faults
in every execution layer, (b) a seeded schedule reproduces exactly
across kernel gates and thread counts, and (c) the overlays preserve
every layer's conservation laws (balls are assigned, absorbed, or still
in flight — never silently vanish).
"""

import pickle

import numpy as np
import pytest

from repro.batch import available_kernels, run_saer_batched, run_trials_batched
from repro.batch.kernels import EngineBuffers
from repro.core.config import ProtocolParams
from repro.dynamic import BatchArrivals, PoissonArrivals, run_dynamic_saer
from repro.errors import FaultSpecError
from repro.faults import (
    CLIENT_KINDS,
    FAULT_KINDS,
    SERVER_KINDS,
    FaultSchedule,
    FaultSpec,
    FaultyBatchedSaerPolicy,
    HealthPolicy,
    HealthTracker,
    faulty_policy_factory,
    stalled,
)
from repro.graphs import trust_subsets

KERNELS = available_kernels()


@pytest.fixture(scope="module")
def graph():
    return trust_subsets(192, 192, 12, seed=2)


class TestFaultSpec:
    def test_kind_vocabulary(self):
        assert set(SERVER_KINDS) | set(CLIENT_KINDS) == set(FAULT_KINDS)
        with pytest.raises(FaultSpecError):
            FaultSpec("meteor", 0.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fraction": -0.1},
            {"fraction": 1.5},
            {"start": -1},
            {"start": 5, "end": 5},
            {"period": 0},
            {"period": 4, "duty": 5},
            {"factor": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(FaultSpecError):
            FaultSpec("crash", **{"fraction": 0.1, **kwargs})

    def test_fault_spec_error_is_value_error(self):
        with pytest.raises(ValueError):
            FaultSpec("crash", 2.0)

    def test_active_window(self):
        s = FaultSpec("crash", 0.1, start=5, end=10)
        assert [s.active(t) for t in (4, 5, 9, 10)] == [False, True, True, False]

    def test_duty_cycle(self):
        s = stalled(0.25, start=0)  # 3-of-4 duty
        assert [s.active(t) for t in range(8)] == [
            True, True, True, False, True, True, True, False,
        ]

    def test_picklable(self):
        sch = FaultSchedule(
            (FaultSpec("crash", 0.2, start=3), stalled(0.1)), seed=7
        )
        assert pickle.loads(pickle.dumps(sch)) == sch

    def test_schedule_rejects_non_specs(self):
        with pytest.raises(FaultSpecError):
            FaultSchedule(("crash",), seed=0)


class TestMaterialization:
    def test_same_seed_same_members(self):
        sch = FaultSchedule((FaultSpec("crash", 0.25),), seed=13)
        a = sch.materialize(100, 80)
        b = sch.materialize(100, 80)
        assert np.array_equal(a.members[0], b.members[0])
        assert a.members[0].size == 20  # round(0.25 * 80)

    def test_adding_a_spec_never_reshuffles_earlier_ones(self):
        one = FaultSchedule((FaultSpec("crash", 0.25),), seed=13)
        two = FaultSchedule(
            (FaultSpec("crash", 0.25), FaultSpec("byz_server", 0.1)), seed=13
        )
        a = one.materialize(100, 80)
        b = two.materialize(100, 80)
        assert np.array_equal(a.members[0], b.members[0])

    def test_crash_wins_over_byzantine(self):
        sch = FaultSchedule(
            (FaultSpec("crash", 0.5), FaultSpec("byz_server", 0.5)), seed=3
        )
        mat = sch.materialize(10, 40)
        rej, byz = mat.server_overlay(0)
        assert np.intersect1d(rej, byz).size == 0

    def test_inactive_round_is_none(self):
        sch = FaultSchedule((FaultSpec("crash", 0.5, start=10),), seed=3)
        mat = sch.materialize(10, 40)
        assert mat.server_overlay(9) is None
        assert mat.server_overlay(10) is not None

    def test_transform_counts_identity_when_inactive(self):
        sch = FaultSchedule((FaultSpec("byz_client_dup", 0.5, start=5),), seed=3)
        mat = sch.materialize(40, 10)
        counts = np.ones(40, dtype=np.int64)
        assert mat.transform_counts(0, counts) is counts  # same object

    def test_dup_multiplies_and_misroute_conserves(self):
        sch = FaultSchedule(
            (
                FaultSpec("byz_client_dup", 0.25, factor=3),
                FaultSpec("byz_client_misroute", 0.25),
            ),
            seed=5,
        )
        mat = sch.materialize(80, 10)
        counts = np.ones(80, dtype=np.int64)
        out = mat.transform_counts(0, counts)
        dup_extra = 2 * mat.members[0].size  # factor-1 extras per faulty arrival
        assert out.sum() == 80 + dup_extra  # misroute moves, never creates
        assert counts.sum() == 80  # input untouched


class TestBatchLayer:
    def test_f0_bit_identical(self, graph):
        base = run_saer_batched(graph, 2.0, 4, n_trials=6, seed=11)
        f0 = run_saer_batched(
            graph, 2.0, 4, n_trials=6, seed=11,
            faults=FaultSchedule((FaultSpec("crash", 0.0),), seed=99),
        )
        assert np.array_equal(base.rounds, f0.rounds)
        assert np.array_equal(base.max_load, f0.max_load)
        assert np.array_equal(base.loads, f0.loads)

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("threads", [1, 2])
    def test_seeded_schedule_identical_across_gates(self, graph, kernel, threads):
        sch = FaultSchedule((FaultSpec("crash", 0.2, start=1),), seed=4)
        ref = run_saer_batched(
            graph, 2.0, 4, n_trials=5, seed=21, faults=sch, kernel="numpy"
        )
        res = run_saer_batched(
            graph, 2.0, 4, n_trials=5, seed=21, faults=sch,
            kernel=kernel, threads=threads, buffers=EngineBuffers(),
        )
        assert np.array_equal(ref.rounds, res.rounds)
        assert np.array_equal(ref.loads, res.loads)

    def test_crash_slows_completion(self, graph):
        base = run_saer_batched(graph, 2.0, 4, n_trials=6, seed=11)
        crashed = run_saer_batched(
            graph, 2.0, 4, n_trials=6, seed=11,
            faults=FaultSchedule((FaultSpec("crash", 0.3),), seed=4),
        )
        assert crashed.rounds.mean() > base.rounds.mean()

    def test_byzantine_ledger(self, graph):
        sch = FaultSchedule((FaultSpec("byz_server", 0.2),), seed=8)
        pol = FaultyBatchedSaerPolicy(
            6, graph.n_servers, ProtocolParams(c=2.0, d=4).capacity,
            sch.materialize(graph.n_clients, graph.n_servers),
        )
        res = run_trials_batched(
            graph, ProtocolParams(c=2.0, d=4), pol, n_trials=6, seed=11
        )
        # Conservation: honest-server loads + the liars' absorbed ledger
        # together cover every ball the engine counted as assigned.
        for r in range(6):
            assert res.loads[r].sum() + pol.byz_absorbed[r] == res.assigned_balls[r]
        assert pol.byz_absorbed.sum() > 0

    def test_client_kinds_rejected(self, graph):
        sch = FaultSchedule((FaultSpec("byz_client_dup", 0.1),), seed=1)
        with pytest.raises(FaultSpecError):
            run_saer_batched(graph, 2.0, 4, n_trials=2, seed=1, faults=sch)
        with pytest.raises(FaultSpecError):
            faulty_policy_factory("greedy", FaultSchedule(), 10)


class TestDynamicLayer:
    def test_f0_bit_identical(self, graph):
        arr = PoissonArrivals(0.4)
        base = run_dynamic_saer(graph, 2.0, 4, arr, 80, recovery=8, seed=5)
        f0 = run_dynamic_saer(
            graph, 2.0, 4, arr, 80, recovery=8, seed=5,
            faults=FaultSchedule((), seed=123),
        )
        assert np.array_equal(base.backlog, f0.backlog)
        assert np.array_equal(base.latencies, f0.latencies)
        assert np.array_equal(base.burned_fraction, f0.burned_fraction)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_seeded_schedule_identical_across_kernels(self, graph, kernel):
        arr = PoissonArrivals(0.4)
        sch = FaultSchedule(
            (FaultSpec("crash", 0.2, start=20, end=50), stalled(0.1)), seed=6
        )
        ref = run_dynamic_saer(
            graph, 2.0, 4, arr, 80, recovery=8, seed=5, faults=sch, kernel="numpy"
        )
        res = run_dynamic_saer(
            graph, 2.0, 4, arr, 80, recovery=8, seed=5, faults=sch, kernel=kernel
        )
        assert np.array_equal(ref.backlog, res.backlog)
        assert np.array_equal(ref.latencies, res.latencies)

    def test_crash_window_backlog_recovers(self, graph):
        arr = PoissonArrivals(0.3)
        sch = FaultSchedule((FaultSpec("crash", 0.3, start=30, end=60),), seed=6)
        res = run_dynamic_saer(
            graph, 2.0, 4, arr, 150, recovery=8, seed=5, faults=sch
        )
        stab = res.stabilization_round(after=60)
        assert stab is not None  # backlog re-enters its band after healing

    def test_byz_absorbed_reported(self, graph):
        arr = PoissonArrivals(0.3)
        sch = FaultSchedule((FaultSpec("byz_server", 0.2),), seed=6)
        res = run_dynamic_saer(graph, 2.0, 4, arr, 60, recovery=8, seed=5, faults=sch)
        assert res.byz_absorbed > 0
        base = run_dynamic_saer(graph, 2.0, 4, arr, 60, recovery=8, seed=5)
        assert base.byz_absorbed == 0

    def test_client_dup_inflates_arrivals(self, graph):
        arr = PoissonArrivals(0.3)
        base = run_dynamic_saer(graph, 2.0, 4, arr, 40, recovery=8, seed=5)
        dup = run_dynamic_saer(
            graph, 2.0, 4, arr, 40, recovery=8, seed=5,
            faults=FaultSchedule(
                (FaultSpec("byz_client_dup", 0.25, factor=3),), seed=6
            ),
        )
        assert dup.arrivals.sum() > base.arrivals.sum()

    def test_client_misroute_conserves_arrivals(self, graph):
        # BatchArrivals offers a deterministic total per round, so even
        # though misroute perturbs the downstream protocol-RNG stream,
        # the admitted total must stay exactly batch_size × horizon —
        # misroute moves balls between clients, never creates any.
        arr = BatchArrivals(50)
        mis = run_dynamic_saer(
            graph, 2.0, 4, arr, 40, recovery=8, seed=5,
            faults=FaultSchedule(
                (FaultSpec("byz_client_misroute", 0.25),), seed=6
            ),
        )
        assert mis.arrivals.sum() == 50 * 40
        assert mis.dropped == 0

    def test_stabilization_round_semantics(self, graph):
        arr = PoissonArrivals(0.3)
        res = run_dynamic_saer(graph, 2.0, 4, arr, 60, recovery=8, seed=5)
        # A healthy run is stable from (near) the start.
        assert res.stabilization_round() is not None
        # A permanent wipeout never restabilizes.
        wiped = run_dynamic_saer(
            graph, 2.0, 4, arr, 60, recovery=8, seed=5,
            faults=FaultSchedule((FaultSpec("crash", 1.0, start=10),), seed=1),
        )
        assert wiped.stabilization_round(after=10) is None


class TestHealthTracker:
    def test_quarantine_after_streak(self):
        tr = HealthTracker(HealthPolicy(fail_streak=3, quarantine_rounds=4), 4)
        received = np.array([5, 5, 0, 5])
        accepted = np.array([5, 0, 0, 5])  # server 1 rejects everything
        for _ in range(2):
            to_q, _ = tr.observe(received, accepted)
            assert to_q.size == 0
        to_q, _ = tr.observe(received, accepted)
        assert to_q.tolist() == [1]

    def test_no_evidence_no_streak(self):
        tr = HealthTracker(HealthPolicy(fail_streak=2), 3)
        # A server that receives nothing is unknown, not unhealthy.
        for _ in range(10):
            to_q, _ = tr.observe(np.zeros(3, np.int64), np.zeros(3, np.int64))
            assert to_q.size == 0

    def test_readmission_after_quarantine_rounds(self):
        tr = HealthTracker(HealthPolicy(fail_streak=1, quarantine_rounds=3), 2)
        received = np.array([4, 4])
        accepted = np.array([4, 0])
        to_q, _ = tr.observe(received, accepted)
        assert to_q.tolist() == [1]
        idle = np.zeros(2, np.int64)
        readmitted = []
        for _ in range(4):
            _, to_r = tr.observe(idle, idle)
            readmitted.extend(to_r.tolist())
        assert readmitted == [1]

    def test_fleet_fraction_cap(self):
        tr = HealthTracker(
            HealthPolicy(fail_streak=1, max_quarantine_fraction=0.25), 8
        )
        received = np.full(8, 4)
        accepted = np.zeros(8, np.int64)  # everyone looks dead
        to_q, _ = tr.observe(received, accepted)
        assert to_q.size == 2  # floor(0.25 * 8): never quarantine the fleet

    def test_state_round_trip(self):
        tr = HealthTracker(HealthPolicy(fail_streak=2), 3)
        tr.observe(np.array([4, 4, 4]), np.array([4, 0, 4]))
        clone = HealthTracker(HealthPolicy(fail_streak=2), 3)
        clone.set_state(tr.state())
        a = tr.observe(np.array([4, 4, 4]), np.array([4, 0, 4]))
        b = clone.observe(np.array([4, 4, 4]), np.array([4, 0, 4]))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
