"""Statistical agreement tests: measured behaviour vs theory predictions.

These assert distributional facts with wide safety margins (fixed seeds,
5-sigma-ish slack) — they catch systematic implementation bias, not
noise.
"""

import math

import numpy as np
import pytest

import repro
from repro.baselines import greedy_best_of_k, one_choice
from repro.core import TraceLevel  # noqa: F401 - used in TestSaerAtPaperConstants
from repro.graphs import complete_bipartite, random_regular_bipartite
from repro.theory import (
    c_min_regular,
    completion_horizon,
    one_choice_max_load_estimate,
    whp_failure_bound,
)


class TestOneChoiceDistribution:
    def test_max_load_matches_folklore_scale(self):
        """n balls into n bins: max load ≈ ln n / ln ln n (within 3×)."""
        n = 4096
        g = complete_bipartite(n, n)
        est = one_choice_max_load_estimate(n)
        maxes = [one_choice(g, d=1, seed=s).max_load for s in range(5)]
        assert all(est / 3 <= m <= 3 * est + 3 for m in maxes), (maxes, est)

    def test_loads_mean_is_d(self):
        g = random_regular_bipartite(512, 64, seed=0)
        res = one_choice(g, d=3, seed=1)
        assert res.loads.mean() == pytest.approx(3.0)

    def test_two_choices_beats_one_substantially(self):
        """Azar et al.: best-of-2 ≈ log log n ≪ log n/log log n."""
        n = 4096
        g = complete_bipartite(n, n)
        oc = np.mean([one_choice(g, d=1, seed=s).max_load for s in range(3)])
        b2 = np.mean([greedy_best_of_k(g, d=1, k=2, seed=s).max_load for s in range(3)])
        assert b2 < oc
        assert b2 <= math.log2(math.log2(n)) + 3  # ~ lg lg n + slack


class TestSaerAtPaperConstants:
    """At the analysis-scale c the w.h.p. statements should essentially
    never fail — the failure budget is 1/n² per run."""

    def test_lemma4_never_violated(self):
        n, d = 512, 2
        deg = math.ceil(math.log2(n) ** 2)
        eta = deg / math.log2(n) ** 2
        c = c_min_regular(eta, d)
        budget = whp_failure_bound(n)
        assert budget < 1e-4
        g = random_regular_bipartite(n, deg, seed=7)
        for s in range(5):
            res = repro.run_saer(g, c, d, seed=s, trace=TraceLevel.FULL)
            assert res.completed
            assert res.trace.max_s_t() <= 0.5

    def test_completion_well_within_horizon(self):
        n, d = 512, 2
        deg = math.ceil(math.log2(n) ** 2)
        c = c_min_regular(deg / math.log2(n) ** 2, d)
        g = random_regular_bipartite(n, deg, seed=8)
        for s in range(5):
            res = repro.run_saer(g, c, d, seed=s)
            assert res.completed
            assert res.rounds <= completion_horizon(n)

    def test_work_linear_constant_small(self):
        """At paper c, work per ball should be ~2 messages (no retries)."""
        n, d = 512, 2
        deg = math.ceil(math.log2(n) ** 2)
        c = c_min_regular(deg / math.log2(n) ** 2, d)
        g = random_regular_bipartite(n, deg, seed=9)
        res = repro.run_saer(g, c, d, seed=0)
        assert res.work_per_ball <= 2.5


class TestEngineUnbiasedness:
    def test_round1_destination_marginals_uniform(self):
        """Each server's expected round-1 batch is d·Δ/Δ = d; check the
        empirical mean and a generous max deviation over many trials."""
        n, deg, d = 256, 32, 2
        g = random_regular_bipartite(n, deg, seed=3)
        trials = 40
        loads = np.zeros(n)
        for s in range(trials):
            # comfortable c: round 1 accepts everything, so final loads
            # equal the round-1 batch sizes.
            loads += repro.run_saer(g, 8.0, d, seed=s).loads
        mean = loads / trials
        assert abs(mean.mean() - d) < 1e-9  # exact: all balls placed
        # Per-server deviation: Binomial(nd, 1/n)-ish across 40 trials.
        sigma = math.sqrt(d / trials)
        assert np.all(np.abs(mean - d) < 6 * sigma + 0.5)

    def test_saer_raes_agree_when_no_pressure(self, regular_graph):
        """With capacity far above the offered load the two protocols
        execute identically (no rejections at all)."""
        tape = repro.RandomTape(seed=5)
        a = repro.run_saer(regular_graph, 16.0, 2, tape=tape)
        tape.rewind()
        b = repro.run_raes(regular_graph, 16.0, 2, tape=tape)
        assert a.rounds == b.rounds == 1
        assert np.array_equal(a.loads, b.loads)
