"""Tests for degree reports and Theorem-1 hypothesis checks."""

import math

import pytest

from repro.graphs import (
    BipartiteGraph,
    almost_regularity_ratio,
    degree_report,
    eta_for,
    random_regular_bipartite,
    theorem1_hypotheses,
)


class TestDegreeReport:
    def test_regular_graph_report(self):
        g = random_regular_bipartite(64, 9, seed=0)
        rep = degree_report(g)
        assert rep.client_degree_min == rep.client_degree_max == 9
        assert rep.server_degree_min == rep.server_degree_max == 9
        assert rep.rho == 1.0
        assert rep.isolated_clients == 0
        assert rep.n_edges == 64 * 9

    def test_eta_matches_definition(self):
        g = random_regular_bipartite(64, 9, seed=0)
        assert math.isclose(eta_for(g), 9 / math.log(64) ** 2)

    def test_rho_with_isolated_client_is_inf(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0)])
        assert almost_regularity_ratio(g) == math.inf

    def test_as_dict_keys(self):
        rep = degree_report(random_regular_bipartite(16, 4, seed=1))
        d = rep.as_dict()
        for key in ("n_clients", "rho", "eta", "isolated_clients"):
            assert key in d

    def test_satisfies_theorem1_method(self):
        g = random_regular_bipartite(64, 36, seed=2)  # log2^2(64)=36
        rep = degree_report(g)
        assert rep.satisfies_theorem1(eta=1.0, rho=1.5) or rep.satisfies_theorem1(
            eta=rep.eta, rho=1.0
        )


class TestHypothesesCheck:
    def test_ok_graph(self):
        g = random_regular_bipartite(64, 40, seed=0)
        ok, reason = theorem1_hypotheses(g, eta=1.0, rho=2.0)
        assert ok, reason

    def test_isolated_client_fails(self):
        g = BipartiteGraph.from_edges(3, 3, [(0, 0), (1, 1)])
        ok, reason = theorem1_hypotheses(g, eta=0.1, rho=100.0)
        assert not ok
        assert "isolated" in reason

    def test_low_degree_fails(self):
        g = random_regular_bipartite(64, 2, seed=0)
        ok, reason = theorem1_hypotheses(g, eta=1.0, rho=2.0)
        assert not ok
        assert "outside regime" in reason

    def test_irregular_fails(self):
        # one client with degree 1, others dense: rho explodes
        edges = [(0, 0)]
        for v in range(1, 8):
            for u in range(8):
                edges.append((v, u))
        g = BipartiteGraph.from_edges(8, 8, edges)
        ok, reason = theorem1_hypotheses(g, eta=0.0001, rho=1.5)
        assert not ok


class TestCountingArgument:
    def test_dmin_clients_le_dmax_servers(self):
        """The paper's counting argument: Δ_min(C) <= Δ_max(S) always."""
        for seed in range(5):
            g = random_regular_bipartite(32, 5, seed=seed)
            assert g.degree_min_clients() <= g.degree_max_servers()

    def test_rho_at_least_one_when_finite(self, trust_graph):
        rho = almost_regularity_ratio(trust_graph)
        assert rho >= 1.0
