"""Tests for repro.serve.loadgen — trace replay, report, and CI gates."""

import asyncio
import json

import numpy as np
import pytest

from repro.dynamic import HotspotArrivals
from repro.faults import FaultSchedule, FaultSpec
from repro.graphs import trust_subsets
from repro.serve import SaerService, ServeConfig, ServingState, serve_tcp
from repro.serve.loadgen import (
    RetryPolicy,
    build_report,
    check_report,
    main as loadgen_main,
    make_arrivals,
    run_inprocess,
    run_tcp,
    sample_trace,
)


@pytest.fixture()
def graph():
    return trust_subsets(128, 128, 12, seed=4)


def _service(graph, **cfg):
    state = ServingState(graph, 2.0, 4, recovery=8, seed=9, track_tags=True)
    cfg.setdefault("max_batch", 1 << 30)
    return SaerService(state, ServeConfig(**cfg))


class TestTraceSampling:
    def test_make_arrivals_vocabulary(self):
        assert make_arrivals("poisson", 0.5).rate_per_client == 0.5
        assert make_arrivals("burst", 0.5, batch_size=10, period=2).batch_size == 10
        hot = make_arrivals("hotspot", 0.5, hot_fraction=0.05, hot_weight=0.8)
        assert isinstance(hot, HotspotArrivals)
        with pytest.raises(ValueError):
            make_arrivals("nope", 0.5)

    def test_trace_is_deterministic(self):
        arr = make_arrivals("poisson", 0.4)
        a = sample_trace(arr, 50, 20, seed=3)
        b = sample_trace(arr, 50, 20, seed=3)
        assert len(a) == 20
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_hotspot_concentrates_mass(self):
        arr = make_arrivals("hotspot", 1.0, hot_fraction=0.01, hot_weight=0.9)
        trace = sample_trace(arr, 1000, 30, seed=5)
        total = sum(int(c.sum()) for c in trace)
        hot = sum(int(c[:10].sum()) for c in trace)  # ceil(0.01·1000) = 10 hot ids
        assert hot / total > 0.8  # ~90% of mass on 1% of clients


class TestInprocessRun:
    def test_every_ball_accounted(self, graph):
        svc = _service(graph)
        trace = sample_trace(make_arrivals("poisson", 0.3), graph.n_clients, 40, 1)
        run = run_inprocess(svc, trace)
        balls = sum(int(c.sum()) for c in trace)
        tally = run["tally"]
        assert run["submitted"] == balls
        assert sum(tally.values()) == balls
        assert tally["assigned"] == run["latencies"].size
        assert run["stats"]["assigned_total"] == tally["assigned"]

    def test_subcritical_assigns_everything(self, graph):
        svc = _service(graph)
        trace = sample_trace(make_arrivals("poisson", 0.2), graph.n_clients, 50, 2)
        run = run_inprocess(svc, trace)
        assert run["tally"]["assigned"] == run["submitted"]
        assert run["tally"]["unresolved"] == 0

    def test_timeout_policy_produces_retries(self, graph):
        svc = _service(graph, max_wait_rounds=8)
        trace = sample_trace(make_arrivals("hotspot", 0.8), graph.n_clients, 60, 3)
        run = run_inprocess(svc, trace)
        assert run["tally"]["retry"] > 0
        assert run["retry_reasons"].get("timeout", 0) == run["tally"]["retry"]


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": 0.0},
            {"base_delay": 4.0, "max_delay": 2.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_bounds(self):
        policy = RetryPolicy(max_attempts=6, base_delay=1.0, max_delay=16.0, seed=7)
        rng = policy.make_rng()
        for attempt in range(12):
            delay = policy.delay_rounds(attempt, rng)
            # At least one round; never above the cap's ceiling.
            assert 1 <= delay <= 16

    def test_delays_deterministic_per_seed(self):
        policy = RetryPolicy(seed=5)
        a = [policy.delay_rounds(t, policy.make_rng()) for t in range(8)]
        b = [policy.delay_rounds(t, policy.make_rng()) for t in range(8)]
        assert a == b

    def test_backoff_ceiling_grows_exponentially(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1024.0, seed=0)
        rng = policy.make_rng()
        # Full jitter: uniform(0, base·2^attempt) — the attempt-k draw
        # can never exceed 2^k (rounded up).
        for attempt in range(8):
            assert policy.delay_rounds(attempt, rng) <= 2**attempt

    def _faulted_service(self, graph, **cfg):
        # A transient crash window: timeouts during it are terminal for
        # the plain client but recoverable for the retrying one.
        sch = FaultSchedule((FaultSpec("crash", 0.6, start=2, end=20),), seed=4)
        state = ServingState(
            graph, 2.0, 4, recovery=8, seed=9, track_tags=True, faults=sch
        )
        cfg.setdefault("max_batch", 1 << 30)
        return SaerService(state, ServeConfig(**cfg))

    def test_retry_recovers_crash_window_timeouts(self, graph):
        trace = sample_trace(make_arrivals("poisson", 0.3), graph.n_clients, 40, 3)
        plain = run_inprocess(self._faulted_service(graph, max_wait_rounds=4), trace)
        retried = run_inprocess(
            self._faulted_service(graph, max_wait_rounds=4),
            trace,
            retry=RetryPolicy(max_attempts=8, base_delay=1.0, max_delay=8.0, seed=1),
        )
        assert plain["tally"]["retry"] > 0  # the window really bit
        assert retried["resubmitted"] > 0
        assert retried["tally"]["assigned"] > plain["tally"]["assigned"]
        # Terminal-retry accounting: with a policy, ``retry`` counts only
        # balls that ran out of attempts (= lost).
        assert retried["tally"]["retry"] == retried["lost"]
        assert retried["latencies_with_retries"].size == retried["tally"]["assigned"]
        # End-to-end latency includes backoff, so it dominates per-ball
        # assignment latency.
        assert (
            retried["latencies_with_retries"].mean() >= retried["latencies"].mean()
        )

    def test_retry_noop_when_nothing_retries(self, graph):
        trace = sample_trace(make_arrivals("poisson", 0.2), graph.n_clients, 30, 2)
        plain = run_inprocess(_service(graph), trace)
        retried = run_inprocess(
            _service(graph), trace, retry=RetryPolicy(max_attempts=4)
        )
        assert retried["resubmitted"] == 0 and retried["lost"] == 0
        assert retried["tally"] == plain["tally"]
        # Same multiset of latencies; the retry path records them in
        # resolution order rather than submission order.
        assert np.array_equal(
            np.sort(retried["latencies"]), np.sort(plain["latencies"])
        )


class TestReport:
    def _report(self, graph, **gate):
        svc = _service(graph)
        trace = sample_trace(make_arrivals("poisson", 0.2), graph.n_clients, 30, 1)
        run = run_inprocess(svc, trace)
        meta = {"kind": "poisson", "rounds": 30, "balls": run["submitted"]}
        return build_report("inprocess", {"n": graph.n_clients}, meta, run)

    def test_report_shape(self, graph):
        rep = self._report(graph)
        assert rep["bench"] == "serve"
        assert rep["assignment_rate"] == 1.0
        assert rep["throughput"]["assigned_per_s"] > 0
        assert {"mean", "p50", "p95", "p99"} <= set(rep["latency_rounds"])
        json.dumps(rep)  # must be JSON-serializable as-is

    def test_gates(self, graph):
        rep = self._report(graph)
        assert check_report(rep, 0.99, 50.0) == []
        fails = check_report(rep, 1.1, None)
        assert len(fails) == 1 and "assignment_rate" in fails[0]
        fails = check_report(rep, None, 0.0)
        assert len(fails) == 1 and "p95" in fails[0]
        fails = check_report(rep, None, None, min_throughput=1e12)
        assert len(fails) == 1 and "assigned_per_s" in fails[0]

    def test_retry_gates(self, graph):
        # A no-retry run trivially satisfies every retry gate...
        rep = self._report(graph)
        assert check_report(
            rep, None, None, max_retry_rate=0.0, max_lost=0
        ) == []
        # ...and a run with retries trips each gate independently.
        svc = _service(graph, max_wait_rounds=8)
        trace = sample_trace(make_arrivals("hotspot", 0.8), graph.n_clients, 60, 3)
        run = run_inprocess(
            svc, trace, retry=RetryPolicy(max_attempts=2, base_delay=1.0, seed=1)
        )
        rep = build_report("inprocess", {}, {}, run)
        assert run["resubmitted"] > 0 and run["lost"] > 0
        fails = check_report(rep, None, None, max_retry_rate=0.0)
        assert len(fails) == 1 and "retry_rate" in fails[0]
        fails = check_report(rep, None, None, max_lost=0)
        assert len(fails) == 1 and "lost" in fails[0]
        fails = check_report(rep, None, None, max_p99_retries=0.0)
        assert len(fails) == 1 and "latency-with-retries" in fails[0]


class TestCliEntry:
    def test_writes_report_and_passes_gates(self, tmp_path):
        out = tmp_path / "bench.json"
        rc = loadgen_main([
            "--n", "300", "--rounds", "30", "--rate", "0.3",
            "--seed", "5", "--out", str(out),
            "--min-assign-rate", "0.99", "--quiet",
        ])
        assert rc == 0
        rep = json.loads(out.read_text())
        assert rep["gates"]["passed"]
        assert rep["totals"]["submitted"] == rep["trace"]["balls"]

    def test_failing_gate_sets_exit_code(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = loadgen_main([
            "--n", "300", "--rounds", "10", "--rate", "0.3",
            "--out", str(out), "--min-throughput", "1e15", "--quiet",
        ])
        assert rc == 1
        assert "GATE FAILED" in capsys.readouterr().out
        assert not json.loads(out.read_text())["gates"]["passed"]


class TestTcpMode:
    def test_tcp_replay_round_trip(self, graph):
        async def go():
            svc = _service(graph, max_batch=4096, tick=0.005)
            server = await serve_tcp(svc, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            trace = sample_trace(
                make_arrivals("poisson", 0.2), graph.n_clients, 15, 6
            )
            run = await run_tcp("127.0.0.1", port, trace, tick=0.005, settle_s=10.0)
            server.close()
            await server.wait_closed()
            await svc.shutdown()
            return run, sum(int(c.sum()) for c in trace)

        run, balls = asyncio.run(go())
        assert run["submitted"] == balls
        assert run["tally"]["assigned"] == balls
        assert run["tally"]["unresolved"] == 0
        assert run["latencies"].size == balls

    def test_tcp_retry_resubmits_over_the_wire(self, graph):
        async def go():
            # A transient crash window: the service answers
            # Retry(timeout) while it lasts, the client backs off and
            # resubmits with fresh request ids, and once the window
            # closes the resubmissions land.
            sch = FaultSchedule(
                (FaultSpec("crash", 0.5, start=5, end=25),), seed=4
            )
            state = ServingState(
                graph, 2.0, 4, recovery=8, seed=9, track_tags=True, faults=sch
            )
            svc = SaerService(
                state,
                ServeConfig(max_batch=4096, tick=0.005, max_wait_rounds=4),
            )
            server = await serve_tcp(svc, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            trace = sample_trace(
                make_arrivals("poisson", 0.3), graph.n_clients, 20, 6
            )
            run = await run_tcp(
                "127.0.0.1", port, trace, tick=0.005, settle_s=15.0,
                retry=RetryPolicy(max_attempts=8, base_delay=1.0, seed=3),
            )
            server.close()
            await server.wait_closed()
            await svc.shutdown()
            return run, sum(int(c.sum()) for c in trace)

        run, balls = asyncio.run(go())
        assert run["submitted"] == balls
        assert run["resubmitted"] > 0
        tally = run["tally"]
        # Every logical ball reached a terminal outcome.
        assert tally["assigned"] + tally["retry"] + tally["dropped"] == balls
        assert tally["assigned"] / balls > 0.9
