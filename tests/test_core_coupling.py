"""Tests for the slot-level SAER/RAES coupling (Corollary 2)."""

import numpy as np
import pytest

from repro.core import run_coupled, run_raes, run_saer
from repro.core.config import RunOptions
from repro.errors import ProtocolConfigError
from repro.graphs import random_regular_bipartite, trust_subsets
from repro.rng import RandomTape


class TestDominanceInvariant:
    @pytest.mark.parametrize("seed", range(5))
    def test_nested_every_round_regular(self, regular_graph, seed):
        cp = run_coupled(regular_graph, c=1.5, d=4, seed=seed)
        assert cp.nested_every_round

    @pytest.mark.parametrize("seed", range(3))
    def test_nested_on_trust_graphs(self, trust_graph, seed):
        cp = run_coupled(trust_graph, c=1.5, d=3, seed=seed)
        assert cp.nested_every_round

    def test_alive_counts_dominated(self, regular_graph):
        cp = run_coupled(regular_graph, c=1.5, d=4, seed=11)
        assert np.all(cp.alive_raes <= cp.alive_saer)

    def test_raes_completes_no_later(self, regular_graph):
        for seed in range(5):
            cp = run_coupled(regular_graph, c=1.5, d=4, seed=seed)
            if cp.saer.completed:
                assert cp.raes.completed
                assert cp.raes.rounds <= cp.saer.rounds

    def test_dominance_in_contended_regime(self):
        """Even when SAER burns out, RAES (coupled) must do no worse."""
        g = random_regular_bipartite(64, 16, seed=0)
        cp = run_coupled(g, c=1.0, d=4, seed=2, options=RunOptions(max_rounds=40))
        assert np.all(cp.alive_raes <= cp.alive_saer)
        assert cp.nested_every_round


class TestCoupledMechanics:
    def test_initial_alive_counts(self, regular_graph):
        cp = run_coupled(regular_graph, c=2.0, d=3, seed=0)
        total = 3 * regular_graph.n_clients
        assert cp.alive_saer[0] == total
        assert cp.alive_raes[0] == total

    def test_alive_series_non_increasing(self, regular_graph):
        cp = run_coupled(regular_graph, c=1.5, d=4, seed=1)
        assert np.all(np.diff(cp.alive_saer) <= 0)
        assert np.all(np.diff(cp.alive_raes) <= 0)

    def test_load_invariants_both_legs(self, regular_graph):
        cp = run_coupled(regular_graph, c=1.5, d=4, seed=3)
        cap = cp.saer.params.capacity
        assert cp.saer.max_load <= cap
        assert cp.raes.max_load <= cap

    def test_deterministic_for_seed(self, regular_graph):
        a = run_coupled(regular_graph, c=1.5, d=4, seed=9)
        b = run_coupled(regular_graph, c=1.5, d=4, seed=9)
        assert np.array_equal(a.alive_saer, b.alive_saer)
        assert np.array_equal(a.alive_raes, b.alive_raes)

    def test_seed_and_tape_exclusive(self, regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_coupled(regular_graph, c=2.0, d=2, seed=1, tape=RandomTape(seed=2))

    def test_summary_keys(self, regular_graph):
        s = run_coupled(regular_graph, c=2.0, d=2, seed=0).summary()
        for k in ("saer_rounds", "raes_rounds", "nested_every_round", "raes_no_later"):
            assert k in s


class TestCouplingMatchesSlotModeRuns:
    def test_saer_leg_equals_standalone_slot_run(self, small_regular_graph):
        """The coupled SAER leg is exactly a slot-mode SAER run on the
        same tape: RAES reads the same per-round block without advancing
        it further, and (by dominance) RAES never outlasts SAER, so the
        coupled loop draws exactly the blocks the standalone run draws."""
        tape = RandomTape(seed=77)
        cp = run_coupled(small_regular_graph, c=1.5, d=3, tape=tape)
        tape2 = RandomTape(seed=77)
        solo = run_saer(small_regular_graph, c=1.5, d=3, tape=tape2, slot_mode=True)
        assert solo.completed == cp.saer.completed
        assert solo.rounds == cp.saer.rounds
        assert solo.work == cp.saer.work
        assert np.array_equal(solo.loads, cp.saer.loads)

    def test_raes_leg_vs_standalone(self, small_regular_graph):
        tape = RandomTape(seed=88)
        cp = run_coupled(small_regular_graph, c=2.0, d=3, tape=tape)
        tape2 = RandomTape(seed=88)
        solo = run_raes(small_regular_graph, c=2.0, d=3, tape=tape2, slot_mode=True)
        assert solo.completed == cp.raes.completed
        if solo.completed:
            assert solo.rounds == cp.raes.rounds
            assert np.array_equal(solo.loads, cp.raes.loads)
