"""Tests for the Trace metric layer, including hand-computed S_t/K_t."""

import numpy as np
import pytest

from repro.core import ProtocolParams, TraceLevel, run_saer
from repro.core.metrics import Trace
from repro.graphs import BipartiteGraph
from repro.rng import RandomTape


def star_graph() -> BipartiteGraph:
    """2 clients, 2 servers; both clients see both servers."""
    return BipartiteGraph.from_edges(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])


class TestHandComputedTrace:
    def test_forced_burn_s_t(self):
        """Script the tape so both clients' balls hit server 0 in round 1.

        d=2, c=1 ⇒ capacity 2.  Round 1: 4 balls → server 0 receives 4 > 2,
        burns, rejects; S_1(v) = 1/2 for both clients.  Round 2: all 4
        balls re-sent; u >= 0.5 sends to server 1 which then receives
        4 > 2 and burns too — so we script round 2 to split.
        """
        # Round 1: all 4 uniforms < 0.5 -> server 0 (neighbor row [0, 1]).
        # Round 2: ball (0,0)->s1, (0,1)->s1, (1,0)->s1... that would burn
        # s1 (3... 4 balls > 2).  Send only 2 balls to s1 and 2 to s0:
        # s0 is burned (rejects), s1 receives 2 <= 2: accepts.
        # Round 3: remaining 2 balls -> s1 again: cumulative 4 > 2: burns.
        # Process then stalls; we cap rounds at 3.
        tape = RandomTape(
            values=[0.1, 0.2, 0.3, 0.4]  # round 1: all to s0
            + [0.6, 0.1, 0.7, 0.2]  # round 2: (0,0)->s1,(0,1)->s0,(1,0)->s1,(1,1)->s0
            + [0.9, 0.9]  # round 3: the two s0-rejected balls -> s1
        )
        from repro.core.config import RunOptions

        res = run_saer(
            star_graph(),
            c=1.0,
            d=2,
            tape=tape,
            trace=TraceLevel.FULL,
            options=RunOptions(max_rounds=3),
        )
        tr = res.trace
        assert tr.alive_before[0] == 4
        # Round 1: server 0 got 4 > 2 -> burned, nothing accepted.
        assert tr.accepted[0] == 0
        assert tr.newly_blocked[0] == 1
        assert tr.s_t[0] == pytest.approx(0.5)
        # K_1 = r_1(N(v))/(c d Δ) = 4/(1*2*2) = 1.0
        assert tr.k_t[0] == pytest.approx(1.0)
        # Round 2: two balls to s1 accepted, two to burned s0 rejected.
        assert tr.accepted[1] == 2
        assert tr.s_t[1] == pytest.approx(0.5)
        # Round 3: 2 balls to s1 -> cumulative 4 > 2 -> s1 burns as well.
        assert tr.accepted[2] == 0
        assert tr.s_t[2] == pytest.approx(1.0)
        assert not res.completed
        assert res.max_load <= 2

    def test_work_cumulative(self):
        tape = RandomTape(seed=0)
        res = run_saer(star_graph(), c=4.0, d=2, tape=tape, trace=TraceLevel.BASIC)
        tr = res.trace
        assert tr.work_cum[0] == 2 * tr.requests[0]
        assert np.all(np.diff(np.asarray(tr.work_cum)) >= 0)


class TestTraceApi:
    def test_finalize_idempotent(self, regular_graph):
        res = run_saer(regular_graph, c=2.0, d=2, seed=0, trace=TraceLevel.BASIC)
        tr = res.trace
        a = tr.finalize()
        b = tr.finalize()
        assert a is b
        assert isinstance(tr.alive_before, np.ndarray)

    def test_as_dict_basic(self, regular_graph):
        res = run_saer(regular_graph, c=2.0, d=2, seed=0, trace=TraceLevel.BASIC)
        d = res.trace.as_dict()
        assert d["level"] == "BASIC"
        assert "s_t" not in d
        assert len(d["alive_before"]) == res.rounds

    def test_as_dict_full(self, regular_graph):
        res = run_saer(regular_graph, c=2.0, d=2, seed=0, trace=TraceLevel.FULL)
        d = res.trace.as_dict()
        assert "s_t" in d and "k_t" in d

    def test_alive_decay_ratios(self):
        tr = Trace(level=TraceLevel.BASIC)
        tr.alive_before = [100, 40, 10]
        ratios = tr.alive_decay_ratios()
        assert ratios.tolist() == [0.4, 0.25]

    def test_alive_decay_ratios_empty(self):
        tr = Trace(level=TraceLevel.BASIC)
        assert tr.alive_decay_ratios().size == 0

    def test_max_s_t_without_full_is_zero(self):
        tr = Trace(level=TraceLevel.BASIC)
        assert tr.max_s_t() == 0.0

    def test_none_level_records_nothing(self, regular_graph):
        tr = Trace(level=TraceLevel.NONE)
        tr.record_round(
            alive_before=1,
            requests=1,
            accepted=1,
            newly_blocked=0,
            blocked_mask=None,
            received=None,
            work_cum=2,
        )
        assert tr.n_rounds == 0


class TestMetricIdentities:
    def test_s_le_k_pointwise(self, trust_graph):
        """Eq. (3): S_t <= K_t at every round."""
        res = run_saer(trust_graph, c=1.5, d=4, seed=3, trace=TraceLevel.FULL)
        s = np.asarray(res.trace.s_t)
        k = np.asarray(res.trace.k_t)
        assert np.all(s <= k + 1e-9)

    def test_r1_neighborhood_bound_lemma10(self, regular_graph):
        """Lemma 10: r_1 <= 2dΔ w.h.p. (deterministically true here
        since each client sends only d and |N(v)| servers each receive
        from ≤ Δ clients — the bound is loose at this scale)."""
        d = 4
        delta = int(regular_graph.client_degrees[0])
        res = run_saer(regular_graph, c=8.0, d=d, seed=7, trace=TraceLevel.FULL)
        assert res.trace.r_neigh_max[0] <= 2 * d * delta

    def test_k_t_formula_round1(self):
        """K_1 = r_1(N(v))/(cdΔ) for the max-receiving neighborhood."""
        g = star_graph()
        tape = RandomTape(values=[0.1, 0.2, 0.9, 0.3])  # s0:3 balls, s1:1
        res = run_saer(g, c=4.0, d=2, tape=tape, trace=TraceLevel.FULL)
        # every neighborhood is {s0, s1}: r_1(N(v)) = 4 for both clients
        assert res.trace.k_t[0] == pytest.approx(4 / (4.0 * 2 * 2))
