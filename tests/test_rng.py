"""Tests for seed management and the replayable random tape."""

import numpy as np
import pytest

from repro.errors import TapeExhaustedError
from repro.rng import RandomTape, TapeRecorder, make_rng, spawn_rngs, spawn_seeds


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_from_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        a = make_rng(ss).random(3)
        b = make_rng(np.random.SeedSequence(7)).random(3)
        assert np.array_equal(a, b)


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(0, 7)) == 7

    def test_children_differ(self):
        s1, s2 = spawn_seeds(0, 2)
        a = np.random.default_rng(s1).random(8)
        b = np.random.default_rng(s2).random(8)
        assert not np.array_equal(a, b)

    def test_reproducible_across_calls(self):
        a = np.random.default_rng(spawn_seeds(5, 3)[2]).random(4)
        b = np.random.default_rng(spawn_seeds(5, 3)[2]).random(4)
        assert np.array_equal(a, b)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_spawn_rngs(self):
        rngs = spawn_rngs(3, 4)
        assert len(rngs) == 4
        assert all(isinstance(r, np.random.Generator) for r in rngs)


class TestRandomTapeLive:
    def test_values_in_unit_interval(self):
        tape = RandomTape(seed=1)
        vals = tape.draw(1000)
        assert vals.min() >= 0.0 and vals.max() < 1.0

    def test_rewind_replays_identically(self):
        tape = RandomTape(seed=2)
        first = tape.draw(50).copy()
        tape.rewind()
        again = tape.draw(50)
        assert np.array_equal(first, again)

    def test_rewind_then_draw_more_extends(self):
        tape = RandomTape(seed=3)
        tape.draw(10)
        tape.rewind()
        more = tape.draw(25)
        assert more.size == 25
        assert tape.position == 25

    def test_draw_zero(self):
        tape = RandomTape(seed=4)
        assert tape.draw(0).size == 0

    def test_draw_negative_raises(self):
        with pytest.raises(ValueError):
            RandomTape(seed=0).draw(-1)

    def test_draw_one_scalar(self):
        v = RandomTape(seed=5).draw_one()
        assert isinstance(v, float) and 0.0 <= v < 1.0

    def test_fork_replays_consumed_prefix(self):
        tape = RandomTape(seed=6)
        consumed = tape.draw(30).copy()
        fork = tape.fork()
        assert np.array_equal(fork.draw(30), consumed)

    def test_position_tracks(self):
        tape = RandomTape(seed=7)
        tape.draw(4)
        tape.draw(6)
        assert tape.position == 10


class TestRandomTapeFixed:
    def test_replays_given_values(self):
        vals = np.array([0.1, 0.5, 0.9])
        tape = RandomTape(values=vals)
        assert np.array_equal(tape.draw(3), vals)

    def test_exhaustion_raises(self):
        tape = RandomTape(values=[0.1, 0.2])
        tape.draw(2)
        with pytest.raises(TapeExhaustedError):
            tape.draw(1)

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ValueError):
            RandomTape(values=[0.5, 1.0])
        with pytest.raises(ValueError):
            RandomTape(values=[-0.1])

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            RandomTape(values=np.zeros((2, 2)))

    def test_len(self):
        assert len(RandomTape(values=[0.1, 0.2, 0.3])) == 3


class TestTapeRecorder:
    def test_roundtrip(self):
        rec = TapeRecorder()
        rec.append(0.25)
        rec.append([0.5, 0.75])
        tape = rec.to_tape()
        assert np.allclose(tape.draw(3), [0.25, 0.5, 0.75])

    def test_empty(self):
        tape = TapeRecorder().to_tape()
        with pytest.raises(TapeExhaustedError):
            tape.draw(1)
