"""Tests for fitting, statistics and table formatting."""

import math

import numpy as np
import pytest

from repro.analysis import (
    bootstrap_ci,
    fit_linear,
    fit_log2,
    fit_powerlaw,
    format_table,
    mean_ci,
    records_to_csv,
    wilson_interval,
    write_csv,
)


class TestFits:
    def test_log2_recovers_exact(self):
        x = np.array([64, 256, 1024, 4096])
        y = 3.0 + 2.0 * np.log2(x)
        fit = fit_log2(x, y)
        assert fit.intercept == pytest.approx(3.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_log2_predict(self):
        fit = fit_log2([2, 4, 8], [1.0, 2.0, 3.0])
        assert fit.predict([16])[0] == pytest.approx(4.0)

    def test_linear_recovers_exact(self):
        x = np.array([1.0, 2.0, 3.0])
        fit = fit_linear(x, 5.0 - 2.0 * x)
        assert fit.slope == pytest.approx(-2.0)
        assert fit.intercept == pytest.approx(5.0)

    def test_powerlaw_recovers_exponent(self):
        x = np.array([10, 100, 1000, 10000], dtype=float)
        y = 0.5 * x**1.3
        fit = fit_powerlaw(x, y)
        assert fit.slope == pytest.approx(1.3)
        assert fit.predict([100.0])[0] == pytest.approx(0.5 * 100**1.3, rel=1e-6)

    def test_log_fit_rejects_nonpositive_x(self):
        with pytest.raises(ValueError):
            fit_log2([0, 1], [1, 2])

    def test_powerlaw_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_powerlaw([1, 2], [0, 1])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])

    def test_describe_strings(self):
        assert "log2" in fit_log2([2, 4], [1, 2]).describe()
        assert "R²" in fit_linear([1, 2], [1, 2]).describe()


class TestStats:
    def test_mean_ci_contains_mean(self):
        m, lo, hi = mean_ci([1, 2, 3, 4, 5])
        assert lo <= m <= hi
        assert m == 3.0

    def test_mean_ci_single(self):
        m, lo, hi = mean_ci([2.0])
        assert m == lo == hi == 2.0

    def test_mean_ci_empty(self):
        m, lo, hi = mean_ci([])
        assert math.isnan(m)

    def test_bootstrap_ci_brackets_median(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 1.0, size=200)
        stat, lo, hi = bootstrap_ci(data, statistic=np.median, seed=1)
        assert lo <= stat <= hi
        assert 9.0 < stat < 11.0

    def test_bootstrap_deterministic_with_seed(self):
        data = [1.0, 2.0, 3.0, 10.0]
        a = bootstrap_ci(data, seed=5)
        b = bootstrap_ci(data, seed=5)
        assert a == b

    def test_wilson_extremes(self):
        p, lo, hi = wilson_interval(0, 20)
        assert p == 0.0 and lo == 0.0 and hi > 0.0
        p, lo, hi = wilson_interval(20, 20)
        assert p == 1.0 and hi == 1.0 and lo < 1.0

    def test_wilson_validates(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_wilson_zero_trials(self):
        p, lo, hi = wilson_interval(0, 0)
        assert math.isnan(p) and (lo, hi) == (0.0, 1.0)


class TestTables:
    def test_format_basic(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": None}]
        out = format_table(rows)
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "-" in out  # separator and the None cell
        assert "22" in out

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = format_table(rows, columns=["c", "a"])
        header = out.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_title(self):
        out = format_table([{"x": 1}], title="My Table")
        assert out.startswith("My Table")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_bool_and_float_formatting(self):
        out = format_table([{"ok": True, "v": 0.123456, "w": 123456.0}])
        assert "yes" in out
        assert "0.123" in out
        assert "1.23e+05" in out

    def test_csv_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = tmp_path / "t.csv"
        write_csv(rows, path)
        text = path.read_text()
        assert text.splitlines()[0] == "a,b"
        assert "3,4.5" in text

    def test_records_to_csv_empty(self):
        assert records_to_csv([]) == ""
