"""Tests for the process-pool harness, sweeps and aggregation."""

import numpy as np
import pytest

from repro.parallel import (
    ParameterGrid,
    aggregate_records,
    map_parallel,
    monte_carlo,
    run_sweep,
    summarize,
)
from repro.parallel.pool import default_processes


def _square(x):
    return x * x


def _trial(seed_seq, index):
    rng = np.random.default_rng(seed_seq)
    return {"index": index, "value": float(rng.random())}


def _point(point, seed_seq, trial):
    rng = np.random.default_rng(seed_seq)
    return {"value": point["a"] * 10 + float(rng.random())}


def _trial_block(seed_seqs, indices):
    """Batch-capable twin of _trial: one call per block of trials."""
    return [_trial(s, i) for s, i in zip(seed_seqs, indices)]


def _point_block(point, seed_seqs, trials):
    """Batch-capable twin of _point: one call per grid point."""
    return [_point(point, s, t) for s, t in zip(seed_seqs, trials)]


def _bad_block(seed_seqs, indices):
    return [0]  # wrong cardinality


class TestMapParallel:
    def test_serial_matches_comprehension(self):
        assert map_parallel(_square, [1, 2, 3], processes=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        out = map_parallel(_square, list(range(40)), processes=4)
        assert out == [x * x for x in range(40)]

    def test_empty(self):
        assert map_parallel(_square, [], processes=4) == []

    def test_default_processes_bounds(self):
        assert default_processes(1) == 1
        assert default_processes(1000) >= 1


class TestMonteCarlo:
    def test_trial_count_and_order(self):
        out = monte_carlo(_trial, 5, seed=1, processes=1)
        assert [r["index"] for r in out] == list(range(5))

    def test_deterministic_for_seed(self):
        a = monte_carlo(_trial, 6, seed=42, processes=1)
        b = monte_carlo(_trial, 6, seed=42, processes=1)
        assert a == b

    def test_serial_parallel_identical(self):
        """Results must not depend on the degree of parallelism."""
        a = monte_carlo(_trial, 8, seed=7, processes=1)
        b = monte_carlo(_trial, 8, seed=7, processes=4)
        assert a == b

    def test_trials_independent(self):
        out = monte_carlo(_trial, 10, seed=0, processes=1)
        vals = [r["value"] for r in out]
        assert len(set(vals)) == 10

    def test_zero_trials(self):
        assert monte_carlo(_trial, 0, seed=0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo(_trial, -1, seed=0)


class TestMonteCarloBatchedBackend:
    """backend="batched": block execution, identical seeds and order."""

    def test_matches_per_trial_backend(self):
        a = monte_carlo(_trial, 9, seed=17, processes=1)
        b = monte_carlo(_trial_block, 9, seed=17, processes=1, backend="batched")
        assert a == b

    def test_batch_size_does_not_change_results(self):
        base = monte_carlo(_trial_block, 10, seed=3, processes=1, backend="batched")
        for batch_size in (1, 3, 10, 99):
            out = monte_carlo(
                _trial_block, 10, seed=3, processes=1, backend="batched", batch_size=batch_size
            )
            assert out == base

    def test_parallel_matches_serial(self):
        a = monte_carlo(_trial_block, 8, seed=7, processes=1, backend="batched", batch_size=2)
        b = monte_carlo(_trial_block, 8, seed=7, processes=4, backend="batched", batch_size=2)
        assert a == b

    def test_zero_trials(self):
        assert monte_carlo(_trial_block, 0, seed=0, backend="batched") == []

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo(_trial, 3, seed=0, backend="threads")

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo(_trial_block, 3, seed=0, backend="batched", batch_size=0)

    def test_cardinality_mismatch_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo(_bad_block, 3, seed=0, processes=1, backend="batched")


class TestParameterGrid:
    def test_points_row_major(self):
        grid = ParameterGrid(a=[1, 2], b=["x", "y"])
        pts = grid.points()
        assert pts == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_len(self):
        assert len(ParameterGrid(a=[1, 2, 3], b=[1, 2])) == 6

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid(a=[])
        with pytest.raises(ValueError):
            ParameterGrid()

    def test_iter(self):
        assert list(ParameterGrid(a=[5])) == [{"a": 5}]


class TestRunSweep:
    def test_record_shape(self):
        grid = ParameterGrid(a=[1, 2])
        recs = run_sweep(_point, grid, n_trials=3, seed=0, processes=1)
        assert len(recs) == 6
        assert {r["a"] for r in recs} == {1, 2}
        assert {r["trial"] for r in recs} == {0, 1, 2}

    def test_deterministic_and_pool_invariant(self):
        grid = ParameterGrid(a=[1, 2, 3])
        a = run_sweep(_point, grid, n_trials=2, seed=9, processes=1)
        b = run_sweep(_point, grid, n_trials=2, seed=9, processes=3)
        assert a == b

    def test_batched_backend_matches_per_trial(self):
        # Same (point, trial) seeds under both backends ⇒ same records.
        grid = ParameterGrid(a=[1, 2, 3])
        a = run_sweep(_point, grid, n_trials=4, seed=9, processes=1)
        b = run_sweep(
            _point_block, grid, n_trials=4, seed=9, processes=1, backend="batched"
        )
        assert a == b

    def test_batched_backend_pool_invariant(self):
        grid = ParameterGrid(a=[1, 2])
        a = run_sweep(_point_block, grid, n_trials=3, seed=5, processes=1, backend="batched")
        b = run_sweep(_point_block, grid, n_trials=3, seed=5, processes=2, backend="batched")
        assert a == b

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_point, ParameterGrid(a=[1]), backend="gpu")


class TestSummarize:
    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["median"] == 2.5
        assert s["n"] == 4
        assert s["ci95"] > 0

    def test_single_value(self):
        s = summarize([7.0])
        assert s["mean"] == 7.0 and s["std"] == 0.0 and s["ci95"] == 0.0

    def test_empty(self):
        s = summarize([])
        assert s["n"] == 0
        assert np.isnan(s["mean"])


class TestAggregateRecords:
    def test_grouping_and_stats(self):
        recs = [
            {"g": "a", "v": 1.0},
            {"g": "a", "v": 3.0},
            {"g": "b", "v": 10.0},
        ]
        rows = aggregate_records(recs, group_by=["g"], fields=["v"])
        assert len(rows) == 2
        a_row = rows[0]
        assert a_row["g"] == "a"
        assert a_row["trials"] == 2
        assert a_row["v_mean"] == 2.0
        assert a_row["v_max"] == 3.0

    def test_first_seen_order(self):
        recs = [{"g": "z", "v": 1}, {"g": "a", "v": 2}]
        rows = aggregate_records(recs, group_by=["g"], fields=["v"])
        assert [r["g"] for r in rows] == ["z", "a"]

    def test_bool_field_becomes_rate(self):
        recs = [{"g": 1, "ok": True}, {"g": 1, "ok": False}]
        rows = aggregate_records(recs, group_by=["g"], fields=["ok"])
        assert rows[0]["ok_mean"] == 0.5
