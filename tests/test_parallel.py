"""Tests for the process-pool harness, sweeps and aggregation."""

import numpy as np
import pytest

from repro.parallel import (
    ParameterGrid,
    aggregate_records,
    map_parallel,
    monte_carlo,
    run_sweep,
    summarize,
)
from repro.parallel.pool import default_processes


def _square(x):
    return x * x


def _trial(seed_seq, index):
    rng = np.random.default_rng(seed_seq)
    return {"index": index, "value": float(rng.random())}


def _point(point, seed_seq, trial):
    rng = np.random.default_rng(seed_seq)
    return {"value": point["a"] * 10 + float(rng.random())}


def _trial_block(seed_seqs, indices):
    """Batch-capable twin of _trial: one call per block of trials."""
    return [_trial(s, i) for s, i in zip(seed_seqs, indices)]


def _point_block(point, seed_seqs, trials):
    """Batch-capable twin of _point: one call per grid point."""
    return [_point(point, s, t) for s, t in zip(seed_seqs, trials)]


def _bad_block(seed_seqs, indices):
    return [0]  # wrong cardinality


class TestMapParallel:
    def test_serial_matches_comprehension(self):
        assert map_parallel(_square, [1, 2, 3], processes=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        out = map_parallel(_square, list(range(40)), processes=4)
        assert out == [x * x for x in range(40)]

    def test_empty(self):
        assert map_parallel(_square, [], processes=4) == []

    def test_default_processes_bounds(self):
        assert default_processes(1) == 1
        assert default_processes(1000) >= 1


class TestMonteCarlo:
    def test_trial_count_and_order(self):
        out = monte_carlo(_trial, 5, seed=1, processes=1)
        assert [r["index"] for r in out] == list(range(5))

    def test_deterministic_for_seed(self):
        a = monte_carlo(_trial, 6, seed=42, processes=1)
        b = monte_carlo(_trial, 6, seed=42, processes=1)
        assert a == b

    def test_serial_parallel_identical(self):
        """Results must not depend on the degree of parallelism."""
        a = monte_carlo(_trial, 8, seed=7, processes=1)
        b = monte_carlo(_trial, 8, seed=7, processes=4)
        assert a == b

    def test_trials_independent(self):
        out = monte_carlo(_trial, 10, seed=0, processes=1)
        vals = [r["value"] for r in out]
        assert len(set(vals)) == 10

    def test_zero_trials(self):
        assert monte_carlo(_trial, 0, seed=0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo(_trial, -1, seed=0)


class TestMonteCarloBatchedBackend:
    """backend="batched": block execution, identical seeds and order."""

    def test_matches_per_trial_backend(self):
        a = monte_carlo(_trial, 9, seed=17, processes=1)
        b = monte_carlo(_trial_block, 9, seed=17, processes=1, backend="batched")
        assert a == b

    def test_batch_size_does_not_change_results(self):
        base = monte_carlo(_trial_block, 10, seed=3, processes=1, backend="batched")
        for batch_size in (1, 3, 10, 99):
            out = monte_carlo(
                _trial_block, 10, seed=3, processes=1, backend="batched", batch_size=batch_size
            )
            assert out == base

    def test_parallel_matches_serial(self):
        a = monte_carlo(_trial_block, 8, seed=7, processes=1, backend="batched", batch_size=2)
        b = monte_carlo(_trial_block, 8, seed=7, processes=4, backend="batched", batch_size=2)
        assert a == b

    def test_zero_trials(self):
        assert monte_carlo(_trial_block, 0, seed=0, backend="batched") == []

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo(_trial, 3, seed=0, backend="threads")

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo(_trial_block, 3, seed=0, backend="batched", batch_size=0)

    def test_cardinality_mismatch_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo(_bad_block, 3, seed=0, processes=1, backend="batched")


class TestParameterGrid:
    def test_points_row_major(self):
        grid = ParameterGrid(a=[1, 2], b=["x", "y"])
        pts = grid.points()
        assert pts == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_len(self):
        assert len(ParameterGrid(a=[1, 2, 3], b=[1, 2])) == 6

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid(a=[])
        with pytest.raises(ValueError):
            ParameterGrid()

    def test_iter(self):
        assert list(ParameterGrid(a=[5])) == [{"a": 5}]


class TestRunSweep:
    def test_record_shape(self):
        grid = ParameterGrid(a=[1, 2])
        recs = run_sweep(_point, grid, n_trials=3, seed=0, processes=1)
        assert len(recs) == 6
        assert {r["a"] for r in recs} == {1, 2}
        assert {r["trial"] for r in recs} == {0, 1, 2}

    def test_deterministic_and_pool_invariant(self):
        grid = ParameterGrid(a=[1, 2, 3])
        a = run_sweep(_point, grid, n_trials=2, seed=9, processes=1)
        b = run_sweep(_point, grid, n_trials=2, seed=9, processes=3)
        assert a == b

    def test_batched_backend_matches_per_trial(self):
        # Same (point, trial) seeds under both backends ⇒ same records.
        grid = ParameterGrid(a=[1, 2, 3])
        a = run_sweep(_point, grid, n_trials=4, seed=9, processes=1)
        b = run_sweep(
            _point_block, grid, n_trials=4, seed=9, processes=1, backend="batched"
        )
        assert a == b

    def test_batched_backend_pool_invariant(self):
        grid = ParameterGrid(a=[1, 2])
        a = run_sweep(_point_block, grid, n_trials=3, seed=5, processes=1, backend="batched")
        b = run_sweep(_point_block, grid, n_trials=3, seed=5, processes=2, backend="batched")
        assert a == b

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_point, ParameterGrid(a=[1]), backend="gpu")


class TestSummarize:
    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["median"] == 2.5
        assert s["n"] == 4
        assert s["ci95"] > 0

    def test_single_value(self):
        s = summarize([7.0])
        assert s["mean"] == 7.0 and s["std"] == 0.0 and s["ci95"] == 0.0

    def test_empty(self):
        s = summarize([])
        assert s["n"] == 0
        assert np.isnan(s["mean"])


class TestAggregateRecords:
    def test_grouping_and_stats(self):
        recs = [
            {"g": "a", "v": 1.0},
            {"g": "a", "v": 3.0},
            {"g": "b", "v": 10.0},
        ]
        rows = aggregate_records(recs, group_by=["g"], fields=["v"])
        assert len(rows) == 2
        a_row = rows[0]
        assert a_row["g"] == "a"
        assert a_row["trials"] == 2
        assert a_row["v_mean"] == 2.0
        assert a_row["v_max"] == 3.0

    def test_first_seen_order(self):
        recs = [{"g": "z", "v": 1}, {"g": "a", "v": 2}]
        rows = aggregate_records(recs, group_by=["g"], fields=["v"])
        assert [r["g"] for r in rows] == ["z", "a"]

    def test_bool_field_becomes_rate(self):
        recs = [{"g": 1, "ok": True}, {"g": 1, "ok": False}]
        rows = aggregate_records(recs, group_by=["g"], fields=["ok"])
        assert rows[0]["ok_mean"] == 0.5


# ---------------------------------------------------------------------------
# Columnar results spool
# ---------------------------------------------------------------------------

from repro.batch.results import ResultBlock  # noqa: E402
from repro.parallel import ResultTable, assemble_blocks  # noqa: E402


def _point_block_as_block(point, seed_seqs, trials):
    """Batch worker that returns a ResultBlock directly."""
    records = [_point(point, s, t) for s, t in zip(seed_seqs, trials)]
    return ResultBlock.from_records(point, trials, records)


def _short_block(point, seed_seqs, trials):
    return ResultBlock.from_records(point, trials[:1], [{"value": 0.0}])


class TestColumnarSweep:
    """results="columnar" must be record-for-record identical."""

    GRID = dict(a=[1, 2, 3], b=["x", "y"])

    def test_batched_columnar_matches_records(self):
        grid = ParameterGrid(**self.GRID)
        recs = run_sweep(
            _point_block, grid, n_trials=4, seed=9, processes=1, backend="batched"
        )
        table = run_sweep(
            _point_block, grid, n_trials=4, seed=9, processes=1,
            backend="batched", results="columnar",
        )
        assert isinstance(table, ResultTable)
        assert list(table) == recs

    def test_per_trial_columnar_matches_records(self):
        grid = ParameterGrid(**self.GRID)
        recs = run_sweep(_point, grid, n_trials=3, seed=2, processes=1)
        table = run_sweep(
            _point, grid, n_trials=3, seed=2, processes=1, results="columnar"
        )
        assert list(table) == recs

    def test_parallel_columnar_matches_serial(self):
        grid = ParameterGrid(a=[1, 2], b=["x"])
        a = run_sweep(
            _point_block, grid, n_trials=4, seed=5, processes=1,
            backend="batched", results="columnar",
        )
        b = run_sweep(
            _point_block, grid, n_trials=4, seed=5, processes=2,
            backend="batched", results="columnar",
        )
        assert list(a) == list(b)

    def test_point_fn_may_return_blocks(self):
        grid = ParameterGrid(**self.GRID)
        via_dicts = run_sweep(
            _point_block, grid, n_trials=3, seed=7, processes=1,
            backend="batched", results="columnar",
        )
        via_blocks = run_sweep(
            _point_block_as_block, grid, n_trials=3, seed=7, processes=1,
            backend="batched", results="columnar",
        )
        assert list(via_blocks) == list(via_dicts)
        # and in records mode a returned block is unpacked to dicts
        recs = run_sweep(
            _point_block_as_block, grid, n_trials=3, seed=7, processes=1,
            backend="batched",
        )
        assert recs == list(via_dicts)

    def test_wrong_length_block_rejected(self):
        grid = ParameterGrid(a=[1])
        with pytest.raises(ValueError, match="block of 1"):
            run_sweep(
                _short_block, grid, n_trials=3, seed=0, processes=1,
                backend="batched", results="columnar",
            )

    def test_unknown_results_mode_rejected(self):
        with pytest.raises(ValueError, match="results mode"):
            run_sweep(
                _point, ParameterGrid(a=[1]), n_trials=1, seed=0, results="arrow"
            )

    def test_zero_trials_columnar(self):
        table = run_sweep(
            _point_block, ParameterGrid(a=[1]), n_trials=0, seed=0,
            backend="batched", results="columnar",
        )
        assert len(table) == 0 and list(table) == []


class TestResultBlock:
    def test_roundtrip(self):
        point = {"n": 4, "family": "regular"}
        records = [
            {"rounds": 3, "ok": True, "score": 0.5},
            {"rounds": 5, "ok": False, "score": 1.25},
        ]
        block = ResultBlock.from_records(point, [0, 1], records)
        assert block.n_trials == 2 and len(block) == 2
        assert block.fields == ["rounds", "ok", "score"]
        data = block.to_structured()
        assert data["rounds"].dtype.kind == "i"
        assert data["ok"].dtype.kind == "b"
        clone = ResultBlock.from_structured(point, block.trials, data)
        want = [
            {"n": 4, "family": "regular", "trial": 0, "rounds": 3, "ok": True, "score": 0.5},
            {"n": 4, "family": "regular", "trial": 1, "rounds": 5, "ok": False, "score": 1.25},
        ]
        assert block.records() == want
        assert clone.records() == want
        # materialized values are python scalars (json-safe)
        assert type(block.records()[0]["rounds"]) is int
        assert type(block.records()[0]["ok"]) is bool

    def test_cardinality_validated(self):
        with pytest.raises(ValueError):
            ResultBlock.from_records({}, [0, 1], [{"v": 1}])


class TestResultTable:
    def _table(self):
        blocks = [
            ResultBlock.from_records({"a": 1}, [0, 1], [{"v": 1.0}, {"v": 2.0}]),
            ResultBlock.from_records({"a": 2}, [0, 1], [{"v": 3.0}, {"v": 4.0}]),
        ]
        return assemble_blocks(blocks)

    def test_sequence_protocol(self):
        t = self._table()
        assert len(t) == 4
        assert t[0] == {"a": 1, "trial": 0, "v": 1.0}
        assert t[-1] == {"a": 2, "trial": 1, "v": 4.0}
        assert t[1:3] == [t[1], t[2]]
        assert [r["v"] for r in t] == [1.0, 2.0, 3.0, 4.0]
        with pytest.raises(IndexError):
            t[4]

    def test_columns_typed(self):
        t = self._table()
        assert t.column("v").dtype == np.float64
        assert t.column("a").dtype.kind == "i"
        assert t.to_records() == list(t)
        assert t.nbytes > 0

    def test_from_records(self):
        recs = [{"a": 1, "v": 2.0}, {"a": 2, "v": 3.0}]
        t = ResultTable.from_records(recs)
        assert list(t) == recs


class TestAggregateColumnarFastPath:
    def _records(self):
        rng = np.random.default_rng(3)
        recs = []
        for fam in ("reg", "er"):
            for n in (64, 128):
                for trial in range(6):
                    recs.append(
                        {
                            "family": fam,
                            "n": n,
                            "trial": trial,
                            "rounds": int(rng.integers(1, 20)),
                            "ok": bool(rng.random() < 0.7),
                            "maybe": None if trial == 0 else float(rng.random()),
                        }
                    )
        return recs

    def test_matches_dict_path(self):
        recs = self._records()
        table = ResultTable.from_records(recs)
        want = aggregate_records(recs, ["family", "n"], ["rounds", "ok", "maybe"])
        got = aggregate_records(table, ["family", "n"], ["rounds", "ok", "maybe"])
        assert got == want

    def test_first_seen_group_order(self):
        recs = self._records()[::-1]  # reversed: order must follow input
        table = ResultTable.from_records(recs)
        want = aggregate_records(recs, ["family", "n"], ["rounds"])
        got = aggregate_records(table, ["family", "n"], ["rounds"])
        assert got == want
        assert [r["family"] for r in got] == [r["family"] for r in want]

    def test_empty_table(self):
        assert aggregate_records(ResultTable.from_records([]), ["a"], ["v"]) == []

    def test_missing_field_matches_dict_path(self):
        recs = self._records()
        table = ResultTable.from_records(recs)
        want = aggregate_records(recs, ["family"], ["absent"])
        got = aggregate_records(table, ["family"], ["absent"])
        assert got == want


class TestWorkerState:
    def test_singleton_per_process(self):
        from repro.parallel import worker_state

        a = worker_state()
        b = worker_state()
        assert a is b
        assert a.engine_buffers is b.engine_buffers


def _ragged_block(point, seed_seqs, trials):
    """Worker with a conditional record key (trial 0 lacks 'err')."""
    out = []
    for s, t in zip(seed_seqs, trials):
        rec = _point(point, s, t)
        if t > 0:
            rec["err"] = float(t) / 10
        out.append(rec)
    return out


class TestColumnarHeterogeneousRecords:
    def test_conditional_keys_survive(self):
        grid = ParameterGrid(a=[1, 2])
        table = run_sweep(
            _ragged_block, grid, n_trials=3, seed=4, processes=1,
            backend="batched", results="columnar",
        )
        recs = run_sweep(
            _ragged_block, grid, n_trials=3, seed=4, processes=1, backend="batched"
        )
        assert "err" in table.fields
        for got, want in zip(table, recs):
            want = dict(want)
            want.setdefault("err", None)  # absent key materializes as None
            assert got == want
        agg_t = aggregate_records(table, ["a"], ["err"])
        agg_r = aggregate_records(recs, ["a"], ["err"])
        assert agg_t == agg_r
