"""Tests for the CLI's runner invocation and backend plumbing."""

from __future__ import annotations

import functools

import pytest

from repro.cli import _accepted_kwargs, main, run_experiment
from repro.experiments import runners as runner_mod


def _plain(trials=3, seed=None, processes=None):
    return [], {"trials": trials, "seed": seed, "processes": processes}


@functools.wraps(_plain)
def _wrapped(*args, **kwargs):
    return _plain(*args, **kwargs)


def _kwargs_sink(**kwargs):
    return [], dict(kwargs)


class TestAcceptedKwargs:
    def test_plain_function(self):
        assert _accepted_kwargs(_plain) == {"trials", "seed", "processes"}

    def test_partial_loses_bound_names_but_keeps_free_ones(self):
        # functools.partial was exactly the case the old co_varnames
        # sniffing mishandled; inspect.signature resolves it.
        part = functools.partial(_plain, trials=5)
        accepted = _accepted_kwargs(part)
        assert "seed" in accepted and "processes" in accepted

    def test_wrapped_function(self):
        assert _accepted_kwargs(_wrapped) == {"trials", "seed", "processes"}

    def test_var_keyword_accepts_everything(self):
        assert _accepted_kwargs(_kwargs_sink) is None


class TestRunExperiment:
    def test_partial_runner_receives_overrides(self, monkeypatch):
        monkeypatch.setattr(
            runner_mod,
            "run_e01_completion",
            functools.partial(runner_mod.run_e01_completion, ns=(64, 128)),
        )
        rows, meta = run_experiment("E1", trials=2, seed=5, processes=1)
        assert all(row["trials"] == 2 for row in rows)
        assert {row["n"] for row in rows} == {64, 128}

    def test_backend_forwarded_only_where_accepted(self, monkeypatch):
        captured = {}

        def spy(trials=1, seed=None, processes=None, backend="reference"):
            captured["backend"] = backend
            return [], {}

        monkeypatch.setattr(runner_mod, "run_e01_completion", spy)
        run_experiment("E1", backend="batched")
        assert captured["backend"] == "batched"

        def no_backend(trials=1, seed=None, processes=None):
            captured["called"] = True
            return [], {}

        monkeypatch.setattr(runner_mod, "run_e01_completion", no_backend)
        # Must not raise even though the runner has no backend parameter.
        run_experiment("E1", backend="batched")
        assert captured["called"]


class TestMainBackendFlag:
    def test_run_with_batched_backend(self, capsys):
        rc = main(
            ["run", "E1", "--trials", "2", "--seed", "4", "--processes", "1",
             "--backend", "batched"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Completion time" in out

    def test_backend_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "E1", "--backend", "warp-drive"])


class TestGraphFlags:
    def test_share_graph_and_cache_forwarded(self, capsys, tmp_path):
        from repro.cli import main

        rc = main(
            [
                "run",
                "E6",
                "--trials",
                "2",
                "--processes",
                "1",
                "--backend",
                "batched",
                "--share-graph",
                "--graph-cache",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "E6" in out
        assert "'share_graph': True" in out
        assert list(tmp_path.glob("regular-*.npz"))

    def test_share_graph_ignored_by_non_sweep_runner(self, capsys):
        from repro.cli import main

        # E10 takes neither share_graph nor graph_cache; the flags must
        # be dropped rather than crash the runner.
        rc = main(["run", "E10", "--share-graph", "--seed", "2"])
        assert rc == 0
