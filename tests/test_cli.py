"""Tests for the CLI's capability-driven runner invocation and plumbing."""

from __future__ import annotations

import functools
import inspect

import pytest

from repro.cli import main, run_experiment
from repro.experiments import list_experiments
from repro.experiments import runners as runner_mod


class TestRegistryCapabilities:
    """The registry's declared plan support must match runner signatures."""

    def test_capabilities_are_real_kwargs(self):
        for spec in list_experiments():
            fn = getattr(runner_mod, spec.runner)
            accepted = set(inspect.signature(fn).parameters)
            missing = set(spec.capabilities) - accepted
            assert not missing, (
                f"{spec.id} declares capabilities {sorted(missing)} its "
                f"runner {spec.runner} does not accept"
            )

    def test_every_experiment_declares_the_common_overrides(self):
        for spec in list_experiments():
            # E10 is a two-run traced experiment and S1 a single-service
            # trace replay: neither has a trials/processes axis.
            want = (
                {"seed"}
                if spec.id in ("E10", "S1")
                else {"trials", "seed", "processes"}
            )
            assert want <= set(spec.capabilities), spec.id

    def test_smoke_kwargs_are_real_kwargs(self):
        for spec in list_experiments():
            fn = getattr(runner_mod, spec.runner)
            accepted = set(inspect.signature(fn).parameters)
            assert set(spec.smoke) <= accepted, spec.id


class TestRunExperiment:
    def test_partial_runner_receives_overrides(self, monkeypatch):
        monkeypatch.setattr(
            runner_mod,
            "run_e01_completion",
            functools.partial(runner_mod.run_e01_completion, ns=(64, 128)),
        )
        rows, meta = run_experiment("E1", trials=2, seed=5, processes=1)
        assert all(row["trials"] == 2 for row in rows)
        assert {row["n"] for row in rows} == {64, 128}

    def test_backend_forwarded_where_declared(self, monkeypatch):
        captured = {}

        def spy(trials=1, seed=None, processes=None, backend="reference"):
            captured["backend"] = backend
            return [], {}

        monkeypatch.setattr(runner_mod, "run_e01_completion", spy)
        run_experiment("E1", backend="batched")
        assert captured["backend"] == "batched"

    def test_undeclared_override_warns_and_is_dropped(self, monkeypatch):
        captured = {}

        def spy(n=256, d=4, c=None, contended_c=1.5, seed=1010):
            captured["kwargs_seen"] = True
            return [], {}

        monkeypatch.setattr(runner_mod, "run_e10_stage1", spy)
        # E10 declares only ("seed",): backend must warn, not crash.
        with pytest.warns(UserWarning, match="E10 does not support the 'backend'"):
            run_experiment("E10", seed=3, backend="batched")
        assert captured["kwargs_seen"]

    def test_share_graph_warns_outside_fixed_topology_sweeps(self):
        with pytest.warns(UserWarning, match="share_graph"):
            rows, _meta = run_experiment(
                "E1", trials=1, seed=2, processes=1, share_graph=True
            )
        assert rows  # the run itself still happens


class TestMainBackendFlag:
    def test_run_with_batched_backend(self, capsys):
        rc = main(
            ["run", "E1", "--trials", "2", "--seed", "4", "--processes", "1",
             "--backend", "batched"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Completion time" in out

    def test_backend_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "E1", "--backend", "warp-drive"])

    def test_kernel_flag_maps_onto_plan(self, capsys, monkeypatch):
        # Pre-register REPRO_KERNELS with monkeypatch so the value main()
        # exports is rolled back at teardown (no env leak across tests).
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        rc = main(
            ["run", "E1", "--trials", "2", "--seed", "4", "--processes", "1",
             "--backend", "batched", "--kernel", "numpy"]
        )
        assert rc == 0
        assert "Completion time" in capsys.readouterr().out

    def test_kernel_flag_on_env_gated_runner_does_not_warn(self, monkeypatch, capsys):
        import warnings as warnings_mod

        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        # E5 has no kernel capability, but the env gate (set by _cmd_run)
        # is the documented mechanism there — no "ignored" warning.
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            rc = main(["run", "E5", "--trials", "2", "--processes", "1",
                       "--kernel", "numpy"])
        assert rc == 0

    def test_kernel_threads_forwarded_where_declared(self, monkeypatch):
        captured = {}

        def spy(trials=1, seed=None, processes=None, kernel_threads=None):
            captured["kernel_threads"] = kernel_threads
            return [], {}

        monkeypatch.setattr(runner_mod, "run_e01_completion", spy)
        run_experiment("E1", kernel_threads=2)
        assert captured["kernel_threads"] == 2

    def test_kernel_threads_flag_maps_onto_plan(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "2")
        rc = main(
            ["run", "E1", "--trials", "2", "--seed", "4", "--processes", "1",
             "--backend", "batched", "--kernel", "numpy",
             "--kernel-threads", "2"]
        )
        assert rc == 0
        assert "Completion time" in capsys.readouterr().out

    def test_kernel_threads_on_env_gated_runner_does_not_warn(self, monkeypatch):
        import warnings as warnings_mod

        monkeypatch.setenv("REPRO_KERNEL_THREADS", "2")
        # E5 has no kernel_threads capability; the env gate set by
        # _cmd_run is the documented mechanism there — no warning.
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            rc = main(["run", "E5", "--trials", "2", "--processes", "1",
                       "--kernel-threads", "2"])
        assert rc == 0


class TestGraphFlags:
    def test_share_graph_and_cache_forwarded(self, capsys, tmp_path):
        rc = main(
            [
                "run",
                "E6",
                "--trials",
                "2",
                "--processes",
                "1",
                "--backend",
                "batched",
                "--share-graph",
                "--graph-cache",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "E6" in out
        assert "'share_graph': True" in out
        assert list(tmp_path.glob("regular-*.npz"))

    def test_share_graph_warns_for_non_sweep_runner(self, capsys):
        # E10 takes neither share_graph nor graph_cache; the flags must
        # warn and be dropped rather than crash the runner.
        with pytest.warns(UserWarning, match="share_graph"):
            rc = main(["run", "E10", "--share-graph", "--seed", "2"])
        assert rc == 0


class TestSmokeCommand:
    def test_smoke_single_experiment_both_backends(self, capsys):
        rc = main(["smoke", "--only", "E1", "--processes", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Plan smoke" in out
        assert out.count("E1") >= 2  # one row per backend
