"""Tests for the experiment registry and (down-scaled) runners."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_e01_completion,
    run_e03_max_load,
    run_e04_burned_fraction,
    run_e05_dominance,
    run_e06_c_threshold,
    run_e07_degree_sweep,
    run_e08_almost_regular,
    run_e09_baselines,
    run_e10_stage1,
    run_e11_alive_decay,
    run_e12_dynamic,
)


class TestRegistry:
    def test_registered_experiments(self):
        assert len(EXPERIMENTS) == 14
        want = {f"E{i}" for i in range(1, 13)} | {"F1", "S1"}
        assert {s.id for s in list_experiments()} == want

    def test_ordered_listing(self):
        ids = [s.id for s in list_experiments()]
        assert ids == [f"E{i}" for i in range(1, 13)] + ["F1", "S1"]

    def test_lookup_case_insensitive(self):
        assert get_experiment("e4").id == "E4"

    def test_unknown_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("E99")

    def test_specs_are_complete(self):
        for spec in list_experiments():
            assert spec.claim and spec.paper_ref and spec.expected_shape
            assert spec.runner.startswith(("run_e", "run_f", "run_s"))
            assert spec.bench.startswith("benchmarks/bench_")

    def test_runners_exist(self):
        from repro.experiments import runners

        for spec in list_experiments():
            assert hasattr(runners, spec.runner)


class TestRunnersSmall:
    """Each runner executed at toy scale, serially: well-formed output."""

    def test_e01(self):
        rows, meta = run_e01_completion(ns=(64, 128), trials=2, processes=1, seed=1)
        assert len(rows) == 2
        assert all(r["completed"] == 2 for r in rows)
        assert "log2_fit" in meta

    def test_e03(self):
        rows, meta = run_e03_max_load(
            n=64, settings=((2.0, 2),), families=("regular",), trials=2, processes=1
        )
        assert meta["total_violations"] == 0
        assert all(row["violations"] == 0 for row in rows)

    def test_e04(self):
        rows, meta = run_e04_burned_fraction(
            ns=(64,), trials=2, include_paper_c=False, processes=1
        )
        assert len(rows) == 2  # two practical-c regimes
        for row in rows:
            assert row["max_s_t_worst"] <= 1.0

    def test_e05(self):
        rows, meta = run_e05_dominance(ns=(64,), cs=(1.5,), trials=3, processes=1)
        assert meta["all_nested"] and meta["all_dominated"]

    def test_e06(self):
        rows, _ = run_e06_c_threshold(n=64, cs=(1.0, 4.0), trials=3, processes=1)
        low, high = rows[0], rows[1]
        assert high["completion_rate"] >= low["completion_rate"]
        assert high["completion_rate"] == 1.0

    def test_e07(self):
        rows, _ = run_e07_degree_sweep(n=64, trials=2, processes=1)
        assert any(r["meets_hypothesis"] for r in rows)
        complete_row = [r for r in rows if "complete" in r["degree_regime"]][0]
        assert complete_row["degree"] == 64

    def test_e08(self):
        rows, _ = run_e08_almost_regular(n=64, ratios=(1, 2), trials=2, processes=1)
        assert len(rows) == 3  # two ratios + paper_extremal
        assert all(r["completed"] == r["trials"] for r in rows)

    def test_e09(self):
        rows, meta = run_e09_baselines(n=64, trials=2, processes=1)
        algos = {r["algorithm"] for r in rows}
        assert "saer" in algos and "godfrey_greedy" in algos
        saer_row = [r for r in rows if r["algorithm"] == "saer"][0]
        assert saer_row["max_load_max"] <= meta["capacity"]
        assert not saer_row["discloses_loads"]

    def test_e10(self):
        rows, meta = run_e10_stage1(n=256, seed=5)
        assert meta["all_K_below_gamma"]
        assert meta["all_r_below_envelope"]
        assert any(r["regime"].startswith("contended") for r in rows)

    def test_e11(self):
        rows, _ = run_e11_alive_decay(ns=(128,), trials=2, processes=1)
        assert rows[0]["within_bound"]

    def test_e12(self):
        rows, _ = run_e12_dynamic(
            n=64, rates=(0.1, 3.0), horizon=80, trials=1, processes=1
        )
        # includes the no-recovery control row
        assert len(rows) == 3
        sub = [r for r in rows if r["rate"] == 0.1 and r["recovery"] is not None][0]
        sup = [r for r in rows if r["rate"] == 3.0][0]
        assert sub["backlog_mean_2nd_half"] < sup["backlog_mean_2nd_half"]


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E12" in out

    def test_info(self, capsys):
        from repro.cli import main

        assert main(["info", "E5"]) == 0
        assert "Corollary 2" in capsys.readouterr().out

    def test_info_unknown(self, capsys):
        from repro.cli import main

        assert main(["info", "E99"]) == 2

    def test_run_small(self, capsys, tmp_path):
        from repro.cli import main

        csv = tmp_path / "out.csv"
        assert main(["run", "E5", "--trials", "2", "--processes", "1", "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "RAES dominates SAER" in out
        assert csv.exists()

    def test_run_ablations(self, capsys):
        from repro.cli import main

        assert main(["run", "ablations", "--trials", "1", "--processes", "1"]) == 0
        out = capsys.readouterr().out
        assert "design-choice ablations" in out
        assert "distinct-sampling" in out


class TestSharedTopologySweep:
    def test_e06_share_graph_smoke(self, tmp_path):
        from repro.experiments.runners import run_e06_c_threshold

        rows, meta = run_e06_c_threshold(
            n=64,
            cs=(1.5, 4.0),
            trials=2,
            seed=1,
            processes=1,
            backend="batched",
            share_graph=True,
            graph_cache=str(tmp_path),
        )
        assert meta["share_graph"] is True
        assert len(rows) == 2
        assert len(list(tmp_path.glob("regular-*.npz"))) == 1

    def test_e06_share_graph_deterministic_across_processes(self):
        from repro.experiments.runners import run_e06_c_threshold

        a = run_e06_c_threshold(
            n=64, cs=(1.5, 4.0), trials=2, seed=1, processes=1, share_graph=True
        )
        b = run_e06_c_threshold(
            n=64, cs=(1.5, 4.0), trials=2, seed=1, processes=2, share_graph=True
        )
        assert a[0] == b[0]

    def test_e01_graph_cache_hits(self, tmp_path):
        from repro.experiments.runners import run_e01_completion

        run_e01_completion(
            ns=(64, 128), trials=2, seed=3, processes=1, graph_cache=str(tmp_path)
        )
        files = set(tmp_path.glob("regular-*.npz"))
        assert len(files) == 4  # one graph per (n, trial): per-trial g_seed
        run_e01_completion(
            ns=(64, 128), trials=2, seed=3, processes=1, graph_cache=str(tmp_path)
        )
        assert set(tmp_path.glob("regular-*.npz")) == files
