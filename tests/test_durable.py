"""Tests for durable execution (:mod:`repro.durable`).

Four pillars:

* **supervisor** — :func:`supervised_map` survives worker death
  (SIGKILL), quarantines poison tasks after a solo probation run,
  enforces per-task timeouts, and retries exceptions per policy;
* **journal** — torn tails are tolerated on read *and* repaired on the
  next append; the plan fingerprint includes exactly the axes that can
  change result bits;
* **spool** — block files round-trip :class:`ResultBlock` s exactly
  (object columns included), and corruption is detected by checksum;
* **durable execute** — a spool-sink run is bit-identical to the
  in-memory control across backends, resumes cleanly from torn /
  missing / corrupt state, rejects mismatched plans, and quarantines a
  poison grid point as a structured failure row.

Pool-backed tests use ``processes=2`` explicitly (CI may be a 1-core
box) and module-level task functions (fork pickles by reference).
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

import repro.plan as plan_mod
from repro.batch.results import ResultBlock
from repro.durable import (
    JournalWriter,
    RetryPolicy,
    SpoolReader,
    TaskFailure,
    failure_block,
    plan_fingerprint,
    read_block,
    read_journal,
    supervised_map,
    write_block,
)
from repro.errors import (
    PlanError,
    ResumeMismatchError,
    SpoolCorruptError,
    WorkerCrashError,
)
from repro.parallel.sweep import ParameterGrid
from repro.plan import (
    BackendSpec,
    ExecSpec,
    GraphSpec,
    ResultSpec,
    RunPlan,
    SeedSpec,
    WorkSpec,
    execute,
)

# ---------------------------------------------------------------------------
# Module-level task functions (pool workers pickle them by reference)
# ---------------------------------------------------------------------------


def _square(task):
    return task * task


def _crash_once(task):
    """SIGKILL our worker the first time the marked item runs."""
    idx, marker_dir = task
    if idx == 2:
        marker = Path(marker_dir) / "crashed"
        if not marker.exists():
            marker.touch()
            os.kill(os.getpid(), signal.SIGKILL)
    return idx * 10


def _poison(task):
    """One item crashes its worker on every attempt."""
    idx = task
    if idx == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return idx + 100


def _sleepy(task):
    idx, secs = task
    time.sleep(secs)
    return idx


def _raise_once(task):
    idx, marker_dir = task
    marker = Path(marker_dir) / f"raised-{idx}"
    if idx == 1 and not marker.exists():
        marker.touch()
        raise ValueError("transient")
    return idx


def _always_raises(task):
    raise RuntimeError(f"task {task} is broken")


# -- durable-execute work functions -----------------------------------------


def _seeded_record(graph, point, seed):
    rng = np.random.default_rng(seed)
    return {
        "n": point["n"],
        "draw": float(rng.random()),
        "tag": f"n{point['n']}",  # object column: exercises JSON encoding
    }


def _seeded_batch(graph, point, seeds):
    return [_seeded_record(graph, point, s) for s in seeds]


def _poison_point_record(graph, point, seed):
    if point["n"] == 96:
        raise ValueError("poison point")
    return _seeded_record(graph, point, seed)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0).validate()
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5).validate()
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0).validate()
        with pytest.raises(ValueError):
            RetryPolicy(on_failure="explode").validate()
        RetryPolicy().validate()

    def test_delay_deterministic_and_capped(self):
        p = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        assert p.delay(2, "k") == p.delay(2, "k")
        assert p.delay(2, "k") != p.delay(3, "k")  # jitter varies per attempt
        for attempts in range(1, 12):
            d = p.delay(attempts, 0)
            assert 0 <= d <= p.max_delay

    def test_no_jitter_is_exact_exponential(self):
        p = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.0)
        assert p.delay(1, 0) == pytest.approx(0.1)
        assert p.delay(3, 0) == pytest.approx(0.4)


# ---------------------------------------------------------------------------
# supervised_map
# ---------------------------------------------------------------------------


class TestSupervisedMapSerial:
    def test_plain_map(self):
        assert supervised_map(_square, [1, 2, 3], processes=1) == [1, 4, 9]

    def test_on_result_fires_in_order(self):
        seen = []
        supervised_map(
            _square, [1, 2, 3], processes=1, on_result=lambda i, r: seen.append((i, r))
        )
        assert seen == [(0, 1), (1, 4), (2, 9)]

    def test_exception_propagates_by_default(self):
        with pytest.raises(RuntimeError, match="broken"):
            supervised_map(_always_raises, [0], processes=1)

    def test_retry_exceptions_recovers(self, tmp_path):
        policy = RetryPolicy(retry_exceptions=True, base_delay=0.0)
        items = [(i, str(tmp_path)) for i in range(3)]
        assert supervised_map(_raise_once, items, processes=1, policy=policy) == [0, 1, 2]

    def test_exhausted_retries_return_taskfailure(self):
        policy = RetryPolicy(
            max_attempts=2, base_delay=0.0, retry_exceptions=True, on_failure="return"
        )
        out = supervised_map(_always_raises, [7], processes=1, policy=policy)
        (failure,) = out
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "exception"
        assert failure.attempts == 2
        assert "broken" in failure.error


class TestSupervisedMapPool:
    def test_survives_worker_sigkill(self, tmp_path):
        items = [(i, str(tmp_path)) for i in range(5)]
        policy = RetryPolicy(base_delay=0.0)
        out = supervised_map(_crash_once, items, processes=2, policy=policy)
        assert out == [0, 10, 20, 30, 40]
        assert (tmp_path / "crashed").exists()  # the crash really happened

    def test_poison_task_quarantined(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, on_failure="return")
        out = supervised_map(_poison, [0, 1, 2, 3], processes=2, policy=policy)
        assert out[0] == 100 and out[2] == 102 and out[3] == 103
        failure = out[1]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "crash"
        # max_attempts blamed crashes + the confirming solo probation run
        assert failure.attempts == 3

    def test_poison_task_raises_under_default_policy(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with pytest.raises(WorkerCrashError):
            supervised_map(_poison, [0, 1, 2], processes=2, policy=policy)

    def test_task_timeout_quarantines_only_the_overdue(self):
        policy = RetryPolicy(
            max_attempts=1, base_delay=0.0, task_timeout=1.0, on_failure="return"
        )
        items = [(0, 0.0), (1, 30.0), (2, 0.0)]
        out = supervised_map(_sleepy, items, processes=2, policy=policy)
        assert out[0] == 0 and out[2] == 2
        failure = out[1]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "timeout"


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


def _write_journal(path, *, fingerprint="f" * 64, entries=()):
    with JournalWriter(path) as w:
        w.write_header(
            fingerprint=fingerprint, work="t", points=4, trials=2,
            backend="reference", processes=1,
        )
        for e in entries:
            w.append(e)


class TestJournal:
    def test_roundtrip_last_entry_wins(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JournalWriter(path) as w:
            w.write_header(
                fingerprint="f" * 64, work="t", points=2, trials=1,
                backend="reference", processes=1,
            )
            w.failure(
                0, point_params={"n": 64}, failure_kind="crash",
                error="boom", exc_type="X", attempts=3,
            )
            w.block(0, file="blocks/b0.npz", sha256="a" * 64, rows=1, point_params={"n": 64})
        header, entries = read_journal(path)
        assert header["fingerprint"] == "f" * 64
        assert header["processes"] == 1
        assert entries[0]["kind"] == "block"  # the re-run superseded the failure

    def test_torn_tail_skipped_on_read(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write_journal(path)
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "blo')  # SIGKILL mid-write
        with pytest.warns(UserWarning, match="torn"):
            header, entries = read_journal(path)
        assert header is not None and entries == {}

    def test_torn_tail_repaired_before_next_append(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write_journal(path)
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "blo')
        # The next writer must not merge its first entry into the torn
        # line (that would lose both).
        with JournalWriter(path) as w:
            w.block(1, file="blocks/b1.npz", sha256="c" * 64, rows=2, point_params={"n": 96})
        with pytest.warns(UserWarning, match="torn"):
            _header, entries = read_journal(path)
        assert entries[1]["file"] == "blocks/b1.npz"

    def test_missing_header_is_corrupt(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "block", "point": 0}\n')
        with pytest.raises(SpoolCorruptError, match="header"):
            read_journal(path)


def _fingerprint_plan(**overrides):
    base = dict(
        grid=ParameterGrid(n=[64, 96]),
        work=WorkSpec(record=_seeded_record, batch=_seeded_batch, name="fp-test"),
        trials=2,
        seeds=SeedSpec(root=11),
    )
    base.update(overrides)
    return RunPlan(**base)


class TestPlanFingerprint:
    def test_bit_determining_axes_change_it(self):
        base = plan_fingerprint(_fingerprint_plan())
        assert plan_fingerprint(_fingerprint_plan(trials=3)) != base
        assert plan_fingerprint(_fingerprint_plan(seeds=SeedSpec(root=12))) != base
        assert plan_fingerprint(_fingerprint_plan(grid=ParameterGrid(n=[64]))) != base
        assert (
            plan_fingerprint(_fingerprint_plan(backend=BackendSpec(name="batched")))
            != base
        )

    def test_bit_identical_axes_do_not(self):
        base = plan_fingerprint(_fingerprint_plan())
        same = [
            _fingerprint_plan(execution=ExecSpec(processes=4)),
            _fingerprint_plan(execution=ExecSpec(mode="serial")),
            _fingerprint_plan(results=ResultSpec(mode="records")),
            _fingerprint_plan(
                results=ResultSpec(mode="columnar", sink="spool", dir="/tmp/x")
            ),
        ]
        for plan in same:
            assert plan_fingerprint(plan) == base


# ---------------------------------------------------------------------------
# Spool
# ---------------------------------------------------------------------------


def _sample_block(n=64):
    return ResultBlock.from_records(
        {"n": n, "c": 1.5},
        [0, 1, 2],
        [
            {"rounds": 4, "ratio": 0.5, "label": "a"},
            {"rounds": 5, "ratio": 0.25, "label": "b"},
            {"rounds": 6, "ratio": 0.125, "label": "c"},
        ],
    )


class TestSpool:
    def test_block_roundtrip_exact(self, tmp_path):
        block = _sample_block()
        rel, sha = write_block(tmp_path, 3, block)
        assert rel == "blocks/block-00003.npz"
        back = read_block(tmp_path, rel, sha256=sha)
        assert back.point == block.point
        assert back.fields == block.fields  # order preserved
        np.testing.assert_array_equal(back.trials, block.trials)
        assert back.records() == block.records()

    def test_object_column_survives_without_pickle(self, tmp_path):
        rel, sha = write_block(tmp_path, 0, _sample_block())
        back = read_block(tmp_path, rel, sha256=sha)
        assert list(back.data["label"]) == ["a", "b", "c"]
        assert back.data["label"].dtype == object

    def test_corrupt_block_fails_checksum(self, tmp_path):
        rel, sha = write_block(tmp_path, 0, _sample_block())
        (tmp_path / rel).write_bytes(b"garbage")
        with pytest.raises(SpoolCorruptError, match="checksum|missing|unreadable"):
            read_block(tmp_path, rel, sha256=sha)

    def test_verified_completed_drops_bad_blocks(self, tmp_path):
        block = _sample_block()
        rel0, sha0 = write_block(tmp_path, 0, block)
        rel1, sha1 = write_block(tmp_path, 1, block)
        with JournalWriter(tmp_path / "journal.jsonl") as w:
            w.write_header(
                fingerprint="f" * 64, work="t", points=2, trials=3,
                backend="reference", processes=1,
            )
            w.block(0, file=rel0, sha256=sha0, rows=3, point_params={"n": 64})
            w.block(1, file=rel1, sha256=sha1, rows=3, point_params={"n": 64})
        (tmp_path / rel1).write_bytes(b"torn")
        reader = SpoolReader(tmp_path)
        assert set(reader.completed) == {0, 1}
        assert set(reader.verified_completed()) == {0}

    def test_failure_block_shape(self):
        entry = {
            "point_params": {"n": 64},
            "failure_kind": "crash",
            "error": "boom",
            "attempts": 4,
        }
        block = failure_block(entry)
        (row,) = block.records()
        assert row["trial"] == -1
        assert row["failed"] is True and row["failure_kind"] == "crash"


# ---------------------------------------------------------------------------
# Durable execute
# ---------------------------------------------------------------------------


def _durable_plan(spool_dir=None, **overrides):
    base = dict(
        grid=ParameterGrid(n=[64, 96]),
        work=WorkSpec(record=_seeded_record, batch=_seeded_batch, name="durable-test"),
        trials=2,
        seeds=SeedSpec(root=123),
        results=ResultSpec(mode="columnar"),
    )
    base.update(overrides)
    plan = RunPlan(**base)
    if spool_dir is not None:
        plan = plan.override(
            results=ResultSpec(mode="columnar", sink="spool", dir=str(spool_dir))
        )
    return plan


class TestDurableExecute:
    @pytest.mark.parametrize("backend", ["reference", "batched"])
    def test_spool_matches_memory_control(self, tmp_path, backend):
        spec = BackendSpec(name=backend)
        control = execute(_durable_plan(backend=spec))
        spooled = execute(_durable_plan(tmp_path / "spool", backend=spec))
        assert spooled.equals(control)

    def test_pooled_spool_matches_serial_control(self, tmp_path):
        control = execute(_durable_plan())
        spooled = execute(
            _durable_plan(tmp_path / "spool", execution=ExecSpec(processes=2))
        )
        assert spooled.equals(control)

    def test_records_mode(self, tmp_path):
        control = execute(_durable_plan(results=ResultSpec(mode="records")))
        plan = _durable_plan().override(
            results=ResultSpec(mode="records", sink="spool", dir=str(tmp_path / "s"))
        )
        assert execute(plan) == control

    def test_rerun_replays_without_recompute(self, tmp_path):
        spool = tmp_path / "spool"
        first = execute(_durable_plan(spool))
        blocks = sorted((spool / "blocks").iterdir())
        mtimes = [b.stat().st_mtime_ns for b in blocks]
        again = execute(_durable_plan(spool))
        assert again.equals(first)
        assert [b.stat().st_mtime_ns for b in blocks] == mtimes  # untouched

    def test_resume_after_damage_is_bit_identical(self, tmp_path):
        spool = tmp_path / "spool"
        control = execute(_durable_plan(spool))
        # Simulate a crashed run: one block gone, one corrupted, a torn
        # journal tail.
        reader = SpoolReader(spool)
        (spool / reader.entries[0]["file"]).unlink()
        (spool / reader.entries[1]["file"]).write_bytes(b"bit rot")
        with open(spool / "journal.jsonl", "ab") as fh:
            fh.write(b'{"kind": "blo')
        with pytest.warns(UserWarning, match="torn"):
            resumed = execute(_durable_plan(), resume=spool)
        assert resumed.equals(control)

    def test_resume_kwarg_adopts_spool_sink(self, tmp_path):
        spool = tmp_path / "spool"
        out = execute(_durable_plan(), resume=spool)
        assert (spool / "journal.jsonl").exists()
        assert out.equals(execute(_durable_plan()))

    def test_resume_contradicting_dir_rejected(self, tmp_path):
        plan = _durable_plan(tmp_path / "a")
        with pytest.raises(PlanError, match="contradicts"):
            execute(plan, resume=tmp_path / "b")

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        spool = tmp_path / "spool"
        execute(_durable_plan(spool))
        with pytest.raises(ResumeMismatchError):
            execute(_durable_plan(spool, trials=3))

    def test_spool_requires_reproducible_seeds(self, tmp_path):
        plan = _durable_plan(tmp_path / "s", seeds=SeedSpec(root=None))
        with pytest.raises(PlanError, match="reproducible"):
            plan.validate()

    def test_poison_point_becomes_failure_row(self, tmp_path):
        plan = _durable_plan(
            tmp_path / "spool",
            work=WorkSpec(record=_poison_point_record, name="poison-test"),
            execution=ExecSpec(retries=2),
        )
        table = execute(plan)
        rows = table.to_records()
        good = [r for r in rows if r.get("trial") != -1]
        bad = [r for r in rows if r.get("trial") == -1]
        assert len(good) == 2 and all(r["n"] == 64 for r in good)
        (failure,) = bad
        assert failure["n"] == 96
        assert failure["failed"] is True
        assert failure["failure_kind"] == "exception"
        assert failure["attempts"] == 2
        # The quarantine is journaled, so a later resume sees it too.
        reader = SpoolReader(tmp_path / "spool")
        assert set(reader.failures) == {1}

    def test_journal_header_records_resolved_processes(self, tmp_path):
        spool = tmp_path / "spool"
        execute(_durable_plan(spool, execution=ExecSpec(processes=2)))
        header, _entries = read_journal(spool / "journal.jsonl")
        assert header["processes"] == 2


# ---------------------------------------------------------------------------
# ExecSpec ergonomics
# ---------------------------------------------------------------------------


class TestOversubscriptionWarning:
    def test_warns_once(self, monkeypatch):
        from repro.parallel.pool import available_cpus

        monkeypatch.setattr(plan_mod, "_OVERSUB_WARNED", False)
        over = available_cpus() + 2
        with pytest.warns(UserWarning, match="exceeds available cpus"):
            ExecSpec(processes=over).validate()
        with warnings_none():
            ExecSpec(processes=over).validate()

    def test_within_budget_never_warns(self, monkeypatch):
        monkeypatch.setattr(plan_mod, "_OVERSUB_WARNED", False)
        with warnings_none():
            ExecSpec(processes=1).validate()
            ExecSpec(processes=None).validate()


class warnings_none:
    """Context asserting no warnings were raised inside it."""

    def __enter__(self):
        import warnings as _w

        self._catcher = _w.catch_warnings(record=True)
        self._log = self._catcher.__enter__()
        _w.simplefilter("always")
        return self

    def __exit__(self, *exc):
        self._catcher.__exit__(*exc)
        if exc[0] is None:
            assert not self._log, f"unexpected warnings: {[str(w.message) for w in self._log]}"
