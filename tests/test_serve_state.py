"""Tests for repro.serve.state — the shared round-step state machine."""

import numpy as np
import pytest

from repro.batch import available_kernels
from repro.errors import ProtocolConfigError
from repro.graphs import BipartiteGraph, trust_subsets
from repro.serve import RoundOutcome, ServingState


@pytest.fixture(scope="module")
def graph():
    return trust_subsets(96, 96, 10, seed=17)


def _isolated_graph():
    """Clients 0..2 wired to servers; client 3 has no servers at all."""
    edges = [(c, s) for c in range(3) for s in range(4)]
    return BipartiteGraph.from_edges(4, 4, edges)


def _stall(st: ServingState) -> None:
    """Burn every server (maintaining the burned == over-capacity
    invariant); with recovery disabled nothing ever assigns again."""
    st.cum_received[:] = st.capacity + 1
    st.burned[:] = True


class TestLifecycle:
    def test_initial_state(self, graph):
        st = ServingState(graph, 2.0, 4, seed=0)
        assert st.backlog == 0
        assert st.burned_count == 0
        assert st.round_no == 0
        assert st.dropped == 0
        assert st.capacity == 8

    def test_recovery_validation(self, graph):
        with pytest.raises(ProtocolConfigError):
            ServingState(graph, 2.0, 4, recovery=0)

    def test_empty_round_consumes_no_randomness(self, graph):
        """An empty round must skip the uniform draw — that is the
        stream contract the simulator goldens pin."""
        a = ServingState(graph, 2.0, 4, seed=42)
        b = ServingState(graph, 2.0, 4, seed=42)
        for _ in range(5):
            a.round_begin()
            a.route()
        # b draws nothing either way; streams must still be aligned.
        assert a.rng.random() == b.rng.random()

    def test_route_returns_outcome(self, graph):
        st = ServingState(graph, 2.0, 4, seed=1)
        st.round_begin()
        st.admit_counts(np.ones(graph.n_clients, dtype=np.int64))
        out = st.route()
        assert isinstance(out, RoundOutcome)
        assert out.round_no == 0
        assert out.assigned + out.backlog == graph.n_clients
        assert out.latencies.size == out.assigned
        assert out.assigned_servers.size == out.assigned
        assert out.assigned_tags is None  # tags off by default


class TestAdmission:
    def test_admit_counts_drops_isolated(self):
        st = ServingState(_isolated_graph(), 2.0, 4, seed=0)
        counts = np.array([1, 1, 1, 5], dtype=np.int64)
        admitted = st.admit_counts(counts)
        assert admitted == 3
        assert st.dropped == 5
        assert st.backlog == 3

    def test_admit_balls_returns_dropped_tags(self):
        st = ServingState(_isolated_graph(), 2.0, 4, seed=0, track_tags=True)
        owners = np.array([0, 3, 1, 3], dtype=np.int64)
        tags = np.array([10, 11, 12, 13], dtype=np.int64)
        admitted, dropped_tags = st.admit_balls(owners, tags)
        assert admitted == 2
        assert sorted(dropped_tags.tolist()) == [11, 13]
        assert st.dropped == 2

    def test_admit_balls_range_validation(self, graph):
        st = ServingState(graph, 2.0, 4, seed=0)
        with pytest.raises(ValueError):
            st.admit_balls(np.array([graph.n_clients], dtype=np.int64))
        with pytest.raises(ValueError):
            st.admit_balls(np.array([-1], dtype=np.int64))

    def test_buffer_growth_beyond_initial_capacity(self, graph):
        st = ServingState(graph, 2.0, 4, seed=0, track_tags=True)
        _stall(st)  # nothing assigns, so the whole batch must survive
        n = 5000  # > the 1024 starting capacity
        owners = np.zeros(n, dtype=np.int64)
        tags = np.arange(n, dtype=np.int64)
        st.admit_balls(owners, tags)
        assert st.backlog == n
        st.round_begin()
        out = st.route()
        assert out.assigned == 0
        assert st.backlog == n

    def test_tags_follow_balls_through_compaction(self, graph):
        st = ServingState(graph, 2.0, 4, seed=3, track_tags=True)
        owners = np.arange(graph.n_clients, dtype=np.int64)
        tags = owners * 100
        st.admit_balls(owners, tags)
        st.round_begin()
        out = st.route()
        # every assigned tag identifies its owner by construction
        assert np.array_equal(out.assigned_tags // 100 * 100, out.assigned_tags)


class TestRecoveryAndChurn:
    def test_burn_and_heal(self, graph):
        st = ServingState(graph, 1.0, 2, recovery=3, seed=5)  # capacity 2
        for _ in range(4):
            st.round_begin()
            st.admit_counts(np.full(graph.n_clients, 3, dtype=np.int64))
            st.route()
        assert st.burned_count > 0
        # Shed the backlog (it would re-burn healed servers every round),
        # then recovery must eventually heal everything.
        st.evict_overdue(1)
        assert st.backlog == 0
        for _ in range(10):
            st.round_begin()
            st.route()
        assert st.burned_count == 0
        # Healed servers reset their counters: none can still be over.
        assert st.cum_received.max() <= st.capacity

    def test_burned_matches_over_capacity_invariant(self, graph):
        """burned == (cum_received > capacity) at every round — the
        invariant the kernel path's accept rule relies on."""
        st = ServingState(graph, 1.5, 4, recovery=4, seed=6)
        rng = np.random.default_rng(0)
        for _ in range(20):
            st.round_begin()
            st.admit_counts(rng.poisson(0.8, graph.n_clients).astype(np.int64))
            st.route()
            assert np.array_equal(st.burned, st.cum_received > st.capacity)


class TestEviction:
    def test_evict_overdue(self, graph):
        st = ServingState(graph, 2.0, 4, seed=7, track_tags=True)
        _stall(st)
        st.admit_balls(np.zeros(4, dtype=np.int64), np.array([1, 2, 3, 4], dtype=np.int64))
        for _ in range(3):
            st.round_begin()
            st.route()
        owners, tags = st.evict_overdue(3)
        assert owners.tolist() == [0, 0, 0, 0]
        assert sorted(tags.tolist()) == [1, 2, 3, 4]
        assert st.backlog == 0

    def test_evict_keeps_young_balls(self, graph):
        st = ServingState(graph, 2.0, 4, seed=8, track_tags=True)
        _stall(st)
        st.admit_balls(np.zeros(2, dtype=np.int64), np.array([1, 2], dtype=np.int64))
        st.round_begin()
        st.route()
        st.admit_balls(np.zeros(1, dtype=np.int64), np.array([3], dtype=np.int64))
        _owners, tags = st.evict_overdue(1)
        assert sorted(tags.tolist()) == [1, 2]  # the young ball (tag 3) stays
        assert st.backlog == 1

    def test_evict_validation(self, graph):
        st = ServingState(graph, 2.0, 4, seed=9)
        with pytest.raises(ValueError):
            st.evict_overdue(0)


class TestKernelParity:
    """Every kernel gate must produce identical assignments from an
    identical seed — the same exact-stream contract the batched engine
    pins, extended to the serving round."""

    @pytest.mark.parametrize("kernel", [k for k in available_kernels() if k != "numpy"])
    def test_kernel_matches_numpy_stream(self, graph, kernel):
        ref = ServingState(graph, 1.5, 4, recovery=5, seed=123, track_tags=True)
        alt = ServingState(graph, 1.5, 4, recovery=5, seed=123, kernel=kernel, track_tags=True)
        assert alt.kernel_name == kernel
        rng = np.random.default_rng(99)
        for _ in range(15):
            arr = rng.poisson(0.6, graph.n_clients).astype(np.int64)
            for st in (ref, alt):
                st.round_begin()
                st.admit_counts(arr)
            a, b = ref.route(), alt.route()
            assert a.assigned == b.assigned
            assert np.array_equal(a.assigned_servers, b.assigned_servers)
            assert np.array_equal(a.latencies, b.latencies)
            assert np.array_equal(ref.burned, alt.burned)
            assert np.array_equal(ref.cum_received, alt.cum_received)

    @pytest.mark.parametrize("kernel", [k for k in available_kernels() if k != "numpy"])
    def test_kernel_parity_under_churn(self, graph, kernel):
        from repro.dynamic import RewireChurn

        ref = ServingState(graph, 2.0, 4, recovery=6, churn=RewireChurn(0.2), seed=321)
        alt = ServingState(
            graph, 2.0, 4, recovery=6, churn=RewireChurn(0.2), seed=321, kernel=kernel
        )
        rng = np.random.default_rng(5)
        for _ in range(12):
            arr = rng.poisson(0.5, graph.n_clients).astype(np.int64)
            for st in (ref, alt):
                st.round_begin()
                st.admit_counts(arr)
            a, b = ref.route(), alt.route()
            assert a.assigned == b.assigned
            assert np.array_equal(a.assigned_servers, b.assigned_servers)
