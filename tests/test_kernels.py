"""Parity suite for the batched engine's round kernels.

The load-bearing contract: every kernel implementation — the numpy
reference, the interpreted compiled-algorithm loops (``python``), the
numba JIT, and the C extension — produces **bit-identical** per-trial
results (rounds, work, assigned, completion, max load, blocked servers,
full load vectors).  The ``python`` kernel is the same code numba
compiles, so parity here certifies the compiled algorithm on installs
without numba or a C compiler; CI's ``kernels`` job re-runs the suite
with numba installed and the C path built.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchedSaerPolicy,
    EngineBuffers,
    available_kernels,
    resolve_kernel,
    resolve_threads,
    run_trials_batched,
)
from repro.batch.kernels import (
    KERNELS_ENV,
    RNG_BLOCK,
    THREADS_ENV,
    _round_loops,
    _round_loops_mt,
    block_clients_for,
    fill_uniforms,
    trial_chunks,
)
from repro.core.config import ProtocolParams, RunOptions
from repro.graphs import near_regular, random_regular_bipartite, trust_subsets
from repro.rng import make_rng, spawn_seeds

RESULT_FIELDS = (
    "completed",
    "rounds",
    "work",
    "assigned_balls",
    "max_load",
    "blocked_servers",
)

# Kernels testable on this install: "python" always runs the compiled
# algorithm interpreted; cext/numba join in when buildable/importable.
COMPILED = [k for k in available_kernels() if k != "numpy"]


def assert_kernels_match(
    graph, params, policy, seeds, *, demands=None, options=None, threads=None
):
    """Every available kernel must reproduce the numpy path bit-for-bit."""
    ref = run_trials_batched(
        graph, params, policy, seeds=seeds, demands=demands, options=options,
        kernel="numpy",
    )
    for name in COMPILED:
        got = run_trials_batched(
            graph, params, policy, seeds=seeds, demands=demands, options=options,
            kernel=name, threads=threads,
        )
        for f in RESULT_FIELDS:
            assert np.array_equal(getattr(ref, f), getattr(got, f)), (
                f"{name} kernel (threads={threads}) diverges on {f}: "
                f"{getattr(got, f)} != {getattr(ref, f)}"
            )
        assert np.array_equal(ref.loads, got.loads), (
            f"{name} kernel (threads={threads}) diverges on loads"
        )
    return ref


class TestKernelParity:
    """Bit-identity across kernels, branches, and graph families."""

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    @pytest.mark.parametrize("c,d", [(1.5, 4), (2.0, 2), (1.2, 4)])
    def test_regular_graph(self, regular_graph, policy, c, d):
        assert_kernels_match(
            regular_graph, ProtocolParams(c=c, d=d), policy, spawn_seeds(11, 5)
        )

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    def test_irregular_graphs(self, trust_graph, policy):
        assert_kernels_match(
            trust_graph, ProtocolParams(c=1.5, d=4), policy, spawn_seeds(13, 4)
        )
        nr = near_regular(96, 6, 18, seed=3)
        assert_kernels_match(nr, ProtocolParams(c=1.5, d=3), policy, spawn_seeds(17, 4))

    def test_dense_branch(self):
        # tiny server side: every round takes the dense (full-sweep) path
        g = random_regular_bipartite(24, 6, seed=4)
        assert_kernels_match(g, ProtocolParams(c=1.5, d=4), "saer", spawn_seeds(5, 8))

    def test_sparse_branch(self):
        # one ball per client on a larger graph: sparse from round one
        g = random_regular_bipartite(160, 8, seed=6)
        demands = np.ones(160, dtype=np.int64)
        assert_kernels_match(
            g, ProtocolParams(c=2.0, d=4), "saer", spawn_seeds(7, 3), demands=demands
        )

    def test_round_cap_hit(self, regular_graph):
        # starvation regime + low cap: trials stop at the cap un-completed
        ref = assert_kernels_match(
            regular_graph,
            ProtocolParams(c=1.0, d=4),
            "saer",
            spawn_seeds(19, 4),
            options=RunOptions(max_rounds=3),
        )
        assert not ref.completed.all()

    def test_custom_demands(self, regular_graph):
        rng = np.random.default_rng(0)
        demands = rng.integers(0, 5, size=regular_graph.n_clients)
        assert_kernels_match(
            regular_graph, ProtocolParams(c=1.5, d=4), "saer", spawn_seeds(23, 4),
            demands=demands,
        )

    def test_zero_trials(self, regular_graph):
        for name in COMPILED:
            res = run_trials_batched(
                regular_graph, ProtocolParams(c=1.5, d=4), "saer",
                seeds=[], kernel=name,
            )
            assert res.n_trials == 0

    def test_matches_reference_engine(self, regular_graph):
        """Compiled kernels inherit the batched↔reference equivalence."""
        from repro.core.engine import run_protocol

        seeds = spawn_seeds(29, 3)
        params = ProtocolParams(c=1.5, d=4)
        for name in COMPILED:
            batch = run_trials_batched(
                regular_graph, params, "saer", seeds=seeds, kernel=name
            )
            for i, s in enumerate(seeds):
                ref = run_protocol(regular_graph, params, "saer", seed=s)
                assert ref.rounds == batch.rounds[i]
                assert ref.work == batch.work[i]
                assert np.array_equal(ref.loads, batch.loads[i])

    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=96),
        degree=st.integers(min_value=2, max_value=10),
        d=st.integers(min_value=1, max_value=5),
        c_tenths=st.integers(min_value=11, max_value=40),
        trials=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_property_random_shapes(self, n, degree, d, c_tenths, trials, seed):
        """Hypothesis: parity holds over random (n, Δ, d, c, R) shapes."""
        degree = min(degree, n)
        g = random_regular_bipartite(n, degree, seed=seed)
        params = ProtocolParams(c=c_tenths / 10.0, d=d)
        assert_kernels_match(
            g, params, "saer", spawn_seeds(seed, trials),
            options=RunOptions(max_rounds=64),
        )


class TestKernelGate:
    """Resolution: argument > REPRO_KERNELS env > numpy default."""

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV, raising=False)
        assert resolve_kernel().name == "numpy"

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "python")
        assert resolve_kernel().name == "python"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "python")
        assert resolve_kernel("numpy").name == "numpy"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("fortran")
        with pytest.raises(ValueError, match="unknown kernel"):
            run_trials_batched(
                random_regular_bipartite(16, 4, seed=0),
                ProtocolParams(c=2.0, d=2),
                "saer",
                n_trials=1,
                kernel="fortran",
            )

    def test_unavailable_falls_back_to_numpy(self, monkeypatch):
        """A gate naming an absent implementation warns and still runs."""
        from repro.batch import kernels as kmod

        class Missing(kmod.Kernel):
            name = "numba"
            compiled = True

            def available(self):
                return False

        monkeypatch.setitem(kmod._REGISTRY, "numba", Missing())
        monkeypatch.setattr(kmod, "_warned", set())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            kern = resolve_kernel("numba")
        assert kern.name == "numpy"
        assert any("unavailable" in str(w.message) for w in caught)
        # the stub path still executes end to end
        g = random_regular_bipartite(16, 4, seed=0)
        res = run_trials_batched(
            g, ProtocolParams(c=2.0, d=2), "saer", n_trials=2, seed=1, kernel="numba"
        )
        assert res.n_trials == 2

    def test_numpy_and_gate_off_identical(self, regular_graph, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV, raising=False)
        seeds = spawn_seeds(31, 3)
        params = ProtocolParams(c=1.5, d=4)
        a = run_trials_batched(regular_graph, params, "saer", seeds=seeds)
        b = run_trials_batched(regular_graph, params, "saer", seeds=seeds, kernel="numpy")
        assert np.array_equal(a.rounds, b.rounds)
        assert np.array_equal(a.loads, b.loads)

    def test_custom_policy_subclass_not_fused(self, regular_graph):
        """Compiled kernels only fuse the exact built-in rules: a subclass
        with its own decide must take the generic numpy path."""

        class AlwaysAccept(BatchedSaerPolicy):
            def decide_dense(self, trials, received):
                rows = self._rows(trials)
                cum = self.cum_received[rows]
                cum += received
                if not isinstance(rows, slice):
                    self.cum_received[rows] = cum
                accept = np.ones_like(cum, dtype=bool)
                np.copyto(self.loads[rows], cum, casting="unsafe")
                return accept

            def decide_sparse(self, ball_keys):
                keys, inverse, counts = np.unique(
                    ball_keys, return_inverse=True, return_counts=True
                )
                cum_flat = self.cum_received.reshape(-1)
                cum_flat[keys] += counts
                self.loads.reshape(-1)[keys] = cum_flat[keys]
                return np.ones(ball_keys.size, dtype=bool)[inverse]

        seeds = spawn_seeds(37, 2)
        params = ProtocolParams(c=1.5, d=4)
        for name in COMPILED:
            res = run_trials_batched(
                regular_graph, params, AlwaysAccept, seeds=seeds, kernel=name
            )
            # every ball accepted in round one ⇒ single round, all done
            assert res.completed.all()
            assert (res.rounds == 1).all()


class TestEngineBuffers:
    """The persistent scratch pool must never change results."""

    def test_reuse_across_calls_and_shapes(self, regular_graph, trust_graph):
        bufs = EngineBuffers()
        params = ProtocolParams(c=1.5, d=4)
        seeds = spawn_seeds(41, 4)
        fresh = run_trials_batched(regular_graph, params, "saer", seeds=seeds)
        for graph in (regular_graph, trust_graph, regular_graph):
            run_trials_batched(graph, params, "saer", seeds=seeds, buffers=bufs)
        again = run_trials_batched(regular_graph, params, "saer", seeds=seeds, buffers=bufs)
        assert np.array_equal(fresh.rounds, again.rounds)
        assert np.array_equal(fresh.loads, again.loads)
        assert bufs.nbytes > 0

    def test_reuse_across_kernels(self, regular_graph):
        bufs = EngineBuffers()
        params = ProtocolParams(c=1.5, d=4)
        seeds = spawn_seeds(43, 3)
        runs = {
            name: run_trials_batched(
                regular_graph, params, "saer", seeds=seeds, kernel=name, buffers=bufs
            )
            for name in ["numpy"] + COMPILED
        }
        ref = runs["numpy"]
        for name, got in runs.items():
            assert np.array_equal(ref.loads, got.loads), name

    def test_get_grows_and_retypes(self):
        bufs = EngineBuffers()
        a = bufs.get("x", 8, np.int32)
        a[:] = 7
        b = bufs.get("x", 4, np.int32)
        assert b.base is a.base or b.base is a  # same backing storage
        c = bufs.get("x", 16, np.int64)  # grow + retype reallocates
        assert c.dtype == np.int64 and c.size == 16
        z = bufs.get("z", (2, 3), np.int32, zero=True)
        assert not z.any()
        bufs.clear()
        assert bufs.nbytes == 0


class TestFillUniforms:
    """Read-ahead must serve exactly the per-trial generator streams."""

    @pytest.mark.parametrize("rounds_plan", [
        [5, 3, 2],                    # small buffered draws
        [RNG_BLOCK + 100, 50, 7],     # big direct draw, then buffered tail
        [RNG_BLOCK, 1, RNG_BLOCK - 1],
    ])
    def test_stream_position_exact(self, rounds_plan):
        seeds = spawn_seeds(99, 3)
        gens = [make_rng(s) for s in seeds]
        slab = np.empty((3, RNG_BLOCK))
        slab_pos = np.full(3, RNG_BLOCK, dtype=np.int64)
        served = {t: [] for t in range(3)}
        for k in rounds_plan:
            active = [0, 1, 2]
            sent = [k, k + 1, max(1, k // 2)]
            u = np.empty(sum(sent))
            fill_uniforms(u, active, sent, gens, slab, slab_pos)
            pos = 0
            for t, kk in zip(active, sent):
                served[t].append(u[pos : pos + kk].copy())
                pos += kk
        for t, s in enumerate(seeds):
            want = make_rng(s).random(sum(len(seg) for seg in served[t]))
            got = np.concatenate(served[t])
            assert np.array_equal(got, want), f"trial {t} stream diverged"


# ---------------------------------------------------------------------------
# Threaded kernels: the trial-partitioned path must be bit-identical at
# every gate × thread-count combination.
# ---------------------------------------------------------------------------

THREAD_COUNTS = (1, 2, 4)


class TestThreadedParity:
    """Gate × threads ∈ {1, 2, 4} × graph-family bit-identity matrix.

    Each cell re-runs the full result comparison against the numpy
    reference; ``threads=1`` pins that the threaded plumbing collapses
    cleanly, >1 pins that chunked execution (OpenMP for cext, prange
    for numba, interpreted chunks for python) changes nothing.
    """

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("policy", ["saer", "raes"])
    def test_regular_graph(self, regular_graph, policy, threads):
        assert_kernels_match(
            regular_graph, ProtocolParams(c=1.5, d=4), policy,
            spawn_seeds(11, 5), threads=threads,
        )

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("policy", ["saer", "raes"])
    def test_irregular_graphs(self, trust_graph, policy, threads):
        assert_kernels_match(
            trust_graph, ProtocolParams(c=1.5, d=4), policy,
            spawn_seeds(13, 4), threads=threads,
        )
        nr = near_regular(96, 6, 18, seed=3)
        assert_kernels_match(
            nr, ProtocolParams(c=1.5, d=3), policy, spawn_seeds(17, 4),
            threads=threads,
        )

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_cap_hit(self, regular_graph, threads):
        ref = assert_kernels_match(
            regular_graph,
            ProtocolParams(c=1.0, d=4),
            "saer",
            spawn_seeds(19, 4),
            options=RunOptions(max_rounds=3),
            threads=threads,
        )
        assert not ref.completed.all()

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_sparse_tail(self, threads):
        # one ball per client: the sparse Phase-2 branch from round one
        g = random_regular_bipartite(160, 8, seed=6)
        demands = np.ones(160, dtype=np.int64)
        assert_kernels_match(
            g, ProtocolParams(c=2.0, d=4), "saer", spawn_seeds(7, 5),
            demands=demands, threads=threads,
        )

    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_dense_branch(self, threads):
        # tiny server side: every round takes the dense (full-sweep) path
        g = random_regular_bipartite(24, 6, seed=4)
        assert_kernels_match(
            g, ProtocolParams(c=1.5, d=4), "saer", spawn_seeds(5, 8),
            threads=threads,
        )

    def test_threads_exceeding_trials(self, regular_graph):
        # more chunks requested than trials: clamped, still identical
        assert_kernels_match(
            regular_graph, ProtocolParams(c=1.5, d=4), "saer",
            spawn_seeds(23, 3), threads=16,
        )

    def test_single_trial(self, regular_graph):
        assert_kernels_match(
            regular_graph, ProtocolParams(c=1.5, d=4), "saer",
            spawn_seeds(29, 1), threads=4,
        )

    def test_buffers_reused_across_thread_counts(self, regular_graph):
        """One EngineBuffers pool serving 1/2/4-thread runs in sequence
        (the per-chunk scratch grows and re-slices) never changes results."""
        bufs = EngineBuffers()
        params = ProtocolParams(c=1.5, d=4)
        seeds = spawn_seeds(31, 4)
        ref = run_trials_batched(regular_graph, params, "saer", seeds=seeds)
        for name in COMPILED:
            for threads in (4, 1, 2, 4):
                got = run_trials_batched(
                    regular_graph, params, "saer", seeds=seeds, kernel=name,
                    threads=threads, buffers=bufs,
                )
                assert np.array_equal(ref.loads, got.loads), (name, threads)


class TestRandomPartitions:
    """Hypothesis: ANY trial partition through the threaded compaction
    path — uneven chunks, empty chunks, a single chunk, one trial —
    reproduces the sequential loops exactly: same survivor keys in
    canonical (trial-major, client-major) order, same per-trial accept
    counts, same policy state.  Uniform consumption is positional (the
    kernel reads exactly ``u[seg_start[a]:seg_end[a]]`` per trial), so
    byte-equal outputs on a shared ``u`` pin it too.
    """

    @staticmethod
    def _one_round_case(n, degree, d, R, frac_pct, seed):
        g = random_regular_bipartite(n, degree, seed=seed)
        n_s = g.n_servers
        indptr = g.client_indptr.astype(np.int32)
        indices = g.client_indices.astype(np.int32)
        degrees = np.diff(indptr).astype(np.int32)
        rng = np.random.default_rng(seed)
        # demands with many zeros so small totals hit the sparse branch
        dem = rng.integers(0, d + 1, size=n) * (rng.random(n) < frac_pct / 100.0)
        if not dem.sum():
            dem[0] = 1
        template = np.repeat(np.arange(n, dtype=np.int32) * np.int32(degree), dem)
        k = template.size
        ball_key = np.tile(template, R)
        u = rng.random(k * R)
        return dict(
            n=n, n_s=n_s, degree=degree, indptr=indptr, degrees=degrees,
            indices=indices, k=k, R=R, ball_key=ball_key, u=u,
            block_clients=block_clients_for(n, g.n_edges),
        )

    @staticmethod
    def _run_seq(case, capacity, is_raes):
        R, n_s, B = case["R"], case["n_s"], case["ball_key"].size
        state1 = np.zeros((R, n_s), np.int64)
        state2 = np.zeros((R, n_s), np.int64)
        n_acc = np.zeros(R, np.int64)
        out_key = np.full(B, -1, np.int32)
        out = _round_loops(
            case["u"], case["ball_key"],
            np.arange(R, dtype=np.int64), np.full(R, case["k"], np.int64),
            case["degree"], case["indptr"], case["degrees"], case["indices"],
            case["n"], case["block_clients"], state1, state2, capacity,
            is_raes, np.empty(B, np.int32), np.zeros(n_s, np.int64),
            np.empty(n_s, np.int32), np.zeros(n_s, np.uint8), n_acc,
            out_key, 1, np.empty(R, np.int64), np.empty(R, np.int64),
            np.empty(R, np.int64),
        )
        return int(out), out_key, n_acc, state1, state2

    @staticmethod
    def _run_mt(case, capacity, is_raes, chunk_starts):
        R, n_s, B = case["R"], case["n_s"], case["ball_key"].size
        T = chunk_starts.size - 1
        state1 = np.zeros((R, n_s), np.int64)
        state2 = np.zeros((R, n_s), np.int64)
        n_acc = np.zeros(R, np.int64)
        n_keep = np.zeros(R, np.int64)
        out_key = np.full(B, -1, np.int32)
        out = _round_loops_mt(
            case["u"], case["ball_key"],
            np.arange(R, dtype=np.int64), np.full(R, case["k"], np.int64),
            case["degree"], case["indptr"], case["degrees"], case["indices"],
            case["n"], case["block_clients"], state1, state2, capacity,
            is_raes, np.empty(B, np.int32), np.zeros((T, n_s), np.int64),
            np.empty((T, n_s), np.int32), np.zeros((T, n_s), np.uint8),
            n_acc, out_key, 1, np.empty(R, np.int64), np.empty(R, np.int64),
            np.empty(R, np.int64), chunk_starts, n_keep,
        )
        # the trial-partitioned entries left-pack survivors into the
        # (dead) input buffer, not out_key — that is what makes the
        # epilogue parallel; callers read ball_key and skip their swap
        return int(out), case["ball_key"], n_acc, state1, state2, n_keep

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=48),
        degree=st.integers(min_value=2, max_value=6),
        d=st.integers(min_value=1, max_value=4),
        R=st.integers(min_value=1, max_value=6),
        frac_pct=st.integers(min_value=5, max_value=100),
        capacity=st.integers(min_value=1, max_value=8),
        is_raes=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=2**20),
        data=st.data(),
    )
    def test_any_partition_matches_sequential(
        self, n, degree, d, R, frac_pct, capacity, is_raes, seed, data
    ):
        degree = min(degree, n)
        case = self._one_round_case(n, degree, d, R, frac_pct, seed)
        n_chunks = data.draw(st.integers(min_value=1, max_value=R + 2))
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=R),
                    min_size=n_chunks - 1,
                    max_size=n_chunks - 1,
                )
            )
        )
        chunk_starts = np.array([0] + cuts + [R], dtype=np.int64)
        want = self._run_seq(case, capacity, is_raes)
        got = self._run_mt(case, capacity, is_raes, chunk_starts)
        assert got[0] == want[0], "survivor count diverged"
        assert np.array_equal(got[1][: got[0]], want[1][: want[0]]), (
            "canonical survivor order diverged"
        )
        assert np.array_equal(got[2], want[2]), "per-trial accept counts diverged"
        assert np.array_equal(got[3], want[3]), "state1 diverged"
        assert np.array_equal(got[4], want[4]), "state2 diverged"
        assert int(got[5].sum()) == got[0]

    def test_trial_chunks_partition_properties(self):
        buf = np.empty(9, dtype=np.int64)
        for A in (1, 2, 5, 8, 64):
            for T in (1, 2, 3, 8):
                b = trial_chunks(A, T, buf)
                assert b[0] == 0 and b[-1] == A and b.size == T + 1
                sizes = np.diff(b)
                assert (sizes >= 0).all()
                assert sizes.max() - sizes.min() <= 1  # balanced


class TestThreadsGate:
    """Resolution: argument > REPRO_KERNEL_THREADS env > 1."""

    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(THREADS_ENV, raising=False)
        assert resolve_threads() == 1

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "4")
        assert resolve_threads() == 4

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "4")
        assert resolve_threads(2) == 2

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="threads"):
            resolve_threads(0)
        with pytest.raises(ValueError, match="threads"):
            resolve_threads(-3)
        monkeypatch.setenv(THREADS_ENV, "lots")
        with pytest.raises(ValueError, match=THREADS_ENV):
            resolve_threads()

    def test_env_gate_reaches_engine(self, regular_graph, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "4")
        params = ProtocolParams(c=1.5, d=4)
        seeds = spawn_seeds(37, 3)
        ref = run_trials_batched(regular_graph, params, "saer", seeds=seeds, kernel="numpy")
        for name in COMPILED:
            got = run_trials_batched(
                regular_graph, params, "saer", seeds=seeds, kernel=name
            )
            assert np.array_equal(ref.loads, got.loads), name

    def test_numpy_gate_ignores_threads(self, regular_graph, monkeypatch):
        """The numpy reference loop is single-threaded by design: a
        thread budget on it is a silent no-op, never a warning."""
        monkeypatch.delenv(THREADS_ENV, raising=False)
        seeds = spawn_seeds(41, 3)
        params = ProtocolParams(c=1.5, d=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            a = run_trials_batched(
                regular_graph, params, "saer", seeds=seeds, kernel="numpy",
                threads=4,
            )
        b = run_trials_batched(regular_graph, params, "saer", seeds=seeds, kernel="numpy")
        assert np.array_equal(a.loads, b.loads)


class TestThreadedFallback:
    """Missing threaded paths warn once per (gate, threads) and never
    change results."""

    def _fresh_cext_without_openmp(self, monkeypatch):
        from repro.batch import kernels as kmod

        real_load = kmod._load_cext_library

        def probe_fails(openmp=False):
            if openmp:
                raise RuntimeError("stub: compiler has no -fopenmp")
            return real_load()

        kern = kmod.CextKernel()
        monkeypatch.setattr(kmod, "_load_cext_library", probe_fails)
        monkeypatch.setitem(kmod._REGISTRY, "cext", kern)
        monkeypatch.setattr(kmod, "_warned", set())
        return kmod

    @pytest.mark.skipif(
        "cext" not in COMPILED, reason="needs a working C compiler"
    )
    def test_openmp_probe_failure_falls_back_sequential(
        self, regular_graph, monkeypatch
    ):
        self._fresh_cext_without_openmp(monkeypatch)
        params = ProtocolParams(c=1.5, d=4)
        seeds = spawn_seeds(43, 4)
        ref = run_trials_batched(regular_graph, params, "saer", seeds=seeds, kernel="numpy")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = run_trials_batched(
                regular_graph, params, "saer", seeds=seeds, kernel="cext",
                threads=2,
            )
        msgs = [str(w.message) for w in caught]
        assert any("no threaded path" in m for m in msgs), msgs
        assert np.array_equal(ref.loads, got.loads)
        # warn-once: an identical request stays silent...
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_trials_batched(
                regular_graph, params, "saer", seeds=seeds, kernel="cext",
                threads=2,
            )
        assert not any("no threaded path" in str(w.message) for w in caught)
        # ...but a different thread count is a different key and warns.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_trials_batched(
                regular_graph, params, "saer", seeds=seeds, kernel="cext",
                threads=4,
            )
        assert any("no threaded path" in str(w.message) for w in caught)

    def test_missing_numba_warn_keyed_per_gate_and_threads(self, monkeypatch):
        from repro.batch import kernels as kmod

        class Missing(kmod.Kernel):
            name = "numba"
            compiled = True

            def available(self):
                return False

        monkeypatch.setitem(kmod._REGISTRY, "numba", Missing())
        monkeypatch.setattr(kmod, "_warned", set())

        def fallback_warns(threads):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                kern = resolve_kernel("numba", threads=threads)
            assert kern.name == "numpy"
            return any("unavailable" in str(w.message) for w in caught)

        assert fallback_warns(2)          # first request at threads=2
        assert not fallback_warns(2)      # warn-once per key
        assert fallback_warns(4)          # new threads -> new key -> warns
        assert fallback_warns(1)          # and the sequential key is its own
        # a stubbed-out gate still executes end to end at a thread budget
        g = random_regular_bipartite(16, 4, seed=0)
        res = run_trials_batched(
            g, ProtocolParams(c=2.0, d=2), "saer", n_trials=2, seed=1,
            kernel="numba", threads=4,
        )
        assert res.n_trials == 2
