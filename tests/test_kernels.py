"""Parity suite for the batched engine's round kernels.

The load-bearing contract: every kernel implementation — the numpy
reference, the interpreted compiled-algorithm loops (``python``), the
numba JIT, and the C extension — produces **bit-identical** per-trial
results (rounds, work, assigned, completion, max load, blocked servers,
full load vectors).  The ``python`` kernel is the same code numba
compiles, so parity here certifies the compiled algorithm on installs
without numba or a C compiler; CI's ``kernels`` job re-runs the suite
with numba installed and the C path built.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchedSaerPolicy,
    EngineBuffers,
    available_kernels,
    resolve_kernel,
    run_trials_batched,
)
from repro.batch.kernels import (
    KERNELS_ENV,
    RNG_BLOCK,
    fill_uniforms,
)
from repro.core.config import ProtocolParams, RunOptions
from repro.graphs import near_regular, random_regular_bipartite, trust_subsets
from repro.rng import make_rng, spawn_seeds

RESULT_FIELDS = (
    "completed",
    "rounds",
    "work",
    "assigned_balls",
    "max_load",
    "blocked_servers",
)

# Kernels testable on this install: "python" always runs the compiled
# algorithm interpreted; cext/numba join in when buildable/importable.
COMPILED = [k for k in available_kernels() if k != "numpy"]


def assert_kernels_match(graph, params, policy, seeds, *, demands=None, options=None):
    """Every available kernel must reproduce the numpy path bit-for-bit."""
    ref = run_trials_batched(
        graph, params, policy, seeds=seeds, demands=demands, options=options,
        kernel="numpy",
    )
    for name in COMPILED:
        got = run_trials_batched(
            graph, params, policy, seeds=seeds, demands=demands, options=options,
            kernel=name,
        )
        for f in RESULT_FIELDS:
            assert np.array_equal(getattr(ref, f), getattr(got, f)), (
                f"{name} kernel diverges on {f}: "
                f"{getattr(got, f)} != {getattr(ref, f)}"
            )
        assert np.array_equal(ref.loads, got.loads), f"{name} kernel diverges on loads"
    return ref


class TestKernelParity:
    """Bit-identity across kernels, branches, and graph families."""

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    @pytest.mark.parametrize("c,d", [(1.5, 4), (2.0, 2), (1.2, 4)])
    def test_regular_graph(self, regular_graph, policy, c, d):
        assert_kernels_match(
            regular_graph, ProtocolParams(c=c, d=d), policy, spawn_seeds(11, 5)
        )

    @pytest.mark.parametrize("policy", ["saer", "raes"])
    def test_irregular_graphs(self, trust_graph, policy):
        assert_kernels_match(
            trust_graph, ProtocolParams(c=1.5, d=4), policy, spawn_seeds(13, 4)
        )
        nr = near_regular(96, 6, 18, seed=3)
        assert_kernels_match(nr, ProtocolParams(c=1.5, d=3), policy, spawn_seeds(17, 4))

    def test_dense_branch(self):
        # tiny server side: every round takes the dense (full-sweep) path
        g = random_regular_bipartite(24, 6, seed=4)
        assert_kernels_match(g, ProtocolParams(c=1.5, d=4), "saer", spawn_seeds(5, 8))

    def test_sparse_branch(self):
        # one ball per client on a larger graph: sparse from round one
        g = random_regular_bipartite(160, 8, seed=6)
        demands = np.ones(160, dtype=np.int64)
        assert_kernels_match(
            g, ProtocolParams(c=2.0, d=4), "saer", spawn_seeds(7, 3), demands=demands
        )

    def test_round_cap_hit(self, regular_graph):
        # starvation regime + low cap: trials stop at the cap un-completed
        ref = assert_kernels_match(
            regular_graph,
            ProtocolParams(c=1.0, d=4),
            "saer",
            spawn_seeds(19, 4),
            options=RunOptions(max_rounds=3),
        )
        assert not ref.completed.all()

    def test_custom_demands(self, regular_graph):
        rng = np.random.default_rng(0)
        demands = rng.integers(0, 5, size=regular_graph.n_clients)
        assert_kernels_match(
            regular_graph, ProtocolParams(c=1.5, d=4), "saer", spawn_seeds(23, 4),
            demands=demands,
        )

    def test_zero_trials(self, regular_graph):
        for name in COMPILED:
            res = run_trials_batched(
                regular_graph, ProtocolParams(c=1.5, d=4), "saer",
                seeds=[], kernel=name,
            )
            assert res.n_trials == 0

    def test_matches_reference_engine(self, regular_graph):
        """Compiled kernels inherit the batched↔reference equivalence."""
        from repro.core.engine import run_protocol

        seeds = spawn_seeds(29, 3)
        params = ProtocolParams(c=1.5, d=4)
        for name in COMPILED:
            batch = run_trials_batched(
                regular_graph, params, "saer", seeds=seeds, kernel=name
            )
            for i, s in enumerate(seeds):
                ref = run_protocol(regular_graph, params, "saer", seed=s)
                assert ref.rounds == batch.rounds[i]
                assert ref.work == batch.work[i]
                assert np.array_equal(ref.loads, batch.loads[i])

    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=96),
        degree=st.integers(min_value=2, max_value=10),
        d=st.integers(min_value=1, max_value=5),
        c_tenths=st.integers(min_value=11, max_value=40),
        trials=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_property_random_shapes(self, n, degree, d, c_tenths, trials, seed):
        """Hypothesis: parity holds over random (n, Δ, d, c, R) shapes."""
        degree = min(degree, n)
        g = random_regular_bipartite(n, degree, seed=seed)
        params = ProtocolParams(c=c_tenths / 10.0, d=d)
        assert_kernels_match(
            g, params, "saer", spawn_seeds(seed, trials),
            options=RunOptions(max_rounds=64),
        )


class TestKernelGate:
    """Resolution: argument > REPRO_KERNELS env > numpy default."""

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV, raising=False)
        assert resolve_kernel().name == "numpy"

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "python")
        assert resolve_kernel().name == "python"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "python")
        assert resolve_kernel("numpy").name == "numpy"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("fortran")
        with pytest.raises(ValueError, match="unknown kernel"):
            run_trials_batched(
                random_regular_bipartite(16, 4, seed=0),
                ProtocolParams(c=2.0, d=2),
                "saer",
                n_trials=1,
                kernel="fortran",
            )

    def test_unavailable_falls_back_to_numpy(self, monkeypatch):
        """A gate naming an absent implementation warns and still runs."""
        from repro.batch import kernels as kmod

        class Missing(kmod.Kernel):
            name = "numba"
            compiled = True

            def available(self):
                return False

        monkeypatch.setitem(kmod._REGISTRY, "numba", Missing())
        kmod._warned.discard("numba")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            kern = resolve_kernel("numba")
        assert kern.name == "numpy"
        assert any("unavailable" in str(w.message) for w in caught)
        # the stub path still executes end to end
        g = random_regular_bipartite(16, 4, seed=0)
        res = run_trials_batched(
            g, ProtocolParams(c=2.0, d=2), "saer", n_trials=2, seed=1, kernel="numba"
        )
        assert res.n_trials == 2

    def test_numpy_and_gate_off_identical(self, regular_graph, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV, raising=False)
        seeds = spawn_seeds(31, 3)
        params = ProtocolParams(c=1.5, d=4)
        a = run_trials_batched(regular_graph, params, "saer", seeds=seeds)
        b = run_trials_batched(regular_graph, params, "saer", seeds=seeds, kernel="numpy")
        assert np.array_equal(a.rounds, b.rounds)
        assert np.array_equal(a.loads, b.loads)

    def test_custom_policy_subclass_not_fused(self, regular_graph):
        """Compiled kernels only fuse the exact built-in rules: a subclass
        with its own decide must take the generic numpy path."""

        class AlwaysAccept(BatchedSaerPolicy):
            def decide_dense(self, trials, received):
                rows = self._rows(trials)
                cum = self.cum_received[rows]
                cum += received
                if not isinstance(rows, slice):
                    self.cum_received[rows] = cum
                accept = np.ones_like(cum, dtype=bool)
                np.copyto(self.loads[rows], cum, casting="unsafe")
                return accept

            def decide_sparse(self, ball_keys):
                keys, inverse, counts = np.unique(
                    ball_keys, return_inverse=True, return_counts=True
                )
                cum_flat = self.cum_received.reshape(-1)
                cum_flat[keys] += counts
                self.loads.reshape(-1)[keys] = cum_flat[keys]
                return np.ones(ball_keys.size, dtype=bool)[inverse]

        seeds = spawn_seeds(37, 2)
        params = ProtocolParams(c=1.5, d=4)
        for name in COMPILED:
            res = run_trials_batched(
                regular_graph, params, AlwaysAccept, seeds=seeds, kernel=name
            )
            # every ball accepted in round one ⇒ single round, all done
            assert res.completed.all()
            assert (res.rounds == 1).all()


class TestEngineBuffers:
    """The persistent scratch pool must never change results."""

    def test_reuse_across_calls_and_shapes(self, regular_graph, trust_graph):
        bufs = EngineBuffers()
        params = ProtocolParams(c=1.5, d=4)
        seeds = spawn_seeds(41, 4)
        fresh = run_trials_batched(regular_graph, params, "saer", seeds=seeds)
        for graph in (regular_graph, trust_graph, regular_graph):
            run_trials_batched(graph, params, "saer", seeds=seeds, buffers=bufs)
        again = run_trials_batched(regular_graph, params, "saer", seeds=seeds, buffers=bufs)
        assert np.array_equal(fresh.rounds, again.rounds)
        assert np.array_equal(fresh.loads, again.loads)
        assert bufs.nbytes > 0

    def test_reuse_across_kernels(self, regular_graph):
        bufs = EngineBuffers()
        params = ProtocolParams(c=1.5, d=4)
        seeds = spawn_seeds(43, 3)
        runs = {
            name: run_trials_batched(
                regular_graph, params, "saer", seeds=seeds, kernel=name, buffers=bufs
            )
            for name in ["numpy"] + COMPILED
        }
        ref = runs["numpy"]
        for name, got in runs.items():
            assert np.array_equal(ref.loads, got.loads), name

    def test_get_grows_and_retypes(self):
        bufs = EngineBuffers()
        a = bufs.get("x", 8, np.int32)
        a[:] = 7
        b = bufs.get("x", 4, np.int32)
        assert b.base is a.base or b.base is a  # same backing storage
        c = bufs.get("x", 16, np.int64)  # grow + retype reallocates
        assert c.dtype == np.int64 and c.size == 16
        z = bufs.get("z", (2, 3), np.int32, zero=True)
        assert not z.any()
        bufs.clear()
        assert bufs.nbytes == 0


class TestFillUniforms:
    """Read-ahead must serve exactly the per-trial generator streams."""

    @pytest.mark.parametrize("rounds_plan", [
        [5, 3, 2],                    # small buffered draws
        [RNG_BLOCK + 100, 50, 7],     # big direct draw, then buffered tail
        [RNG_BLOCK, 1, RNG_BLOCK - 1],
    ])
    def test_stream_position_exact(self, rounds_plan):
        seeds = spawn_seeds(99, 3)
        gens = [make_rng(s) for s in seeds]
        slab = np.empty((3, RNG_BLOCK))
        slab_pos = np.full(3, RNG_BLOCK, dtype=np.int64)
        served = {t: [] for t in range(3)}
        for k in rounds_plan:
            active = [0, 1, 2]
            sent = [k, k + 1, max(1, k // 2)]
            u = np.empty(sum(sent))
            fill_uniforms(u, active, sent, gens, slab, slab_pos)
            pos = 0
            for t, kk in zip(active, sent):
                served[t].append(u[pos : pos + kk].copy())
                pos += kk
        for t, s in enumerate(seeds):
            want = make_rng(s).random(sum(len(seg) for seg in served[t]))
            got = np.concatenate(served[t])
            assert np.array_equal(got, want), f"trial {t} stream diverged"
