"""Tests for zero-copy graph sharing (repro.parallel.shared)."""

import pickle

import numpy as np
import pytest

from repro.core.engine import run_saer
from repro.graphs import BipartiteGraph, trust_subsets
from repro.parallel import (
    ParameterGrid,
    SharedGraph,
    current_task_graph,
    graph_context,
    monte_carlo,
    run_sweep,
)


def _graphs_equal(a, b) -> bool:
    return (
        a.n_clients == b.n_clients
        and a.n_servers == b.n_servers
        and np.array_equal(a.client_indptr, b.client_indptr)
        and np.array_equal(a.client_indices, b.client_indices)
        and np.array_equal(a.server_indptr, b.server_indptr)
        and np.array_equal(a.server_indices, b.server_indices)
    )


def _graph_trial(graph, seed_seq, index):
    res = run_saer(graph, 2.0, 2, seed=seed_seq)
    return {"index": index, "rounds": res.rounds, "work": res.work}


def _graph_trial_block(graph, seed_seqs, indices):
    return [_graph_trial(graph, s, i) for s, i in zip(seed_seqs, indices)]


def _graph_point(graph, point, seed_seq, trial):
    res = run_saer(graph, point["c"], 2, seed=seed_seq)
    return {"rounds": res.rounds}


def _graph_point_block(graph, point, seed_seqs, trials):
    return [_graph_point(graph, point, s, t) for s, t in zip(seed_seqs, trials)]


@pytest.fixture(scope="module")
def graph():
    return trust_subsets(64, 64, 8, seed=1)


class TestSharedGraph:
    def test_roundtrip_zero_copy(self, graph):
        with SharedGraph.share(graph) as sg:
            view = sg.graph
            assert _graphs_equal(view, graph)
            # Same buffer on repeated access, not a fresh copy.
            assert view is sg.graph

    def test_pickles_as_metadata_only(self, graph):
        with SharedGraph.share(graph) as sg:
            blob = pickle.dumps(sg)
            # A 64×64×8 graph is ~16KB of CSR; the handle must be far smaller.
            assert len(blob) < 2048
            attached = pickle.loads(blob)
            assert _graphs_equal(attached.graph, graph)
            attached.close()

    def test_unlink_removes_segment(self, graph):
        sg = SharedGraph.share(graph)
        name = sg.shm_name
        sg.unlink()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    def test_nbytes_covers_all_arrays(self, graph):
        with SharedGraph.share(graph) as sg:
            floor = sum(
                getattr(graph, f).nbytes
                for f in (
                    "client_indptr",
                    "client_indices",
                    "server_indptr",
                    "server_indices",
                )
            )
            assert sg.nbytes >= floor


class TestGraphContext:
    def test_serial_installs_parent_slot(self, graph):
        with graph_context(graph, processes=1) as (view, initializer, initargs):
            assert view is graph
            assert current_task_graph() is graph
        with pytest.raises(RuntimeError):
            current_task_graph()

    def test_shared_handle_used_verbatim(self, graph):
        with SharedGraph.share(graph) as sg:
            with graph_context(sg, processes=4) as (view, initializer, initargs):
                assert initargs == (sg,)
                assert _graphs_equal(view, graph)


class TestMonteCarloWithGraph:
    def test_serial_matches_parallel(self, graph):
        a = monte_carlo(_graph_trial, 6, seed=9, processes=1, graph=graph)
        b = monte_carlo(_graph_trial, 6, seed=9, processes=2, graph=graph)
        assert a == b

    def test_shared_memory_handle_matches(self, graph):
        a = monte_carlo(_graph_trial, 6, seed=9, processes=1, graph=graph)
        with SharedGraph.share(graph) as sg:
            c = monte_carlo(_graph_trial, 6, seed=9, processes=2, graph=sg)
        assert a == c

    def test_batched_backend_matches(self, graph):
        a = monte_carlo(_graph_trial, 8, seed=4, processes=1, graph=graph)
        b = monte_carlo(
            _graph_trial_block,
            8,
            seed=4,
            processes=2,
            graph=graph,
            backend="batched",
            batch_size=3,
        )
        assert a == b

    def test_seeds_match_graphless_spawn(self, graph):
        # graph= must not change which seed a trial sees.
        def bare_trial(seed_seq, index):
            return {"index": index, "entropy": seed_seq.spawn_key}

        def with_graph(g, seed_seq, index):
            return {"index": index, "entropy": seed_seq.spawn_key}

        a = monte_carlo(bare_trial, 5, seed=77, processes=1)
        b = monte_carlo(with_graph, 5, seed=77, processes=1, graph=graph)
        assert a == b


class TestRunSweepWithGraph:
    def test_serial_matches_parallel(self, graph):
        grid = ParameterGrid(c=[1.5, 2.0, 4.0])
        a = run_sweep(_graph_point, grid, n_trials=3, seed=5, processes=1, graph=graph)
        b = run_sweep(_graph_point, grid, n_trials=3, seed=5, processes=2, graph=graph)
        assert a == b

    def test_batched_matches_per_trial(self, graph):
        grid = ParameterGrid(c=[1.5, 4.0])
        a = run_sweep(_graph_point, grid, n_trials=4, seed=2, processes=1, graph=graph)
        b = run_sweep(
            _graph_point_block,
            grid,
            n_trials=4,
            seed=2,
            processes=2,
            graph=graph,
            backend="batched",
        )
        assert a == b

    def test_records_carry_point_and_trial(self, graph):
        grid = ParameterGrid(c=[2.0])
        recs = run_sweep(_graph_point, grid, n_trials=2, seed=0, processes=1, graph=graph)
        assert [(r["c"], r["trial"]) for r in recs] == [(2.0, 0), (2.0, 1)]
