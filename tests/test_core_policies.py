"""Unit tests for the SAER/RAES server decision rules (array form)."""

import numpy as np
import pytest

from repro.core.policies import RaesPolicy, SaerPolicy
from repro.errors import ProtocolConfigError


def recv(n, **at):
    out = np.zeros(n, dtype=np.int64)
    for idx, val in at.items():
        out[int(idx.lstrip("s"))] = val
    return out


class TestSaerPolicy:
    def test_accepts_below_capacity(self):
        pol = SaerPolicy(n_servers=3, capacity=5)
        acc = pol.decide(recv(3, s0=5, s1=2))
        assert acc.tolist() == [True, True, True]
        assert pol.loads.tolist() == [5, 2, 0]
        assert not pol.burned.any()

    def test_burns_strictly_above_capacity(self):
        pol = SaerPolicy(3, capacity=5)
        acc = pol.decide(recv(3, s0=6))
        assert not acc[0]
        assert pol.burned[0]
        assert pol.loads[0] == 0  # the tripping batch is rejected wholesale

    def test_exactly_capacity_is_fine(self):
        pol = SaerPolicy(1, capacity=4)
        assert pol.decide(recv(1, s0=4))[0]
        assert pol.loads[0] == 4

    def test_cumulative_received_counts_across_rounds(self):
        pol = SaerPolicy(1, capacity=4)
        assert pol.decide(recv(1, s0=3))[0]
        # 3 + 2 = 5 > 4: reject round 2's batch, burn, keep load 3
        assert not pol.decide(recv(1, s0=2))[0]
        assert pol.burned[0]
        assert pol.loads[0] == 3

    def test_burned_stays_burned_and_counts_received(self):
        pol = SaerPolicy(1, capacity=2)
        pol.decide(recv(1, s0=3))  # burn
        assert not pol.decide(recv(1, s0=1))[0]
        assert pol.cum_received[0] == 4
        assert pol.loads[0] == 0

    def test_rejected_batch_still_counts_toward_received(self):
        """Definition 3 counts *received* balls, accepted or not."""
        pol = SaerPolicy(1, capacity=5)
        pol.decide(recv(1, s0=6))  # burned; received=6
        assert pol.cum_received[0] == 6

    def test_zero_batch_never_burns(self):
        pol = SaerPolicy(2, capacity=1)
        for _ in range(10):
            pol.decide(np.zeros(2, dtype=np.int64))
        assert not pol.burned.any()

    def test_newly_burned_counter(self):
        pol = SaerPolicy(3, capacity=2)
        pol.decide(recv(3, s0=3, s1=3))
        assert pol.newly_burned_last_round == 2
        pol.decide(recv(3, s2=3))
        assert pol.newly_burned_last_round == 1

    def test_blocked_mask_is_burned(self):
        pol = SaerPolicy(2, capacity=1)
        pol.decide(recv(2, s1=2))
        assert pol.blocked_mask().tolist() == [False, True]

    def test_max_load(self):
        pol = SaerPolicy(2, capacity=10)
        pol.decide(recv(2, s0=4, s1=7))
        assert pol.max_load == 7

    def test_capacity_validation(self):
        with pytest.raises(ProtocolConfigError):
            SaerPolicy(2, capacity=0)
        with pytest.raises(ProtocolConfigError):
            SaerPolicy(-1, capacity=3)


class TestRaesPolicy:
    def test_rejects_batch_that_would_overflow(self):
        pol = RaesPolicy(1, capacity=4)
        assert pol.decide(recv(1, s0=3))[0]
        assert not pol.decide(recv(1, s0=2))[0]  # 3+2 > 4
        assert pol.loads[0] == 3

    def test_reaccepts_after_saturated_round(self):
        """The key SAER/RAES difference: saturation is not permanent."""
        pol = RaesPolicy(1, capacity=4)
        pol.decide(recv(1, s0=3))
        pol.decide(recv(1, s0=5))  # rejected
        assert pol.decide(recv(1, s0=1))[0]  # 3+1 <= 4: accepted again
        assert pol.loads[0] == 4

    def test_exact_fill_accepted(self):
        pol = RaesPolicy(1, capacity=4)
        assert pol.decide(recv(1, s0=4))[0]
        assert pol.loads[0] == 4

    def test_full_server_blocked(self):
        pol = RaesPolicy(1, capacity=2)
        pol.decide(recv(1, s0=2))
        assert pol.blocked_mask()[0]
        assert not pol.decide(recv(1, s0=1))[0]

    def test_saturated_rounds_counter(self):
        pol = RaesPolicy(1, capacity=1)
        pol.decide(recv(1, s0=2))
        pol.decide(recv(1, s0=2))
        assert pol.saturated_rounds[0] == 2

    def test_load_never_exceeds_capacity(self):
        rng = np.random.default_rng(0)
        pol = RaesPolicy(5, capacity=7)
        for _ in range(50):
            pol.decide(rng.integers(0, 4, size=5))
        assert pol.loads.max() <= 7


class TestSaerVsRaesSemantics:
    def test_saer_stricter_than_raes_on_same_stream(self):
        """A received-count burn can only make SAER reject more."""
        batches = [recv(1, s0=2), recv(1, s0=2), recv(1, s0=1), recv(1, s0=1)]
        saer, raes = SaerPolicy(1, capacity=4), RaesPolicy(1, capacity=4)
        for b in batches:
            a_s = saer.decide(b.copy())[0]
            a_r = raes.decide(b.copy())[0]
            # identical streams: RAES accepts whenever SAER does
            if a_s:
                assert a_r
        assert raes.loads[0] >= saer.loads[0]
