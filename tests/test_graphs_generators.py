"""Tests for the graph generator zoo."""

import math

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graphs import (
    biregular,
    complete_bipartite,
    erdos_renyi_bipartite,
    geometric_bipartite,
    near_regular,
    paper_extremal,
    random_regular_bipartite,
    trust_subsets,
)
from repro.graphs.properties import degree_report


class TestRegular:
    def test_exact_degrees(self):
        g = random_regular_bipartite(64, 7, seed=0)
        assert np.all(g.client_degrees == 7)
        assert np.all(g.server_degrees == 7)

    def test_simple_no_duplicates(self):
        g = random_regular_bipartite(50, 10, seed=1)
        edges = g.edges()
        keys = edges[:, 0] * g.n_servers + edges[:, 1]
        assert np.unique(keys).size == keys.size

    def test_deterministic_for_seed(self):
        a = random_regular_bipartite(40, 6, seed=5)
        b = random_regular_bipartite(40, 6, seed=5)
        assert np.array_equal(a.client_indices, b.client_indices)

    def test_different_seeds_differ(self):
        a = random_regular_bipartite(40, 6, seed=5)
        b = random_regular_bipartite(40, 6, seed=6)
        assert not np.array_equal(a.client_indices, b.client_indices)

    def test_full_degree_is_complete(self):
        g = random_regular_bipartite(8, 8, seed=0)
        assert g.n_edges == 64

    def test_degree_one_is_perfect_matching(self):
        g = random_regular_bipartite(32, 1, seed=3)
        assert np.all(g.client_degrees == 1)
        assert np.all(g.server_degrees == 1)

    def test_bad_params(self):
        with pytest.raises(GraphConstructionError):
            random_regular_bipartite(0, 1)
        with pytest.raises(GraphConstructionError):
            random_regular_bipartite(10, 0)
        with pytest.raises(GraphConstructionError):
            random_regular_bipartite(10, 11)

    def test_validates(self):
        random_regular_bipartite(30, 5, seed=2).validate()


class TestBiregular:
    def test_divisible_case(self):
        g = biregular(60, 30, 4, seed=0)
        assert np.all(g.client_degrees == 4)
        assert np.all(g.server_degrees == 8)

    def test_remainder_spread(self):
        g = biregular(10, 4, 3, seed=0)  # total 30, base 7 rem 2
        sdeg = g.server_degrees
        assert sorted(sdeg.tolist()) == [7, 7, 8, 8]

    def test_client_degree_exceeding_servers_rejected(self):
        with pytest.raises(GraphConstructionError):
            biregular(2, 2, 3)  # client degree > n_servers

    def test_server_overflow_rejected(self):
        # total 9 over 2 servers needs degrees {5,4} > n_clients=3
        with pytest.raises(GraphConstructionError):
            biregular(3, 2, 3)


class TestNearRegular:
    def test_client_degrees_within_band(self):
        g = near_regular(80, 6, 12, seed=1)
        assert g.client_degrees.min() >= 6
        assert g.client_degrees.max() <= 12

    def test_edge_balance(self):
        g = near_regular(80, 6, 12, seed=1)
        assert g.client_degrees.sum() == g.server_degrees.sum()
        # servers nearly even: max-min <= 1
        assert g.server_degrees.max() - g.server_degrees.min() <= 1

    def test_equal_band_is_regular(self):
        g = near_regular(40, 5, 5, seed=2)
        assert np.all(g.client_degrees == 5)

    def test_bad_band(self):
        with pytest.raises(GraphConstructionError):
            near_regular(10, 8, 4)


class TestPaperExtremal:
    def test_satisfies_theorem1_shape(self):
        g = paper_extremal(256, eta=0.5, seed=0)
        rep = degree_report(g)
        # heavy clients reach ~sqrt(n)
        assert rep.client_degree_max >= math.isqrt(256)
        # weak servers have tiny degree
        assert rep.server_degree_min <= 2
        assert rep.isolated_clients == 0

    def test_min_client_degree_is_eta_log2(self):
        n, eta = 256, 0.5
        g = paper_extremal(n, eta=eta, seed=1)
        want = math.ceil(eta * math.log(n) ** 2)
        assert g.client_degrees.min() == want

    def test_too_small_n_rejected(self):
        with pytest.raises(GraphConstructionError):
            paper_extremal(8)


class TestErdosRenyi:
    def test_zero_p_empty(self):
        g = erdos_renyi_bipartite(20, 20, 0.0, seed=0)
        assert g.n_edges == 0

    def test_one_p_complete(self):
        g = erdos_renyi_bipartite(10, 12, 1.0, seed=0)
        assert g.n_edges == 120

    def test_mean_degree_close(self):
        g = erdos_renyi_bipartite(400, 400, 0.05, seed=1)
        mean = g.client_degrees.mean()
        assert abs(mean - 20.0) < 3.0  # 5+ sigma margin

    def test_bad_p(self):
        with pytest.raises(GraphConstructionError):
            erdos_renyi_bipartite(4, 4, 1.5)


class TestGeometric:
    def test_edges_respect_radius_torus(self):
        r = 0.2
        g = geometric_bipartite(60, 60, r, seed=2, torus=True)
        assert g.n_edges > 0
        # expected degree ~ n pi r^2 = 7.5; allow broad band
        assert 2.0 < g.client_degrees.mean() < 20.0

    def test_larger_radius_more_edges(self):
        g1 = geometric_bipartite(80, 80, 0.1, seed=3)
        g2 = geometric_bipartite(80, 80, 0.3, seed=3)
        assert g2.n_edges > g1.n_edges

    def test_non_torus_boundary_fewer_edges(self):
        g_t = geometric_bipartite(100, 100, 0.2, seed=4, torus=True)
        g_p = geometric_bipartite(100, 100, 0.2, seed=4, torus=False)
        assert g_p.n_edges <= g_t.n_edges

    def test_bad_radius(self):
        with pytest.raises(GraphConstructionError):
            geometric_bipartite(4, 4, 0.0)


class TestTrustSubsets:
    def test_client_degrees_exact(self):
        g = trust_subsets(50, 70, 9, seed=0)
        assert np.all(g.client_degrees == 9)

    def test_neighbors_distinct(self):
        g = trust_subsets(30, 40, 13, seed=1)
        for v in range(30):
            row = g.neighbors_of_client(v)
            assert np.unique(row).size == row.size

    def test_k_equals_n_servers(self):
        g = trust_subsets(5, 6, 6, seed=2)
        assert np.all(g.client_degrees == 6)

    def test_bad_k(self):
        with pytest.raises(GraphConstructionError):
            trust_subsets(5, 6, 7)


class TestComplete:
    def test_counts(self):
        g = complete_bipartite(7, 9)
        assert g.n_edges == 63
        assert np.all(g.client_degrees == 9)
        assert np.all(g.server_degrees == 7)

    def test_bad_sizes(self):
        with pytest.raises(GraphConstructionError):
            complete_bipartite(0, 3)


def _simple(g) -> bool:
    """No parallel edges: every (client, server) pair appears once."""
    edges = g.edges()
    keys = edges[:, 0] * g.n_servers + edges[:, 1]
    return np.unique(keys).size == keys.size


class TestVectorizedGeneratorInvariants:
    """Invariants of the whole-array generator rewrites: exact degree
    sequences, simplicity, seeded determinism, and fixed-seed
    distribution sanity for each family."""

    def test_degree_sequences_exact(self):
        g = trust_subsets(200, 90, 11, seed=0)
        assert np.all(g.client_degrees == 11)
        from repro.graphs import community_bipartite

        g = community_bipartite(120, 6, 7, 5, seed=1)
        assert np.all(g.client_degrees == 12)

    def test_simplicity_all_families(self):
        cases = [
            trust_subsets(150, 60, 13, seed=2),
            erdos_renyi_bipartite(200, 180, 0.08, seed=3),
            erdos_renyi_bipartite(60, 60, 0.8, seed=4),  # dense/complement path
            geometric_bipartite(150, 150, 0.15, seed=5),
            geometric_bipartite(80, 80, 0.5, seed=6),  # coarse-grid dense path
        ]
        from repro.graphs import community_bipartite

        cases.append(community_bipartite(96, 8, 9, 3, seed=7))
        for g in cases:
            assert _simple(g), g.name
            g.validate()

    @pytest.mark.parametrize(
        "build",
        [
            lambda s: trust_subsets(64, 64, 8, seed=s),
            lambda s: erdos_renyi_bipartite(64, 64, 0.1, seed=s),
            lambda s: geometric_bipartite(64, 64, 0.2, seed=s),
        ],
        ids=["trust", "er", "geometric"],
    )
    def test_seeded_determinism_and_seed_sensitivity(self, build):
        a, b, c = build(11), build(11), build(12)
        assert np.array_equal(a.client_indptr, b.client_indptr)
        assert np.array_equal(a.client_indices, b.client_indices)
        assert not (
            np.array_equal(a.client_indptr, c.client_indptr)
            and np.array_equal(a.client_indices, c.client_indices)
        )

    def test_community_determinism(self):
        from repro.graphs import community_bipartite

        a = community_bipartite(64, 4, 6, 2, seed=9)
        b = community_bipartite(64, 4, 6, 2, seed=9)
        assert np.array_equal(a.client_indices, b.client_indices)

    def test_trust_per_client_marginals_uniform(self):
        # Each neighborhood is a uniform k-subset, so every server is hit
        # Binomial(n_clients, k/n_servers) times: 2000·10/50 = 400 ± 18
        # (1 sd).  A 6-sigma band keeps the fixed-seed test meaningful
        # without flaking.
        n_c, n_s, k = 2000, 50, 10
        g = trust_subsets(n_c, n_s, k, seed=31415)
        hits = g.server_degrees
        expected = n_c * k / n_s
        sd = math.sqrt(n_c * (k / n_s) * (1 - k / n_s))
        assert np.all(np.abs(hits - expected) < 6 * sd), hits

    def test_er_expected_degree(self):
        n, p = 600, 0.05
        g = erdos_renyi_bipartite(n, n, p, seed=2718)
        mean = float(g.client_degrees.mean())
        # mean of n Binomial(n, p) degrees: sd of the mean ≈ sqrt(p(1-p)/n)·sqrt(n)
        sd_mean = math.sqrt(n * p * (1 - p)) / math.sqrt(n)
        assert abs(mean - n * p) < 6 * sd_mean

    def test_geometric_expected_degree_torus(self):
        n, r = 500, 0.1
        g = geometric_bipartite(n, n, r, seed=161803, torus=True)
        expected = n * math.pi * r * r
        assert abs(float(g.client_degrees.mean()) - expected) < 0.25 * expected

    def test_community_within_across_counts_exact(self):
        from repro.graphs import community_bipartite

        n, groups, kin, kout = 80, 4, 6, 3
        group = n // groups
        g = community_bipartite(n, groups, kin, kout, seed=13)
        for v in range(n):
            nb = g.neighbors_of_client(v)
            own = (nb // group) == (v // group)
            assert int(own.sum()) == kin
            assert int((~own).sum()) == kout
