"""Tests for the RunResult record."""

import numpy as np
import pytest

from repro.core import ProtocolParams, RunResult


def make_result(**overrides) -> RunResult:
    base = dict(
        protocol="saer",
        graph_name="g",
        n_clients=10,
        n_servers=10,
        params=ProtocolParams(c=2.0, d=2),
        completed=True,
        rounds=3,
        work=120,
        total_balls=20,
        assigned_balls=20,
        alive_balls=0,
        max_load=4,
        blocked_servers=1,
        loads=np.array([2] * 10),
    )
    base.update(overrides)
    return RunResult(**base)


class TestRunResult:
    def test_ball_accounting_enforced(self):
        with pytest.raises(ValueError):
            make_result(assigned_balls=19)  # 19 + 0 != 20

    def test_work_per_ball(self):
        r = make_result()
        assert r.work_per_ball == 6.0
        assert r.work_per_client == 12.0

    def test_zero_balls(self):
        r = make_result(total_balls=0, assigned_balls=0, alive_balls=0, work=0)
        assert r.work_per_ball == 0.0

    def test_summary_roundtrip(self):
        s = make_result().summary()
        assert s["capacity"] == 4
        assert s["completed"] is True
        assert s["work_per_client"] == 12.0

    def test_incomplete_result(self):
        r = make_result(completed=False, assigned_balls=15, alive_balls=5)
        assert not r.completed
        assert r.alive_balls == 5

    def test_to_dict_loads_opt_in(self):
        r = make_result()
        assert "loads" not in r.to_dict()
        assert r.to_dict(include_loads=True)["loads"] == [2] * 10

    def test_to_json_roundtrip(self, tmp_path):
        import json

        r = make_result()
        path = tmp_path / "run.json"
        r.to_json(path, include_loads=True)
        data = json.loads(path.read_text())
        assert data["rounds"] == 3
        assert data["loads"] == [2] * 10

    def test_to_dict_includes_trace_when_present(self, regular_graph):
        import repro

        res = repro.run_saer(regular_graph, 2.0, 2, seed=0, trace=repro.TraceLevel.BASIC)
        d = res.to_dict()
        assert "trace" in d
        assert len(d["trace"]["alive_before"]) == res.rounds
