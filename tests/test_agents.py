"""Agent-model tests, including exact equivalence with the fast engine."""

import numpy as np
import pytest

from repro.agents import (
    BallRequest,
    ClientAgent,
    RaesServerAgent,
    Reply,
    SaerServerAgent,
    run_agent_raes,
    run_agent_saer,
)
from repro.core import run_raes, run_saer
from repro.core.config import RunOptions
from repro.errors import GraphValidationError, ProtocolConfigError
from repro.graphs import BipartiteGraph, random_regular_bipartite, trust_subsets
from repro.rng import RandomTape


class TestEngineAgentEquivalence:
    """The load-bearing cross-check: two independent implementations of
    model M must produce bit-identical executions from one tape."""

    @pytest.mark.parametrize("protocol", ["saer", "raes"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_equivalence_alive_mode(self, small_regular_graph, protocol, seed):
        fast_fn = run_saer if protocol == "saer" else run_raes
        slow_fn = run_agent_saer if protocol == "saer" else run_agent_raes
        tape = RandomTape(seed=seed)
        fast = fast_fn(small_regular_graph, 1.5, 3, tape=tape)
        tape.rewind()
        slow = slow_fn(small_regular_graph, 1.5, 3, tape=tape)
        assert fast.completed == slow.completed
        assert fast.rounds == slow.rounds
        assert fast.work == slow.work
        assert fast.max_load == slow.max_load
        assert fast.blocked_servers == slow.blocked_servers
        assert np.array_equal(fast.loads, slow.loads)

    @pytest.mark.parametrize("protocol", ["saer", "raes"])
    def test_exact_equivalence_slot_mode(self, small_regular_graph, protocol):
        fast_fn = run_saer if protocol == "saer" else run_raes
        slow_fn = run_agent_saer if protocol == "saer" else run_agent_raes
        tape = RandomTape(seed=5)
        fast = fast_fn(small_regular_graph, 2.0, 3, tape=tape, slot_mode=True)
        tape.rewind()
        slow = slow_fn(small_regular_graph, 2.0, 3, tape=tape, slot_mode=True)
        assert fast.rounds == slow.rounds
        assert fast.work == slow.work
        assert np.array_equal(fast.loads, slow.loads)

    def test_equivalence_on_irregular_graph(self):
        g = trust_subsets(48, 48, 9, seed=6)
        tape = RandomTape(seed=10)
        fast = run_saer(g, 1.5, 2, tape=tape)
        tape.rewind()
        slow = run_agent_saer(g, 1.5, 2, tape=tape)
        assert fast.rounds == slow.rounds
        assert np.array_equal(fast.loads, slow.loads)

    def test_equivalence_with_demands(self, small_regular_graph):
        n = small_regular_graph.n_clients
        demands = np.arange(n, dtype=np.int64) % 3
        tape = RandomTape(seed=4)
        fast = run_saer(small_regular_graph, 2.0, 2, demands=demands, tape=tape)
        tape.rewind()
        slow = run_agent_saer(small_regular_graph, 2.0, 2, demands=demands, tape=tape)
        assert fast.rounds == slow.rounds
        assert np.array_equal(fast.loads, slow.loads)

    def test_equivalence_in_failing_regime(self):
        g = random_regular_bipartite(32, 8, seed=1)
        opts = RunOptions(max_rounds=15)
        tape = RandomTape(seed=3)
        fast = run_saer(g, 1.0, 4, tape=tape, options=opts)
        tape.rewind()
        slow = run_agent_saer(g, 1.0, 4, tape=tape, options=opts)
        assert not fast.completed and not slow.completed
        assert fast.alive_balls == slow.alive_balls
        assert np.array_equal(fast.loads, slow.loads)


class TestClientAgent:
    def test_phase1_slot_order_and_links(self):
        c = ClientAgent(client_id=3, n_links=4, demand=2)
        out = c.phase1(np.array([0.0, 0.99]))
        assert [link for link, _ in out] == [0, 3]
        assert [r.ball_slot for _, r in out] == [0, 1]
        assert all(r.client_id == 3 for _, r in out)

    def test_wrong_uniform_count_rejected(self):
        c = ClientAgent(0, 4, 2)
        with pytest.raises(ValueError):
            c.phase1(np.array([0.5]))

    def test_receive_replies_retires_balls(self):
        c = ClientAgent(0, 4, 2)
        done = c.receive_replies([Reply(0, 0, True), Reply(0, 1, False)])
        assert done == 1
        assert c.alive_slots == [1]
        assert not c.done
        c.receive_replies([Reply(0, 1, True)])
        assert c.done

    def test_zero_demand_starts_done(self):
        assert ClientAgent(0, 4, 0).done

    def test_balls_without_links_rejected(self):
        with pytest.raises(ValueError):
            ClientAgent(0, 0, 1)


class TestServerAgents:
    def test_saer_burn_sequence(self):
        s = SaerServerAgent(0, capacity=3)
        batch = [BallRequest(0, 0), BallRequest(1, 0)]
        replies = s.phase2(batch)
        assert all(r.accept for r in replies)
        assert s.load == 2
        # 2 + 2 = 4 > 3: reject and burn
        replies = s.phase2(batch)
        assert not any(r.accept for r in replies)
        assert s.burned and s.is_blocked
        assert s.load == 2
        # stays burned even for tiny batches
        assert not s.phase2([BallRequest(2, 0)])[0].accept

    def test_raes_resaturation(self):
        s = RaesServerAgent(0, capacity=3)
        assert s.phase2([BallRequest(0, 0), BallRequest(0, 1)])[0].accept
        assert not s.phase2([BallRequest(1, 0), BallRequest(1, 1)])[0].accept
        assert s.saturation_events == 1
        assert s.phase2([BallRequest(1, 0)])[0].accept  # 2+1 <= 3
        assert s.load == 3
        assert s.is_blocked  # now full

    def test_replies_carry_only_one_bit(self):
        """Model M: replies expose accept/reject and routing, nothing else
        (no loads, no thresholds)."""
        s = SaerServerAgent(0, capacity=2)
        reply = s.phase2([BallRequest(4, 1)])[0]
        assert set(vars(reply)) == {"client_id", "ball_slot", "accept"}

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SaerServerAgent(0, capacity=0)


class TestAgentRunnerApi:
    def test_unknown_policy(self, small_regular_graph):
        from repro.agents.simulator import run_agent_protocol
        from repro.core.config import ProtocolParams

        with pytest.raises(ProtocolConfigError):
            run_agent_protocol(small_regular_graph, ProtocolParams(c=2.0, d=1), "nope")

    def test_isolated_clients_rejected(self):
        g = BipartiteGraph.from_edges(2, 2, [(0, 0)])
        with pytest.raises(GraphValidationError):
            run_agent_saer(g, 2.0, 1, seed=0)

    def test_seed_and_tape_exclusive(self, small_regular_graph):
        with pytest.raises(ProtocolConfigError):
            run_agent_saer(small_regular_graph, 2.0, 1, seed=1, tape=RandomTape(seed=2))

    def test_seed_run_completes(self, small_regular_graph):
        res = run_agent_saer(small_regular_graph, 4.0, 2, seed=0)
        assert res.completed
        assert res.max_load <= 8
