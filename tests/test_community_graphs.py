"""Tests for the community-structured trust generator + protocol behaviour
under correlated neighborhoods (the §1.2 dependence structure, amplified)."""

import numpy as np
import pytest

import repro
from repro.core import run_coupled
from repro.errors import GraphConstructionError
from repro.graphs import community_bipartite, degree_report


class TestCommunityGenerator:
    def test_client_degrees_exact(self):
        g = community_bipartite(60, 6, 5, 3, seed=0)
        assert np.all(g.client_degrees == 8)

    def test_within_edges_stay_in_community(self):
        g = community_bipartite(40, 4, 10, 0, seed=1)  # fully intra-community
        group = 10
        for v in range(40):
            gidx = v // group
            nbrs = g.neighbors_of_client(v)
            assert np.all((nbrs >= gidx * group) & (nbrs < (gidx + 1) * group))

    def test_across_edges_leave_community(self):
        g = community_bipartite(40, 4, 0, 6, seed=2)
        group = 10
        for v in range(40):
            gidx = v // group
            nbrs = g.neighbors_of_client(v)
            assert not np.any((nbrs >= gidx * group) & (nbrs < (gidx + 1) * group))

    def test_neighbor_overlap_is_high_within_community(self):
        """The point of the family: same-community clients share servers."""
        g = community_bipartite(64, 4, 12, 2, seed=3)
        a = set(g.neighbors_of_client(0).tolist())
        b = set(g.neighbors_of_client(1).tolist())  # same community (group 16)
        c = set(g.neighbors_of_client(40).tolist())  # different community
        assert len(a & b) > len(a & c)

    def test_validation(self):
        with pytest.raises(GraphConstructionError):
            community_bipartite(10, 3, 1, 1)  # not divisible
        with pytest.raises(GraphConstructionError):
            community_bipartite(10, 2, 6, 0)  # k_within > group
        with pytest.raises(GraphConstructionError):
            community_bipartite(10, 2, 0, 0)  # no servers at all

    def test_validates_structure(self):
        community_bipartite(48, 4, 6, 4, seed=4).validate()


class TestProtocolOnCommunities:
    @pytest.fixture(scope="class")
    def comm_graph(self):
        return community_bipartite(128, 8, 12, 4, seed=10)

    def test_invariants_hold(self, comm_graph):
        for seed in range(3):
            res = repro.run_saer(comm_graph, 1.5, 4, seed=seed)
            assert res.max_load <= res.params.capacity
            assert res.assigned_balls + res.alive_balls == res.total_balls

    def test_coupling_dominance_survives_correlation(self, comm_graph):
        """Corollary 2's coupling argument is topology-free; correlated
        neighborhoods must not break the pathwise dominance."""
        for seed in range(3):
            cp = run_coupled(comm_graph, 1.5, 4, seed=seed)
            assert cp.nested_every_round

    def test_burns_cluster_by_community(self):
        """Correlated trust concentrates burns: with purely intra-community
        edges and one overloaded community... every community behaves like
        an independent small instance, so burned servers distribute evenly;
        the *interesting* check is that completion still happens."""
        g = community_bipartite(96, 8, 12, 0, seed=11)
        res = repro.run_saer(g, 2.0, 4, seed=12)
        assert res.completed
        rep = degree_report(g)
        assert rep.rho >= 1.0
