"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
PEP-517 editable installs (which build a wheel) fail.  Keeping a
``setup.py`` and omitting ``[build-system]`` from pyproject.toml lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which works offline.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
