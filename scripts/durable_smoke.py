#!/usr/bin/env python
"""Durable-execution crash smoke: SIGKILL a pooled sweep, resume, diff.

The end-to-end drill the unit tests cannot do in-process:

1. launch a **child process** running a pooled (2-worker) durable E6
   sweep spooling to disk;
2. wait until its journal shows real progress, then SIGKILL the child's
   entire process group mid-run — parent and pool workers die with no
   chance to clean up, exactly like an OOM kill or a pre-empted node;
3. **resume** the sweep from the spool directory in this process;
4. diff the resumed table — summary rows *and* every raw record —
   against a never-killed control run.  Any divergence is a failure.

Runs the drill for both backends (reference and batched).  If the child
finishes before the kill lands (fast machine), the run degrades to a
resume-of-complete-spool check — still asserted, but flagged in the
output so CI timing drift is visible.

Usage::

    python scripts/durable_smoke.py [--trials 2] [--n 256] [--seed 3]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

# One grid point per line; the child is killed once this many points
# have been journaled (mid-run, with most of the sweep still pending).
KILL_AFTER_BLOCKS = 2

CHILD_CODE = """\
import sys
sys.path.insert(0, {src!r})
from repro.experiments.runners import run_e06_c_threshold
run_e06_c_threshold(
    n={n}, trials={trials}, seed={seed}, processes=2,
    backend={backend!r}, spool={spool!r},
)
"""


def _journal_blocks(journal: Path) -> int:
    """Completed-point lines currently in the journal (0 if not there yet)."""
    if not journal.exists():
        return 0
    count = 0
    for line in journal.read_text(errors="replace").splitlines():
        if '"kind": "block"' in line or '"kind":"block"' in line:
            count += 1
    return count


def run_scenario(backend: str, workdir: Path, *, n: int, trials: int, seed: int) -> bool:
    from repro.experiments.runners import run_e06_c_threshold

    spool = workdir / f"spool-{backend}"
    journal = spool / "journal.jsonl"
    code = CHILD_CODE.format(
        src=str(SRC), n=n, trials=trials, seed=seed, backend=backend, spool=str(spool)
    )
    # Its own session → killpg nukes the pool workers along with the
    # parent, the way a real OOM-killer / node pre-emption would.
    child = subprocess.Popen(
        [sys.executable, "-c", code],
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    killed = False
    deadline = time.monotonic() + 600
    while time.monotonic() < deadline:
        if child.poll() is not None:
            break
        if _journal_blocks(journal) >= KILL_AFTER_BLOCKS:
            os.killpg(child.pid, signal.SIGKILL)
            killed = True
            break
        time.sleep(0.05)
    else:
        os.killpg(child.pid, signal.SIGKILL)
        print(f"[{backend}] child made no progress within the deadline", file=sys.stderr)
        child.wait()
        return False
    child.wait()

    if killed:
        done = _journal_blocks(journal)
        print(f"[{backend}] killed child mid-run with {done} point(s) journaled")
    else:
        print(
            f"[{backend}] WARNING: child finished before the kill landed; "
            "checking resume-of-complete-spool instead"
        )

    resumed_rows, resumed_meta = run_e06_c_threshold(
        n=n, trials=trials, seed=seed, processes=1, backend=backend, resume=str(spool)
    )
    control_rows, control_meta = run_e06_c_threshold(
        n=n, trials=trials, seed=seed, processes=1, backend=backend
    )

    ok = True
    if resumed_rows != control_rows:
        print(f"[{backend}] FAIL: summary rows diverge from control", file=sys.stderr)
        ok = False
    resumed_recs, control_recs = resumed_meta["records"], control_meta["records"]
    if not resumed_recs.equals(control_recs):
        print(f"[{backend}] FAIL: raw records diverge from control", file=sys.stderr)
        ok = False
    if ok:
        print(
            f"[{backend}] OK: resumed table bit-identical to never-killed "
            f"control ({len(resumed_recs)} records)"
        )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--backends", default="reference,batched",
        help="comma-separated backends to drill (default: both)",
    )
    args = parser.parse_args(argv)
    ok = True
    with tempfile.TemporaryDirectory(prefix="durable-smoke-") as tmp:
        for backend in (b.strip() for b in args.backends.split(",") if b.strip()):
            ok = run_scenario(
                backend, Path(tmp), n=args.n, trials=args.trials, seed=args.seed
            ) and ok
    print("durable smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
