"""E7 — the degree hypothesis Δ = Ω(log² n), and the dense regime of [4].

Sweeps the degree of a random regular graph from log n (below the
theorem's regime — where failures appear) through log² n up to the
complete graph (the Becchetti et al. dense case).
"""

from repro.experiments import run_e07_degree_sweep


def test_e07_degree_sweep(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e07_degree_sweep(n=1024, trials=8, processes=bench_processes),
        rounds=1,
        iterations=1,
    )
    reporter.report("E7", rows, meta)
    by_regime = {row["degree_regime"]: row for row in rows}
    # Inside the theorem's regime: always completes, within horizon.
    for regime in ("log² n", "n/4", "n (complete)"):
        row = by_regime[regime]
        assert row["completion_rate"] == 1.0, regime
        assert row["rounds_max"] <= row["horizon"], regime
    # Below the regime the guarantee visibly degrades: lower completion
    # rate or strictly slower completion than at log² n.
    low, ref = by_regime["log n"], by_regime["log² n"]
    assert (
        low["completion_rate"] < 1.0
        or low["rounds_median"] > ref["rounds_median"]
    ), (low, ref)
