"""E1 — Theorem 1 (completion): SAER finishes in O(log n) rounds.

Regenerates the completion-time table: median rounds vs n on Δ-regular
graphs with Δ = ⌈log₂² n⌉, in the contended regime (c = 1.5, d = 4),
against the proof's 3·log₂ n horizon.
"""

from repro.experiments import run_e01_completion


def test_e01_completion_time(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e01_completion(
            ns=(256, 512, 1024, 2048, 4096),
            trials=8,
            processes=bench_processes,
        ),
        rounds=1,
        iterations=1,
    )
    reporter.report("E1", rows, meta)
    # Shape: every trial completed, inside the proof horizon.
    for row in rows:
        assert row["completed"] == row["trials"], f"incomplete runs at n={row['n']}"
        assert row["within_horizon"], f"horizon exceeded at n={row['n']}"
    # Shape: growth is logarithmic-like, far from polynomial.
    assert meta["power_exponent"] < 0.35, meta["power_exponent"]
    # Shape: rounds do grow with n (positive log-slope).
    assert meta["log2_r2"] >= 0.0
    assert rows[-1]["rounds_median"] >= rows[0]["rounds_median"]
