"""E10 — Lemmas 11-13: Stage-I exponential decay and the γ envelope.

Two regimes on one graph: at the paper's c the measured K_t must stay
below the γ_t envelope and r_t(N(v)) below 2dΔ·Π γ (the process in fact
finishes almost immediately — the envelope is very conservative); at a
contended c the multi-round geometric decay of r_t is visible and its
measured rate is reported.
"""

from repro.experiments import run_e10_stage1


def test_e10_stage1_decay(benchmark, reporter):
    rows, meta = benchmark.pedantic(
        lambda: run_e10_stage1(n=4096, d=4, contended_c=1.5, seed=1010),
        rounds=1,
        iterations=1,
    )
    reporter.report("E10", rows, meta)
    assert meta["all_K_below_gamma"]
    assert meta["all_r_below_envelope"]
    # The contended run decays geometrically while r is Ω(log n):
    assert meta["contended_decay_geometric_mean"] is not None
    assert meta["contended_decay_geometric_mean"] < 0.7
    # Stage-II envelope stays below 1/2 at the paper's c (Lemma 14 premise).
    assert meta["delta_envelope_max"] <= 0.5
