"""Round-kernel throughput: compiled kernel paths vs the numpy engine.

Measures trials·rounds/sec of ``repro.batch.run_trials_batched`` on the
scale-axis workload (n=10⁵ Δ-regular graph, R=64 trials, contended
c=1.5 d=4) for every kernel implementation available on this machine —
the numpy reference (the PR 2 engine's path, and the baseline), the
fused C extension, and numba when installed.  Parity is re-verified
before any timing is trusted.  Also measures the columnar results
spool: the pickled payload of one sweep point's records as legacy
dicts vs as a typed :class:`~repro.batch.results.ResultBlock`.

With ``--threads`` the compiled kernels are additionally swept over a
list of trial-partitioned thread counts (the OpenMP / ``numba.prange``
path; parity is re-verified at *every* thread count before timing) and
the report lands in ``BENCH_kernels_mt.json`` — per (kernel, threads)
trials·rounds/sec plus speedups vs that kernel's sequential run.

Two entry points:

* ``pytest benchmarks/bench_kernels.py`` — a fast parity/throughput
  smoke at CI scale;
* ``python benchmarks/bench_kernels.py [--smoke] [--threads 1,2,4]
  [--json PATH]`` — the full measurement, printing a table and writing
  ``BENCH_kernels.json`` (or ``BENCH_kernels_mt.json`` for a threads
  sweep) so future PRs can track the compiled-path trajectory.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pickle
import time
from pathlib import Path

import numpy as np

from repro.batch import EngineBuffers, ResultBlock, available_kernels, run_trials_batched
from repro.parallel.pool import available_cpus
from repro.core.config import ProtocolParams
from repro.graphs import random_regular_bipartite
from repro.rng import spawn_seeds

# "python" runs the compiled algorithm interpreted — parity-correct but
# orders of magnitude slow; it is for the test suite, not for timing.
TIMEABLE = ("numpy", "cext", "numba")
# Only the compiled kernels have a threaded twin worth timing.
THREADABLE = ("cext", "numba")


def _time_best(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_kernels(
    n: int = 100_000,
    n_trials: int = 64,
    c: float = 1.5,
    d: int = 4,
    seed: int = 123,
    repeats: int = 3,
) -> dict:
    """Time every available kernel on identical seeds; verify parity first."""
    degree = max(2, math.ceil(math.log2(n) ** 2))
    graph = random_regular_bipartite(n, degree, seed=0)
    params = ProtocolParams(c=c, d=d)
    seeds = spawn_seeds(seed, n_trials)
    kernels = [k for k in TIMEABLE if k in available_kernels()]

    bufs = EngineBuffers()
    ref = run_trials_batched(graph, params, "saer", seeds=seeds, kernel="numpy", buffers=bufs)
    records = []
    speedups = {}
    t_numpy = None
    for name in kernels:
        out = run_trials_batched(graph, params, "saer", seeds=seeds, kernel=name, buffers=bufs)
        assert np.array_equal(out.rounds, ref.rounds) and np.array_equal(
            out.loads, ref.loads
        ), f"{name} kernel parity broken: timing would be meaningless"
        t = _time_best(
            lambda: run_trials_batched(
                graph, params, "saer", seeds=seeds, kernel=name, buffers=bufs
            ),
            repeats,
        )
        if name == "numpy":
            t_numpy = t
        rate = float(ref.rounds.sum()) / t
        speedups[name] = t_numpy / t
        records.append(
            {
                "kernel": name,
                "n": n,
                "R": n_trials,
                "c": c,
                "d": d,
                "degree": degree,
                "seconds": round(t, 4),
                "trials_rounds_per_sec": round(rate, 1),
                "trials_per_sec": round(n_trials / t, 2),
            }
        )
    return {
        "workload": {"n": n, "R": n_trials, "c": c, "d": d, "degree": degree,
                     "rounds_total": int(ref.rounds.sum())},
        "kernels_available": kernels,
        "records": records,
        "speedup_vs_numpy": {k: round(v, 2) for k, v in speedups.items()},
    }


def measure_kernels_mt(
    n: int = 100_000,
    n_trials: int = 64,
    thread_counts=(1, 2, 4),
    c: float = 1.5,
    d: int = 4,
    seed: int = 123,
    repeats: int = 3,
) -> dict:
    """Thread-count sweep of the compiled kernels on identical seeds.

    Parity vs the numpy reference is re-verified at every (kernel,
    threads) cell before its timing is trusted — the threaded path's
    whole contract is bit-identity, so a diverging cell must fail loud,
    not get timed.  Speedups are reported against each kernel's own
    sequential (threads=1) run; ``cpu_count`` is recorded so a 1-core
    CI box's flat curve reads as what it is.
    """
    thread_counts = sorted(set(int(t) for t in thread_counts) | {1})
    degree = max(2, math.ceil(math.log2(n) ** 2))
    graph = random_regular_bipartite(n, degree, seed=0)
    params = ProtocolParams(c=c, d=d)
    seeds = spawn_seeds(seed, n_trials)
    kernels = [k for k in THREADABLE if k in available_kernels()]

    bufs = EngineBuffers()
    ref = run_trials_batched(
        graph, params, "saer", seeds=seeds, kernel="numpy", buffers=bufs
    )
    records = []
    speedups = {}
    for name in kernels:
        t_seq = None
        for threads in thread_counts:
            out = run_trials_batched(
                graph, params, "saer", seeds=seeds, kernel=name,
                threads=threads, buffers=bufs,
            )
            assert np.array_equal(out.rounds, ref.rounds) and np.array_equal(
                out.loads, ref.loads
            ), f"{name}@threads={threads} parity broken: timing would be meaningless"
            t = _time_best(
                lambda: run_trials_batched(
                    graph, params, "saer", seeds=seeds, kernel=name,
                    threads=threads, buffers=bufs,
                ),
                repeats,
            )
            if threads == 1:
                t_seq = t
            key = f"{name}@t{threads}"
            speedups[key] = round(t_seq / t, 2)
            records.append(
                {
                    "kernel": name,
                    "threads": threads,
                    "n": n,
                    "R": n_trials,
                    "c": c,
                    "d": d,
                    "degree": degree,
                    "seconds": round(t, 4),
                    "trials_rounds_per_sec": round(float(ref.rounds.sum()) / t, 1),
                    "trials_per_sec": round(n_trials / t, 2),
                }
            )
    return {
        "benchmark": "bench_kernels_mt",
        "workload": {
            "n": n, "R": n_trials, "c": c, "d": d, "degree": degree,
            "rounds_total": int(ref.rounds.sum()),
            "cpu_count": available_cpus(),
        },
        "kernels_available": kernels,
        "thread_counts": thread_counts,
        "records": records,
        "speedup_vs_sequential": speedups,
    }


def measure_spool(n: int = 4096, n_trials: int = 64) -> dict:
    """Pickled return-payload bytes: legacy record dicts vs ResultBlock."""
    point = {"n": n, "c": 1.5, "d": 4}
    rng = np.random.default_rng(0)
    records = [
        {
            "completed": True,
            "rounds": int(rng.integers(1, 30)),
            "work": int(rng.integers(n, 8 * n)),
            "work_per_client": float(rng.random() * 10),
            "max_load": 6,
            "capacity": 6,
            "blocked_servers": int(rng.integers(0, n)),
            "rho": 1.0,
            "deg_min_c": 144,
        }
        for _ in range(n_trials)
    ]
    legacy = [dict(point, trial=t, **r) for t, r in zip(range(n_trials), records)]
    block = ResultBlock.from_records(point, list(range(n_trials)), records)
    legacy_bytes = len(pickle.dumps(legacy, protocol=pickle.HIGHEST_PROTOCOL))
    block_bytes = len(pickle.dumps(block, protocol=pickle.HIGHEST_PROTOCOL))
    return {
        "R": n_trials,
        "legacy_records_bytes": legacy_bytes,
        "result_block_bytes": block_bytes,
        "payload_ratio": round(legacy_bytes / block_bytes, 2),
    }


def run_benchmark(n: int, n_trials: int, repeats: int, seed: int = 123) -> dict:
    report = measure_kernels(n=n, n_trials=n_trials, seed=seed, repeats=repeats)
    report["benchmark"] = "bench_kernels"
    report["results_spool"] = measure_spool(n_trials=n_trials)
    return report


# -- pytest entries (reduced scale, CI-friendly) -----------------------------


def test_kernel_throughput_smoke():
    """Parity + a sane timing run for every available kernel at CI scale."""
    report = run_benchmark(n=2048, n_trials=16, repeats=1)
    assert report["records"], "no kernels timed"
    for rec in report["records"]:
        assert rec["trials_rounds_per_sec"] > 0
    assert report["results_spool"]["payload_ratio"] > 1.0


def test_threaded_kernel_smoke():
    """Parity + sane timings across thread counts at CI scale.

    Never asserts a speedup — a 1-core CI box legitimately shows a flat
    curve; what must hold everywhere is bit-identity (checked inside
    measure_kernels_mt) and that every (kernel, threads) cell runs.
    """
    import pytest

    compiled = [k for k in THREADABLE if k in available_kernels()]
    if not compiled:
        pytest.skip("no compiled kernel available (no numba, no C compiler)")
    report = measure_kernels_mt(n=2048, n_trials=16, thread_counts=(1, 2), repeats=1)
    assert report["records"], "no (kernel, threads) cells timed"
    assert {r["threads"] for r in report["records"]} == {1, 2}
    for rec in report["records"]:
        assert rec["trials_rounds_per_sec"] > 0


def test_compiled_kernel_speedup_floor():
    """A compiled kernel must clearly beat the numpy path.

    Checked at n=10⁴ so the suite stays fast; the full acceptance
    number (≥2× at n=10⁵, where the CSR table outgrows cache and the
    fused pass pays most) is what ``BENCH_kernels.json`` records via
    the CLI entry.  Skipped where no compiled path exists (no numba, no
    C compiler) — that install legitimately runs pure numpy.
    """
    import pytest

    compiled = [k for k in ("cext", "numba") if k in available_kernels()]
    if not compiled:
        pytest.skip("no compiled kernel available (no numba, no C compiler)")
    report = measure_kernels(n=10_000, n_trials=64, repeats=2)
    best = max(report["speedup_vs_numpy"][k] for k in compiled)
    assert best >= 1.3, report["speedup_vs_numpy"]


# -- CLI entry ----------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000, help="clients/servers per side")
    parser.add_argument("--trials", type=int, default=64, help="trials per batch (R)")
    parser.add_argument("--repeats", type=int, default=3, help="timing repetitions (best-of)")
    parser.add_argument("--smoke", action="store_true", help="reduced scale for CI")
    parser.add_argument(
        "--threads",
        default=None,
        metavar="LIST",
        help="comma-separated thread counts (e.g. 1,2,4): sweep the "
        "compiled kernels' trial-partitioned threaded path instead of "
        "the kernel comparison; writes BENCH_kernels_mt.json by default",
    )
    parser.add_argument(
        "--json",
        default=None,
        help="output path for the machine-readable report "
        "(default: BENCH_kernels.json, or BENCH_kernels_mt.json "
        "with --threads)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="allow a single-core run to overwrite an existing "
        "BENCH_kernels_mt.json (by default it is preserved: a 1-core "
        "box's flat thread curve would silently replace real "
        "multi-core numbers)",
    )
    args = parser.parse_args(argv)
    n, trials, repeats = args.n, args.trials, args.repeats
    if args.smoke:
        n, trials, repeats = min(n, 4096), min(trials, 16), 1
    repo_root = Path(__file__).resolve().parent.parent

    if args.threads:
        thread_counts = [int(t) for t in args.threads.split(",") if t.strip()]
        cores = available_cpus()
        print(f"cpu_count={cores}" + (" — thread sweep will be flat" if cores <= 1 else ""))
        report = measure_kernels_mt(
            n=n, n_trials=trials, thread_counts=thread_counts, repeats=repeats
        )
        header = (
            f"{'kernel':8s} {'thr':>4s} {'n':>8s} {'R':>4s} {'seconds':>9s} "
            f"{'trials·rounds/s':>16s} {'vs thr=1':>9s}"
        )
        print(header)
        print("-" * len(header))
        for rec in report["records"]:
            key = f"{rec['kernel']}@t{rec['threads']}"
            print(
                f"{rec['kernel']:8s} {rec['threads']:4d} {rec['n']:8d} "
                f"{rec['R']:4d} {rec['seconds']:9.3f} "
                f"{rec['trials_rounds_per_sec']:16.1f} "
                f"{report['speedup_vs_sequential'][key]:8.2f}x"
            )
        print(f"(cpu_count={report['workload']['cpu_count']})")
        out = args.json or str(repo_root / "BENCH_kernels_mt.json")
        if cores <= 1 and Path(out).exists() and not args.force:
            print(
                f"NOT writing {out}: this is a {cores}-core box and the "
                "file already holds a (presumably multi-core) report.  "
                "Re-run with --force to overwrite anyway."
            )
            return 0
        Path(out).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")
        return 0

    report = run_benchmark(n=n, n_trials=trials, repeats=repeats)
    header = f"{'kernel':8s} {'n':>8s} {'R':>4s} {'seconds':>9s} {'trials·rounds/s':>16s} {'vs numpy':>9s}"
    print(header)
    print("-" * len(header))
    for rec in report["records"]:
        print(
            f"{rec['kernel']:8s} {rec['n']:8d} {rec['R']:4d} {rec['seconds']:9.3f} "
            f"{rec['trials_rounds_per_sec']:16.1f} "
            f"{report['speedup_vs_numpy'][rec['kernel']]:8.2f}x"
        )
    spool = report["results_spool"]
    print(
        f"results spool: {spool['legacy_records_bytes']} B of record dicts → "
        f"{spool['result_block_bytes']} B columnar ({spool['payload_ratio']}x smaller)"
    )
    out = args.json or str(repo_root / "BENCH_kernels.json")
    Path(out).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
