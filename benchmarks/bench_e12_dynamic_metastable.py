"""E12 — §4 future work: dynamic arrivals + churn → metastable regime.

Our concretization of the paper's conjecture (see repro.dynamic): SAER
with burn recovery under Poisson arrivals and topology churn keeps a
bounded backlog below the capacity knee, diverges above it, and the
no-recovery control always diverges under sustained load.
"""

from repro.experiments import run_e12_dynamic


def test_e12_dynamic_metastable(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e12_dynamic(
            n=512,
            rates=(0.2, 0.5, 1.0, 2.0),
            horizon=400,
            trials=3,
            processes=bench_processes,
        ),
        rounds=1,
        iterations=1,
    )
    reporter.report("E12", rows, meta)
    with_recovery = [r for r in rows if r["recovery"] is not None]
    control = [r for r in rows if r["recovery"] is None]
    # Below the knee: bounded backlog in every trial.
    low = [r for r in with_recovery if r["rate"] == 0.2][0]
    assert low["metastable"] == f"{low['trials']}/{low['trials']}"
    # Above the knee: divergence.
    high = [r for r in with_recovery if r["rate"] == 2.0][0]
    assert high["metastable"] == f"0/{high['trials']}"
    assert high["backlog_mean_2nd_half"] > 100 * low["backlog_mean_2nd_half"]
    # The no-recovery control burns everything and diverges.
    assert control[0]["metastable"] == f"0/{control[0]['trials']}"
    assert control[0]["burned_frac_final"] == 1.0
