"""E5 — Corollary 2: RAES stochastically dominates SAER.

Uses the slot-level coupling (same uniform per ball slot per round for
both protocols): the dominance then holds *pathwise*, which the bench
asserts in 100% of coupled trials.
"""

from repro.experiments import run_e05_dominance


def test_e05_raes_dominance(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e05_dominance(
            ns=(256, 1024), cs=(1.5, 2.0), trials=10, processes=bench_processes
        ),
        rounds=1,
        iterations=1,
    )
    reporter.report("E5", rows, meta)
    assert meta["all_nested"], "RAES alive set escaped SAER's in some round"
    assert meta["all_dominated"]
    for row in rows:
        assert row["raes_no_later"] == row["trials"], row
        assert row["raes_rounds_mean"] <= row["saer_rounds_mean"] + 1e-9
