"""E9 — the §1.3 trade-off table: SAER/RAES vs greedy and threshold baselines.

Columns regenerate the paper's qualitative comparison: sequential greedy
achieves lower max load but takes Θ(n) sequential steps and requires
servers to disclose loads; the threshold protocols get O(d) load in a
handful of parallel rounds with 1-bit replies.
"""

from repro.experiments import run_e09_baselines


def test_e09_baselines(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e09_baselines(n=1024, trials=5, processes=bench_processes),
        rounds=1,
        iterations=1,
    )
    reporter.report("E9", rows, meta)
    by_algo = {row["algorithm"]: row for row in rows}
    cap = meta["capacity"]
    # SAER/RAES: bounded load, logarithmic parallel time, no disclosure.
    for name in ("saer", "raes"):
        row = by_algo[name]
        assert row["max_load_max"] <= cap
        assert row["rounds_max"] <= 30  # ≪ the 4096 sequential steps
        assert not row["discloses_loads"]
    # Sequential greedy: better load, but serial and disclosing.
    greedy = by_algo["greedy_best_of_2"]
    assert greedy["discloses_loads"]
    assert greedy["steps_max"] == 1024 * meta["d"]
    assert greedy["max_load_max"] <= by_algo["saer"]["max_load_max"]
    # One-choice: the no-coordination baseline has the worst max load.
    assert by_algo["one_choice"]["max_load_mean"] >= greedy["max_load_mean"]
    # Godfrey: near-optimal load at Θ(n·Δ) work.
    godfrey = by_algo["godfrey_greedy"]
    assert godfrey["max_load_max"] <= greedy["max_load_max"]
    assert godfrey["work_mean"] > greedy["work_mean"]
