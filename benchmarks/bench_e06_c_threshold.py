"""E6 — "sufficiently large c": the threshold behaviour in c.

Sweeps c from starvation (c·d below the per-server offered load — every
server burns, the protocol stalls) through the practical knee (c ≈ 1.5)
to the paper's analysis scale (c = 32), exhibiting that the analysis
constants are very conservative (footnote 12).
"""

from repro.experiments import run_e06_c_threshold


def test_e06_c_threshold(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e06_c_threshold(
            n=1024,
            cs=(1.0, 1.2, 1.35, 1.5, 2.0, 3.0, 4.0, 8.0, 16.0, 32.0),
            trials=8,
            processes=bench_processes,
        ),
        rounds=1,
        iterations=1,
    )
    reporter.report("E6", rows, meta)
    by_c = {row["c"]: row for row in rows}
    # Starvation regime: c=1 gives capacity 4 = E[received]; burnout.
    assert by_c[1.0]["completion_rate"] == 0.0
    # Comfortable regime: any c >= 2 completes always, fast.
    for c in (2.0, 3.0, 4.0, 8.0, 16.0, 32.0):
        assert by_c[c]["completion_rate"] == 1.0, c
    # Speed is monotone-ish: paper-scale c no slower than the knee.
    assert by_c[32.0]["rounds_median"] <= by_c[1.5]["rounds_median"]
    # Work blows up only in the failing regime.
    assert by_c[1.0]["work_per_client"] > 5 * by_c[2.0]["work_per_client"]
