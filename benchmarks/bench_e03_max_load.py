"""E3 — the protocol invariant: max server load never exceeds ⌊c·d⌋.

Sweeps graph families × protocols × (c, d) and counts violations (the
paper's remark (i): *if* the protocol terminates, the load bound is
structural — we additionally verify it holds for non-terminating runs).
"""

from repro.experiments import run_e03_max_load


def test_e03_max_load_invariant(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e03_max_load(
            n=1024,
            settings=((1.5, 4), (2.0, 2), (4.0, 2)),
            families=("regular", "trust", "near_regular", "er"),
            trials=5,
            processes=bench_processes,
        ),
        rounds=1,
        iterations=1,
    )
    reporter.report("E3", rows, meta)
    assert meta["total_violations"] == 0
    for row in rows:
        assert row["max_load_max"] <= row["capacity"], row
