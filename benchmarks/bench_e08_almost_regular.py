"""E8 — the almost-regularity allowance ρ = Δ_max(S)/Δ_min(C) = O(1).

Regenerates the table for ρ-band near-regular families plus the paper's
extremal example (a few √n-degree clients and O(1)-degree servers) —
the theorem's guarantee should be insensitive to constant ρ.
"""

from repro.experiments import run_e08_almost_regular


def test_e08_almost_regular(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e08_almost_regular(
            n=1024, ratios=(1, 2, 4), trials=8, processes=bench_processes
        ),
        rounds=1,
        iterations=1,
    )
    reporter.report("E8", rows, meta)
    for row in rows:
        assert row["completed"] == row["trials"], row
        assert row["rounds_max"] <= row["horizon"], row
    # Completion time varies only mildly across the ρ families.
    medians = [row["rounds_median"] for row in rows]
    assert max(medians) <= 3 * max(min(medians), 1), medians
