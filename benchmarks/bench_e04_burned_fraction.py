"""E4 — Lemma 4 / 19: the burned fraction S_t stays ≤ 1/2.

At the paper's analysis-scale c the bound is guaranteed w.h.p.; the
table also shows the practical-c regimes where S_t approaches (but in
our runs never crosses) 1/2 — the empirical content of the lemma.
"""

from repro.experiments import run_e04_burned_fraction


def test_e04_burned_fraction(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e04_burned_fraction(
            ns=(256, 1024, 4096),
            trials=6,
            include_paper_c=True,
            processes=bench_processes,
        ),
        rounds=1,
        iterations=1,
    )
    reporter.report("E4", rows, meta)
    # Hard guarantee at the paper's c: every trial satisfies the lemma.
    for row in rows:
        if row["c_regime"] == "paper":
            ok, total = row["lemma4_ok"].split("/")
            assert ok == total, row
            assert row["max_s_t_worst"] <= 0.5
    # Informative: at c = 2 the burned fraction is already far below 1/2.
    for row in rows:
        if row["c_regime"] == "practical-2":
            assert row["max_s_t_worst"] <= 0.5, row
