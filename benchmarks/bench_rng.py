"""RNG-lineage throughput: the Philox counter path vs the PCG64 path.

Measures trials·rounds/sec of ``repro.batch.run_trials_batched`` on the
scale-axis workload (n=10⁵ Δ-regular graph, R=64 trials, contended
c=1.5 d=4) under both seed lineages on the best compiled kernel gate
available — the stream-cursor PCG64 read-ahead (``seed_mode=None``,
the default) against the counter-based Philox4x32 fill
(``seed_mode="philox"``), whose location-independent draws let the
fused C kernel generate each trial's uniforms in L2-resident SIMD
chunks instead of walking a sequential generator.

Timing discipline: the two modes are interleaved pairwise (pcg64,
philox, pcg64, philox, …) and compared min-of-min, so a noisy or
shared box perturbs both sides alike instead of biasing whichever ran
second.  Philox parity across every available kernel gate is
re-verified before any timing is trusted.

Two entry points:

* ``pytest benchmarks/bench_rng.py`` — a fast parity/speedup smoke at
  CI scale (no ratio assertion: CI boxes are too noisy to gate on);
* ``python benchmarks/bench_rng.py [--smoke] [--json PATH]`` — the
  full measurement, printing a table and writing ``BENCH_rng.json``
  so future PRs can track the counter path's trajectory.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.batch import EngineBuffers, available_kernels, run_trials_batched
from repro.core.config import ProtocolParams
from repro.graphs import random_regular_bipartite
from repro.rng import spawn_seeds

# Preference order for the timed gate: the fused C path is the fast
# lane on both lineages; numba second; numpy is always present.
GATE_PREFERENCE = ("cext", "numba", "numpy")


def best_gate() -> str:
    avail = available_kernels()
    forced = (os.environ.get("REPRO_KERNELS") or "").strip().lower()
    if forced in avail:
        return forced  # a pinned gate (CI matrix legs) wins over preference
    for name in GATE_PREFERENCE:
        if name in avail:
            return name
    return "numpy"


def verify_parity(graph, params, seeds) -> None:
    """Philox bits must agree across every gate before timing one."""
    ref = None
    for name in available_kernels():
        if name == "python":
            continue  # interpreted: correct but far too slow at bench scale
        out = run_trials_batched(
            graph, params, "saer", seeds=seeds, kernel=name, seed_mode="philox"
        )
        sig = (out.rounds, out.work, out.loads)
        if ref is None:
            ref = sig
            continue
        for a, b in zip(ref, sig):
            assert np.array_equal(a, b), (
                f"philox parity broken on kernel {name!r}: timing would be meaningless"
            )


def measure(
    n: int = 100_000,
    n_trials: int = 64,
    c: float = 1.5,
    d: int = 4,
    seed: int = 7,
    pairs: int = 5,
) -> dict:
    """Interleaved pcg64/philox timing on the best compiled gate."""
    degree = max(2, math.ceil(math.log2(n) ** 2))
    graph = random_regular_bipartite(n, degree, seed=0)
    params = ProtocolParams(c=c, d=d)
    seeds = spawn_seeds(seed, n_trials)
    gate = best_gate()
    bufs = EngineBuffers()

    verify_parity(graph, params, seeds)

    def run(mode):
        start = time.perf_counter()
        out = run_trials_batched(
            graph, params, "saer", seeds=seeds, kernel=gate,
            seed_mode=mode, buffers=bufs,
        )
        return time.perf_counter() - start, out

    run(None)
    _, ph_out = run("philox")  # warm both lanes (JIT/cext build, buffers)
    t_pcg, t_ph = [], []
    for _ in range(pairs):
        t_pcg.append(run(None)[0])
        t_ph.append(run("philox")[0])
    best_pcg, best_ph = min(t_pcg), min(t_ph)

    def record(mode, rounds_total, seconds):
        return {
            "seed_mode": mode,
            "kernel": gate,
            "n": n,
            "R": n_trials,
            "c": c,
            "d": d,
            "degree": degree,
            "seconds": round(seconds, 4),
            "trials_rounds_per_sec": round(rounds_total / seconds, 1),
            "trials_per_sec": round(n_trials / seconds, 2),
        }

    _, pcg_out = run(None)
    return {
        "benchmark": "bench_rng",
        "workload": {
            "n": n, "R": n_trials, "c": c, "d": d, "degree": degree,
            "cpu_count": os.cpu_count(),
            "pairs": pairs,
        },
        "kernel": gate,
        "records": [
            record("pcg64", float(pcg_out.rounds.sum()), best_pcg),
            record("philox", float(ph_out.rounds.sum()), best_ph),
        ],
        "philox_speedup": round(best_pcg / best_ph, 3),
    }


def test_rng_bench_smoke():
    """CI smoke: parity holds and both lineages time successfully."""
    report = measure(n=4096, n_trials=16, pairs=1)
    assert report["philox_speedup"] > 0
    modes = [r["seed_mode"] for r in report["records"]]
    assert modes == ["pcg64", "philox"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000, help="clients/servers per side")
    parser.add_argument("--trials", type=int, default=64, help="trials per batch (R)")
    parser.add_argument(
        "--pairs", type=int, default=5,
        help="interleaved (pcg64, philox) timing pairs; min-of-min is reported",
    )
    parser.add_argument("--smoke", action="store_true", help="reduced scale for CI")
    parser.add_argument(
        "--json", default=None,
        help="output path for the machine-readable report (default: BENCH_rng.json)",
    )
    args = parser.parse_args(argv)
    n, trials, pairs = args.n, args.trials, args.pairs
    if args.smoke:
        n, trials, pairs = min(n, 4096), min(trials, 16), 1
    repo_root = Path(__file__).resolve().parent.parent

    report = measure(n=n, n_trials=trials, pairs=pairs)
    header = (
        f"{'seed_mode':10s} {'kernel':7s} {'n':>8s} {'R':>4s} "
        f"{'seconds':>9s} {'trials·rounds/s':>16s}"
    )
    print(header)
    print("-" * len(header))
    for rec in report["records"]:
        print(
            f"{rec['seed_mode']:10s} {rec['kernel']:7s} {rec['n']:8d} "
            f"{rec['R']:4d} {rec['seconds']:9.3f} "
            f"{rec['trials_rounds_per_sec']:16.1f}"
        )
    print(f"philox speedup vs pcg64: {report['philox_speedup']:.3f}x")
    if args.smoke:
        # Smoke scale exists to exercise the path, not to publish
        # numbers a 4096-ball run can't support.
        print("(smoke scale: not writing a report)")
        return 0
    out = args.json or str(repo_root / "BENCH_rng.json")
    Path(out).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
