"""Benchmark-suite plumbing.

Every bench regenerates one experiment table (DESIGN.md §5).  Tables are
(1) printed, (2) written to ``benchmarks/results/<id>.txt``, and
(3) echoed in the terminal summary so they survive pytest's capture —
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` yields a
self-contained results artifact.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.tables import format_table
from repro.experiments import get_experiment

_RESULTS_DIR = Path(__file__).parent / "results"
_COLLECTED: list[str] = []


class TableReporter:
    """Collects experiment tables for the end-of-run summary."""

    def report(self, exp_id: str, rows, meta: dict | None = None) -> str:
        spec = get_experiment(exp_id)
        text = format_table(rows, title=f"{spec.id} — {spec.title}  [{spec.paper_ref}]")
        if meta:
            printable = {k: v for k, v in meta.items() if k != "records"}
            text += f"\nmeta: {printable}"
        text += f"\nexpected shape: {spec.expected_shape}"
        _COLLECTED.append(text)
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{spec.id.lower()}.txt").write_text(text + "\n")
        print("\n" + text)
        return text


@pytest.fixture(scope="session")
def reporter() -> TableReporter:
    return TableReporter()


@pytest.fixture(scope="session")
def bench_processes() -> int:
    """Worker processes for the experiment runners inside benches."""
    cores = os.cpu_count() or 1
    return max(1, cores - 2)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _COLLECTED:
        terminalreporter.write_sep("=", "regenerated experiment tables")
        for text in _COLLECTED:
            terminalreporter.write_line("")
            for line in text.splitlines():
                terminalreporter.write_line(line)
