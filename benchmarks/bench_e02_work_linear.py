"""E2 — Theorem 1 (work): total message count is Θ(n).

Regenerates the work table: messages per client must be flat in n
(equivalently the work-vs-n power-law exponent is ≈ 1).
"""

from repro.experiments import run_e02_work


def test_e02_work_linear(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e02_work(
            ns=(256, 512, 1024, 2048, 4096),
            trials=8,
            processes=bench_processes,
        ),
        rounds=1,
        iterations=1,
    )
    reporter.report("E2", rows, meta)
    # Shape: work scales linearly in n.
    assert 0.9 <= meta["power_exponent"] <= 1.1, meta["power_exponent"]
    # Shape: per-client work flat across a 16× range of n.
    per_client = [row["work_per_client_mean"] for row in rows]
    assert max(per_client) / min(per_client) < 1.6, per_client
    # Work can never be below one round trip per ball.
    for row in rows:
        assert row["work_per_client_mean"] >= row["naive_lower_bound"]
