"""A1–A3 — ablations of SAER's design choices (DESIGN.md §5).

One table, four variants on identical graphs at the contended c = 1.5:
batch-vs-partial rejection (A1), permanent-vs-transient blocking (A2),
and with- vs without-replacement sampling (A3).
"""

from repro.analysis.tables import format_table
from repro.experiments.ablations import run_ablations


def test_ablations(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_ablations(n=1024, c=1.5, d=4, trials=8, processes=bench_processes),
        rounds=1,
        iterations=1,
    )
    # Ablations are not in the E-registry; print/persist directly.
    text = format_table(rows, title="A1-A3 — design-choice ablations (c=1.5, d=4, n=1024)")
    print("\n" + text)
    from pathlib import Path

    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "ablations.txt").write_text(text + f"\nmeta: { {k: v for k, v in meta.items() if k != 'records'} }\n")

    by = {r["variant"]: r for r in rows}
    base = by["saer (baseline)"]
    # Every variant keeps the load cap and completes.
    for row in rows:
        assert row["max_load_worst"] <= row["capacity"], row
        assert row["completed"] == row["trials"], row
    # A1: partial acceptance can only help (never slower than batch reject).
    assert by["partial-accept"]["rounds_median"] <= base["rounds_median"]
    # A2: transient saturation (RAES) completes no later than burning (E5).
    assert by["raes (transient)"]["rounds_median"] <= base["rounds_median"]
    # A3: distinct sampling avoids same-client collisions — work no worse
    # than a small factor of the baseline.
    assert by["distinct-sampling"]["work_per_client"] <= 1.5 * base["work_per_client"]
