"""Serving-layer throughput: the in-process driven loadgen at scale.

Measures sustained assignments/sec of the full serving stack —
submission, micro-batched :meth:`SaerService.run_round`, kernel-gated
routing, and per-ball future resolution — by replaying a Poisson trace
at the acceptance-criteria scale (n=10⁴ servers, one core) with the
driven (no-sleep) load generator.  The ISSUE's floor is ≥50k
assignments/sec; the gate is enforced through the loadgen's own
``--min-throughput`` so CI and this bench share one code path.

Two entry points:

* ``pytest benchmarks/bench_serve.py`` — small-scale smoke (the
  throughput floor scaled down, plus a hotspot-trace sanity run);
* ``python benchmarks/bench_serve.py [--smoke] [--json PATH]`` — the
  full measurement, writing ``BENCH_serve.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.serve.loadgen import main as loadgen_main

_ROOT = Path(__file__).resolve().parent.parent


def _run(out: str, *, n: int, rounds: int, rate: float, min_throughput: float,
         kernel: str | None = None, trace: str = "poisson") -> int:
    argv = [
        "--mode", "inprocess",
        "--n", str(n),
        "--rounds", str(rounds),
        "--rate", str(rate),
        "--trace", trace,
        "--recovery", "8",
        "--seed", "11",
        "--trace-seed", "7",
        "--out", out,
        "--min-assign-rate", "0.99",
        "--min-throughput", str(min_throughput),
    ]
    if kernel:
        argv += ["--kernel", kernel]
    return loadgen_main(argv)


def test_serve_throughput_smoke(tmp_path):
    """CI-scale floor: even at n=2000 the driven path must clear 50k/s
    (the full-scale bench clears it with margin; see BENCH_serve.json)."""
    out = tmp_path / "bench_serve_smoke.json"
    rc = _run(str(out), n=2000, rounds=100, rate=0.3, min_throughput=50_000)
    assert rc == 0, "throughput/assignment-rate gate failed at smoke scale"
    report = json.loads(out.read_text())
    assert report["gates"]["passed"]
    assert report["totals"]["unresolved"] == 0


def test_serve_hotspot_smoke(tmp_path):
    """The adversarial hot-client trace still assigns everything (the
    anonymous-server spreading absorbs the skew) at moderate load."""
    out = tmp_path / "bench_serve_hotspot.json"
    rc = _run(str(out), n=2000, rounds=100, rate=0.1, trace="hotspot",
              min_throughput=10_000)
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["assignment_rate"] >= 0.95


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small-scale quick run")
    parser.add_argument("--json", default=str(_ROOT / "BENCH_serve.json"))
    parser.add_argument("--kernel", default=None,
                        choices=("numpy", "cext", "numba", "python"))
    args = parser.parse_args(argv)
    if args.smoke:
        return _run(args.json, n=2000, rounds=100, rate=0.3,
                    min_throughput=50_000, kernel=args.kernel)
    # The acceptance-criteria scale: n=10⁴ servers, 200 rounds of
    # Poisson(0.5·n) offered load ≈ 1M balls, one core.
    return _run(args.json, n=10_000, rounds=200, rate=0.5,
                min_throughput=50_000, kernel=args.kernel)


if __name__ == "__main__":
    raise SystemExit(main())
