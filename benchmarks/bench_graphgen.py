"""Scale-axis benchmark: graph generation throughput + sweep distribution.

Two measurements, both written to ``BENCH_graphgen.json``:

1. **Generation** — the whole-array generators of
   :mod:`repro.graphs.generators` against the per-client-loop baselines
   they replaced (inlined below, verbatim from the pre-rewrite module).
   Vectorized runs at ``n = 10⁶`` for the three sampling families
   (``trust_subsets``, ``community_bipartite``,
   ``erdos_renyi_bipartite``); the loop baselines are timed at a capped
   ``n`` and compared by edges/sec (see :func:`measure_generation` —
   the cap only *understates* the speedup).
2. **Sweep end-to-end** — one fixed topology, 8 grid points × 32
   trials at ``n = 10⁵`` under the batched engine, comparing *per-task
   graph shipping* (the graph pickled into every pool task) against
   *SharedGraph + on-disk cache* (zero-copy worker views, construction
   paid once ever).  Both paths produce identical records, which is
   verified before any timing is trusted.

Entry points::

    python benchmarks/bench_graphgen.py [--quick] [--json PATH]
    pytest benchmarks/bench_graphgen.py        # reduced-scale smoke

"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

import numpy as np

from repro.batch import run_trials_batched
from repro.core.config import ProtocolParams
from repro.graphs import (
    community_bipartite,
    erdos_renyi_bipartite,
    geometric_bipartite,
    trust_subsets,
)
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import _sample_distinct
from repro.graphs.io import cached_graph
from repro.parallel import ParameterGrid, run_sweep
from repro.rng import make_rng


# ---------------------------------------------------------------------------
# Per-client-loop baselines (verbatim pre-rewrite implementations).
# ---------------------------------------------------------------------------


def _legacy_trust_subsets(n_clients, n_servers, k, seed=None):
    rng = make_rng(seed)
    edges = np.empty((n_clients * k, 2), dtype=np.int64)
    for v in range(n_clients):
        edges[v * k : (v + 1) * k, 0] = v
        edges[v * k : (v + 1) * k, 1] = _sample_distinct(rng, n_servers, k)
    return BipartiteGraph.from_edges(n_clients, n_servers, edges, name="legacy-trust")


def _legacy_erdos_renyi(n_clients, n_servers, p, seed=None):
    rng = make_rng(seed)
    degrees = rng.binomial(n_servers, p, size=n_clients)
    edges = []
    for v in range(n_clients):
        kk = int(degrees[v])
        if kk == 0:
            continue
        nbrs = _sample_distinct(rng, n_servers, kk)
        edges.append(np.column_stack([np.full(kk, v, dtype=np.int64), nbrs]))
    pairs = np.concatenate(edges) if edges else np.empty((0, 2), dtype=np.int64)
    return BipartiteGraph.from_edges(n_clients, n_servers, pairs, name="legacy-er")


def _legacy_community(n, n_groups, k_within, k_across, seed=None):
    group = n // n_groups
    rng = make_rng(seed)
    edges = []
    all_servers = np.arange(n, dtype=np.int64)
    for v in range(n):
        gidx = v // group
        own = all_servers[gidx * group : (gidx + 1) * group]
        rows = []
        if k_within:
            rows.append(own[_sample_distinct(rng, group, k_within)])
        if k_across:
            others = np.concatenate(
                [all_servers[: gidx * group], all_servers[(gidx + 1) * group :]]
            )
            rows.append(others[_sample_distinct(rng, others.size, k_across)])
        nbrs = np.concatenate(rows)
        edges.append(np.column_stack([np.full(nbrs.size, v, dtype=np.int64), nbrs]))
    return BipartiteGraph.from_edges(n, n, np.concatenate(edges), name="legacy-community")


def _legacy_geometric(n_clients, n_servers, radius, seed=None, torus=True):
    rng = make_rng(seed)
    cpos = rng.random((n_clients, 2))
    spos = rng.random((n_servers, 2))
    ncell = max(1, int(1.0 / radius))
    cell_w = 1.0 / ncell

    def cell_of(pts):
        return np.minimum((pts / cell_w).astype(np.int64), ncell - 1)

    scell = cell_of(spos)
    buckets = {}
    keys = scell[:, 0] * ncell + scell[:, 1]
    order = np.argsort(keys, kind="stable")
    sk = keys[order]
    starts = np.searchsorted(sk, np.arange(ncell * ncell))
    ends = np.searchsorted(sk, np.arange(ncell * ncell) + 1)
    for cell in range(ncell * ncell):
        if ends[cell] > starts[cell]:
            buckets[(cell // ncell, cell % ncell)] = order[starts[cell] : ends[cell]]
    r2 = radius * radius
    edges = []
    ccell = cell_of(cpos)
    for v in range(n_clients):
        cx, cy = int(ccell[v, 0]), int(ccell[v, 1])
        cand = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                gx, gy = cx + dx, cy + dy
                if torus:
                    gx %= ncell
                    gy %= ncell
                elif not (0 <= gx < ncell and 0 <= gy < ncell):
                    continue
                b = buckets.get((gx, gy))
                if b is not None:
                    cand.append(b)
        if not cand:
            continue
        cidx = np.unique(np.concatenate(cand))
        diff = spos[cidx] - cpos[v]
        if torus:
            diff = np.abs(diff)
            diff = np.minimum(diff, 1.0 - diff)
        hit = cidx[(diff * diff).sum(axis=1) <= r2]
        if hit.size:
            edges.append(np.column_stack([np.full(hit.size, v, dtype=np.int64), hit]))
    pairs = np.concatenate(edges) if edges else np.empty((0, 2), dtype=np.int64)
    return BipartiteGraph.from_edges(n_clients, n_servers, pairs, name="legacy-geometric")


# ---------------------------------------------------------------------------
# Generation throughput
# ---------------------------------------------------------------------------


def _time_best(fn, repeats: int):
    best, out = math.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def measure_generation(
    n: int, n_geom: int, seed: int = 0, repeats: int = 2, n_legacy_cap: int = 200_000
) -> dict:
    """Time new vs legacy generators; returns records + per-family speedups.

    The vectorized generators are timed at full ``n``.  The per-client
    loops are timed at ``min(n, n_legacy_cap)``: the legacy
    ``community_bipartite`` is O(n²) (it materializes an n-element
    complement array per client), so running it at 10⁶ is a half-hour
    stunt rather than a measurement.  Speedups compare **edges/sec**;
    legacy per-edge throughput is flat in ``n`` for ``trust``/``er``
    (per-client cost is O(k)) and *decreasing* for ``community``, so a
    cap below ``n`` only understates the reported speedup.
    """
    k = 16
    n_legacy = min(n, n_legacy_cap)
    groups_of = lambda m: max(2, m // 10_000)
    fams = [
        (
            "trust_subsets",
            lambda m: trust_subsets(m, m, k, seed=seed),
            lambda m: _legacy_trust_subsets(m, m, k, seed=seed),
            n,
            n_legacy,
        ),
        (
            "community_bipartite",
            lambda m: community_bipartite(m, groups_of(m), 12, 4, seed=seed),
            lambda m: _legacy_community(m, groups_of(m), 12, 4, seed=seed),
            n,
            n_legacy,
        ),
        (
            "erdos_renyi_bipartite",
            lambda m: erdos_renyi_bipartite(m, m, k / m, seed=seed),
            lambda m: _legacy_erdos_renyi(m, m, k / m, seed=seed),
            n,
            n_legacy,
        ),
        (
            "geometric_bipartite",
            lambda m: geometric_bipartite(m, m, math.sqrt(k / (math.pi * m)), seed=seed),
            lambda m: _legacy_geometric(m, m, math.sqrt(k / (math.pi * m)), seed=seed),
            n_geom,
            min(n_geom, n_legacy_cap),
        ),
    ]
    records, speedups = [], {}
    for family, new_fn, legacy_fn, n_new, n_old in fams:
        t_new, g_new = _time_best(lambda: new_fn(n_new), repeats)
        t_old, g_old = _time_best(lambda: legacy_fn(n_old), 1)  # slow side: once
        g_new.validate()
        new_rate = g_new.n_edges / t_new
        old_rate = g_old.n_edges / t_old
        speedups[family] = new_rate / old_rate
        for backend, secs, g, m in (
            ("vectorized", t_new, g_new, n_new),
            ("per_client_loop", t_old, g_old, n_old),
        ):
            records.append(
                {
                    "family": family,
                    "n": m,
                    "backend": backend,
                    "seconds": round(secs, 3),
                    "edges": int(g.n_edges),
                    "edges_per_sec": round(g.n_edges / secs, 1),
                }
            )
    return {
        "n": n,
        "n_geometric": n_geom,
        "n_legacy": n_legacy,
        "speedup_metric": "edges_per_sec ratio (vectorized at n, loop at n_legacy)",
        "records": records,
        "speedups": speedups,
    }


# ---------------------------------------------------------------------------
# Sweep end-to-end: per-task shipping vs SharedGraph + cache
# ---------------------------------------------------------------------------


def _sim_block(graph, point, seed_seqs, trials) -> list:
    """The measured workload: one grid point's trial block, batched."""
    pairs = [ss.spawn(2) for ss in seed_seqs]
    res = run_trials_batched(
        graph,
        ProtocolParams(c=point["c"], d=point["d"]),
        "saer",
        seeds=[p_seed for _g, p_seed in pairs],
    )
    return [
        {"completed": bool(res.completed[i]), "rounds": int(res.rounds[i])}
        for i in range(len(seed_seqs))
    ]


class _ShipPoint:
    """Baseline worker: carries the graph, so every pool task pickles it."""

    def __init__(self, graph):
        self.graph = graph

    def __call__(self, point, seed_seqs, trials):
        return _sim_block(self.graph, point, seed_seqs, trials)


def _shared_point(graph, point, seed_seqs, trials):
    """Zero-copy worker: the graph comes from the installed task context."""
    return _sim_block(graph, point, seed_seqs, trials)


def measure_sweep(
    n: int,
    k: int,
    cs,
    trials: int,
    processes: int,
    cache_dir: Path,
    seed: int = 99,
) -> dict:
    """End-to-end sweep wall-clock: ship-per-task vs SharedGraph + cache.

    The shipped baseline is what ``run_sweep`` did before the graph
    context existed: topology built in the parent, pickled into each of
    the ``len(cs)`` batched tasks.  The fast path loads the topology
    from the on-disk cache (construction was paid on a previous run)
    and installs it once per worker, zero-copy.
    """
    grid = ParameterGrid(c=list(cs), d=[2])
    params = {"n_clients": n, "n_servers": n, "k": k}

    # Baseline: fresh build + per-task shipping.
    t0 = time.perf_counter()
    graph = trust_subsets(**params, seed=seed)
    t_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    ship_recs = run_sweep(
        _ShipPoint(graph),
        grid,
        n_trials=trials,
        seed=seed,
        processes=processes,
        backend="batched",
    )
    t_ship_sweep = time.perf_counter() - t0

    # Warm the cache (cold store timed separately, not part of either side).
    t0 = time.perf_counter()
    cached_graph(trust_subsets, "trust", params, seed, cache_dir)
    t_cache_store = time.perf_counter() - t0

    # Fast path: cache hit + zero-copy graph context.
    t0 = time.perf_counter()
    graph2 = cached_graph(trust_subsets, "trust", params, seed, cache_dir)
    t_cache_load = time.perf_counter() - t0
    t0 = time.perf_counter()
    shared_recs = run_sweep(
        _shared_point,
        grid,
        n_trials=trials,
        seed=seed,
        processes=processes,
        backend="batched",
        graph=graph2,
    )
    t_shared_sweep = time.perf_counter() - t0

    assert ship_recs == shared_recs, "ship vs shared records diverged; timing meaningless"
    t_baseline = t_build + t_ship_sweep
    t_fast = t_cache_load + t_shared_sweep
    return {
        "n": n,
        "k": k,
        "grid_points": len(cs),
        "trials": trials,
        "processes": processes,
        "graph_mb": round(
            sum(
                getattr(graph, f).nbytes
                for f in ("client_indptr", "client_indices", "server_indptr", "server_indices")
            )
            / 1e6,
            1,
        ),
        "t_build": round(t_build, 3),
        "t_ship_sweep": round(t_ship_sweep, 3),
        "t_baseline_total": round(t_baseline, 3),
        "t_cache_store_cold": round(t_cache_store, 3),
        "t_cache_load": round(t_cache_load, 3),
        "t_shared_sweep": round(t_shared_sweep, 3),
        "t_fast_total": round(t_fast, 3),
        "records_equal": True,
        "speedup": round(t_baseline / t_fast, 2),
    }


def run_benchmark(quick: bool = False, cache_dir: Path | None = None) -> dict:
    if quick:
        gen = measure_generation(n=50_000, n_geom=20_000, repeats=1)
        sweep_kw = dict(n=20_000, k=32, cs=(2.0, 4.0, 8.0, 16.0), trials=8, processes=2)
    else:
        gen = measure_generation(n=1_000_000, n_geom=200_000)
        sweep_kw = dict(
            n=100_000,
            k=64,
            cs=(2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0),
            trials=32,
            processes=2,
        )
    import tempfile

    if cache_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-graph-cache-") as td:
            sweep = measure_sweep(cache_dir=Path(td), **sweep_kw)
    else:
        sweep = measure_sweep(cache_dir=cache_dir, **sweep_kw)
    return {
        "benchmark": "bench_graphgen",
        "quick": quick,
        "generation": gen,
        "sweep": sweep,
    }


# -- pytest entry (reduced scale, CI-friendly) --------------------------------


def test_quick_generation_beats_loop():
    gen = measure_generation(n=20_000, n_geom=10_000, repeats=1)
    # The full-scale floor is 10x (asserted by the committed
    # BENCH_graphgen.json); at smoke scale just require a real win.
    for fam in ("trust_subsets", "community_bipartite", "erdos_renyi_bipartite"):
        assert gen["speedups"][fam] > 2.0, gen["speedups"]


def test_quick_sweep_paths_agree(tmp_path):
    sweep = measure_sweep(
        n=5_000, k=16, cs=(2.0, 8.0), trials=4, processes=2, cache_dir=tmp_path
    )
    assert sweep["records_equal"]


# -- CLI entry ----------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced scale for CI")
    parser.add_argument(
        "--json",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_graphgen.json"),
        help="output path for the machine-readable report",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(quick=args.quick)

    gen = report["generation"]
    header = f"{'family':24s} {'n':>9s} {'backend':16s} {'seconds':>9s} {'edges/sec':>12s}"
    print(header)
    print("-" * len(header))
    for rec in gen["records"]:
        print(
            f"{rec['family']:24s} {rec['n']:9d} {rec['backend']:16s} "
            f"{rec['seconds']:9.3f} {rec['edges_per_sec']:12.1f}"
        )
    print("generation speedups:", {k: round(v, 1) for k, v in gen["speedups"].items()})
    sw = report["sweep"]
    print(
        f"sweep n={sw['n']} ({sw['grid_points']} points x {sw['trials']} trials, "
        f"{sw['graph_mb']} MB graph): baseline {sw['t_baseline_total']}s "
        f"(build {sw['t_build']} + ship {sw['t_ship_sweep']}) vs "
        f"shared+cache {sw['t_fast_total']}s "
        f"(load {sw['t_cache_load']} + sweep {sw['t_shared_sweep']}) "
        f"-> {sw['speedup']}x"
    )
    Path(args.json).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
