"""E11 — §3.2: alive balls shrink by ≥ a constant factor per round.

The work analysis shows the alive-ball count drops by factor ≥ 4/5 per
round w.h.p. while at least nd/log n balls are alive; measured ratios
in that heavy regime must respect the bound (they are in fact far
smaller — close to the burned fraction S_t).
"""

from repro.experiments import run_e11_alive_decay


def test_e11_alive_decay(benchmark, reporter, bench_processes):
    rows, meta = benchmark.pedantic(
        lambda: run_e11_alive_decay(
            ns=(1024, 4096), trials=10, processes=bench_processes
        ),
        rounds=1,
        iterations=1,
    )
    reporter.report("E11", rows, meta)
    for row in rows:
        assert row["within_bound"], row
        assert row["decay_ratio_worst"] <= 0.8
        assert row["heavy_rounds_mean"] >= 1
