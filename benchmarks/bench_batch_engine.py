"""Throughput benchmark: batched engine vs per-trial reference engine.

Measures trials/sec for ``repro.batch.run_trials_batched`` against a
loop of per-trial :func:`repro.core.engine.run_protocol` calls on the
same seeds (the two produce bit-identical per-trial results, which the
benchmark re-verifies before trusting any timing), across the repo's
canonical protocol regimes at the acceptance scale n=10⁴, R=64.

Two entry points:

* ``pytest benchmarks/bench_batch_engine.py`` — pytest-benchmark
  timings at a reduced scale suitable for CI;
* ``python benchmarks/bench_batch_engine.py [--quick] [--json PATH]``
  — the full measurement, printing a table and writing the
  machine-readable ``BENCH_batch.json`` (one record per (regime,
  backend) with n, R, c, d, trials/sec, plus per-regime speedups) so
  future PRs can track the speedup curve.

The batched win concentrates where the reference engine wastes work:
contended regimes with long small-ball tails, where every reference
round still pays O(n) policy updates and dispatch per trial.  In the
comfortable 1-4 round regimes both engines are ball-work bound and the
gap narrows — the JSON keeps all regimes honest.
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

import numpy as np

from repro.batch import run_trials_batched
from repro.core.config import ProtocolParams
from repro.core.engine import run_protocol
from repro.graphs import random_regular_bipartite
from repro.rng import spawn_seeds

# (label, c, d): the contended regimes are where trial batching pays;
# the comfortable regime is kept as the honest lower bound.
REGIMES = [
    ("contended_light", 1.5, 2),
    ("contended", 1.5, 4),
    ("comfortable", 2.0, 4),
]


def _time_best(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_regime(
    graph, c: float, d: int, n_trials: int, seed: int = 123, repeats: int = 3
) -> dict:
    """Time both backends on identical seeds and verify equivalence."""
    params = ProtocolParams(c=c, d=d)
    seeds = spawn_seeds(seed, n_trials)

    batch = run_trials_batched(graph, params, "saer", seeds=seeds)  # warmup + output
    refs = [run_protocol(graph, params, "saer", seed=s) for s in seeds]
    for i, ref in enumerate(refs):
        assert ref.rounds == batch.rounds[i] and ref.work == batch.work[i], (
            f"equivalence broken at trial {i}: timing would be meaningless"
        )
        assert np.array_equal(ref.loads, batch.loads[i])

    t_batched = _time_best(
        lambda: run_trials_batched(graph, params, "saer", seeds=seeds), repeats
    )
    t_reference = _time_best(
        lambda: [run_protocol(graph, params, "saer", seed=s) for s in seeds],
        max(1, repeats - 1),
    )
    return {
        "c": c,
        "d": d,
        "trials_per_sec_batched": n_trials / t_batched,
        "trials_per_sec_reference": n_trials / t_reference,
        "speedup": t_reference / t_batched,
        "rounds_median": float(np.median(batch.rounds)),
        "completed": int(batch.completed.sum()),
    }


def run_benchmark(n: int = 10_000, n_trials: int = 64, repeats: int = 3, seed: int = 123) -> dict:
    degree = max(2, math.ceil(math.log2(n) ** 2))
    graph = random_regular_bipartite(n, degree, seed=0)
    records = []
    speedups = {}
    for label, c, d in REGIMES:
        m = measure_regime(graph, c, d, n_trials, seed=seed, repeats=repeats)
        speedups[label] = m["speedup"]
        for backend in ("batched", "reference"):
            records.append(
                {
                    "regime": label,
                    "n": n,
                    "R": n_trials,
                    "c": c,
                    "d": d,
                    "backend": backend,
                    "trials_per_sec": round(m[f"trials_per_sec_{backend}"], 1),
                    "rounds_median": m["rounds_median"],
                }
            )
    return {
        "benchmark": "bench_batch_engine",
        "n": n,
        "R": n_trials,
        "degree": degree,
        "records": records,
        "speedups": {k: round(v, 2) for k, v in speedups.items()},
        "max_speedup": round(max(speedups.values()), 2),
    }


# -- pytest-benchmark entry (reduced scale, CI-friendly) ---------------------


def test_batched_engine_throughput(benchmark):
    import pytest

    pytest.importorskip("pytest_benchmark")
    n = 4096
    graph = random_regular_bipartite(n, math.ceil(math.log2(n) ** 2), seed=0)
    seeds = spawn_seeds(7, 32)
    params = ProtocolParams(c=1.5, d=4)
    batch = benchmark(lambda: run_trials_batched(graph, params, "saer", seeds=seeds))
    assert batch.completed.all()
    benchmark.extra_info["trials"] = 32
    benchmark.extra_info["rounds_max"] = int(batch.rounds.max())


def test_batched_beats_reference_contended():
    """The acceptance floor: ≥5× trials/sec in a contended regime at n=10⁴."""
    report = run_benchmark(n=10_000, n_trials=64, repeats=2)
    assert report["max_speedup"] >= 5.0, report["speedups"]


# -- CLI entry ----------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000, help="clients/servers per side")
    parser.add_argument("--trials", type=int, default=64, help="trials per batch (R)")
    parser.add_argument("--repeats", type=int, default=3, help="timing repetitions (best-of)")
    parser.add_argument("--quick", action="store_true", help="reduced scale for CI")
    parser.add_argument(
        "--json",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_batch.json"),
        help="output path for the machine-readable report",
    )
    args = parser.parse_args(argv)
    n, trials, repeats = args.n, args.trials, args.repeats
    if args.quick:
        n, trials, repeats = min(n, 2048), min(trials, 32), 1

    report = run_benchmark(n=n, n_trials=trials, repeats=repeats)
    header = f"{'regime':18s} {'c':>5s} {'d':>2s} {'backend':10s} {'trials/sec':>12s}"
    print(header)
    print("-" * len(header))
    for rec in report["records"]:
        print(
            f"{rec['regime']:18s} {rec['c']:5.2f} {rec['d']:2d} "
            f"{rec['backend']:10s} {rec['trials_per_sec']:12.1f}"
        )
    print("speedups:", report["speedups"], f"(max {report['max_speedup']}x)")
    Path(args.json).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
