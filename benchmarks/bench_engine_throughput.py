"""Engine microbenchmarks: simulation throughput (not a paper table).

Real pytest-benchmark timing of the vectorized engine — the number the
HPC guide says to measure before optimizing.  Reports balls-assigned
per second for one SAER run at two scales and for the coupled run.
"""

import math

import pytest

from repro.core import run_coupled, run_saer
from repro.graphs import random_regular_bipartite


@pytest.fixture(scope="module")
def graph_4k():
    n = 4096
    return random_regular_bipartite(n, math.ceil(math.log2(n) ** 2), seed=0)


@pytest.fixture(scope="module")
def graph_16k():
    n = 16384
    return random_regular_bipartite(n, math.ceil(math.log2(n) ** 2), seed=0)


def test_engine_throughput_4k(benchmark, graph_4k):
    res = benchmark(lambda: run_saer(graph_4k, 1.5, 4, seed=1))
    assert res.completed
    benchmark.extra_info["balls"] = res.total_balls
    benchmark.extra_info["rounds"] = res.rounds


def test_engine_throughput_16k(benchmark, graph_16k):
    res = benchmark(lambda: run_saer(graph_16k, 1.5, 4, seed=1))
    assert res.completed
    benchmark.extra_info["balls"] = res.total_balls
    benchmark.extra_info["rounds"] = res.rounds


def test_coupled_throughput_4k(benchmark, graph_4k):
    cp = benchmark(lambda: run_coupled(graph_4k, 1.5, 4, seed=1))
    assert cp.nested_every_round


def test_comfortable_c_single_round_4k(benchmark, graph_4k):
    """The c >= 3 regime: one round, pure vectorized hot path."""
    res = benchmark(lambda: run_saer(graph_4k, 8.0, 4, seed=1))
    assert res.rounds <= 2
