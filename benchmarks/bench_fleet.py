"""Fleet scaling: driven replay throughput vs worker-process count.

Replays the same Poisson trace through the in-process driven load
generator at ``--workers`` ∈ {1, 2, 4} — worker 1 is the plain
single-process :class:`SaerService`, the rest shard the servers across
that many OS processes via :class:`FleetService` — and records
assignments/sec per point in ``BENCH_fleet.json``.  Every run gates on
assignment rate ≥ 0.99 *and* the fleet accounting-conservation
identity, so a speedup bought by losing balls can never pass.

Sharding only helps when the per-round kernel work dominates the pipe
round-trip, i.e. on multi-core machines at large n.  The report
records ``cpu_count`` (the *affinity-visible* count, not
``os.cpu_count()``); on a single-core runner the speedup gate is
skipped with a warning and an existing multi-core report is never
overwritten without ``--force``.

Entry points:

* ``pytest benchmarks/bench_fleet.py`` — small-scale smoke (parity +
  conservation at workers ∈ {1, 2});
* ``python benchmarks/bench_fleet.py [--smoke] [--require-speedup]``
  — the full sweep, writing ``BENCH_fleet.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.parallel.pool import available_cpus
from repro.serve.loadgen import main as loadgen_main

_ROOT = Path(__file__).resolve().parent.parent

WORKER_POINTS = (1, 2, 4)


def _run_point(out: str, *, workers: int, n: int, rounds: int, rate: float) -> int:
    argv = [
        "--mode", "inprocess",
        "--workers", str(workers),
        "--n", str(n),
        "--rounds", str(rounds),
        "--rate", str(rate),
        "--recovery", "8",
        "--seed", "11",
        "--trace-seed", "7",
        "--out", out,
        "--min-assign-rate", "0.99",
        "--check-conservation",
        "--quiet",
    ]
    return loadgen_main(argv)


def run_sweep(n: int, rounds: int, rate: float, tmp_dir: Path) -> list[dict]:
    """One report per worker point; raises if any gate fails."""
    points = []
    for workers in WORKER_POINTS:
        out = tmp_dir / f"fleet_w{workers}.json"
        rc = _run_point(str(out), workers=workers, n=n, rounds=rounds, rate=rate)
        report = json.loads(out.read_text())
        if rc != 0:
            raise SystemExit(
                f"workers={workers} failed gates: {report['gates']['failures']}"
            )
        points.append(
            {
                "workers": workers,
                "submitted": report["totals"]["submitted"],
                "assigned": report["totals"]["assigned"],
                "assignment_rate": report["assignment_rate"],
                "conserved": report["conservation"]["conserved"],
                "wall_s": report["throughput"]["wall_s"],
                "assigned_per_s": report["throughput"]["assigned_per_s"],
                "rounds_per_s": report["throughput"]["rounds_per_s"],
            }
        )
    return points


# ---------------------------------------------------------------------------
# pytest smoke
# ---------------------------------------------------------------------------


def test_fleet_parity_smoke(tmp_path):
    """workers=1 and workers=2 assign the same totals on the same trace
    (the routing decomposition is exact, not approximate)."""
    reports = {}
    for workers in (1, 2):
        out = tmp_path / f"w{workers}.json"
        rc = _run_point(str(out), workers=workers, n=512, rounds=40, rate=0.3)
        assert rc == 0, f"workers={workers} gate failed"
        reports[workers] = json.loads(out.read_text())
    t1, t2 = reports[1]["totals"], reports[2]["totals"]
    assert t1["submitted"] == t2["submitted"]
    assert t1["assigned"] == t2["assigned"]
    assert t1["dropped"] == t2["dropped"]
    assert reports[2]["conservation"]["conserved"]


def test_fleet_conservation_smoke(tmp_path):
    """The conservation gate itself passes on a 2-worker replay."""
    out = tmp_path / "w2.json"
    rc = _run_point(str(out), workers=2, n=512, rounds=40, rate=0.3)
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["gates"]["check_conservation"]
    assert report["totals"]["unresolved"] == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small-scale quick run")
    parser.add_argument("--json", default=str(_ROOT / "BENCH_fleet.json"))
    parser.add_argument("--require-speedup", action="store_true",
                        help="fail unless some workers>1 point beats workers=1 "
                             "throughput (skipped with a warning on <2 cores)")
    parser.add_argument("--force", action="store_true",
                        help="overwrite a multi-core report from a single-core run")
    args = parser.parse_args(argv)

    cores = available_cpus()
    out_path = Path(args.json)
    if out_path.exists() and not args.force and cores < 2:
        try:
            prev = json.loads(out_path.read_text())
        except (OSError, json.JSONDecodeError):
            prev = {}
        if prev.get("cpu_count", 0) >= 2:
            print(
                f"refusing to overwrite {out_path} (recorded on "
                f"{prev['cpu_count']} cores) from a single-core run; "
                "pass --force to override",
                file=sys.stderr,
            )
            return 1

    if args.smoke:
        n, rounds, rate = 1024, 60, 0.3
    else:
        n, rounds, rate = 8192, 120, 0.4
    tmp_dir = out_path.parent / ".bench_fleet_tmp"
    tmp_dir.mkdir(parents=True, exist_ok=True)
    try:
        points = run_sweep(n, rounds, rate, tmp_dir)
    finally:
        for leftover in tmp_dir.glob("fleet_w*.json"):
            leftover.unlink()
        try:
            tmp_dir.rmdir()
        except OSError:
            pass

    base = points[0]["assigned_per_s"]
    best = max(p["assigned_per_s"] for p in points if p["workers"] > 1)
    speedup = round(best / base, 3) if base else float("nan")
    report = {
        "bench": "fleet",
        "cpu_count": cores,
        "config": {"n": n, "rounds": rounds, "rate": rate},
        "points": points,
        "best_multiworker_speedup": speedup,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    for p in points:
        print(
            f"workers={p['workers']}: {p['assigned_per_s']:.0f} assigned/s "
            f"(rate {p['assignment_rate']}, conserved={p['conserved']})"
        )
    print(f"best multi-worker speedup: {speedup}x on {cores} cores -> {out_path}")

    if args.require_speedup:
        if cores < 2:
            print(
                "warning: <2 cpus visible — sharding cannot beat "
                "single-process here; speedup gate skipped",
                file=sys.stderr,
            )
        elif speedup <= 1.0:
            print(
                f"speedup gate failed: best multi-worker point is {speedup}x "
                f"on {cores} cores",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
