#!/usr/bin/env python
"""Chaos engineering against the serving layer, end to end.

Four escalating scenarios over one trust graph:

  1. a seeded `FaultSchedule` in the offline simulator — crash 10% of
     servers mid-run, watch the backlog spike and restabilize;
  2. the same crash over real TCP with the self-healing stack on:
     client retry with jittered backoff, server health quarantine, and
     timeout shedding — assignment rate stays ≥95%;
  3. kill the service mid-replay, restore it from its checkpoint, and
     finish with accounting identical to a never-killed control;
  4. Byzantine servers that under-report load — the protocol state
     never shows them burned, but the absorbed-ball ledger does.

Run:  python examples/chaos_demo.py
"""

import asyncio
import pickle

import numpy as np

import repro
from repro.dynamic import PoissonArrivals, run_dynamic_saer
from repro.faults import FaultSchedule, FaultSpec, HealthPolicy
from repro.serve import SaerService, ServeConfig, ServingState
from repro.serve.loadgen import RetryPolicy, make_arrivals, run_chaos, sample_trace

FAULT_START = 40


def part_1_simulator(graph) -> None:
    print("— 1. crash window in the offline simulator —")
    arrivals = PoissonArrivals(0.3)
    schedule = FaultSchedule(
        (FaultSpec("crash", 0.30, start=FAULT_START, end=FAULT_START + 40),), seed=11
    )
    base = run_dynamic_saer(graph, 2.0, 4, arrivals, 160, recovery=8, seed=5)
    hurt = run_dynamic_saer(
        graph, 2.0, 4, arrivals, 160, recovery=8, seed=5, faults=schedule
    )
    stab = hurt.stabilization_round(after=FAULT_START + 40)
    print(f"   backlog max: {base.backlog.max()} fault-free → {hurt.backlog.max()} "
          f"with 30% crashed for 40 rounds")
    print(f"   restabilized at round {stab} "
          f"(fault window ended at {FAULT_START + 40})")
    f0 = run_dynamic_saer(
        graph, 2.0, 4, arrivals, 160, recovery=8, seed=5,
        faults=FaultSchedule((), seed=999),
    )
    print(f"   f=0 schedule bit-identical to fault-free run: "
          f"{bool(np.array_equal(base.backlog, f0.backlog))}")


async def part_2_chaos_tcp(graph) -> None:
    print("\n— 2. the same crash over TCP, self-healing stack on —")
    schedule = FaultSchedule((FaultSpec("crash", 0.10, start=8),), seed=3)
    state = ServingState(
        graph, 2.0, 4, recovery=8, seed=9, track_tags=True, faults=schedule
    )
    config = ServeConfig(
        tick=0.01,
        max_batch=1 << 30,
        max_wait_rounds=8,
        # A streak longer than one recovery epoch (8 rounds) only ever
        # trips on servers that are actually down, not ordinary burns.
        health=HealthPolicy(fail_streak=10, quarantine_rounds=256),
    )
    svc = SaerService(state, config)
    trace = sample_trace(make_arrivals("poisson", 0.3), graph.n_clients, 40, seed=6)
    retry = RetryPolicy(max_attempts=5, base_delay=1.0, max_delay=8.0, seed=2)
    run = await run_chaos(svc, trace, tick=0.01, settle_s=30.0, retry=retry)
    tally, stats = run["tally"], run["stats"]
    rate = tally["assigned"] / max(run["submitted"], 1)
    print(f"   {run['submitted']} balls, 10% of servers crashed at round 8")
    print(f"   assigned {rate:.1%}  (resubmitted {run['resubmitted']}, "
          f"lost {run['lost']})")
    print(f"   quarantined corpses: {stats['quarantined']} servers "
          f"({stats['metrics']['serve_quarantine_events_total']:.0f} events)")


def part_3_kill_restore(graph) -> None:
    print("\n— 3. kill the service mid-replay, restore from checkpoint —")
    config = ServeConfig(max_batch=1 << 30, max_wait_rounds=16)
    trace = sample_trace(make_arrivals("poisson", 0.4), graph.n_clients, 30, seed=8)

    def drive(svc, part):
        for counts in part:
            for client in np.nonzero(counts)[0].tolist():
                svc.submit(int(client), int(counts[client]))
            svc.run_round()

    def drain(svc):
        while svc.in_flight:
            svc.run_round()

    def build():
        return SaerService(
            ServingState(graph, 2.0, 4, recovery=8, seed=9, track_tags=True), config
        )

    control = build()
    drive(control, trace)
    drain(control)

    victim = build()
    drive(victim, trace[:15])
    blob = pickle.dumps(victim.checkpoint())  # ...power cord yanked here
    restored = SaerService.from_checkpoint(pickle.loads(blob), config)
    drive(restored, trace[15:])
    drain(restored)

    same = (
        control.state.assigned_total == restored.state.assigned_total
        and control.state.round_no == restored.state.round_no
        and np.array_equal(control.state.cum_received, restored.state.cum_received)
    )
    print(f"   checkpoint blob: {len(blob):,} bytes at round 15 "
          f"({victim.in_flight} balls were mid-flight)")
    print(f"   restored run vs never-killed control — accounting identical: {same}")


def part_4_byzantine(graph) -> None:
    print("\n— 4. Byzantine under-reporters and the absorbed ledger —")
    schedule = FaultSchedule((FaultSpec("byz_server", 0.10),), seed=7)
    res = run_dynamic_saer(
        graph, 2.0, 4, PoissonArrivals(0.3), 120, recovery=8, seed=5, faults=schedule
    )
    print(f"   liars absorbed {res.byz_absorbed} balls that never show up in any\n"
          f"   honest server's load; final burned fraction "
          f"{res.burned_fraction[-1]:.2f} (the liars never appear burned)")


def main() -> None:
    graph = repro.graphs.trust_subsets(512, 512, 24, seed=5)
    part_1_simulator(graph)
    asyncio.run(part_2_chaos_tcp(graph))
    part_3_kill_restore(graph)
    part_4_byzantine(graph)
    print(
        "\nEvery fault above came from one seeded FaultSchedule — replay any\n"
        "scenario bit-for-bit by reusing the seed, or sweep fraction × kind\n"
        "as a table with `repro-lb run F1`."
    )


if __name__ == "__main__":
    main()
