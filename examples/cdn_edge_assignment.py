#!/usr/bin/env python
"""Proximity-constrained CDN: assign user requests to nearby edge caches.

The introduction's motivating scenario ii): "clients and servers are
placed over a metric space so that only non-random client-server
interactions turn out to be feasible because of proximity constraints."

We place users and edge caches uniformly in a unit torus, connect each
user to every cache within radius r, and compare:

* **SAER** — the paper's protocol: O(log n) parallel rounds, load
  capped at ⌊c·d⌋ by construction, caches never reveal their load;
* **one-choice** — each request to a random nearby cache (no
  coordination);
* **Godfrey greedy** — sequential least-loaded placement (the quality
  ceiling, at the cost of serial execution and load disclosure).

Run:  python examples/cdn_edge_assignment.py
"""

import math

import numpy as np

import repro
from repro.baselines import godfrey_greedy, one_choice


def main() -> None:
    n = 2048
    d = 3  # requests per user
    # Target mean degree ~ 2 log² n: comfortably in Theorem 1's regime.
    target_degree = 2 * math.log2(n) ** 2
    radius = math.sqrt(target_degree / (math.pi * n))

    print(f"Placing {n} users and {n} edge caches in a unit torus")
    print(f"(connection radius {radius:.4f}, target degree ~{target_degree:.0f}) ...")
    graph = repro.graphs.geometric_bipartite(n, n, radius, seed=7)
    rep = repro.graphs.degree_report(graph)
    print(f"  degrees: users [{rep.client_degree_min}, {rep.client_degree_max}], "
          f"caches [{rep.server_degree_min}, {rep.server_degree_max}]")
    print(f"  isolated users: {rep.isolated_clients}")

    # Geometric placement can strand a user outside every cache's radius;
    # such users need out-of-band handling, so give them zero demand here.
    demands = np.where(graph.client_degrees > 0, d, 0).astype(np.int64)
    total = int(demands.sum())

    print(f"\nAssigning {total} requests with saer(c=2, d={d}) ...")
    res = repro.run_saer(graph, c=2.0, d=d, demands=demands, seed=8)
    print(f"  completed in {res.rounds} parallel rounds, {res.work} messages")
    print(f"  max cache load: {res.max_load} (cap {res.params.capacity})")
    hist = np.bincount(res.loads, minlength=res.params.capacity + 1)
    print(f"  load histogram (0..{res.params.capacity}): {hist.tolist()}")

    print("\nBaselines on the same topology:")
    oc = one_choice(graph, d=1, seed=9)  # per-ball API needs uniform demand;
    # compare shapes on a single request per user for fairness of scale.
    print(f"  one-choice   : max load {oc.max_load} (no coordination)")
    gg = godfrey_greedy(graph, d=1, seed=10)
    print(f"  godfrey      : max load {gg.max_load} "
          f"(sequential, {gg.work} messages, discloses loads)")
    print(f"  saer         : max load <= {res.params.capacity} in {res.rounds} rounds, "
          "1-bit replies only")


if __name__ == "__main__":
    main()
