#!/usr/bin/env python
"""The serving layer, end to end: micro-batched rounds over live traffic.

The paper's SAER protocol is an offline object — T synchronous rounds
over a fixed ball set.  `repro.serve` re-hosts the same round (uniform
neighbor choice, ⌊c·d⌋ burn threshold, recovery, churn) behind a
micro-batching service: clients submit balls whenever they like, a
round fires every `tick` seconds or as soon as `max_batch` balls are
pending, and every ball resolves to Assigned / Retry / Dropped.

This demo walks the three ways in:

  1. direct futures against an in-process `SaerService`,
  2. a driven load-generator replay (Poisson vs adversarial hotspot),
  3. the same traffic over the real NDJSON/TCP front end.

Run:  python examples/serve_demo.py
"""

import asyncio

import repro
from repro.serve import SaerService, ServeConfig, ServingState, serve_tcp
from repro.serve.loadgen import make_arrivals, run_inprocess, run_tcp, sample_trace


def build_service(graph, **cfg) -> SaerService:
    state = ServingState(graph, c=2.0, d=4, recovery=8, seed=7, track_tags=True)
    cfg.setdefault("max_batch", 1 << 30)  # driven mode: rounds fire on demand
    return SaerService(state, ServeConfig(**cfg))


def part_1_futures(graph) -> None:
    print("— 1. direct futures —")
    svc = build_service(graph)
    futures = svc.submit(client=3, balls=2) + svc.submit(client=40, balls=1)
    svc.run_round()  # in driven mode we turn the crank ourselves
    for fut in futures:
        out = fut.result()
        print(f"   ball → {out.outcome} server={out.server} "
              f"latency={out.latency_rounds} round(s)")


def part_2_loadgen(graph) -> None:
    print("\n— 2. driven replay: Poisson vs adversarial hotspot —")
    for kind in ("poisson", "hotspot"):
        svc = build_service(graph, max_wait_rounds=64)
        arrivals = make_arrivals(kind, 0.5, hot_fraction=0.01, hot_weight=0.9)
        trace = sample_trace(arrivals, graph.n_clients, rounds=100, seed=11)
        run = run_inprocess(svc, trace)
        tally, lat = run["tally"], run["latencies"]
        rate = tally["assigned"] / max(run["submitted"], 1)
        p95 = float(sorted(lat)[int(0.95 * (lat.size - 1))]) if lat.size else float("nan")
        print(f"   {kind:8s} {run['submitted']:6d} balls → "
              f"{rate:6.1%} assigned, {tally['retry']} retried, "
              f"p95 latency {p95:.0f} rounds")


async def part_3_tcp(graph) -> None:
    print("\n— 3. the same traffic over NDJSON/TCP —")
    svc = build_service(graph, max_batch=4096, tick=0.005)
    server = await serve_tcp(svc, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    trace = sample_trace(make_arrivals("poisson", 0.3), graph.n_clients, 30, seed=13)
    run = await run_tcp("127.0.0.1", port, trace, tick=0.005, settle_s=30.0)
    server.close()
    await server.wait_closed()
    await svc.shutdown()
    print(f"   wire replay: {run['submitted']} balls, "
          f"{run['tally']['assigned']} assigned over TCP in "
          f"{run['wall_s']:.2f}s ({run['tally']['assigned'] / run['wall_s']:,.0f}/s)")
    print("   (same protocol: `repro-lb serve --port 7070` speaks this to netcat)")


def main() -> None:
    graph = repro.graphs.trust_subsets(2000, 2000, 120, seed=5)
    part_1_futures(graph)
    part_2_loadgen(graph)
    asyncio.run(part_3_tcp(graph))
    print(
        "\nThe hotspot trace is the adversarial case: 90% of arrivals on 1%\n"
        "of clients.  SAER's uniform re-draw each round spreads even that\n"
        "across the hot clients' whole trust set — overload sheds as\n"
        "Retry(timeout) instead of collapsing the service."
    )


if __name__ == "__main__":
    main()
