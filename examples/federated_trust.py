#!/usr/bin/env python
"""Trust-restricted load balancing: each client only uses trusted servers.

The introduction's motivating scenario i): "based on previous
experiences, a client (a server) may decide to send (accept) the
requests only to (from) a fixed subset of trusted servers (clients)."
— this is Godfrey's random-cluster input model, built by
:func:`repro.graphs.trust_subsets`.

The demo also shows the privacy property from remark (ii) after
Algorithm 1: only servers know ``c``, replies are a single bit, so
clients cannot estimate server loads — we sweep ``c`` to show the
operator-side trade-off (smaller c = tighter load cap, more rounds).

Run:  python examples/federated_trust.py
"""

import math

import repro
from repro.analysis import format_table
from repro.theory import completion_horizon


def main() -> None:
    n = 1024
    k = math.ceil(math.log2(n) ** 2)  # trusted servers per client
    d = 4

    print(f"{n} clients, each trusting {k} of {n} servers (random clusters)\n")
    graph = repro.graphs.trust_subsets(n, n, k, seed=21)

    rows = []
    for c in (1.25, 1.5, 2.0, 3.0, 4.0):
        res = repro.run_saer(graph, c=c, d=d, seed=22)
        rows.append(
            {
                "c": c,
                "load_cap": res.params.capacity,
                "completed": res.completed,
                "rounds": res.rounds,
                "horizon": completion_horizon(n),
                "max_load": res.max_load,
                "messages_per_client": round(res.work_per_client, 1),
                "burned_servers": res.blocked_servers,
            }
        )
    print(format_table(rows, title="saer(c, d=4) on the trust topology"))
    print(
        "\nOperator trade-off: c=1.25 squeezes the load cap to "
        f"{int(1.25 * d)} but burns many servers and needs more rounds;\n"
        "c>=2 completes in a handful of rounds with loads well under the cap.\n"
        "Throughout, clients only ever see accept/reject bits."
    )


if __name__ == "__main__":
    main()
