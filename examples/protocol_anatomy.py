#!/usr/bin/env python
"""Anatomy of a SAER run: the proof's quantities, measured round by round.

Traces a contended run (c = 1.5) and prints, per round, the series the
analysis of Theorem 1 is built on:

* alive balls and their per-round decay (§3.2's ≥ 4/5 factor),
* ``max_v r_t(N(v))`` — the neighborhood request mass (Lemmas 10-13),
* ``S_t`` — the max burned fraction (Lemma 4's ≤ 1/2), and
* ``K_t`` — the received-mass proxy with ``S_t ≤ K_t`` (eq. 3),

then prints the theory-side γ/δ envelopes at the paper's analysis-scale
``c`` for contrast.

Run:  python examples/protocol_anatomy.py
"""

import math

import numpy as np

import repro
from repro.analysis import format_table
from repro.theory import (
    c_min_regular,
    completion_horizon,
    delta_sequence,
    gamma_sequence,
    stage1_length,
)


def main() -> None:
    n, d, c = 2048, 4, 1.5
    degree = math.ceil(math.log2(n) ** 2)
    graph = repro.graphs.random_regular_bipartite(n, degree, seed=41)

    res = repro.run_saer(graph, c=c, d=d, seed=42, trace=repro.TraceLevel.FULL)
    tr = res.trace

    rows = []
    alive = np.asarray(tr.alive_before)
    for t in range(res.rounds):
        rows.append(
            {
                "t": t + 1,
                "alive": int(alive[t]),
                "decay": round(alive[t + 1] / alive[t], 3) if t + 1 < len(alive) and alive[t] else None,
                "r_neigh_max": int(tr.r_neigh_max[t]),
                "S_t": round(float(tr.s_t[t]), 3),
                "K_t": round(float(tr.k_t[t]), 3),
                "newly_burned": int(tr.newly_blocked[t]),
            }
        )
    print(format_table(rows, title=f"saer(c={c}, d={d}) on {degree}-regular, n={n}"))
    print(f"\ncompleted={res.completed} in {res.rounds} rounds "
          f"(horizon {completion_horizon(n)}), max load {res.max_load} <= {res.params.capacity}")
    print(f"max_t S_t = {tr.max_s_t():.3f}  — Lemma 4 bounds this by 0.5 for "
          "analysis-scale c; measured here at practical c.\n")

    eta = degree / math.log2(n) ** 2
    c_paper = c_min_regular(eta, d)
    T = stage1_length(n, d, degree, c_paper)
    gam = gamma_sequence(c_paper, 6)
    delta = delta_sequence(n, d, degree, c_paper, T, T + 4)
    print(f"Theory envelopes at the paper's c = {c_paper:.0f} (η = {eta:.2f}):")
    print(f"  Stage I lasts T = {T} rounds; γ_1..γ_5 = "
          + ", ".join(f"{g:.4f}" for g in gam[1:6]))
    print(f"  Stage II envelope δ_T..δ_(T+4) = "
          + ", ".join(f"{x:.4f}" for x in delta)
          + "  (all <= 1/2, as Lemma 14 requires)")


if __name__ == "__main__":
    main()
