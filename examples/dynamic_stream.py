#!/usr/bin/env python
"""Online request streams and topology churn: the §4 conjecture, live.

The paper closes with: "we believe that the simple structure of saer can
well manage such a dynamic scenario and achieves a metastable regime
with good performances."  This example runs our dynamic SAER (burn
recovery + Poisson arrivals + trust-set churn) at three offered loads
and prints the backlog trajectory — bounded below the capacity knee,
divergent above it.

Run:  python examples/dynamic_stream.py
"""

import repro
from repro.analysis import format_table
from repro.dynamic import PoissonArrivals, RewireChurn, run_dynamic_saer


def sparkline(series, width: int = 48) -> str:
    """Coarse ASCII sparkline of a non-negative series."""
    import numpy as np

    blocks = " .:-=+*#%@"
    arr = np.asarray(series, dtype=float)
    if arr.size > width:
        arr = arr[:: max(1, arr.size // width)][:width]
    top = arr.max() or 1.0
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), len(blocks) - 1)] for v in arr)


def main() -> None:
    n = 512
    graph = repro.graphs.trust_subsets(n, n, 81, seed=31)
    horizon = 400

    rows = []
    curves = {}
    for rate in (0.2, 0.6, 1.5):
        res = run_dynamic_saer(
            graph,
            c=2.0,
            d=4,
            arrivals=PoissonArrivals(rate),
            horizon=horizon,
            churn=RewireChurn(0.02),
            recovery=8,
            seed=32,
        )
        lat = res.latency_stats()
        rows.append(
            {
                "offered/round": f"{rate * n:.0f}",
                "metastable": res.is_metastable(),
                "final_backlog": int(res.backlog[-1]),
                "backlog_slope": round(res.backlog_slope(), 2),
                "latency_p50": lat["p50"],
                "latency_p95": lat["p95"],
                "burned_frac": round(float(res.burned_fraction[-1]), 2),
            }
        )
        curves[rate] = res.backlog

    print(format_table(rows, title=f"dynamic saer, n={n}, horizon={horizon} rounds"))
    print("\nbacklog trajectories (time →):")
    for rate, series in curves.items():
        print(f"  λ·n={rate * n:6.0f}  |{sparkline(series)}|")
    print(
        "\nBelow the knee the backlog flat-lines (metastable, as the paper\n"
        "conjectures); above it the burn/recovery cycle cannot keep up and\n"
        "the queue grows linearly."
    )


if __name__ == "__main__":
    main()
