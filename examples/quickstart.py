#!/usr/bin/env python
"""Quickstart: run SAER on a random regular client-server topology.

The 60-second tour of the public API:

1. generate a Δ-regular bipartite graph (Δ = log² n, the regime of
   Theorem 1),
2. run ``saer(c, d)`` and inspect the result,
3. re-run the *same* randomness through the agent-level simulator to
   see that the vectorized engine is an exact implementation of the
   message-passing model,
4. run the coupled SAER/RAES execution of Corollary 2.

Run:  python examples/quickstart.py
"""

import math

import numpy as np

import repro
from repro.agents import run_agent_saer
from repro.theory import completion_horizon


def main() -> None:
    n = 1024
    degree = math.ceil(math.log2(n) ** 2)
    d = 4  # balls per client (the "request number")
    c = 1.5  # threshold multiplier: servers burn above floor(c*d) received

    print(f"Building a {degree}-regular bipartite graph on {n}+{n} nodes ...")
    graph = repro.graphs.random_regular_bipartite(n, degree, seed=1)
    report = repro.graphs.degree_report(graph)
    print(f"  rho = {report.rho:.2f}, eta = {report.eta:.2f} (Theorem 1 constants)\n")

    print(f"Running saer(c={c}, d={d}) ...")
    res = repro.run_saer(graph, c=c, d=d, seed=2, trace=repro.TraceLevel.FULL)
    print(f"  completed:        {res.completed}")
    print(f"  rounds:           {res.rounds}   (3*log2 n horizon: {completion_horizon(n)})")
    print(f"  work (messages):  {res.work}   ({res.work_per_client:.1f} per client)")
    print(f"  max server load:  {res.max_load}   (guaranteed <= floor(c*d) = {res.params.capacity})")
    print(f"  burned servers:   {res.blocked_servers} / {n}")
    print(f"  max_t S_t:        {res.trace.max_s_t():.3f}   (Lemma 4 bound: 0.5)\n")

    print("Replaying the identical randomness through the agent-level model M ...")
    tape = repro.RandomTape(seed=3)
    fast = repro.run_saer(graph, c=c, d=d, tape=tape)
    tape.rewind()
    slow = run_agent_saer(graph, c, d, tape=tape)
    assert fast.rounds == slow.rounds and fast.work == slow.work
    assert np.array_equal(fast.loads, slow.loads)
    print(f"  engine == agents: rounds {fast.rounds} == {slow.rounds}, "
          f"work {fast.work} == {slow.work}, loads identical\n")

    print("Coupled SAER/RAES run (Corollary 2, pathwise dominance) ...")
    cp = repro.run_coupled(graph, c=c, d=d, seed=4)
    print(f"  SAER rounds: {cp.saer.rounds}, RAES rounds: {cp.raes.rounds}")
    print(f"  RAES alive set nested in SAER's every round: {cp.nested_every_round}")


if __name__ == "__main__":
    main()
