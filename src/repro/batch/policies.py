"""Trial-batched server policies: SAER and RAES over a trial axis.

The batched engine runs ``R`` independent trials on the same graph, so a
policy's per-server state gains a leading trial axis: ``loads``,
``burned`` etc. become ``[R, n_servers]`` matrices.  Each batched policy
implements the *same* Phase-2 rule as its scalar counterpart in
:mod:`repro.core.policies` — trial ``r`` of the batch evolves exactly as
a single :class:`~repro.core.policies.SaerPolicy` /
:class:`~repro.core.policies.RaesPolicy` would, which is what the
trial-for-trial equivalence tests assert.

Two decision paths, chosen by the engine per round:

* :meth:`decide_dense` — the received counts arrive as a dense
  ``[A, n_servers]`` matrix (``A`` = currently active trials).  Used in
  early rounds when most balls are still alive and a segmented
  ``bincount`` over ``trial·n_s + dest`` is the cheapest way to build
  per-server batches.
* :meth:`decide_sparse` — late rounds have few alive balls spread over
  few (trial, server) pairs, so touching all ``A·n_s`` state entries per
  round would dominate the runtime (it is exactly the per-round ``O(n)``
  floor the reference engine pays).  The sparse path sorts the per-ball
  flat keys once (:func:`numpy.unique`) and reads/writes only the state
  entries that actually received a ball this round.

Both paths are exact: a server that receives no balls in a round cannot
change state under either rule (SAER maintains the invariant
``burned ⇔ cum_received > capacity``; RAES keeps no per-round state at
all), so skipping untouched entries is a pure optimization.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import ProtocolConfigError

__all__ = [
    "BatchedServerPolicy",
    "BatchedSaerPolicy",
    "BatchedRaesPolicy",
]


class BatchedServerPolicy:
    """Interface for Phase-2 rules with per-trial state ``[R, n_servers]``."""

    name: str = "abstract"

    def __init__(self, n_trials: int, n_servers: int, capacity: int):
        if n_trials < 0:
            raise ProtocolConfigError("n_trials must be non-negative")
        if n_servers < 0:
            raise ProtocolConfigError("n_servers must be non-negative")
        if capacity < 1:
            raise ProtocolConfigError(f"capacity must be >= 1; got {capacity}")
        self.n_trials = n_trials
        self.n_servers = n_servers
        self.capacity = capacity
        self.loads = np.zeros((n_trials, n_servers), dtype=np.int64)
        # Rounds this policy has decided.  The engine calls exactly one
        # decide path per round, so subclasses that need a round index
        # (e.g. the fault overlays in repro.faults.policies) advance it
        # from their decide overrides; the built-in rules never read it.
        self.rounds_seen = 0

    # -- decision paths ----------------------------------------------------

    def decide_dense(self, trials: np.ndarray, received: np.ndarray) -> np.ndarray:
        """Accept mask ``[A, n_servers]`` for dense per-server batch counts.

        ``trials`` holds the global trial indices of the ``A`` rows of
        ``received`` (sorted ascending; the engine guarantees it).
        """
        raise NotImplementedError

    def decide_sparse(self, ball_keys: np.ndarray) -> np.ndarray:
        """Per-ball accept mask from flat ``trial·n_servers + dest`` keys."""
        raise NotImplementedError

    # -- terminal metrics --------------------------------------------------

    def max_loads(self) -> np.ndarray:
        """Per-trial final maximum server load, shape ``[R]``."""
        if self.n_servers == 0:
            return np.zeros(self.n_trials, dtype=np.int64)
        return self.loads.max(axis=1)

    def blocked_counts(self) -> np.ndarray:
        """Per-trial count of servers that reject any non-empty batch."""
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------

    def astype_state(self, counter_dtype, load_dtype=None) -> None:
        """Shrink integer state (the engine picks the narrowest dtypes
        that provably fit; this halves or quarters per-round state
        traffic).  ``counter_dtype`` bounds round-cumulative counters,
        ``load_dtype`` bounds accepted loads (≤ capacity by invariant)."""
        self.loads = self.loads.astype(load_dtype or counter_dtype, copy=False)

    def _rows(self, trials: np.ndarray) -> Union[slice, np.ndarray]:
        """Index all state rows via a view when every trial is active."""
        return slice(None) if trials.size == self.n_trials else trials


class BatchedSaerPolicy(BatchedServerPolicy):
    """SAER (Algorithm 1) over a trial axis; see :class:`~repro.core.policies.SaerPolicy`.

    State per trial: ``cum_received`` (every ball ever received, accepted
    or not) and ``loads`` (accepted).  The burned set of Definition 3 is
    fully determined by ``cum_received > capacity`` and is therefore
    derived (:attr:`burned`), not stored.
    """

    name = "saer"

    def __init__(self, n_trials: int, n_servers: int, capacity: int):
        super().__init__(n_trials, n_servers, capacity)
        self.cum_received = np.zeros((n_trials, n_servers), dtype=np.int64)

    def astype_state(self, counter_dtype, load_dtype=None) -> None:
        super().astype_state(counter_dtype, load_dtype)
        self.cum_received = self.cum_received.astype(counter_dtype, copy=False)

    # Definition 3 burns a server the round its cumulative received count
    # first exceeds capacity, and cum_received is non-decreasing, so
    # ``burned ⇔ cum_received > capacity`` at all times.  A round's batch
    # is accepted iff the server was not burned before (cum_old ≤ cap)
    # AND does not burn now (cum_new ≤ cap) — and the first condition is
    # implied by the second.  Hence no separate burned array: one add and
    # one compare per round.

    @property
    def burned(self) -> np.ndarray:
        """Per-trial burned mask ``[R, n_servers]`` (derived, Definition 3)."""
        return self.cum_received > self.capacity

    # A further SAER-only identity: a server that is not burned has by
    # definition accepted every batch it ever received, so its load
    # always equals its cumulative received count.  Accepting servers
    # can therefore *copy* cum into loads instead of accumulating.

    def decide_dense(self, trials: np.ndarray, received: np.ndarray) -> np.ndarray:
        rows = self._rows(trials)
        cum = self.cum_received[rows]
        cum += received
        if not isinstance(rows, slice):
            self.cum_received[rows] = cum
        accept = cum <= self.capacity
        loads = self.loads[rows]
        np.copyto(loads, cum, where=accept, casting="unsafe")
        if not isinstance(rows, slice):
            self.loads[rows] = loads
        return accept

    def decide_sparse(self, ball_keys: np.ndarray) -> np.ndarray:
        keys, inverse, counts = np.unique(
            ball_keys, return_inverse=True, return_counts=True
        )
        cum_flat = self.cum_received.reshape(-1)
        loads_flat = self.loads.reshape(-1)
        cum = cum_flat[keys] + counts
        cum_flat[keys] = cum
        accept = cum <= self.capacity
        loads_flat[keys[accept]] = cum[accept]
        return accept[inverse]

    def blocked_counts(self) -> np.ndarray:
        return (self.cum_received > self.capacity).sum(axis=1)


class BatchedRaesPolicy(BatchedServerPolicy):
    """RAES over a trial axis; see :class:`~repro.core.policies.RaesPolicy`.

    A server rejects a round's batch iff accepting it would push its
    load above capacity; there is no permanent state, so the only state
    matrix is ``loads``.
    """

    name = "raes"

    def decide_dense(self, trials: np.ndarray, received: np.ndarray) -> np.ndarray:
        rows = self._rows(trials)
        loads = self.loads[rows]
        accept = loads + received <= self.capacity
        np.add(loads, received, out=loads, where=accept)
        if not isinstance(rows, slice):
            self.loads[rows] = loads
        return accept

    def decide_sparse(self, ball_keys: np.ndarray) -> np.ndarray:
        keys, inverse, counts = np.unique(
            ball_keys, return_inverse=True, return_counts=True
        )
        loads_flat = self.loads.reshape(-1)
        accept = loads_flat[keys] + counts <= self.capacity
        loads_flat[keys[accept]] += counts[accept]
        return accept[inverse]

    def blocked_counts(self) -> np.ndarray:
        return (self.loads >= self.capacity).sum(axis=1)
