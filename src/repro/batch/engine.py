"""Trial-vectorized engine: R independent protocol runs as one 2-D computation.

Why
---
Every experiment in this repo is a Monte-Carlo estimate built from
hundreds of independent runs, but :func:`repro.core.engine.run_protocol`
executes one trial per call, so a sweep pays the full per-round numpy
dispatch cost — *and* the per-round ``O(n)`` fixed cost (policy state
updates, ``bincount`` clears, degree lookups) — once per trial.  This
engine stacks the trial axis into the arrays themselves: one round of
*all* active trials is a single set of flat-array operations.

How
---
The alive balls of all trials live in two flat arrays, ``ball_trial``
and ``ball_client``, kept sorted trial-major then client-major — the
same canonical order in which the reference engine consumes its random
tape.  Per round:

* per-trial uniforms are drawn from per-trial generators through a
  fixed-block read-ahead (:func:`repro.batch.kernels.fill_uniforms`),
  so trial ``r`` consumes *exactly* the stream that
  ``run_protocol(seed=seeds[r])`` would;
* destinations come from the shared CSR graph exactly as in
  :func:`repro.core.engine.draw_destinations`;
* Phase-2 decisions are made on the combined key ``trial·n_s + dest``:
  a segmented ``bincount`` over all trials at once (dense path), or a
  sort-based sparse update touching only the (trial, server) pairs that
  received balls this round (late rounds, when alive balls are few);
* accepted balls are dropped by boolean compaction, which preserves the
  canonical order; a trial leaves the active set when its last ball is
  assigned or it hits the round cap.

Compiled kernels
----------------
The whole per-round chain also exists as a fused, cache-blocked
compiled kernel (:mod:`repro.batch.kernels`): pass ``kernel="cext"`` /
``"numba"`` (or set ``REPRO_KERNELS``) to run the gather → count →
decide → compact pipeline as one C or numba call per round.  The
compiled path is **bit-identical** to the numpy path — it is selected
per call and silently falls back to numpy whenever a run shape it does
not support appears (custom policy subclasses, degree-0 clients with
demand, ≥ 2³¹ edges).  ``buffers=`` accepts an
:class:`~repro.batch.kernels.EngineBuffers` so sweep workers can keep
one scratch set (staging arrays, received slab, RNG read-ahead) alive
across grid points instead of reallocating per task.

Equivalence contract
--------------------
For matching per-trial seeds (and the default ``with_replacement`` /
non-slot draw mode), trial ``r`` of :func:`run_trials_batched` produces
*bit-identical* results to ``run_protocol(graph, params, policy,
seed=seeds[r])`` — rounds, work, max_load, blocked servers, and the full
per-server load vector — under every kernel implementation.
``tests/test_batch_engine.py`` asserts this trial-for-trial across
policies, demand vectors, and graph families; ``tests/test_kernels.py``
asserts numpy/compiled kernel parity.

Not supported (use the reference engine): per-round traces,
``slot_mode`` tape semantics, and ``without_replacement`` sampling.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Callable, Sequence, Union

import numpy as np

from ..core.config import ProtocolParams, RunOptions
from ..core.engine import _resolve_demands
from ..errors import NonTerminationError, ProtocolConfigError
from ..graphs.bipartite import BipartiteGraph
from ..rng import make_rng, philox_trial_words, spawn_seeds
from .kernels import (
    DEFAULT_KERNEL,
    KERNELS_ENV,
    RNG_BLOCK,
    EngineBuffers,
    Kernel,
    PHILOX_CHUNK,
    block_clients_for,
    fill_uniforms,
    philox_fill,
    resolve_kernel,
    resolve_seed_mode,
    resolve_threaded_round,
    resolve_threads,
    trial_chunks,
)
from .policies import BatchedRaesPolicy, BatchedSaerPolicy, BatchedServerPolicy
from .results import BatchResult

__all__ = ["run_trials_batched", "run_saer_batched", "run_raes_batched"]

BatchPolicyLike = Union[str, BatchedServerPolicy, Callable[[int, int, int], BatchedServerPolicy]]

_BATCH_POLICY_REGISTRY: dict[str, Callable[[int, int, int], BatchedServerPolicy]] = {
    "saer": BatchedSaerPolicy,
    "raes": BatchedRaesPolicy,
}

# Switch to the sparse Phase-2 path once the balls in flight are this
# many times fewer than the dense state slab (A·n_s) they would touch
# (crossover tuned on the n=10⁴, R=64 benchmark of BENCH_batch.json).
_SPARSE_FACTOR = 4


def _make_batch_policy(
    policy: BatchPolicyLike, n_trials: int, n_servers: int, capacity: int
) -> BatchedServerPolicy:
    if isinstance(policy, BatchedServerPolicy):
        return policy
    if isinstance(policy, str):
        try:
            factory = _BATCH_POLICY_REGISTRY[policy.lower()]
        except KeyError:
            raise ProtocolConfigError(
                f"unknown batched policy {policy!r}; known: {sorted(_BATCH_POLICY_REGISTRY)}"
            ) from None
        return factory(n_trials, n_servers, capacity)
    return policy(n_trials, n_servers, capacity)


# The compiled kernels want the CSR tables as int32 (they are guarded
# to n_edges < 2³¹); converting a 10⁵-node graph costs ~100 MB of
# traffic, so the converted tables are cached per graph object.  Keyed
# by id() with a liveness check so a recycled id can never serve a
# stale entry.
_CSR32_CACHE: dict[int, tuple] = {}


def _csr32(graph: BipartiteGraph):
    key = id(graph)
    entry = _CSR32_CACHE.get(key)
    if entry is not None and entry[0]() is graph:
        return entry[1]
    indptr = graph.client_indptr.astype(np.int32, copy=False)
    indices = graph.client_indices.astype(np.int32, copy=False)
    degrees = np.diff(indptr)
    arrays = (indptr, degrees, indices)
    try:
        ref = weakref.ref(graph, lambda _r, k=key: _CSR32_CACHE.pop(k, None))
        _CSR32_CACHE[key] = (ref, arrays)
    except TypeError:  # un-weakref-able graph stand-ins: just don't cache
        pass
    return arrays


def run_trials_batched(
    graph: BipartiteGraph,
    params: ProtocolParams,
    policy: BatchPolicyLike = "saer",
    *,
    n_trials: int | None = None,
    seeds: Sequence | None = None,
    seed=None,
    demands=None,
    options: RunOptions | None = None,
    kernel: str | None = None,
    threads: int | None = None,
    seed_mode: str | None = None,
    buffers: EngineBuffers | None = None,
    faults=None,
) -> BatchResult:
    """Run ``R`` independent trials of one protocol as a single batch.

    Parameters
    ----------
    graph, params, policy:
        Shared topology, ``(c, d)``, and the Phase-2 rule (``"saer"``,
        ``"raes"``, a :class:`BatchedServerPolicy`, or a factory taking
        ``(n_trials, n_servers, capacity)``).
    n_trials / seeds / seed:
        Either pass ``seeds`` (one seed-like per trial — each trial's
        stream is exactly what ``run_protocol(seed=seeds[r])`` would
        consume), or ``n_trials`` plus a root ``seed`` that is spawned
        into per-trial children via :func:`repro.rng.spawn_seeds`.
    demands:
        Optional per-client ball counts in ``[0, d]``, shared by every
        trial (trial randomness is in the destination draws, not the
        demand vector).
    options:
        Round cap and error behaviour, as in the reference engine.  With
        ``raise_on_cap``, :class:`~repro.errors.NonTerminationError` is
        raised if *any* trial hits the cap (carrying the full
        :class:`BatchResult` in ``result``).
    kernel:
        Round-kernel implementation: ``"numpy"`` (default), ``"cext"``,
        ``"numba"``, or ``"python"``; ``None`` reads the
        ``REPRO_KERNELS`` environment variable.  All implementations
        are bit-identical; unavailable ones fall back to numpy with a
        warning.  See :mod:`repro.batch.kernels`.
    threads:
        Kernel thread budget for the compiled paths: the trial axis is
        partitioned into that many chunks and the round kernel runs
        them in parallel (OpenMP for ``cext``, ``numba.prange`` for
        ``numba``).  ``None`` reads ``REPRO_KERNEL_THREADS``; default
        1.  Results are **bit-identical at every thread count** — the
        chunking is data, not scheduling.  Ignored by the ``numpy``
        reference loop; a compiled gate without a threaded path on
        this install warns once per (gate, threads) and runs
        sequentially.
    seed_mode:
        Seed lineage: ``"pair"`` / ``"direct"`` (synonyms here) run the
        PCG64 per-trial generators; ``"philox"`` switches the uniform
        supply to the counter-based Philox4x32 lineage of
        :mod:`repro.rng` — a *different* deterministic stream with its
        own goldens, bit-identical across every kernel gate, thread
        count, and chunking by construction (each draw is a pure
        function of ``(trial words, round, slot)``).  ``None`` reads
        ``REPRO_SEED_MODE``; default ``pair``.  Philox mode requires
        seed-likes (not pre-built Generators) in ``seeds`` and is the
        only mode the ``"cupy"`` kernel accepts.
    buffers:
        Optional :class:`~repro.batch.kernels.EngineBuffers` scratch
        pool, reused across calls (persistent sweep workers pass their
        per-process pool so grid points share one allocation).
    faults:
        Optional :class:`repro.faults.FaultSchedule` of *server* fault
        kinds, wrapped around the built-in ``"saer"`` / ``"raes"``
        policies via :func:`repro.faults.faulty_policy_factory`.  The
        wrapper subclasses force the (bit-identical) numpy decide path,
        so a seeded schedule reproduces exactly across kernel gates and
        thread counts, and an all-``fraction=0`` schedule matches
        ``faults=None`` bit for bit.

    Returns
    -------
    BatchResult
        Per-trial arrays plus the shared scalars; see
        :meth:`BatchResult.to_run_results` for the per-trial adapter.
    """
    if seeds is not None:
        seed_list = list(seeds)
        if n_trials is not None and n_trials != len(seed_list):
            raise ProtocolConfigError(
                f"n_trials={n_trials} disagrees with len(seeds)={len(seed_list)}"
            )
        if seed is not None:
            raise ProtocolConfigError("pass either seeds or a root seed, not both")
    else:
        if n_trials is None:
            raise ProtocolConfigError("pass n_trials (with an optional root seed) or seeds")
        if n_trials < 0:
            raise ProtocolConfigError(f"n_trials must be non-negative; got {n_trials}")
        seed_list = spawn_seeds(seed, n_trials)
    R = len(seed_list)

    opts = options or RunOptions()
    dem = _resolve_demands(graph, params.d, demands)
    total_balls = int(dem.sum())
    n_c, n_s = graph.n_clients, graph.n_servers
    cap = opts.cap_for(max(n_c, n_s))
    # cum_received grows by at most total_balls per round, so this bounds
    # every cumulative counter; loads never exceed capacity.  Narrow
    # state dtypes halve (or quarter) the per-round policy traffic.
    state_dtype = np.int32 if total_balls * max(cap, 1) < 2**31 - 1 else np.int64
    load_dtype = np.int16 if params.capacity < 2**15 - 1 else state_dtype
    if faults is not None:
        if not isinstance(policy, str):
            raise ProtocolConfigError(
                "faults= wraps the built-in 'saer'/'raes' policy names; "
                "pass a pre-wrapped policy instance instead"
            )
        from ..faults.policies import faulty_policy_factory

        policy = faulty_policy_factory(policy.lower(), faults, n_c)
    pol = _make_batch_policy(policy, R, n_s, params.capacity)
    smode = resolve_seed_mode(seed_mode)
    requested_kernel = (
        (kernel or os.environ.get(KERNELS_ENV) or DEFAULT_KERNEL).strip().lower()
    )
    if requested_kernel == "cupy" and smode != "philox":
        raise ProtocolConfigError(
            'kernel="cupy" requires seed_mode="philox": the device round '
            "is reproducible only under the counter-based lineage (PCG64 "
            "carries per-trial generator state the GPU path cannot stream)"
        )
    if smode == "philox":
        try:
            words = philox_trial_words(seed_list)
        except TypeError as exc:
            raise ProtocolConfigError(
                f'seed_mode="philox" derives counter words from seed-likes; {exc}'
            ) from None
        gens = None
    else:
        words = None
        gens = [make_rng(s) for s in seed_list]
    bufs = buffers if buffers is not None else EngineBuffers()

    n_threads = resolve_threads(threads)
    kern = resolve_kernel(kernel, threads=n_threads)
    if kern.name == "cupy" and _compiled_supported(kern, graph, pol, dem, n_c, n_s):
        from .device import run_rounds_device

        pol.astype_state(state_dtype, state_dtype)
        rounds, work, assigned, alive_total = run_rounds_device(
            kern.module(), graph, pol, dem, total_balls, n_c, n_s, cap, R,
            params.capacity, words, state_dtype,
        )
    elif kern.compiled and _compiled_supported(kern, graph, pol, dem, n_c, n_s):
        pol.astype_state(state_dtype, state_dtype)
        rounds, work, assigned, alive_total = _run_rounds_compiled(
            kern, graph, pol, dem, total_balls, n_c, n_s, cap, R,
            params.capacity, gens, bufs, state_dtype, n_threads, words,
        )
    else:
        pol.astype_state(state_dtype, load_dtype)
        rounds, work, assigned, alive_total = _run_rounds_numpy(
            graph, pol, dem, total_balls, n_c, n_s, cap, R, gens, bufs,
            state_dtype, words,
        )

    result = BatchResult(
        protocol=pol.name,
        graph_name=graph.name,
        n_clients=n_c,
        n_servers=n_s,
        params=params,
        n_trials=R,
        completed=alive_total == 0,
        rounds=rounds,
        work=work,
        total_balls=total_balls,
        assigned_balls=assigned,
        max_load=pol.max_loads().astype(np.int64),
        blocked_servers=pol.blocked_counts().astype(np.int64),
        loads=pol.loads.astype(np.int64) if opts.record_loads else None,
        seed_infos=[repr(s) for s in seed_list],
    )
    if opts.raise_on_cap and not result.completed.all():
        incomplete = int((~result.completed).sum())
        raise NonTerminationError(
            f"{pol.name}: {incomplete}/{R} trials did not finish within {cap} rounds",
            result=result,
        )
    return result


def _compiled_supported(
    kern: Kernel, graph: BipartiteGraph, pol: BatchedServerPolicy, dem, n_c, n_s
) -> bool:
    """Whether this run's shape fits the fused compiled kernels.

    The compiled path implements exactly the built-in SAER/RAES rules
    (a policy subclass may override ``decide_*``, so only the exact
    types qualify), needs int32-addressable CSR tables, and does not
    reproduce the numpy path's clip semantics for degree-0 clients
    that somehow carry demand.  Anything else falls back to numpy —
    same results, just without the fusion.
    """
    if type(pol) not in (BatchedSaerPolicy, BatchedRaesPolicy):
        return False
    if n_c <= 0 or n_s <= 0 or graph.n_edges <= 0:
        return False
    if graph.n_edges >= 2**31 - 1 or n_s >= 2**31 - 1:
        return False
    _indptr, degrees, _indices = _csr32(graph)
    if bool(np.any((degrees == 0) & (dem > 0))):
        return False
    return True


def _run_rounds_compiled(
    kern, graph, pol, dem, total_balls, n_c, n_s, cap, R, capacity, gens,
    bufs, state_dtype, threads=1, words=None,
):
    """Round loop over the fused compiled kernel (one call per round).

    With ``threads > 1`` the trial axis is partitioned into ``threads``
    balanced chunks per round and dispatched through the kernel's
    trial-partitioned entry on per-chunk scratch rows — bit-identical
    to the sequential entry for any thread count (the partition and
    the survivor left-pack are data, not scheduling).  Falls back to
    the sequential entry (with a once-per-(gate, threads) warning)
    when this install has no threaded path for the gate.

    ``words is not None`` selects the philox lineage.  The ``cext``
    gate then runs the *fused* philox entries — each uniform generated
    inline in phase 1 from ``(trial words, round, slot)``, so the slab
    fill pass and both of its memory sweeps disappear (this is the
    lineage's perf story).  Gates that still consume a slab
    (``numba`` / ``python``) take :func:`philox_fill`; with a thread
    budget ≥ 2 the *next* round's slab is filled concurrently with the
    current round's kernel call (the C fill releases the GIL) using the
    current counts as an upper bound — counter draws are
    location-independent, so the surviving prefix of an over-fill is
    exactly what the next round needs, and the overlap cannot change a
    single bit.

    The trial-partitioned entries pack survivors back into ``ball_key``
    (the input buffer, dead after phase 1 — that is what makes their
    left-pack epilogue parallel), so this loop swaps the ping-pong
    buffers only after sequential rounds.
    """
    indptr, degrees, indices = _csr32(graph)
    reg_deg = 0
    if degrees.size and int(degrees.min()) == int(degrees.max()):
        reg_deg = int(degrees[0])
    if reg_deg:
        template = np.repeat(np.arange(n_c, dtype=np.int32) * np.int32(reg_deg), dem)
    else:
        template = np.repeat(np.arange(n_c, dtype=np.int32), dem)
    block_clients = block_clients_for(n_c, graph.n_edges)

    rounds = np.zeros(R, dtype=np.int64)
    work = np.zeros(R, dtype=np.int64)
    assigned = np.zeros(R, dtype=np.int64)
    alive_total = np.full(R, total_balls, dtype=np.int64)
    if total_balls and R:
        active = np.arange(R, dtype=np.int64)
        sent = np.full(R, total_balls, dtype=np.int64)
    else:
        active = np.empty(0, dtype=np.int64)
        sent = np.empty(0, dtype=np.int64)

    # The threaded path partitions trials into `threads` chunks, each on
    # its own scratch row; a gate without a threaded path on this
    # install warns once and runs the sequential entry.
    mt_fn = None
    if threads > 1 and R > 1:
        mt_fn = resolve_threaded_round(kern, threads)
    T = min(threads, R) if mt_fn is not None else 1

    philox = words is not None
    # Fused philox entries (cext only): uniforms generated inline in
    # phase 1, no slab at all.  The OpenMP twin exists iff the standard
    # mt entry resolved (same compile probe).
    fused_mt_fn = fused_fn = None
    if philox:
        if mt_fn is not None:
            fused_mt_fn = kern.philox_threaded_round_fn(threads)
        if fused_mt_fn is None:
            fused_fn = kern.philox_round_fn()
    use_fused = fused_mt_fn is not None or fused_fn is not None

    B0 = total_balls * R
    u_buf = None if use_fused else bufs.get("u", B0, np.float64)
    # Fused entries take per-trial chunk rows instead of a slab: the
    # uniforms in flight stay cache-resident (R × 4 KB total).
    uchunk = (
        bufs.get("cuchunk", (R, PHILOX_CHUNK), np.float64)
        if use_fused
        else None
    )
    dest_buf = bufs.get("cdest", B0, np.int32)
    ball_key = bufs.get("cball", B0, np.int32)
    alt_buf = bufs.get("calt", B0, np.int32)
    if R:
        ball_key.reshape(R, total_balls)[:] = template
    if mt_fn is not None:
        counts = bufs.get("ccount", (T, n_s), state_dtype, zero=True)
        toucheds = bufs.get("ctouched", (T, n_s), np.int32)
        accs = bufs.get("cacc", (T, n_s), np.uint8, zero=True)
        chunk_buf = bufs.get("cchunk", T + 1, np.int64)
        n_keep = bufs.get("ckeep", R, np.int64)
    else:
        count = bufs.get("ccount", n_s, state_dtype, zero=True)
        touched = bufs.get("ctouched", n_s, np.int32)
        acc = bufs.get("cacc", n_s, np.uint8, zero=True)
    n_acc_buf = bufs.get("cnacc", R, np.int64)
    cur = bufs.get("ccur", R, np.int64)
    seg_start = bufs.get("cseg0", R, np.int64)
    seg_end = bufs.get("cseg1", R, np.int64)
    if philox:
        w_buf = bufs.get("cwords", (R, 4), np.uint32)
    else:
        slab = bufs.get("rng_slab", (R, RNG_BLOCK), np.float64)
        slab_pos = bufs.get("rng_pos", R, np.int64)
        slab_pos[:] = RNG_BLOCK  # empty: streams are fresh per engine call

    # Fill/kernel overlap for slab-consuming gates in philox mode: with
    # a thread budget >= 2 the next round's slab is filled in a worker
    # thread (the C fill drops the GIL) while the kernel runs.  The fill
    # uses the *current* counts as an upper bound; after the round, the
    # surviving trials' prefixes are the exact next-round streams.
    use_stage = philox and not use_fused and threads >= 2
    stage_buf = bufs.get("u_stage", B0, np.float64) if use_stage else None
    stage = None

    if isinstance(pol, BatchedSaerPolicy):
        state1, state2, is_raes = pol.cum_received, pol.loads, 0
    else:
        state1, state2, is_raes = pol.loads, pol.loads, 1
    round_fn = None
    if mt_fn is None and not use_fused:
        round_fn = kern.round_fn()

    round_no = 0
    B = ball_key.size if active.size else 0
    while active.size:
        round_no += 1
        A = active.size
        rounds[active] += 1
        work[active] += 2 * sent
        do_compact = 1 if round_no < cap else 0
        if not use_fused:
            u = u_buf[:B]
            if philox:
                if stage is not None:
                    th, s_active, s_starts = stage
                    th.join()
                    stage = None
                    # surviving trials keep their staged prefix (draws
                    # are location-independent): compact-copy it to the
                    # new packed offsets
                    idx = np.searchsorted(s_active, active)
                    pos = 0
                    for j in range(A):
                        k = int(sent[j])
                        so = int(s_starts[idx[j]])
                        u[pos : pos + k] = stage_buf[so : so + k]
                        pos += k
                else:
                    philox_fill(u, active, sent, words, round_no)
            else:
                fill_uniforms(u, active, sent, gens, slab, slab_pos)
        if philox:
            w_act = w_buf[:A]
            np.take(words, active, axis=0, out=w_act)
        if use_stage and do_compact:
            s_active = active.copy()
            s_sent = sent.copy()
            s_starts = np.zeros(A + 1, dtype=np.int64)
            np.cumsum(s_sent, out=s_starts[1:])
            th = threading.Thread(
                target=philox_fill,
                args=(stage_buf, s_active, s_sent, words, round_no + 1),
                daemon=True,
            )
            th.start()
            stage = (th, s_active, s_starts)
        n_acc = n_acc_buf[:A]
        swap = False
        if fused_mt_fn is not None:
            Tr = min(T, A)
            chunk_starts = trial_chunks(A, Tr, chunk_buf)
            B_next = int(
                fused_mt_fn(
                    w_act, round_no, uchunk[:A], ball_key, active, sent,
                    reg_deg, indptr,
                    degrees, indices, n_c, block_clients, state1, state2,
                    capacity, is_raes, dest_buf[:B], counts[:Tr],
                    toucheds[:Tr], accs[:Tr], n_acc, alt_buf, do_compact,
                    cur[:A], seg_start[:A], seg_end[:A], chunk_starts,
                    n_keep[:A],
                )
            )
        elif fused_fn is not None:
            B_next = int(
                fused_fn(
                    w_act, round_no, uchunk[:A], ball_key, active, sent,
                    reg_deg, indptr,
                    degrees, indices, n_c, block_clients, state1, state2,
                    capacity, is_raes, dest_buf[:B], count, touched, acc,
                    n_acc, alt_buf, do_compact, cur[:A], seg_start[:A],
                    seg_end[:A],
                )
            )
            swap = True
        elif mt_fn is not None:
            Tr = min(T, A)
            chunk_starts = trial_chunks(A, Tr, chunk_buf)
            B_next = int(
                mt_fn(
                    u, ball_key, active, sent, reg_deg, indptr, degrees,
                    indices, n_c, block_clients, state1, state2, capacity,
                    is_raes, dest_buf[:B], counts[:Tr], toucheds[:Tr],
                    accs[:Tr], n_acc, alt_buf, do_compact, cur[:A],
                    seg_start[:A], seg_end[:A], chunk_starts, n_keep[:A],
                )
            )
        else:
            B_next = int(
                round_fn(
                    u, ball_key, active, sent, reg_deg, indptr, degrees, indices,
                    n_c, block_clients, state1, state2, capacity, is_raes,
                    dest_buf[:B], count, touched, acc, n_acc, alt_buf,
                    do_compact, cur[:A], seg_start[:A], seg_end[:A],
                )
            )
            swap = True
        assigned[active] += n_acc
        alive_total[active] -= n_acc
        sent = sent - n_acc
        if not do_compact:
            # Trials with balls left stop here with rounds == cap.
            break
        if swap:
            # Sequential entries pack survivors into out_key (alt_buf);
            # the trial-partitioned entries pack them back into
            # ball_key, so their rounds skip the ping-pong swap.
            ball_key, alt_buf = alt_buf, ball_key
        B = B_next
        still = sent > 0
        if not still.all():
            active = active[still]
            sent = sent[still]
    if stage is not None:
        stage[0].join()
    return rounds, work, assigned, alive_total


def _run_rounds_numpy(
    graph, pol, dem, total_balls, n_c, n_s, cap, R, gens, bufs, state_dtype,
    words=None,
):
    """The vectorized reference round loop (the ``numpy`` kernel).

    ``words is not None`` selects the philox lineage: Phase-0 becomes
    :func:`repro.batch.kernels.philox_fill` (stateless counter draws,
    C-accelerated when a compiler exists) and the per-trial generators
    and RNG read-ahead slab are never touched.
    """
    # Narrow index dtypes cut memory traffic on the per-ball passes (the
    # engine's dominant cost): edge offsets need to span n_edges (int32
    # for any feasible simulation), while client/server ids usually fit
    # int16, which also keeps the gathered CSR indices table L2/L3
    # resident.  All three fall back to wider types for huge inputs.
    # astype(copy=False) skips the copy whenever the graph's arrays
    # already have the target dtype (they are only ever read here).
    base_dtype = np.int32 if graph.n_edges < 2**31 - 1 else np.int64
    client_dtype = np.int16 if n_c < 2**15 - 1 else base_dtype
    server_dtype = np.int16 if n_s < 2**15 - 1 else base_dtype
    indptr = graph.client_indptr.astype(base_dtype, copy=False)
    indices = graph.client_indices.astype(server_dtype, copy=False)
    degrees = np.diff(indptr).astype(server_dtype, copy=False)  # a degree is at most n_s
    # Regular graphs (the paper's main family) need no per-ball degree or
    # indptr gathers: N(v)[j] sits at the closed form v·Δ + j.
    reg_deg = 0
    if n_c and degrees.size and int(degrees.min()) == int(degrees.max()):
        reg_deg = int(degrees[0])

    # Alive balls of all trials, flat and sorted trial-major then
    # client-major (the canonical tape order).  The trial axis is kept
    # implicit: `active` (global trial ids) and `sent` (per-trial alive
    # counts) delimit consecutive segments of the per-ball array; boolean
    # compaction preserves both the segmentation and the canonical order.
    # Regular graphs carry each ball's CSR row start v·Δ directly (saves
    # a per-ball multiply every round); irregular graphs carry client ids.
    if reg_deg:
        template = np.repeat(np.arange(n_c, dtype=base_dtype) * base_dtype(reg_deg), dem)
        ball_dtype = base_dtype
    else:
        template = np.repeat(np.arange(n_c, dtype=client_dtype), dem)
        ball_dtype = client_dtype

    rounds = np.zeros(R, dtype=np.int64)
    work = np.zeros(R, dtype=np.int64)
    assigned = np.zeros(R, dtype=np.int64)
    alive_total = np.full(R, total_balls, dtype=np.int64)

    if total_balls and R:
        active = np.arange(R, dtype=np.int64)
        sent = np.full(R, total_balls, dtype=np.int64)
    else:
        active = np.empty(0, dtype=np.int64)
        sent = np.empty(0, dtype=np.int64)

    # All round-loop scratch lives in buffers sized to the first round
    # (the largest) and sliced per round: repeated multi-MB allocations
    # cost real page-fault time at fleet scale.  The buffers come from
    # the (optionally persistent) EngineBuffers pool, so sweep workers
    # reuse one allocation across grid points.
    B0 = total_balls * R
    u_buf = bufs.get("u", B0, np.float64)
    off_buf = bufs.get("off", B0, server_dtype)
    base_buf = bufs.get("base", B0, base_dtype)
    dest_buf = bufs.get("dest", B0, server_dtype)
    keep_buf = bufs.get("keep", B0, bool)
    ball_full = bufs.get("ball", B0, ball_dtype)
    alt_full = bufs.get("alt", B0, ball_dtype)  # compaction ping-pong partner
    if R:
        ball_full.reshape(R, total_balls)[:] = template
    if words is None:
        slab = bufs.get("rng_slab", (R, RNG_BLOCK), np.float64)
        slab_pos = bufs.get("rng_pos", R, np.int64)
        slab_pos[:] = RNG_BLOCK  # empty: streams are fresh per engine call
    ball_key = ball_full[: B0 if active.size else 0]
    # The R × n_s received slab is the engine's largest allocation, but
    # only the dense Phase-2 path reads it — sparse-dominated runs (big
    # R·n_s, small ball counts) never should pay for it.  Allocate on
    # first dense use.
    received_buf: np.ndarray | None = None

    # Every trial has been active in every round so far (trials leave the
    # active set for good), so one scalar round counter serves them all.
    round_no = 0
    while active.size:
        round_no += 1
        A = active.size
        B = ball_key.size
        rounds[active] += 1
        work[active] += 2 * sent

        # Phase 1: per-trial uniforms — trial r consumes exactly the
        # stream run_protocol(seed=seeds[r]) would (PCG64 mode), or the
        # counter-determined philox stream — then the shared-graph
        # destination map of Algorithm 1 line 3, fused over all trials.
        u = u_buf[:B]
        if words is not None:
            philox_fill(u, active, sent, words, round_no)
        else:
            fill_uniforms(u, active, sent, gens, slab, slab_pos)
        offsets = off_buf[:B]
        base = base_buf[:B]
        dest = dest_buf[:B]
        if reg_deg:
            np.multiply(u, reg_deg, out=u)
            np.copyto(offsets, u, casting="unsafe")
            np.minimum(offsets, reg_deg - 1, out=offsets)
            np.add(ball_key, offsets, out=base)
        else:
            deg = degrees[ball_key]
            np.multiply(u, deg, out=u)
            np.copyto(offsets, u, casting="unsafe")
            np.minimum(offsets, deg - 1, out=offsets)
            np.take(indptr, ball_key, out=base, mode="clip")
            base += offsets
        np.take(indices, base, out=dest, mode="clip")

        # Phase 2, over the combined (trial, server) key space.  `keep`
        # is the per-ball survival mask (= rejected by its server).
        keep = keep_buf[:B]
        if B * _SPARSE_FACTOR < A * n_s:
            key_dtype = np.int32 if R * n_s < 2**31 - 1 else np.int64
            keys = np.repeat((active * n_s).astype(key_dtype), sent) + dest
            ball_ok = pol.decide_sparse(keys)
            np.logical_not(ball_ok, out=keep)
            starts = np.zeros(A, dtype=np.int64)
            np.cumsum(sent[:-1], out=starts[1:])
            n_acc = np.add.reduceat(ball_ok.astype(np.int64), starts)
        else:
            if received_buf is None:
                received_buf = bufs.get("received", (R, n_s), state_dtype)
            received = received_buf[:A]
            n_acc = np.empty(A, dtype=np.int64)
            pos = 0
            for a, k in enumerate(sent):
                received[a] = np.bincount(dest[pos : pos + k], minlength=n_s)
                pos += k
            accept = pol.decide_dense(active, received)
            reject = ~accept
            pos = 0
            for a, k in enumerate(sent):
                np.take(reject[a], dest[pos : pos + k], out=keep[pos : pos + k])
                n_acc[a] = k - np.count_nonzero(keep[pos : pos + k])
                pos += k

        assigned[active] += n_acc
        alive_total[active] -= n_acc
        sent = sent - n_acc
        if round_no >= cap:
            # Trials with balls left stop here with rounds == cap.
            break
        B_next = int(sent.sum())
        np.compress(keep, ball_key, out=alt_full[:B_next])
        ball_full, alt_full = alt_full, ball_full
        ball_key = ball_full[:B_next]
        still = sent > 0
        if not still.all():
            active = active[still]
            sent = sent[still]
    return rounds, work, assigned, alive_total


def run_saer_batched(
    graph: BipartiteGraph,
    c: float,
    d: int,
    *,
    n_trials: int | None = None,
    seeds: Sequence | None = None,
    seed=None,
    demands=None,
    options: RunOptions | None = None,
    kernel: str | None = None,
    threads: int | None = None,
    seed_mode: str | None = None,
    buffers: EngineBuffers | None = None,
    faults=None,
) -> BatchResult:
    """Batched ``saer(c, d)``; see :func:`run_trials_batched`."""
    return run_trials_batched(
        graph,
        ProtocolParams(c=c, d=d),
        "saer",
        n_trials=n_trials,
        seeds=seeds,
        seed=seed,
        demands=demands,
        options=options,
        kernel=kernel,
        threads=threads,
        seed_mode=seed_mode,
        buffers=buffers,
        faults=faults,
    )


def run_raes_batched(
    graph: BipartiteGraph,
    c: float,
    d: int,
    *,
    n_trials: int | None = None,
    seeds: Sequence | None = None,
    seed=None,
    demands=None,
    options: RunOptions | None = None,
    kernel: str | None = None,
    threads: int | None = None,
    seed_mode: str | None = None,
    buffers: EngineBuffers | None = None,
    faults=None,
) -> BatchResult:
    """Batched ``raes(c, d)``; see :func:`run_trials_batched`."""
    return run_trials_batched(
        graph,
        ProtocolParams(c=c, d=d),
        "raes",
        n_trials=n_trials,
        seeds=seeds,
        seed=seed,
        demands=demands,
        options=options,
        kernel=kernel,
        threads=threads,
        seed_mode=seed_mode,
        buffers=buffers,
        faults=faults,
    )
