/* Fused round kernels for the trial-batched engine (repro.batch).
 *
 * One call executes one protocol round for every active trial:
 *
 *   phase 1  client-blocked destination gather — a block of CSR rows is
 *            processed for *all* trials before moving to the next
 *            block, so the adjacency table streams through cache once
 *            per round instead of once per trial;
 *   phase 2  per-trial batch counts + the SAER/RAES accept rule,
 *            touching only servers that received balls (their state is
 *            provably unchanged otherwise);
 *   phase 3  branchless survivor compaction, preserving the canonical
 *            (trial-major, client-major) ball order that the engine's
 *            random tape is defined over.
 *
 * The contract: bit-identical outputs to the pure-numpy engine path
 * (same uniforms in, same accept decisions, same state, same survivor
 * order out).  Heavy rounds (balls >= n_servers/4) use a branch-free
 * dense count/reset; light rounds keep a touched-server list so state
 * traffic stays proportional to the balls in flight.
 *
 * Two entries are instantiated per state width:
 *
 *   repro_round_*     the sequential fused kernel — one pass over all
 *                     active trials with one shared scratch set;
 *   repro_round_mt_*  the trial-partitioned threaded variant — trials
 *                     are split into explicit chunks (chunk_starts),
 *                     each chunk runs phases 1-3 independently on its
 *                     own scratch row, and survivors land first in the
 *                     trial's own input region; a sequential left-pack
 *                     epilogue then restores the contiguous canonical
 *                     layout.  Because the chunk boundaries, the
 *                     per-trial uniforms, and the output offsets are
 *                     all data (not scheduling), the results are
 *                     byte-identical for ANY chunk count and ANY
 *                     OpenMP thread count — including a build without
 *                     OpenMP at all, where the pragma is ignored and
 *                     the chunks simply run in order.
 *
 * Two state widths are instantiated via self-inclusion: int32 when
 * every cumulative counter provably fits, int64 otherwise.  The engine
 * guarantees: n_edges < 2^31 (ball keys and CSR offsets are int32),
 * uniforms in [0, 1), ball segments sorted by client within each trial,
 * and count/acc scratch arriving zeroed (every call re-zeroes what it
 * touched before returning; the mt entry guarantees this per scratch
 * row).
 */

#ifndef REPRO_KERNELS_PASS
#define REPRO_KERNELS_PASS

#include <stdint.h>
#include <string.h>

/* Destination gather for Δ-regular graphs: ball_key holds each ball's
 * CSR row start (client · Δ), so a block covers keys < block_end.
 * Covers the trial range [a0, a1) — the sequential entry passes the
 * whole active set, the threaded entry one chunk. */
static void phase1_regular(
    const double *u, const int32_t *ball_key, int32_t *dest,
    int64_t a0, int64_t a1, const int64_t *seg_start, const int64_t *seg_end,
    int64_t *cur, int64_t reg_deg, const int32_t *indices,
    int64_t n_clients, int64_t block_clients)
{
    for (int64_t a = a0; a < a1; a++) cur[a] = seg_start[a];
    for (int64_t v0 = 0; v0 < n_clients; v0 += block_clients) {
        int64_t block_end = (v0 + block_clients) * reg_deg;
        for (int64_t a = a0; a < a1; a++) {
            int64_t i = cur[a], e = seg_end[a];
            while (i < e && ball_key[i] < block_end) {
                int64_t off = (int64_t)(u[i] * (double)reg_deg);
                if (off > reg_deg - 1) off = reg_deg - 1;
                dest[i] = indices[ball_key[i] + off];
                i++;
            }
            cur[a] = i;
        }
    }
}

/* Irregular graphs: ball_key holds client ids; degree and row start
 * come from the (block-resident) degree/indptr tables. */
static void phase1_irregular(
    const double *u, const int32_t *ball_key, int32_t *dest,
    int64_t a0, int64_t a1, const int64_t *seg_start, const int64_t *seg_end,
    int64_t *cur, const int32_t *indptr, const int32_t *degrees,
    const int32_t *indices, int64_t n_clients, int64_t block_clients)
{
    for (int64_t a = a0; a < a1; a++) cur[a] = seg_start[a];
    for (int64_t v0 = 0; v0 < n_clients; v0 += block_clients) {
        int64_t block_end = v0 + block_clients;
        for (int64_t a = a0; a < a1; a++) {
            int64_t i = cur[a], e = seg_end[a];
            while (i < e && ball_key[i] < block_end) {
                int32_t v = ball_key[i];
                int64_t dg = degrees[v];
                int64_t off = (int64_t)(u[i] * (double)dg);
                if (off > dg - 1) off = dg - 1;
                dest[i] = indices[indptr[v] + off];
                i++;
            }
            cur[a] = i;
        }
    }
}

#define REPRO_STATE int32_t
#define REPRO_NAME(base) base##_i32
#include __FILE__
#undef REPRO_STATE
#undef REPRO_NAME

#define REPRO_STATE int64_t
#define REPRO_NAME(base) base##_i64
#include __FILE__
#undef REPRO_STATE
#undef REPRO_NAME

#else /* REPRO_KERNELS_PASS: parameterized body */

/* Phase 2 + 3 for one trial: batch counts and the accept rule on ball
 * range [i0, i1), then (when do_compact) the trial's survivors written
 * base-relative at `out` — the sequential entry packs trials
 * contiguously, the threaded entry writes into the trial's own input
 * region for the later left-pack.  Writes the accepted-ball count to
 * *acc_balls_out and returns the survivor count.  count/touched/acc
 * must arrive zeroed and are re-zeroed before returning. */
static int64_t REPRO_NAME(round_trial)(
    const int32_t *ball_key, const int32_t *dest,
    int64_t i0, int64_t i1, int64_t t,
    REPRO_STATE *state1, REPRO_STATE *state2, int64_t n_s,
    int64_t capacity, int64_t is_raes,
    REPRO_STATE *count, int32_t *touched, uint8_t *acc,
    int32_t *out, int64_t do_compact, int64_t *acc_balls_out)
{
    int64_t k = i1 - i0;
    REPRO_STATE *s1 = state1 + t * n_s;
    REPRO_STATE *s2 = state2 + t * n_s;
    int64_t acc_balls = 0, kept = 0;
    if (k >= n_s / 4) {
        /* dense: branch-free counting, full server sweep, memset
         * reset — fastest when most servers are touched anyway */
        for (int64_t i = i0; i < i1; i++)
            count[dest[i]]++;
        for (int64_t s = 0; s < n_s; s++) {
            REPRO_STATE cnt = count[s];
            if (!cnt) continue;
            REPRO_STATE c = s1[s] + cnt;
            if (!is_raes) s1[s] = c;
            if (c <= capacity) {
                s2[s] = c;
                acc[s] = 1;
                acc_balls += cnt;
            }
        }
        if (do_compact)
            for (int64_t i = i0; i < i1; i++) {
                out[kept] = ball_key[i];
                kept += !acc[dest[i]];
            }
        memset(count, 0, (size_t)n_s * sizeof(REPRO_STATE));
        memset(acc, 0, (size_t)n_s);
    } else {
        /* sparse: state traffic proportional to touched servers */
        int64_t nt = 0;
        for (int64_t i = i0; i < i1; i++) {
            int32_t s = dest[i];
            if (count[s]++ == 0) touched[nt++] = s;
        }
        for (int64_t j = 0; j < nt; j++) {
            int32_t s = touched[j];
            REPRO_STATE cnt = count[s];
            REPRO_STATE c = s1[s] + cnt;
            if (!is_raes) s1[s] = c;
            if (c <= capacity) {
                s2[s] = c;
                acc[s] = 1;
                acc_balls += cnt;
            }
        }
        if (do_compact)
            for (int64_t i = i0; i < i1; i++) {
                out[kept] = ball_key[i];
                kept += !acc[dest[i]];
            }
        for (int64_t j = 0; j < nt; j++) {
            count[touched[j]] = 0;
            acc[touched[j]] = 0;
        }
    }
    *acc_balls_out = acc_balls;
    return kept;
}

/* One full round over all active trials, sequential.  Returns the
 * number of surviving balls written to out_key (0 when do_compact is
 * 0).
 *
 * is_raes selects the accept rule; for SAER state1 is cum_received and
 * state2 is loads, for RAES both point at loads (the aliasing makes the
 * unified update reduce to each policy's exact rule). */
int64_t REPRO_NAME(repro_round)(
    const double *u, const int32_t *ball_key, int64_t n_active,
    const int64_t *trial_ids, const int64_t *sent,
    int64_t reg_deg, const int32_t *indptr, const int32_t *degrees,
    const int32_t *indices, int64_t n_clients, int64_t block_clients,
    REPRO_STATE *state1, REPRO_STATE *state2,
    int64_t n_s, int64_t capacity, int64_t is_raes,
    int32_t *dest, REPRO_STATE *count, int32_t *touched, uint8_t *acc,
    int64_t *n_acc, int32_t *out_key, int64_t do_compact,
    int64_t *cur, int64_t *seg_start, int64_t *seg_end)
{
    int64_t pos = 0;
    for (int64_t a = 0; a < n_active; a++) {
        seg_start[a] = pos;
        pos += sent[a];
        seg_end[a] = pos;
    }
    if (reg_deg > 0)
        phase1_regular(u, ball_key, dest, 0, n_active, seg_start, seg_end,
                       cur, reg_deg, indices, n_clients, block_clients);
    else
        phase1_irregular(u, ball_key, dest, 0, n_active, seg_start, seg_end,
                         cur, indptr, degrees, indices, n_clients,
                         block_clients);

    int64_t out = 0;
    for (int64_t a = 0; a < n_active; a++)
        out += REPRO_NAME(round_trial)(
            ball_key, dest, seg_start[a], seg_end[a], trial_ids[a],
            state1, state2, n_s, capacity, is_raes, count, touched, acc,
            out_key + out, do_compact, n_acc + a);
    return out;
}

/* The trial-partitioned threaded round.  chunk_starts has n_chunks + 1
 * entries partitioning [0, n_active) (chunks may be empty); chunk c
 * runs phases 1-3 for its trials on scratch row c of counts/toucheds/
 * accs (each n_chunks × n_s, C-contiguous) and records each trial's
 * survivor count in n_keep.  Survivors are first written into the
 * trial's own input region of out_key; the sequential epilogue
 * left-packs them, which is exactly the sequential entry's layout.
 * Deterministic for any n_chunks / n_threads by construction. */
int64_t REPRO_NAME(repro_round_mt)(
    const double *u, const int32_t *ball_key, int64_t n_active,
    const int64_t *trial_ids, const int64_t *sent,
    int64_t reg_deg, const int32_t *indptr, const int32_t *degrees,
    const int32_t *indices, int64_t n_clients, int64_t block_clients,
    REPRO_STATE *state1, REPRO_STATE *state2,
    int64_t n_s, int64_t capacity, int64_t is_raes,
    int32_t *dest, REPRO_STATE *counts, int32_t *toucheds, uint8_t *accs,
    int64_t *n_acc, int32_t *out_key, int64_t do_compact,
    int64_t *cur, int64_t *seg_start, int64_t *seg_end,
    int64_t n_chunks, const int64_t *chunk_starts, int64_t *n_keep,
    int64_t n_threads)
{
    int64_t pos = 0;
    for (int64_t a = 0; a < n_active; a++) {
        seg_start[a] = pos;
        pos += sent[a];
        seg_end[a] = pos;
    }

    int nthr = (int)(n_threads < 1 ? 1 : n_threads);
    (void)nthr; /* unused when built without OpenMP */
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nthr)
#endif
    for (int64_t ci = 0; ci < n_chunks; ci++) {
        int64_t a0 = chunk_starts[ci], a1 = chunk_starts[ci + 1];
        if (a0 >= a1) continue;
        REPRO_STATE *count = counts + ci * n_s;
        int32_t *touched = toucheds + ci * n_s;
        uint8_t *acc = accs + ci * n_s;
        if (reg_deg > 0)
            phase1_regular(u, ball_key, dest, a0, a1, seg_start, seg_end,
                           cur, reg_deg, indices, n_clients, block_clients);
        else
            phase1_irregular(u, ball_key, dest, a0, a1, seg_start, seg_end,
                             cur, indptr, degrees, indices, n_clients,
                             block_clients);
        for (int64_t a = a0; a < a1; a++)
            n_keep[a] = REPRO_NAME(round_trial)(
                ball_key, dest, seg_start[a], seg_end[a], trial_ids[a],
                state1, state2, n_s, capacity, is_raes, count, touched, acc,
                out_key + seg_start[a], do_compact, n_acc + a);
    }

    /* left-pack the per-trial survivor runs into the canonical
     * contiguous layout; dst <= src always, so forward moves are safe */
    int64_t out = 0;
    for (int64_t a = 0; a < n_active; a++) {
        if (n_keep[a] && out != seg_start[a])
            memmove(out_key + out, out_key + seg_start[a],
                    (size_t)n_keep[a] * sizeof(int32_t));
        out += n_keep[a];
    }
    return out;
}

#endif /* REPRO_KERNELS_PASS */
