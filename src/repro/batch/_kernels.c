/* Fused round kernels for the trial-batched engine (repro.batch).
 *
 * One call executes one protocol round for every active trial:
 *
 *   phase 1  client-blocked destination gather — a block of CSR rows is
 *            processed for *all* trials before moving to the next
 *            block, so the adjacency table streams through cache once
 *            per round instead of once per trial;
 *   phase 2  per-trial batch counts + the SAER/RAES accept rule,
 *            touching only servers that received balls (their state is
 *            provably unchanged otherwise);
 *   phase 3  branchless survivor compaction, preserving the canonical
 *            (trial-major, client-major) ball order that the engine's
 *            random tape is defined over.
 *
 * The contract: bit-identical outputs to the pure-numpy engine path
 * (same uniforms in, same accept decisions, same state, same survivor
 * order out).  Heavy rounds (balls >= n_servers/4) use a branch-free
 * dense count/reset; light rounds keep a touched-server list so state
 * traffic stays proportional to the balls in flight.
 *
 * Two entries are instantiated per state width:
 *
 *   repro_round_*     the sequential fused kernel — one pass over all
 *                     active trials with one shared scratch set;
 *   repro_round_mt_*  the trial-partitioned threaded variant — trials
 *                     are split into explicit chunks (chunk_starts),
 *                     each chunk runs phases 1-3 independently on its
 *                     own scratch row, and survivors land first in the
 *                     trial's own input region of out_key; a prefix-sum
 *                     left-pack epilogue then copies each trial's
 *                     survivor run to its packed offset in ball_key —
 *                     the (dead after phase 3) input buffer — so the
 *                     copies are between disjoint arrays and run in
 *                     parallel.  The caller reads the packed survivors
 *                     from ball_key (NOT out_key) and must not swap its
 *                     ping-pong buffers.  Because the chunk boundaries,
 *                     the per-trial uniforms, and the output offsets
 *                     are all data (not scheduling), the results are
 *                     byte-identical for ANY chunk count and ANY
 *                     OpenMP thread count — including a build without
 *                     OpenMP at all, where the pragma is ignored and
 *                     the chunks simply run in order.
 *
 * The philox twins (repro_round_ph_*, repro_round_ph_mt_*, and the
 * standalone repro_philox_fill) replace the uniform *input* with the
 * counter-based Philox4x32-10 lineage of repro/rng.py: ball slot s of
 * round r in a trial with words (k0, k1, c2, c3) reads counter
 * (s >> 1, r, c2, c3) under key (k0, k1) — two doubles per counter
 * block.  The fused entries generate each uniform inline at the point
 * of consumption in phase 1, so no uniform slab is ever written or
 * read; the standalone fill serves the gates that still consume a
 * slab.  Both are bit-identical to philox_uniforms() in rng.py (pure
 * integer arithmetic plus one exact double scale).
 *
 * Two state widths are instantiated via self-inclusion: int32 when
 * every cumulative counter provably fits, int64 otherwise.  The engine
 * guarantees: n_edges < 2^31 (ball keys and CSR offsets are int32),
 * uniforms in [0, 1), ball segments sorted by client within each trial,
 * and count/acc scratch arriving zeroed (every call re-zeroes what it
 * touched before returning; the mt entry guarantees this per scratch
 * row).
 */

#ifndef REPRO_KERNELS_PASS
#define REPRO_KERNELS_PASS

#include <stdint.h>
#include <string.h>

/* ---- Philox4x32-10 (Random123 constants; KAT-pinned in tests) ---- */

#define REPRO_PHILOX_M0 0xD2511F53u
#define REPRO_PHILOX_M1 0xCD9E8D57u
#define REPRO_PHILOX_W0 0x9E3779B9u
#define REPRO_PHILOX_W1 0xBB67AE85u
#define REPRO_SCALE_53 (1.0 / 9007199254740992.0) /* 2^-53 */
#define REPRO_PH_CHUNK 512 /* doubles per trial chunk row; power of two */

static inline void repro_philox4x32_10(
    uint32_t c0, uint32_t c1, uint32_t c2, uint32_t c3,
    uint32_t k0, uint32_t k1, uint32_t out[4])
{
    for (int r = 0; r < 10; r++) {
        uint64_t p0 = (uint64_t)c0 * REPRO_PHILOX_M0;
        uint64_t p1 = (uint64_t)c2 * REPRO_PHILOX_M1;
        c0 = (uint32_t)(p1 >> 32) ^ c1 ^ k0;
        c1 = (uint32_t)p1;
        c2 = (uint32_t)(p0 >> 32) ^ c3 ^ k1;
        c3 = (uint32_t)p0;
        k0 += REPRO_PHILOX_W0;
        k1 += REPRO_PHILOX_W1;
    }
    out[0] = c0; out[1] = c1; out[2] = c2; out[3] = c3;
}

/* One counter block -> two doubles in [0, 1): high pair then low pair,
 * exactly philox_uniforms() in rng.py. */
static inline void repro_philox_block(
    uint32_t blk, uint32_t rnd, const uint32_t *w, double *d0, double *d1)
{
    uint32_t o[4];
    repro_philox4x32_10(blk, rnd, w[2], w[3], w[0], w[1], o);
    *d0 = (double)((((uint64_t)o[0] << 32) | o[1]) >> 11) * REPRO_SCALE_53;
    *d1 = (double)((((uint64_t)o[2] << 32) | o[3]) >> 11) * REPRO_SCALE_53;
}

/* ---- Bulk segment fill: dst[0..n) = uniforms for slots [slot0,
 * slot0 + n) of one trial's round-r stream.  The SIMD paths batch many
 * counter blocks per iteration; both are bit-identical to the scalar
 * path because Philox is pure integer arithmetic and the only float
 * ops are single exact multiplies/adds (no contraction sites).  The
 * 53-bit mantissa -> double conversion splits the value into a 32-bit
 * high and 21-bit low part so each half fits the 2^52 magic-constant
 * trick and the recombining add is exact. ---- */

#if defined(__AVX2__) || defined(__SSE2__)
#include <immintrin.h>
#endif

#if defined(__AVX2__)

#define REPRO_PH_NV 4 /* interleaved chains: latency-bound otherwise */

static inline __m256d repro_conv53_avx2(__m256i v53)
{
    const __m256i expo = _mm256_set1_epi64x(0x4330000000000000LL);
    const __m256d two52 = _mm256_set1_pd(4503599627370496.0);
    __m256i vhi = _mm256_srli_epi64(v53, 21);
    __m256i vlo = _mm256_and_si256(v53, _mm256_set1_epi64x(0x1FFFFF));
    __m256d dhi =
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(vhi, expo)), two52);
    __m256d dlo =
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(vlo, expo)), two52);
    return _mm256_add_pd(_mm256_mul_pd(dhi, _mm256_set1_pd(2097152.0)), dlo);
}

static void repro_philox_fill_seg(
    double *dst, int64_t slot0, int64_t n, uint32_t rnd, const uint32_t *w)
{
    double d0, d1;
    if (n > 0 && (slot0 & 1)) { /* odd entry: low double of a half block */
        repro_philox_block((uint32_t)(slot0 >> 1), rnd, w, &d0, &d1);
        *dst++ = d1;
        slot0++;
        n--;
    }
    int64_t blk0 = slot0 >> 1;
    const __m256i m0 = _mm256_set1_epi64x(REPRO_PHILOX_M0);
    const __m256i m1 = _mm256_set1_epi64x(REPRO_PHILOX_M1);
    const __m256i mask = _mm256_set1_epi64x(0xFFFFFFFFLL);
    const __m256d scale = _mm256_set1_pd(REPRO_SCALE_53);
    const __m256i rndv = _mm256_set1_epi64x(rnd);
    const __m256i c2i = _mm256_set1_epi64x(w[2]);
    const __m256i c3i = _mm256_set1_epi64x(w[3]);
    __m256i k0v[10], k1v[10];
    {
        uint32_t k0 = w[0], k1 = w[1];
        for (int r = 0; r < 10; r++) {
            k0v[r] = _mm256_set1_epi64x(k0);
            k1v[r] = _mm256_set1_epi64x(k1);
            k0 += REPRO_PHILOX_W0;
            k1 += REPRO_PHILOX_W1;
        }
    }
    __m256i ctr[REPRO_PH_NV], x0[REPRO_PH_NV], x1[REPRO_PH_NV];
    __m256i x2[REPRO_PH_NV], x3[REPRO_PH_NV];
    for (int v = 0; v < REPRO_PH_NV; v++)
        ctr[v] = _mm256_set_epi64x(
            (uint32_t)(blk0 + 4 * v + 3), (uint32_t)(blk0 + 4 * v + 2),
            (uint32_t)(blk0 + 4 * v + 1), (uint32_t)(blk0 + 4 * v));
    int64_t nbf = n >> 1; /* full pairs only; odd tail goes scalar */
    int64_t b = 0;
    for (; b + 4 * REPRO_PH_NV <= nbf; b += 4 * REPRO_PH_NV) {
        for (int v = 0; v < REPRO_PH_NV; v++) {
            x0[v] = ctr[v];
            x1[v] = rndv;
            x2[v] = c2i;
            x3[v] = c3i;
            ctr[v] = _mm256_and_si256(
                _mm256_add_epi64(ctr[v], _mm256_set1_epi64x(4 * REPRO_PH_NV)),
                mask);
        }
        for (int r = 0; r < 10; r++)
            for (int v = 0; v < REPRO_PH_NV; v++) {
                __m256i p0 = _mm256_mul_epu32(x0[v], m0);
                __m256i p1 = _mm256_mul_epu32(x2[v], m1);
                /* dword-swap instead of >>32: the junk it leaves in the
                 * high dwords of x0/x2 only ever feeds mul_epu32 (reads
                 * the low dword) or <<32 (clears it), and the shuffle
                 * runs on a different port than the multiplies. */
                x0[v] = _mm256_xor_si256(
                    _mm256_xor_si256(_mm256_shuffle_epi32(p1, 0xB1), x1[v]),
                    k0v[r]);
                x1[v] = _mm256_and_si256(p1, mask);
                x2[v] = _mm256_xor_si256(
                    _mm256_xor_si256(_mm256_shuffle_epi32(p0, 0xB1), x3[v]),
                    k1v[r]);
                x3[v] = _mm256_and_si256(p0, mask);
            }
        for (int v = 0; v < REPRO_PH_NV; v++) {
            __m256i hi0 = _mm256_srli_epi64(
                _mm256_or_si256(_mm256_slli_epi64(x0[v], 32), x1[v]), 11);
            __m256i hi1 = _mm256_srli_epi64(
                _mm256_or_si256(_mm256_slli_epi64(x2[v], 32), x3[v]), 11);
            __m256d d0v = _mm256_mul_pd(repro_conv53_avx2(hi0), scale);
            __m256d d1v = _mm256_mul_pd(repro_conv53_avx2(hi1), scale);
            __m256d lo = _mm256_unpacklo_pd(d0v, d1v);
            __m256d hi = _mm256_unpackhi_pd(d0v, d1v);
            double *p = dst + 2 * (b + 4 * v);
            _mm256_storeu_pd(p, _mm256_permute2f128_pd(lo, hi, 0x20));
            _mm256_storeu_pd(p + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
        }
    }
    for (; b < nbf; b++) {
        repro_philox_block((uint32_t)(blk0 + b), rnd, w, &d0, &d1);
        dst[2 * b] = d0;
        dst[2 * b + 1] = d1;
    }
    if (n & 1) {
        repro_philox_block((uint32_t)(blk0 + nbf), rnd, w, &d0, &d1);
        dst[n - 1] = d0;
    }
}

/* Regular-graph twin of fill_seg: emit int32 CSR offsets
 * min((int)(u * deg), deg - 1) instead of the doubles — the multiply,
 * truncation (vcvttpd2dq truncates like the C cast), and clip all stay
 * in vector registers, so the uniform values never touch memory. */
static void repro_philox_fill_off(
    int32_t *dst, int64_t slot0, int64_t n, uint32_t rnd, const uint32_t *w,
    int64_t deg)
{
    double d0, d1;
    const double degd = (double)deg;
    const int32_t dmax = (int32_t)(deg - 1);
    if (n > 0 && (slot0 & 1)) {
        repro_philox_block((uint32_t)(slot0 >> 1), rnd, w, &d0, &d1);
        int32_t off = (int32_t)(d1 * degd);
        *dst++ = off > dmax ? dmax : off;
        slot0++;
        n--;
    }
    int64_t blk0 = slot0 >> 1;
    const __m256i m0 = _mm256_set1_epi64x(REPRO_PHILOX_M0);
    const __m256i m1 = _mm256_set1_epi64x(REPRO_PHILOX_M1);
    const __m256i mask = _mm256_set1_epi64x(0xFFFFFFFFLL);
    const __m256d dscale = _mm256_set1_pd(REPRO_SCALE_53 * 1.0);
    const __m256d degv = _mm256_set1_pd(degd);
    const __m128i dmaxv = _mm_set1_epi32(dmax);
    const __m256i rndv = _mm256_set1_epi64x(rnd);
    const __m256i c2i = _mm256_set1_epi64x(w[2]);
    const __m256i c3i = _mm256_set1_epi64x(w[3]);
    __m256i k0v[10], k1v[10];
    {
        uint32_t k0 = w[0], k1 = w[1];
        for (int r = 0; r < 10; r++) {
            k0v[r] = _mm256_set1_epi64x(k0);
            k1v[r] = _mm256_set1_epi64x(k1);
            k0 += REPRO_PHILOX_W0;
            k1 += REPRO_PHILOX_W1;
        }
    }
    __m256i ctr[REPRO_PH_NV], x0[REPRO_PH_NV], x1[REPRO_PH_NV];
    __m256i x2[REPRO_PH_NV], x3[REPRO_PH_NV];
    for (int v = 0; v < REPRO_PH_NV; v++)
        ctr[v] = _mm256_set_epi64x(
            (uint32_t)(blk0 + 4 * v + 3), (uint32_t)(blk0 + 4 * v + 2),
            (uint32_t)(blk0 + 4 * v + 1), (uint32_t)(blk0 + 4 * v));
    int64_t nbf = n >> 1;
    int64_t b = 0;
    for (; b + 4 * REPRO_PH_NV <= nbf; b += 4 * REPRO_PH_NV) {
        for (int v = 0; v < REPRO_PH_NV; v++) {
            x0[v] = ctr[v];
            x1[v] = rndv;
            x2[v] = c2i;
            x3[v] = c3i;
            ctr[v] = _mm256_and_si256(
                _mm256_add_epi64(ctr[v], _mm256_set1_epi64x(4 * REPRO_PH_NV)),
                mask);
        }
        for (int r = 0; r < 10; r++)
            for (int v = 0; v < REPRO_PH_NV; v++) {
                __m256i p0 = _mm256_mul_epu32(x0[v], m0);
                __m256i p1 = _mm256_mul_epu32(x2[v], m1);
                x0[v] = _mm256_xor_si256(
                    _mm256_xor_si256(_mm256_shuffle_epi32(p1, 0xB1), x1[v]),
                    k0v[r]);
                x1[v] = _mm256_and_si256(p1, mask);
                x2[v] = _mm256_xor_si256(
                    _mm256_xor_si256(_mm256_shuffle_epi32(p0, 0xB1), x3[v]),
                    k1v[r]);
                x3[v] = _mm256_and_si256(p0, mask);
            }
        for (int v = 0; v < REPRO_PH_NV; v++) {
            __m256i hi0 = _mm256_srli_epi64(
                _mm256_or_si256(_mm256_slli_epi64(x0[v], 32), x1[v]), 11);
            __m256i hi1 = _mm256_srli_epi64(
                _mm256_or_si256(_mm256_slli_epi64(x2[v], 32), x3[v]), 11);
            __m256d d0v = _mm256_mul_pd(repro_conv53_avx2(hi0), dscale);
            __m256d d1v = _mm256_mul_pd(repro_conv53_avx2(hi1), dscale);
            __m256d lo = _mm256_unpacklo_pd(d0v, d1v);
            __m256d hi = _mm256_unpackhi_pd(d0v, d1v);
            __m256d u0 = _mm256_permute2f128_pd(lo, hi, 0x20);
            __m256d u1 = _mm256_permute2f128_pd(lo, hi, 0x31);
            __m128i o0 = _mm256_cvttpd_epi32(_mm256_mul_pd(u0, degv));
            __m128i o1 = _mm256_cvttpd_epi32(_mm256_mul_pd(u1, degv));
            int32_t *p = dst + 2 * (b + 4 * v);
            _mm_storeu_si128((__m128i *)p, _mm_min_epi32(o0, dmaxv));
            _mm_storeu_si128((__m128i *)(p + 4), _mm_min_epi32(o1, dmaxv));
        }
    }
    for (; b < nbf; b++) {
        repro_philox_block((uint32_t)(blk0 + b), rnd, w, &d0, &d1);
        int32_t o0 = (int32_t)(d0 * degd);
        int32_t o1 = (int32_t)(d1 * degd);
        dst[2 * b] = o0 > dmax ? dmax : o0;
        dst[2 * b + 1] = o1 > dmax ? dmax : o1;
    }
    if (n & 1) {
        repro_philox_block((uint32_t)(blk0 + nbf), rnd, w, &d0, &d1);
        int32_t o0 = (int32_t)(d0 * degd);
        dst[n - 1] = o0 > dmax ? dmax : o0;
    }
}

#elif defined(__SSE2__)

#define REPRO_PH_NV 4

static inline __m128d repro_conv53_sse2(__m128i v53)
{
    const __m128i expo = _mm_set1_epi64x(0x4330000000000000LL);
    const __m128d two52 = _mm_set1_pd(4503599627370496.0);
    __m128i vhi = _mm_srli_epi64(v53, 21);
    __m128i vlo = _mm_and_si128(v53, _mm_set1_epi64x(0x1FFFFF));
    __m128d dhi =
        _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(vhi, expo)), two52);
    __m128d dlo =
        _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(vlo, expo)), two52);
    return _mm_add_pd(_mm_mul_pd(dhi, _mm_set1_pd(2097152.0)), dlo);
}

static void repro_philox_fill_seg(
    double *dst, int64_t slot0, int64_t n, uint32_t rnd, const uint32_t *w)
{
    double d0, d1;
    if (n > 0 && (slot0 & 1)) {
        repro_philox_block((uint32_t)(slot0 >> 1), rnd, w, &d0, &d1);
        *dst++ = d1;
        slot0++;
        n--;
    }
    int64_t blk0 = slot0 >> 1;
    const __m128i m0 = _mm_set1_epi64x(REPRO_PHILOX_M0);
    const __m128i m1 = _mm_set1_epi64x(REPRO_PHILOX_M1);
    const __m128i mask = _mm_set1_epi64x(0xFFFFFFFFLL);
    const __m128d scale = _mm_set1_pd(REPRO_SCALE_53);
    const __m128i rndv = _mm_set1_epi64x(rnd);
    const __m128i c2i = _mm_set1_epi64x(w[2]);
    const __m128i c3i = _mm_set1_epi64x(w[3]);
    __m128i k0v[10], k1v[10];
    {
        uint32_t k0 = w[0], k1 = w[1];
        for (int r = 0; r < 10; r++) {
            k0v[r] = _mm_set1_epi64x(k0);
            k1v[r] = _mm_set1_epi64x(k1);
            k0 += REPRO_PHILOX_W0;
            k1 += REPRO_PHILOX_W1;
        }
    }
    __m128i ctr[REPRO_PH_NV], x0[REPRO_PH_NV], x1[REPRO_PH_NV];
    __m128i x2[REPRO_PH_NV], x3[REPRO_PH_NV];
    for (int v = 0; v < REPRO_PH_NV; v++)
        ctr[v] = _mm_set_epi64x((uint32_t)(blk0 + 2 * v + 1),
                                (uint32_t)(blk0 + 2 * v));
    int64_t nbf = n >> 1;
    int64_t b = 0;
    for (; b + 2 * REPRO_PH_NV <= nbf; b += 2 * REPRO_PH_NV) {
        for (int v = 0; v < REPRO_PH_NV; v++) {
            x0[v] = ctr[v];
            x1[v] = rndv;
            x2[v] = c2i;
            x3[v] = c3i;
            ctr[v] = _mm_and_si128(
                _mm_add_epi64(ctr[v], _mm_set1_epi64x(2 * REPRO_PH_NV)),
                mask);
        }
        for (int r = 0; r < 10; r++)
            for (int v = 0; v < REPRO_PH_NV; v++) {
                __m128i p0 = _mm_mul_epu32(x0[v], m0);
                __m128i p1 = _mm_mul_epu32(x2[v], m1);
                x0[v] = _mm_xor_si128(
                    _mm_xor_si128(_mm_shuffle_epi32(p1, 0xB1), x1[v]),
                    k0v[r]);
                x1[v] = _mm_and_si128(p1, mask);
                x2[v] = _mm_xor_si128(
                    _mm_xor_si128(_mm_shuffle_epi32(p0, 0xB1), x3[v]),
                    k1v[r]);
                x3[v] = _mm_and_si128(p0, mask);
            }
        for (int v = 0; v < REPRO_PH_NV; v++) {
            __m128i hi0 = _mm_srli_epi64(
                _mm_or_si128(_mm_slli_epi64(x0[v], 32), x1[v]), 11);
            __m128i hi1 = _mm_srli_epi64(
                _mm_or_si128(_mm_slli_epi64(x2[v], 32), x3[v]), 11);
            __m128d d0v = _mm_mul_pd(repro_conv53_sse2(hi0), scale);
            __m128d d1v = _mm_mul_pd(repro_conv53_sse2(hi1), scale);
            double *p = dst + 2 * (b + 2 * v);
            _mm_storeu_pd(p, _mm_unpacklo_pd(d0v, d1v));
            _mm_storeu_pd(p + 2, _mm_unpackhi_pd(d0v, d1v));
        }
    }
    for (; b < nbf; b++) {
        repro_philox_block((uint32_t)(blk0 + b), rnd, w, &d0, &d1);
        dst[2 * b] = d0;
        dst[2 * b + 1] = d1;
    }
    if (n & 1) {
        repro_philox_block((uint32_t)(blk0 + nbf), rnd, w, &d0, &d1);
        dst[n - 1] = d0;
    }
}

#else /* portable scalar fallback */

static void repro_philox_fill_seg(
    double *dst, int64_t slot0, int64_t n, uint32_t rnd, const uint32_t *w)
{
    double d0, d1;
    if (n > 0 && (slot0 & 1)) {
        repro_philox_block((uint32_t)(slot0 >> 1), rnd, w, &d0, &d1);
        *dst++ = d1;
        slot0++;
        n--;
    }
    int64_t blk0 = slot0 >> 1;
    int64_t nb = n >> 1;
    for (int64_t b = 0; b < nb; b++) {
        repro_philox_block((uint32_t)(blk0 + b), rnd, w, &d0, &d1);
        dst[2 * b] = d0;
        dst[2 * b + 1] = d1;
    }
    if (n & 1) {
        repro_philox_block((uint32_t)(blk0 + nb), rnd, w, &d0, &d1);
        dst[n - 1] = d0;
    }
}

#endif

#if !defined(__AVX2__)
/* SSE2/scalar builds: offsets via a stack round-trip through fill_seg
 * (the AVX2 build folds the conversion into its SIMD epilogue).  Only
 * ever called with n <= REPRO_PH_CHUNK — one chunk row. */
static void repro_philox_fill_off(
    int32_t *dst, int64_t slot0, int64_t n, uint32_t rnd, const uint32_t *w,
    int64_t deg)
{
    double tmp[REPRO_PH_CHUNK];
    const double degd = (double)deg;
    const int32_t dmax = (int32_t)(deg - 1);
    repro_philox_fill_seg(tmp, slot0, n, rnd, w);
    for (int64_t j = 0; j < n; j++) {
        int32_t off = (int32_t)(tmp[j] * degd);
        dst[j] = off > dmax ? dmax : off;
    }
}
#endif

/* Fill the canonical flat uniform slab from counters: active trial a
 * (words[4a..4a+3]) owns slots [seg_a, seg_a + sent[a]) where seg is
 * the running prefix sum.  Location-independent by construction, so
 * trials fill in parallel and any over-fill yields identical prefixes.
 * n_threads > 1 takes effect only in the OpenMP build. */
void repro_philox_fill(
    double *u, const int64_t *sent, int64_t n_active,
    const uint32_t *words, uint32_t round_ctr, int64_t n_threads)
{
    int nthr = (int)(n_threads < 1 ? 1 : n_threads);
    (void)nthr; /* unused when built without OpenMP */
    int64_t seg = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nthr) \
    firstprivate(seg) if (nthr > 1)
#endif
    for (int64_t a = 0; a < n_active; a++) {
        /* each iteration re-derives its own offset so the loop carries
         * no dependency; the serial prefix walk below amortizes to one
         * add per trial in the sequential build */
#ifdef _OPENMP
        if (nthr > 1) {
            seg = 0;
            for (int64_t b = 0; b < a; b++) seg += sent[b];
        }
#endif
        int64_t n = sent[a];
        repro_philox_fill_seg(u + seg, 0, n, round_ctr, words + 4 * a);
        seg += n;
    }
}

/* Destination gather for Δ-regular graphs: ball_key holds each ball's
 * CSR row start (client · Δ), so a block covers keys < block_end.
 * Covers the trial range [a0, a1) — the sequential entry passes the
 * whole active set, the threaded entry one chunk. */
static void phase1_regular(
    const double *u, const int32_t *ball_key, int32_t *dest,
    int64_t a0, int64_t a1, const int64_t *seg_start, const int64_t *seg_end,
    int64_t *cur, int64_t reg_deg, const int32_t *indices,
    int64_t n_clients, int64_t block_clients)
{
    for (int64_t a = a0; a < a1; a++) cur[a] = seg_start[a];
    for (int64_t v0 = 0; v0 < n_clients; v0 += block_clients) {
        int64_t block_end = (v0 + block_clients) * reg_deg;
        for (int64_t a = a0; a < a1; a++) {
            int64_t i = cur[a], e = seg_end[a];
            while (i < e && ball_key[i] < block_end) {
                int64_t off = (int64_t)(u[i] * (double)reg_deg);
                if (off > reg_deg - 1) off = reg_deg - 1;
                dest[i] = indices[ball_key[i] + off];
                i++;
            }
            cur[a] = i;
        }
    }
}

/* Irregular graphs: ball_key holds client ids; degree and row start
 * come from the (block-resident) degree/indptr tables. */
static void phase1_irregular(
    const double *u, const int32_t *ball_key, int32_t *dest,
    int64_t a0, int64_t a1, const int64_t *seg_start, const int64_t *seg_end,
    int64_t *cur, const int32_t *indptr, const int32_t *degrees,
    const int32_t *indices, int64_t n_clients, int64_t block_clients)
{
    for (int64_t a = a0; a < a1; a++) cur[a] = seg_start[a];
    for (int64_t v0 = 0; v0 < n_clients; v0 += block_clients) {
        int64_t block_end = v0 + block_clients;
        for (int64_t a = a0; a < a1; a++) {
            int64_t i = cur[a], e = seg_end[a];
            while (i < e && ball_key[i] < block_end) {
                int32_t v = ball_key[i];
                int64_t dg = degrees[v];
                int64_t off = (int64_t)(u[i] * (double)dg);
                if (off > dg - 1) off = dg - 1;
                dest[i] = indices[indptr[v] + off];
                i++;
            }
            cur[a] = i;
        }
    }
}

/* Fused philox gathers: identical traversal to phase1_regular /
 * phase1_irregular, but the uniforms are generated just in time — when
 * the walk first reaches a 512-slot chunk boundary of a trial's
 * segment, the whole chunk is bulk-generated (SIMD fill_seg) into the
 * trial's own 512-double row of the uchunk scratch and then consumed
 * from there.  Per-trial consumption is strictly sequential, so each
 * chunk is generated exactly once (the trigger sits after the
 * block-end check: a walk suspended mid-chunk resumes on the same row
 * without re-triggering, and one suspended exactly at a boundary
 * generates the next chunk on re-entry, its first visit).  uchunk is
 * n_active × 512 doubles — a quarter-megabyte at 64 trials, so the
 * uniforms never leave L2: versus a separate fill pass this removes
 * BOTH full-slab memory sweeps, while keeping bits independent of the
 * client blocking and the chunking (draws are pure counter
 * functions). */

static void phase1_regular_ph(
    const uint32_t *words, uint32_t rnd, double *uchunk,
    const int32_t *ball_key,
    int32_t *dest, int64_t a0, int64_t a1, const int64_t *seg_start,
    const int64_t *seg_end, int64_t *cur, int64_t reg_deg,
    const int32_t *indices, int64_t n_clients, int64_t block_clients)
{
    for (int64_t a = a0; a < a1; a++) cur[a] = seg_start[a];
    for (int64_t v0 = 0; v0 < n_clients; v0 += block_clients) {
        int64_t block_end = (v0 + block_clients) * reg_deg;
        for (int64_t a = a0; a < a1; a++) {
            int64_t i = cur[a], e = seg_end[a], s0 = seg_start[a];
            const uint32_t *w = words + 4 * a;
            /* with a fixed degree the chunk is generated directly as
             * int32 CSR offsets (multiply-truncate-clip folded into
             * the SIMD epilogue) — the uniform doubles never exist in
             * memory; the trial's chunk row is reused as int32 space */
            int32_t *oc = (int32_t *)(uchunk + a * REPRO_PH_CHUNK);
            while (i < e && ball_key[i] < block_end) {
                int64_t slot = i - s0;
                if ((slot & (REPRO_PH_CHUNK - 1)) == 0) {
                    int64_t len = e - i;
                    if (len > REPRO_PH_CHUNK) len = REPRO_PH_CHUNK;
                    repro_philox_fill_off(oc, slot, len, rnd, w, reg_deg);
                }
                /* ball_key is sorted, so the block's run ends at the
                 * first key >= block_end: binary-search it (bounded by
                 * the chunk so oc stays valid) and consume the run in
                 * a straight branch-free loop instead of re-testing
                 * the block condition per draw. */
                int64_t hi = i + REPRO_PH_CHUNK - (slot & (REPRO_PH_CHUNK - 1));
                if (hi > e) hi = e;
                int64_t lo = i;
                while (lo < hi) {
                    int64_t mid = (lo + hi) >> 1;
                    if (ball_key[mid] < block_end) lo = mid + 1;
                    else hi = mid;
                }
                int64_t run = lo;  /* [i, run): this block, this chunk */
                int64_t j = i;
#if defined(__AVX2__)
                for (; j + 8 <= run; j += 8) {
                    __m256i bk = _mm256_loadu_si256(
                        (const __m256i *)(ball_key + j));
                    __m256i of = _mm256_loadu_si256(
                        (const __m256i *)(oc +
                                          ((j - s0) & (REPRO_PH_CHUNK - 1))));
                    __m256i ix = _mm256_add_epi32(bk, of);
                    __m256i dv = _mm256_i32gather_epi32(
                        (const int *)indices, ix, 4);
                    _mm256_storeu_si256((__m256i *)(dest + j), dv);
                }
#endif
                for (; j < run; j++)
                    dest[j] = indices[ball_key[j] +
                                      oc[(j - s0) & (REPRO_PH_CHUNK - 1)]];
                i = run;
            }
            cur[a] = i;
        }
    }
}

static void phase1_irregular_ph(
    const uint32_t *words, uint32_t rnd, double *uchunk,
    const int32_t *ball_key,
    int32_t *dest, int64_t a0, int64_t a1, const int64_t *seg_start,
    const int64_t *seg_end, int64_t *cur, const int32_t *indptr,
    const int32_t *degrees, const int32_t *indices, int64_t n_clients,
    int64_t block_clients)
{
    for (int64_t a = a0; a < a1; a++) cur[a] = seg_start[a];
    for (int64_t v0 = 0; v0 < n_clients; v0 += block_clients) {
        int64_t block_end = v0 + block_clients;
        for (int64_t a = a0; a < a1; a++) {
            int64_t i = cur[a], e = seg_end[a], s0 = seg_start[a];
            const uint32_t *w = words + 4 * a;
            double *ub = uchunk + a * REPRO_PH_CHUNK;
            while (i < e && ball_key[i] < block_end) {
                int64_t slot = i - s0;
                if ((slot & (REPRO_PH_CHUNK - 1)) == 0) {
                    int64_t len = e - i;
                    if (len > REPRO_PH_CHUNK) len = REPRO_PH_CHUNK;
                    repro_philox_fill_seg(ub, slot, len, rnd, w);
                }
                int32_t v = ball_key[i];
                int64_t dg = degrees[v];
                int64_t off = (int64_t)(
                    ub[slot & (REPRO_PH_CHUNK - 1)] * (double)dg);
                if (off > dg - 1) off = dg - 1;
                dest[i] = indices[indptr[v] + off];
                i++;
            }
            cur[a] = i;
        }
    }
}

#define REPRO_STATE int32_t
#define REPRO_NAME(base) base##_i32
#include __FILE__
#undef REPRO_STATE
#undef REPRO_NAME

#define REPRO_STATE int64_t
#define REPRO_NAME(base) base##_i64
#include __FILE__
#undef REPRO_STATE
#undef REPRO_NAME

#else /* REPRO_KERNELS_PASS: parameterized body */

/* Phase 2 + 3 for one trial: batch counts and the accept rule on ball
 * range [i0, i1), then (when do_compact) the trial's survivors written
 * base-relative at `out` — the sequential entry packs trials
 * contiguously, the threaded entry writes into the trial's own input
 * region for the later left-pack.  Writes the accepted-ball count to
 * *acc_balls_out and returns the survivor count.  count/touched/acc
 * must arrive zeroed and are re-zeroed before returning. */
static int64_t REPRO_NAME(round_trial)(
    const int32_t *ball_key, const int32_t *dest,
    int64_t i0, int64_t i1, int64_t t,
    REPRO_STATE *state1, REPRO_STATE *state2, int64_t n_s,
    int64_t capacity, int64_t is_raes,
    REPRO_STATE *count, int32_t *touched, uint8_t *acc,
    int32_t *out, int64_t do_compact, int64_t *acc_balls_out)
{
    int64_t k = i1 - i0;
    REPRO_STATE *s1 = state1 + t * n_s;
    REPRO_STATE *s2 = state2 + t * n_s;
    int64_t acc_balls = 0, kept = 0;
    if (k >= n_s / 4) {
        /* dense: branch-free counting, full server sweep, memset
         * reset — fastest when most servers are touched anyway */
        for (int64_t i = i0; i < i1; i++)
            count[dest[i]]++;
        for (int64_t s = 0; s < n_s; s++) {
            REPRO_STATE cnt = count[s];
            if (!cnt) continue;
            REPRO_STATE c = s1[s] + cnt;
            if (!is_raes) s1[s] = c;
            if (c <= capacity) {
                s2[s] = c;
                acc[s] = 1;
                acc_balls += cnt;
            }
        }
        if (do_compact)
            for (int64_t i = i0; i < i1; i++) {
                out[kept] = ball_key[i];
                kept += !acc[dest[i]];
            }
        memset(count, 0, (size_t)n_s * sizeof(REPRO_STATE));
        memset(acc, 0, (size_t)n_s);
    } else {
        /* sparse: state traffic proportional to touched servers */
        int64_t nt = 0;
        for (int64_t i = i0; i < i1; i++) {
            int32_t s = dest[i];
            if (count[s]++ == 0) touched[nt++] = s;
        }
        for (int64_t j = 0; j < nt; j++) {
            int32_t s = touched[j];
            REPRO_STATE cnt = count[s];
            REPRO_STATE c = s1[s] + cnt;
            if (!is_raes) s1[s] = c;
            if (c <= capacity) {
                s2[s] = c;
                acc[s] = 1;
                acc_balls += cnt;
            }
        }
        if (do_compact)
            for (int64_t i = i0; i < i1; i++) {
                out[kept] = ball_key[i];
                kept += !acc[dest[i]];
            }
        for (int64_t j = 0; j < nt; j++) {
            count[touched[j]] = 0;
            acc[touched[j]] = 0;
        }
    }
    *acc_balls_out = acc_balls;
    return kept;
}

/* One full round over all active trials, sequential.  Returns the
 * number of surviving balls written to out_key (0 when do_compact is
 * 0).
 *
 * is_raes selects the accept rule; for SAER state1 is cum_received and
 * state2 is loads, for RAES both point at loads (the aliasing makes the
 * unified update reduce to each policy's exact rule). */
int64_t REPRO_NAME(repro_round)(
    const double *u, const int32_t *ball_key, int64_t n_active,
    const int64_t *trial_ids, const int64_t *sent,
    int64_t reg_deg, const int32_t *indptr, const int32_t *degrees,
    const int32_t *indices, int64_t n_clients, int64_t block_clients,
    REPRO_STATE *state1, REPRO_STATE *state2,
    int64_t n_s, int64_t capacity, int64_t is_raes,
    int32_t *dest, REPRO_STATE *count, int32_t *touched, uint8_t *acc,
    int64_t *n_acc, int32_t *out_key, int64_t do_compact,
    int64_t *cur, int64_t *seg_start, int64_t *seg_end)
{
    int64_t pos = 0;
    for (int64_t a = 0; a < n_active; a++) {
        seg_start[a] = pos;
        pos += sent[a];
        seg_end[a] = pos;
    }
    if (reg_deg > 0)
        phase1_regular(u, ball_key, dest, 0, n_active, seg_start, seg_end,
                       cur, reg_deg, indices, n_clients, block_clients);
    else
        phase1_irregular(u, ball_key, dest, 0, n_active, seg_start, seg_end,
                         cur, indptr, degrees, indices, n_clients,
                         block_clients);

    int64_t out = 0;
    for (int64_t a = 0; a < n_active; a++)
        out += REPRO_NAME(round_trial)(
            ball_key, dest, seg_start[a], seg_end[a], trial_ids[a],
            state1, state2, n_s, capacity, is_raes, count, touched, acc,
            out_key + out, do_compact, n_acc + a);
    return out;
}

/* The fused philox sequential round: repro_round with the uniforms
 * generated chunk-at-a-time in phase 1 from (words, round_ctr);
 * uchunk is n_active × REPRO_PH_CHUNK doubles of scratch the caller
 * never reads (it only ever holds the cache-hot chunks in flight).
 * words holds 4 uint32 per ACTIVE trial (indexed by position in the
 * active list, not by global trial id). */
int64_t REPRO_NAME(repro_round_ph)(
    const uint32_t *words, uint32_t round_ctr, double *uchunk,
    const int32_t *ball_key, int64_t n_active,
    const int64_t *trial_ids, const int64_t *sent,
    int64_t reg_deg, const int32_t *indptr, const int32_t *degrees,
    const int32_t *indices, int64_t n_clients, int64_t block_clients,
    REPRO_STATE *state1, REPRO_STATE *state2,
    int64_t n_s, int64_t capacity, int64_t is_raes,
    int32_t *dest, REPRO_STATE *count, int32_t *touched, uint8_t *acc,
    int64_t *n_acc, int32_t *out_key, int64_t do_compact,
    int64_t *cur, int64_t *seg_start, int64_t *seg_end)
{
    int64_t pos = 0;
    for (int64_t a = 0; a < n_active; a++) {
        seg_start[a] = pos;
        pos += sent[a];
        seg_end[a] = pos;
    }
    if (reg_deg > 0)
        phase1_regular_ph(words, round_ctr, uchunk, ball_key, dest, 0,
                          n_active, seg_start, seg_end, cur, reg_deg,
                          indices, n_clients, block_clients);
    else
        phase1_irregular_ph(words, round_ctr, uchunk, ball_key, dest, 0,
                            n_active, seg_start, seg_end, cur, indptr,
                            degrees, indices, n_clients, block_clients);

    int64_t out = 0;
    for (int64_t a = 0; a < n_active; a++)
        out += REPRO_NAME(round_trial)(
            ball_key, dest, seg_start[a], seg_end[a], trial_ids[a],
            state1, state2, n_s, capacity, is_raes, count, touched, acc,
            out_key + out, do_compact, n_acc + a);
    return out;
}

/* The trial-partitioned threaded round.  chunk_starts has n_chunks + 1
 * entries partitioning [0, n_active) (chunks may be empty); chunk c
 * runs phases 1-3 for its trials on scratch row c of counts/toucheds/
 * accs (each n_chunks × n_s, C-contiguous) and records each trial's
 * survivor count in n_keep.  Survivors are first written into the
 * trial's own input region of out_key; the prefix-sum epilogue then
 * copies each run to its packed offset in ball_key (dead input, so the
 * per-trial copies are disjoint and parallel) — callers read survivors
 * from ball_key and must not swap their ping-pong buffers.
 * Deterministic for any n_chunks / n_threads by construction. */
int64_t REPRO_NAME(repro_round_mt)(
    const double *u, int32_t *ball_key, int64_t n_active,
    const int64_t *trial_ids, const int64_t *sent,
    int64_t reg_deg, const int32_t *indptr, const int32_t *degrees,
    const int32_t *indices, int64_t n_clients, int64_t block_clients,
    REPRO_STATE *state1, REPRO_STATE *state2,
    int64_t n_s, int64_t capacity, int64_t is_raes,
    int32_t *dest, REPRO_STATE *counts, int32_t *toucheds, uint8_t *accs,
    int64_t *n_acc, int32_t *out_key, int64_t do_compact,
    int64_t *cur, int64_t *seg_start, int64_t *seg_end,
    int64_t n_chunks, const int64_t *chunk_starts, int64_t *n_keep,
    int64_t n_threads)
{
    int64_t pos = 0;
    for (int64_t a = 0; a < n_active; a++) {
        seg_start[a] = pos;
        pos += sent[a];
        seg_end[a] = pos;
    }

    int nthr = (int)(n_threads < 1 ? 1 : n_threads);
    (void)nthr; /* unused when built without OpenMP */
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nthr)
#endif
    for (int64_t ci = 0; ci < n_chunks; ci++) {
        int64_t a0 = chunk_starts[ci], a1 = chunk_starts[ci + 1];
        if (a0 >= a1) continue;
        REPRO_STATE *count = counts + ci * n_s;
        int32_t *touched = toucheds + ci * n_s;
        uint8_t *acc = accs + ci * n_s;
        if (reg_deg > 0)
            phase1_regular(u, ball_key, dest, a0, a1, seg_start, seg_end,
                           cur, reg_deg, indices, n_clients, block_clients);
        else
            phase1_irregular(u, ball_key, dest, a0, a1, seg_start, seg_end,
                             cur, indptr, degrees, indices, n_clients,
                             block_clients);
        for (int64_t a = a0; a < a1; a++)
            n_keep[a] = REPRO_NAME(round_trial)(
                ball_key, dest, seg_start[a], seg_end[a], trial_ids[a],
                state1, state2, n_s, capacity, is_raes, count, touched, acc,
                out_key + seg_start[a], do_compact, n_acc + a);
    }

    /* prefix-sum left-pack: offsets first (cur is dead after phase 1),
     * then each trial's survivor run copies out_key -> ball_key at its
     * packed offset — disjoint arrays, disjoint destinations, so the
     * copies run in parallel and the bits cannot depend on scheduling */
    int64_t out = 0;
    for (int64_t a = 0; a < n_active; a++) {
        cur[a] = out;
        out += n_keep[a];
    }
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nthr)
#endif
    for (int64_t a = 0; a < n_active; a++)
        if (n_keep[a])
            memcpy(ball_key + cur[a], out_key + seg_start[a],
                   (size_t)n_keep[a] * sizeof(int32_t));
    return out;
}

/* The fused philox threaded round: repro_round_mt with inline uniform
 * generation (see repro_round_ph).  Same packed-into-ball_key contract. */
int64_t REPRO_NAME(repro_round_ph_mt)(
    const uint32_t *words, uint32_t round_ctr, double *uchunk,
    int32_t *ball_key, int64_t n_active,
    const int64_t *trial_ids, const int64_t *sent,
    int64_t reg_deg, const int32_t *indptr, const int32_t *degrees,
    const int32_t *indices, int64_t n_clients, int64_t block_clients,
    REPRO_STATE *state1, REPRO_STATE *state2,
    int64_t n_s, int64_t capacity, int64_t is_raes,
    int32_t *dest, REPRO_STATE *counts, int32_t *toucheds, uint8_t *accs,
    int64_t *n_acc, int32_t *out_key, int64_t do_compact,
    int64_t *cur, int64_t *seg_start, int64_t *seg_end,
    int64_t n_chunks, const int64_t *chunk_starts, int64_t *n_keep,
    int64_t n_threads)
{
    int64_t pos = 0;
    for (int64_t a = 0; a < n_active; a++) {
        seg_start[a] = pos;
        pos += sent[a];
        seg_end[a] = pos;
    }

    int nthr = (int)(n_threads < 1 ? 1 : n_threads);
    (void)nthr;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nthr)
#endif
    for (int64_t ci = 0; ci < n_chunks; ci++) {
        int64_t a0 = chunk_starts[ci], a1 = chunk_starts[ci + 1];
        if (a0 >= a1) continue;
        REPRO_STATE *count = counts + ci * n_s;
        int32_t *touched = toucheds + ci * n_s;
        uint8_t *acc = accs + ci * n_s;
        if (reg_deg > 0)
            phase1_regular_ph(words, round_ctr, uchunk, ball_key, dest,
                              a0, a1, seg_start, seg_end, cur, reg_deg,
                              indices, n_clients, block_clients);
        else
            phase1_irregular_ph(words, round_ctr, uchunk, ball_key, dest,
                                a0, a1, seg_start, seg_end, cur, indptr,
                                degrees, indices, n_clients,
                                block_clients);
        for (int64_t a = a0; a < a1; a++)
            n_keep[a] = REPRO_NAME(round_trial)(
                ball_key, dest, seg_start[a], seg_end[a], trial_ids[a],
                state1, state2, n_s, capacity, is_raes, count, touched, acc,
                out_key + seg_start[a], do_compact, n_acc + a);
    }

    int64_t out = 0;
    for (int64_t a = 0; a < n_active; a++) {
        cur[a] = out;
        out += n_keep[a];
    }
#ifdef _OPENMP
#pragma omp parallel for schedule(static) num_threads(nthr)
#endif
    for (int64_t a = 0; a < n_active; a++)
        if (n_keep[a])
            memcpy(ball_key + cur[a], out_key + seg_start[a],
                   (size_t)n_keep[a] * sizeof(int32_t));
    return out;
}

#endif /* REPRO_KERNELS_PASS */
