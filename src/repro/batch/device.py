"""Device twin of the fused philox round: one algorithm, numpy or cupy.

The ``cupy`` kernel gate runs the whole per-round chain — counter-based
uniform generation, destination gather, segmented count, accept rule,
and survivor compaction — as array operations on whatever module ``xp``
is passed in.  With ``xp = cupy`` every array lives on the GPU and the
only per-round host traffic is the per-trial accepted-ball counts; with
``xp = numpy`` the identical code runs on the CPU, which is how CI
parity-pins the GPU semantics against the standard kernel gates without
a GPU (see ``tests/test_philox.py``).

Why philox-only: the counter lineage makes every uniform a pure
function of ``(trial words, round, slot)``, so the device needs no
per-trial generator state and no host→device stream traffic — and any
chunking of the work produces identical bits.  The PCG64 lineage has
neither property, which is why the engine rejects ``kernel="cupy"``
under it outright.

Bit-exactness: the uniform doubles are ``((hi << 32 | lo) >> 11) ·
2⁻⁵³`` exactly as in :func:`repro.rng.philox_uniforms`; the destination
offset is the same single f64 multiply-and-truncate as every other
kernel; counts and the accept rule are integer; compaction is an
order-preserving boolean mask.  Every step is therefore bit-identical
to the CPU gates by construction, and the parity suite asserts it.
"""

from __future__ import annotations

import numpy as np

from .policies import BatchedSaerPolicy

__all__ = ["philox_uniforms_device", "run_rounds_device"]

_M0 = 0xD2511F53
_M1 = 0xCD9E8D57
_W0 = 0x9E3779B9
_W1 = 0xBB67AE85
_SCALE_53 = 1.0 / 9007199254740992.0  # 2^-53


def _philox4x32_10_xp(xp, c0, c1, c2, c3, k0, k1):
    """Vectorized Philox4x32-10 over per-lane counters *and* keys.

    All inputs are uint64 arrays (or broadcastable scalars) holding
    32-bit values; returns the four 32-bit output words as uint64
    arrays.  Working in uint64 keeps the 32×32→64 products exact with
    no per-round dtype copies (same trick as :func:`repro.rng.philox4x32`,
    but with per-lane keys so each ball can belong to a different trial).
    """
    m0 = xp.uint64(_M0)
    m1 = xp.uint64(_M1)
    w0 = xp.uint64(_W0)
    w1 = xp.uint64(_W1)
    mask = xp.uint64(0xFFFFFFFF)
    s32 = xp.uint64(32)
    k0 = k0 + xp.uint64(0)  # private copies: keys mutate across rounds
    k1 = k1 + xp.uint64(0)
    for _ in range(10):
        p0 = c0 * m0
        p1 = c2 * m1
        c0 = ((p1 >> s32) ^ c1 ^ k0) & mask
        c1 = p1 & mask
        c2 = ((p0 >> s32) ^ c3 ^ k1) & mask
        c3 = p0 & mask
        k0 = (k0 + w0) & mask
        k1 = (k1 + w1) & mask
    return c0, c1, c2, c3


def philox_uniforms_device(xp, words, seg_id, slot, round_ctr):
    """Per-ball uniforms from counters, fully vectorized on ``xp``.

    ``words`` is the ``[A, 4]`` uint32 per-active-trial word table,
    ``seg_id`` maps each ball to its row, ``slot`` is the ball's index
    within its trial's segment, and ``round_ctr`` the engine round.
    Ball ``(a, s)`` reads counter ``(s >> 1, round_ctr, c2, c3)`` under
    key ``(k0, k1)`` and takes the high or low double by slot parity —
    exactly the stream of :func:`repro.rng.philox_uniforms`, so any
    subset of balls (chunking, survivors of earlier rounds) sees
    identical bits.
    """
    w = words[seg_id].astype(xp.uint64)
    one = xp.uint64(1)
    blk = slot.astype(xp.uint64) >> one
    rnd = xp.uint64(np.uint32(round_ctr))
    x0, x1, x2, x3 = _philox4x32_10_xp(
        xp, blk, rnd, w[:, 2], w[:, 3], w[:, 0], w[:, 1]
    )
    s32 = xp.uint64(32)
    s11 = xp.uint64(11)
    d0 = (((x0 << s32) | x1) >> s11).astype(xp.float64) * _SCALE_53
    d1 = (((x2 << s32) | x3) >> s11).astype(xp.float64) * _SCALE_53
    return xp.where((slot & one.astype(slot.dtype)) == 0, d0, d1)


def run_rounds_device(
    mod, graph, pol, dem, total_balls, n_c, n_s, cap, R, capacity, words,
    state_dtype,
):
    """The round loop on device arrays; the ``cupy`` gate's engine body.

    ``mod`` is the array module (cupy, numpy, or a test stand-in with a
    numpy-compatible surface); host↔device traffic per round is one
    per-trial ``n_acc`` vector down and the active/sent bookkeeping up.
    Returns the same ``(rounds, work, assigned, alive_total)`` host
    arrays as the CPU round loops, with the policy state written back.
    """
    xp = mod
    asnumpy = getattr(mod, "asnumpy", None) or (lambda a: np.asarray(a))
    is_saer = isinstance(pol, BatchedSaerPolicy)

    indptr = xp.asarray(np.asarray(graph.client_indptr, dtype=np.int64))
    indices = xp.asarray(np.asarray(graph.client_indices, dtype=np.int64))
    degrees = xp.asarray(np.diff(np.asarray(graph.client_indptr, dtype=np.int64)))
    words_d = xp.asarray(np.ascontiguousarray(words, dtype=np.uint32))
    d_loads = xp.asarray(pol.loads)
    d_cum = xp.asarray(pol.cum_received) if is_saer else d_loads

    rounds = np.zeros(R, dtype=np.int64)
    work = np.zeros(R, dtype=np.int64)
    assigned = np.zeros(R, dtype=np.int64)
    alive_total = np.full(R, total_balls, dtype=np.int64)
    if total_balls and R:
        active = np.arange(R, dtype=np.int64)
        sent = np.full(R, total_balls, dtype=np.int64)
    else:
        active = np.empty(0, dtype=np.int64)
        sent = np.empty(0, dtype=np.int64)

    template = xp.repeat(
        xp.arange(n_c, dtype=xp.int64), xp.asarray(np.asarray(dem, dtype=np.int64))
    )
    ball_client = xp.tile(template, R) if R else template[:0]

    round_no = 0
    cap_i = xp.int64(capacity)
    while active.size:
        round_no += 1
        A = active.size
        rounds[active] += 1
        work[active] += 2 * sent

        active_d = xp.asarray(active)
        sent_d = xp.asarray(sent)
        seg_id = xp.repeat(xp.arange(A, dtype=xp.int64), sent_d)
        B = int(ball_client.shape[0])
        starts = xp.zeros(A, dtype=xp.int64)
        if A > 1:
            starts[1:] = xp.cumsum(sent_d[:-1])
        slot = xp.arange(B, dtype=xp.int64) - xp.repeat(starts, sent_d)

        u = philox_uniforms_device(xp, words_d[active_d], seg_id, slot, round_no)
        deg = degrees[ball_client]
        off = (u * deg.astype(xp.float64)).astype(xp.int64)
        off = xp.minimum(off, deg - xp.int64(1))
        dest = indices[indptr[ball_client] + off]

        keys = seg_id * xp.int64(n_s) + dest
        cnt = xp.bincount(keys, minlength=A * n_s).reshape(A, n_s)
        cnt = cnt.astype(state_dtype)
        touched = cnt > 0
        if is_saer:
            cum = d_cum[active_d] + cnt
            accept = touched & (cum <= cap_i)
            d_cum[active_d] = cum
            d_loads[active_d] = xp.where(accept, cum, d_loads[active_d])
        else:
            loads_rows = d_loads[active_d]
            cum = loads_rows + cnt
            accept = touched & (cum <= cap_i)
            d_loads[active_d] = xp.where(accept, cum, loads_rows)
        n_acc_d = (cnt * accept).sum(axis=1, dtype=xp.int64)
        n_acc = asnumpy(n_acc_d).astype(np.int64)

        assigned[active] += n_acc
        alive_total[active] -= n_acc
        sent = sent - n_acc
        if round_no >= cap:
            break
        keep = ~(accept.reshape(-1)[keys])
        ball_client = ball_client[keep]
        still = sent > 0
        if not still.all():
            active = active[still]
            sent = sent[still]

    pol.loads = asnumpy(d_loads).astype(pol.loads.dtype, copy=False)
    if is_saer:
        pol.cum_received = asnumpy(d_cum).astype(pol.cum_received.dtype, copy=False)
    return rounds, work, assigned, alive_total
