"""Round kernels for the batched engine: numpy reference + compiled paths.

The batched engine's per-round hot loop — per-trial uniform fill, the
Phase-1 destination gather, the Phase-2 count/decide, and survivor
compaction — lives here behind a small registry so the same engine can
run it three ways:

``numpy``
    The vectorized reference implementation (the default, and the
    bit-stability baseline).  The engine's own round loop *is* this
    kernel; :mod:`repro.batch.engine` asks the registry only whether to
    take the compiled fast path.
``cext``
    A fused, cache-blocked C implementation of the whole
    gather→count→decide→compact chain (``_kernels.c``), compiled on
    demand with the system C compiler and loaded via :mod:`ctypes`.
    One call per round covers all active trials; the CSR adjacency
    streams through cache once per round instead of once per trial.
``numba``
    The same loop nest as the C kernel, JIT-compiled by numba when it
    is installed.  :func:`_round_loops` is written in the nopython
    subset and doubles as the interpreted specification of the
    compiled algorithm.
``python``
    :func:`_round_loops` executed by the interpreter — far too slow
    for real workloads, but it lets the parity suite exercise the
    exact compiled algorithm on any install (no numba, no compiler).

Every implementation is **bit-identical** to the numpy path: same
uniforms consumed in the same canonical (trial-major, client-major)
order, same accept decisions, same policy state, same survivor order.
``tests/test_kernels.py`` asserts this per trial.

Selection is a runtime gate: the ``kernel=`` argument to
:func:`repro.batch.run_trials_batched` wins, else the ``REPRO_KERNELS``
environment variable, else ``numpy``.  Requesting an unavailable
implementation (no numba, no C compiler) warns once and falls back to
numpy — minimal installs never break, they just don't accelerate.

This module also owns :class:`EngineBuffers`, the named grow-only
scratch pool that persistent sweep workers keep alive across grid
points (see :func:`repro.parallel.pool.worker_state`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "KERNELS_ENV",
    "DEFAULT_KERNEL",
    "EngineBuffers",
    "available_kernels",
    "resolve_kernel",
    "fill_uniforms",
]

KERNELS_ENV = "REPRO_KERNELS"
CACHE_ENV = "REPRO_KERNEL_CACHE"
DEFAULT_KERNEL = "numpy"

# Read-ahead block: uniforms are pre-drawn per trial in slabs of this
# many doubles; rounds needing more draw straight into the staging
# array (identical stream either way — numpy Generators produce the
# same values regardless of how draws are batched into calls).
RNG_BLOCK = 8192

# Phase-1 blocking: aim the per-block CSR row working set at a
# fraction of L2 (measured sweet spot on the benchmark box; flat
# within 2x either side).
_BLOCK_BYTES = 128 << 10


# ---------------------------------------------------------------------------
# Persistent scratch
# ---------------------------------------------------------------------------


class EngineBuffers:
    """Named, grow-only scratch arrays reused across engine calls.

    A worker that sweeps many grid points with one :class:`EngineBuffers`
    pays allocation (and first-touch page faults) once instead of per
    point: ``get`` hands back a view of a kept backing array, growing or
    re-typing it only when a request no longer fits.  Contents are
    scratch — every consumer fully overwrites what it reads — except
    slots requested with ``zero=True``, which are cleared on every call
    (cheap relative to the round loop, and it keeps correctness
    independent of what a previous, possibly interrupted, run left
    behind).
    """

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}

    def get(self, name: str, shape, dtype, *, zero: bool = False) -> np.ndarray:
        shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        n = int(np.prod(shape)) if shape else 1
        dtype = np.dtype(dtype)
        arr = self._arrays.get(name)
        if arr is None or arr.dtype != dtype or arr.size < n:
            arr = np.empty(max(n, 1), dtype=dtype)
            self._arrays[name] = arr
        view = arr[:n].reshape(shape)
        if zero:
            view[...] = 0
        return view

    @property
    def nbytes(self) -> int:
        """Total bytes currently held (diagnostic)."""
        return sum(a.nbytes for a in self._arrays.values())

    def clear(self) -> None:
        self._arrays.clear()


# ---------------------------------------------------------------------------
# Shared Phase-0: per-trial uniform fill with fixed-block read-ahead
# ---------------------------------------------------------------------------


def fill_uniforms(
    u: np.ndarray,
    active: Sequence[int],
    sent: Sequence[int],
    gens: list,
    slab: np.ndarray,
    slab_pos: np.ndarray,
) -> None:
    """Write each active trial's uniforms into ``u`` in canonical order.

    Trial ``t`` consumes exactly the stream ``gens[t]`` would produce
    round by round in the reference engine: uniforms are served from a
    per-trial read-ahead row of ``slab`` (refilled ``RNG_BLOCK`` at a
    time), and any request at least a full block long is drawn straight
    into the destination segment.  Exact by construction — numpy
    Generators yield identical values no matter how draws are batched
    into calls.

    ``slab_pos[t]`` is the per-trial read position (``slab.shape[1]``
    means empty); callers initialize it to "empty" once per engine run.
    """
    blk = slab.shape[1]
    pos = 0
    for t, k in zip(active, sent):
        seg = u[pos : pos + k]
        p = int(slab_pos[t])
        have = blk - p
        if k <= have:
            seg[:] = slab[t, p : p + k]
            slab_pos[t] = p + k
        else:
            if have:
                seg[:have] = slab[t, p:]
            need = k - have
            if need >= blk:
                gens[t].random(out=seg[have:])
                slab_pos[t] = blk
            else:
                gens[t].random(out=slab[t])
                seg[have:] = slab[t, :need]
                slab_pos[t] = need
        pos += k


# ---------------------------------------------------------------------------
# The compiled algorithm, as interpreted loops (numba's source of truth)
# ---------------------------------------------------------------------------


def _round_loops(
    u,
    ball_key,
    trial_ids,
    sent,
    reg_deg,
    indptr,
    degrees,
    indices,
    n_clients,
    block_clients,
    state1,
    state2,
    capacity,
    is_raes,
    dest,
    count,
    touched,
    acc,
    n_acc,
    out_key,
    do_compact,
    cur,
    seg_start,
    seg_end,
):
    """One round over all active trials; see ``_kernels.c`` for the spec.

    ``state1``/``state2`` are the policy's ``[R, n_servers]`` matrices:
    (cum_received, loads) for SAER, (loads, loads) for RAES — the
    aliasing makes the unified update below reduce to each policy's
    exact rule.  Returns the survivor count written to ``out_key``.
    """
    n_active = trial_ids.shape[0]
    pos = 0
    for a in range(n_active):
        seg_start[a] = pos
        pos += sent[a]
        seg_end[a] = pos
        cur[a] = seg_start[a]
    # phase 1: client-blocked destination gather
    v0 = 0
    while v0 < n_clients:
        if reg_deg > 0:
            block_end = (v0 + block_clients) * reg_deg
        else:
            block_end = v0 + block_clients
        for a in range(n_active):
            i = cur[a]
            e = seg_end[a]
            while i < e and ball_key[i] < block_end:
                if reg_deg > 0:
                    dg = reg_deg
                    row = np.int64(ball_key[i])
                else:
                    v = ball_key[i]
                    dg = np.int64(degrees[v])
                    row = np.int64(indptr[v])
                off = np.int64(u[i] * dg)
                if off > dg - 1:
                    off = dg - 1
                dest[i] = indices[row + off]
                i += 1
            cur[a] = i
        v0 += block_clients
    # phase 2 + 3 per trial: count, decide, compact
    out = 0
    n_s = state1.shape[1]
    for a in range(n_active):
        t = trial_ids[a]
        acc_balls = 0
        if sent[a] >= n_s // 4:
            for i in range(seg_start[a], seg_end[a]):
                count[dest[i]] += 1
            for s in range(n_s):
                cnt = count[s]
                if cnt == 0:
                    continue
                c = state1[t, s] + cnt
                if not is_raes:
                    state1[t, s] = c
                if c <= capacity:
                    state2[t, s] = c
                    acc[s] = 1
                    acc_balls += cnt
            n_acc[a] = acc_balls
            if do_compact:
                for i in range(seg_start[a], seg_end[a]):
                    out_key[out] = ball_key[i]
                    if acc[dest[i]] == 0:
                        out += 1
            count[:n_s] = 0
            acc[:n_s] = 0
        else:
            nt = 0
            for i in range(seg_start[a], seg_end[a]):
                s = dest[i]
                if count[s] == 0:
                    touched[nt] = s
                    nt += 1
                count[s] += 1
            for j in range(nt):
                s = touched[j]
                cnt = count[s]
                c = state1[t, s] + cnt
                if not is_raes:
                    state1[t, s] = c
                if c <= capacity:
                    state2[t, s] = c
                    acc[s] = 1
                    acc_balls += cnt
            n_acc[a] = acc_balls
            if do_compact:
                for i in range(seg_start[a], seg_end[a]):
                    out_key[out] = ball_key[i]
                    if acc[dest[i]] == 0:
                        out += 1
            for j in range(nt):
                count[touched[j]] = 0
                acc[touched[j]] = 0
    return out


# ---------------------------------------------------------------------------
# Kernel implementations
# ---------------------------------------------------------------------------


class Kernel:
    """A round-kernel implementation; ``compiled`` marks fused-loop paths."""

    name: str = "abstract"
    compiled: bool = False

    def available(self) -> bool:
        return True

    def round_fn(self) -> Callable:
        """The per-round entry with the :func:`_round_loops` signature."""
        raise NotImplementedError(f"{self.name} has no fused round entry")


class NumpyKernel(Kernel):
    """Marker for the engine's vectorized reference loop."""

    name = "numpy"


class PythonKernel(Kernel):
    """Interpreted compiled-algorithm loops (parity testing / debugging)."""

    name = "python"
    compiled = True

    def round_fn(self) -> Callable:
        return _round_loops


class NumbaKernel(Kernel):
    """numba-jitted :func:`_round_loops`; unavailable without numba."""

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        self._jitted: Callable | None = None

    def available(self) -> bool:
        try:
            import numba  # noqa: F401
        except ImportError:
            return False
        return True

    def round_fn(self) -> Callable:
        if self._jitted is None:
            import numba

            self._jitted = numba.njit(cache=False, fastmath=False)(_round_loops)
        return self._jitted


class CextKernel(Kernel):
    """ctypes-loaded C implementation, compiled on demand from ``_kernels.c``."""

    name = "cext"
    compiled = True

    def __init__(self) -> None:
        self._lib = None
        self._failed = False
        self._lock = threading.Lock()

    def _load(self):
        with self._lock:
            if self._lib is None and not self._failed:
                try:
                    self._lib = _load_cext_library()
                except Exception as exc:  # compiler missing, sandboxed, ...
                    self._failed = True
                    self._error = exc
        return self._lib

    def available(self) -> bool:
        return self._load() is not None

    def round_fn(self) -> Callable:
        lib = self._load()
        if lib is None:
            raise RuntimeError(f"cext kernel unavailable: {self._error}")

        def call(u, ball_key, trial_ids, sent, reg_deg, indptr, degrees,
                 indices, n_clients, block_clients, state1, state2, capacity,
                 is_raes, dest, count, touched, acc, n_acc, out_key,
                 do_compact, cur, seg_start, seg_end):
            fn = lib.repro_round_i64 if state1.dtype == np.int64 else lib.repro_round_i32
            return fn(
                u, ball_key, trial_ids.shape[0], trial_ids, sent,
                reg_deg, indptr, degrees, indices, n_clients, block_clients,
                state1, state2, state1.shape[1], capacity, is_raes,
                dest, count, touched, acc, n_acc, out_key, do_compact,
                cur, seg_start, seg_end,
            )

        return call


def _cc_candidates() -> list[str]:
    env = os.environ.get("CC")
    return [env] if env else ["cc", "gcc", "clang"]


def _load_cext_library():
    """Compile (once, cached by source hash) and load ``_kernels.c``."""
    src = Path(__file__).with_name("_kernels.c")
    source = src.read_bytes()
    tag = hashlib.sha256(source).hexdigest()[:16]
    cache_dir = os.environ.get(CACHE_ENV)
    if cache_dir:
        cache = Path(cache_dir)
    else:
        uid = os.getuid() if hasattr(os, "getuid") else "u"
        cache = Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"
    cache.mkdir(parents=True, exist_ok=True)
    so = cache / f"_repro_kernels_{tag}.so"
    if not so.exists():
        last_err: Exception | None = None
        for cc in _cc_candidates():
            tmp = so.with_name(f"{so.stem}.{os.getpid()}.tmp.so")
            cmd = [cc, "-O3", "-shared", "-fPIC", "-o", str(tmp), str(src)]
            try:
                subprocess.run(
                    cmd, check=True, capture_output=True, timeout=120
                )
                os.replace(tmp, so)  # atomic: concurrent workers race safely
                last_err = None
                break
            except Exception as exc:
                last_err = exc
                tmp.unlink(missing_ok=True)
        if last_err is not None:
            raise RuntimeError(f"C kernel build failed: {last_err}")
    lib = ctypes.CDLL(str(so))
    _declare(lib.repro_round_i32, np.int32)
    _declare(lib.repro_round_i64, np.int64)
    return lib


def _declare(fn, state_dtype) -> None:
    ptr = np.ctypeslib.ndpointer
    c = dict(flags="C_CONTIGUOUS")
    i64 = ctypes.c_int64
    fn.restype = i64
    fn.argtypes = [
        ptr(np.float64, **c),   # u
        ptr(np.int32, **c),     # ball_key
        i64,                    # n_active
        ptr(np.int64, **c),     # trial_ids
        ptr(np.int64, **c),     # sent
        i64,                    # reg_deg
        ptr(np.int32, **c),     # indptr
        ptr(np.int32, **c),     # degrees
        ptr(np.int32, **c),     # indices
        i64,                    # n_clients
        i64,                    # block_clients
        ptr(state_dtype, **c),  # state1
        ptr(state_dtype, **c),  # state2
        i64,                    # n_s
        i64,                    # capacity
        i64,                    # is_raes
        ptr(np.int32, **c),     # dest
        ptr(state_dtype, **c),  # count
        ptr(np.int32, **c),     # touched
        ptr(np.uint8, **c),     # acc
        ptr(np.int64, **c),     # n_acc
        ptr(np.int32, **c),     # out_key
        i64,                    # do_compact
        ptr(np.int64, **c),     # cur
        ptr(np.int64, **c),     # seg_start
        ptr(np.int64, **c),     # seg_end
    ]


# ---------------------------------------------------------------------------
# Registry / gate
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Kernel] = {
    "numpy": NumpyKernel(),
    "python": PythonKernel(),
    "numba": NumbaKernel(),
    "cext": CextKernel(),
}

_warned: set[str] = set()


def available_kernels() -> list[str]:
    """Names of the kernel implementations usable on this install."""
    return [name for name, k in _REGISTRY.items() if k.available()]


def resolve_kernel(name: str | None = None) -> Kernel:
    """Resolve the runtime gate: argument > ``REPRO_KERNELS`` > numpy.

    Unknown names raise; known-but-unavailable ones (numba not
    installed, no C compiler) warn once per process and fall back to
    the numpy reference so minimal installs keep working.
    """
    requested = name or os.environ.get(KERNELS_ENV) or DEFAULT_KERNEL
    requested = requested.strip().lower()
    try:
        kern = _REGISTRY[requested]
    except KeyError:
        raise ValueError(
            f"unknown kernel {requested!r}; known: {sorted(_REGISTRY)}"
        ) from None
    if not kern.available():
        if requested not in _warned:
            _warned.add(requested)
            warnings.warn(
                f"repro kernel {requested!r} is unavailable on this install; "
                f"falling back to the numpy reference path",
                RuntimeWarning,
                stacklevel=2,
            )
        return _REGISTRY["numpy"]
    return kern


def block_clients_for(n_clients: int, n_edges: int) -> int:
    """Phase-1 block size: keep a block's CSR rows ~L2-resident."""
    if n_clients <= 0 or n_edges <= 0:
        return max(1, n_clients)
    avg_row_bytes = max(1, (n_edges * 4) // n_clients)
    return max(8, min(n_clients, _BLOCK_BYTES // avg_row_bytes))
