"""Round kernels for the batched engine: numpy reference + compiled paths.

The batched engine's per-round hot loop — per-trial uniform fill, the
Phase-1 destination gather, the Phase-2 count/decide, and survivor
compaction — lives here behind a small registry so the same engine can
run it three ways:

``numpy``
    The vectorized reference implementation (the default, and the
    bit-stability baseline).  The engine's own round loop *is* this
    kernel; :mod:`repro.batch.engine` asks the registry only whether to
    take the compiled fast path.
``cext``
    A fused, cache-blocked C implementation of the whole
    gather→count→decide→compact chain (``_kernels.c``), compiled on
    demand with the system C compiler and loaded via :mod:`ctypes`.
    One call per round covers all active trials; the CSR adjacency
    streams through cache once per round instead of once per trial.
``numba``
    The same loop nest as the C kernel, JIT-compiled by numba when it
    is installed.  :func:`_round_loops` is written in the nopython
    subset and doubles as the interpreted specification of the
    compiled algorithm.
``python``
    :func:`_round_loops` executed by the interpreter — far too slow
    for real workloads, but it lets the parity suite exercise the
    exact compiled algorithm on any install (no numba, no compiler).
``cupy``
    The GPU twin of the fused philox round (:mod:`repro.batch.device`),
    valid only with the counter-based ``philox`` seed lineage; without
    an importable cupy and a device it falls back like any other gate.

Every implementation is **bit-identical** to the numpy path: same
uniforms consumed in the same canonical (trial-major, client-major)
order, same accept decisions, same policy state, same survivor order.
``tests/test_kernels.py`` asserts this per trial.

Selection is a runtime gate: the ``kernel=`` argument to
:func:`repro.batch.run_trials_batched` wins, else the ``REPRO_KERNELS``
environment variable, else ``numpy``.  Requesting an unavailable
implementation (no numba, no C compiler) warns once and falls back to
numpy — minimal installs never break, they just don't accelerate.

Threading
---------
Every compiled implementation also has a **trial-partitioned threaded
twin**: the active trials are split into explicit chunks, each chunk
runs the whole gather→count→decide→compact chain independently on its
own scratch row, and a deterministic left-pack restores the canonical
(trial-major, client-major) survivor layout.  Because chunk boundaries,
per-trial uniform streams, and output offsets are all data — never
scheduling — results are **byte-identical for every thread count**,
including 1.  The thread budget is its own gate:
``threads=`` argument > ``REPRO_KERNEL_THREADS`` environment variable >
1 (:func:`resolve_threads`); process-pool workers reset the environment
half to 1 so threads never multiply into process oversubscription (see
:mod:`repro.parallel.pool`).  The C twin comes from an OpenMP build of
``_kernels.c`` (compile-probed; a failed probe warns once and falls
back to the sequential object), the numba twin is a
``numba.prange`` jit of the same chunked loops, and the ``python``
kernel runs those loops interpreted — so the chunked algorithm is
parity-testable on any install.

This module also owns :class:`EngineBuffers`, the named grow-only
scratch pool that persistent sweep workers keep alive across grid
points (see :func:`repro.parallel.pool.worker_state`).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

# The chunk loop of _round_loops_mt iterates `prange`.  Interpreted it
# is plain range; NumbaKernel rebinds it to numba.prange just before
# jitting (numba resolves globals at compile time), so importing this
# module never pays numba's import cost.  numba.prange degrades to
# range when called from the interpreter, so the rebind never changes
# interpreted behaviour either.
prange = range

__all__ = [
    "KERNELS_ENV",
    "THREADS_ENV",
    "SEED_MODE_ENV",
    "DEFAULT_KERNEL",
    "SEED_MODES",
    "EngineBuffers",
    "available_kernels",
    "resolve_kernel",
    "resolve_threads",
    "resolve_seed_mode",
    "trial_chunks",
    "fill_uniforms",
    "philox_fill",
]

KERNELS_ENV = "REPRO_KERNELS"
THREADS_ENV = "REPRO_KERNEL_THREADS"
SEED_MODE_ENV = "REPRO_SEED_MODE"

# Must mirror REPRO_PH_CHUNK in _kernels.c: the fused philox entries
# take an [n_active, PHILOX_CHUNK] float64 scratch (one cache-resident
# chunk row per trial; never read by the caller).
PHILOX_CHUNK = 512
CACHE_ENV = "REPRO_KERNEL_CACHE"
DEFAULT_KERNEL = "numpy"

# Engine-level seed lineages.  "pair" and "direct" are synonyms here —
# both mean per-trial PCG64 Generators consumed through fill_uniforms
# (the distinction between them is a plan-level seed-derivation choice,
# see repro.plan) — while "philox" switches the whole uniform supply to
# the counter-based Philox4x32 lineage of repro.rng: a different
# deterministic stream with its own goldens, NOT bit-parity with PCG64.
SEED_MODES = ("pair", "direct", "philox")

# Read-ahead block: uniforms are pre-drawn per trial in slabs of this
# many doubles; rounds needing more draw straight into the staging
# array (identical stream either way — numpy Generators produce the
# same values regardless of how draws are batched into calls).
RNG_BLOCK = 8192

# Phase-1 blocking: aim the per-block CSR row working set at a
# fraction of L2 (measured sweet spot on the benchmark box; flat
# within 2x either side).
_BLOCK_BYTES = 128 << 10


# ---------------------------------------------------------------------------
# Persistent scratch
# ---------------------------------------------------------------------------


class EngineBuffers:
    """Named, grow-only scratch arrays reused across engine calls.

    A worker that sweeps many grid points with one :class:`EngineBuffers`
    pays allocation (and first-touch page faults) once instead of per
    point: ``get`` hands back a view of a kept backing array, growing or
    re-typing it only when a request no longer fits.  Contents are
    scratch — every consumer fully overwrites what it reads — except
    slots requested with ``zero=True``, which are cleared on every call
    (cheap relative to the round loop, and it keeps correctness
    independent of what a previous, possibly interrupted, run left
    behind).
    """

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}

    def get(self, name: str, shape, dtype, *, zero: bool = False) -> np.ndarray:
        shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        n = int(np.prod(shape)) if shape else 1
        dtype = np.dtype(dtype)
        arr = self._arrays.get(name)
        if arr is None or arr.dtype != dtype or arr.size < n:
            arr = np.empty(max(n, 1), dtype=dtype)
            self._arrays[name] = arr
        view = arr[:n].reshape(shape)
        if zero:
            view[...] = 0
        return view

    @property
    def nbytes(self) -> int:
        """Total bytes currently held (diagnostic)."""
        return sum(a.nbytes for a in self._arrays.values())

    def clear(self) -> None:
        self._arrays.clear()


# ---------------------------------------------------------------------------
# Shared Phase-0: per-trial uniform fill with fixed-block read-ahead
# ---------------------------------------------------------------------------


def fill_uniforms(
    u: np.ndarray,
    active: "Sequence[int] | np.ndarray",
    sent: "Sequence[int] | np.ndarray",
    gens: list,
    slab: np.ndarray,
    slab_pos: np.ndarray,
) -> None:
    """Write each active trial's uniforms into ``u`` in canonical order.

    Trial ``t`` consumes exactly the stream ``gens[t]`` would produce
    round by round in the reference engine: uniforms are served from a
    per-trial read-ahead row of ``slab`` (refilled ``RNG_BLOCK`` at a
    time), and any request at least a full block long is drawn straight
    into the destination segment.  Exact by construction — numpy
    Generators yield identical values no matter how draws are batched
    into calls.

    ``active`` (trial ids) and ``sent`` (aligned per-trial ball counts)
    may be any iterables, including integer ndarrays — callers should
    pass their arrays directly rather than ``.tolist()`` copies.

    ``slab_pos[t]`` is the per-trial read position (``slab.shape[1]``
    means empty); callers initialize it to "empty" once per engine run.
    """
    blk = slab.shape[1]
    pos = 0
    for t, k in zip(active, sent):
        seg = u[pos : pos + k]
        p = int(slab_pos[t])
        have = blk - p
        if k <= have:
            seg[:] = slab[t, p : p + k]
            slab_pos[t] = p + k
        else:
            if have:
                seg[:have] = slab[t, p:]
            need = k - have
            if need >= blk:
                gens[t].random(out=seg[have:])
                slab_pos[t] = blk
            else:
                gens[t].random(out=slab[t])
                seg[have:] = slab[t, :need]
                slab_pos[t] = need
        pos += k


def philox_fill(
    u: np.ndarray,
    active: np.ndarray,
    sent: np.ndarray,
    words: np.ndarray,
    round_ctr: int,
    threads: int = 1,
) -> None:
    """Counter-based Phase-0: fill ``u`` from Philox counters, no state.

    The philox twin of :func:`fill_uniforms`: active trial ``active[a]``
    (rows of ``words``, the per-trial ``(k0, k1, c2, c3)`` uint32 words
    from :func:`repro.rng.philox_trial_words`) gets ``sent[a]`` doubles
    at the canonical packed offset.  Draw ``s`` of round ``round_ctr``
    reads counter ``(s >> 1, round_ctr, c2, c3)`` — a pure function of
    position, so any chunking, threading, or over-fill produces
    identical bits.

    Prefers the C ``repro_philox_fill`` (releases the GIL; honours
    ``threads`` in the OpenMP build) and falls back to the numpy
    reference :func:`repro.rng.philox_uniforms` per trial when no C
    library can be built — same bits either way.
    """
    n_active = len(active)
    if n_active == 0:
        return
    sent = np.ascontiguousarray(sent[:n_active], dtype=np.int64)
    w = np.ascontiguousarray(words[active])
    cext: CextKernel = _REGISTRY["cext"]  # type: ignore[assignment]
    lib = cext._load_mt() if threads > 1 else None
    if lib is None:
        lib = cext._load()
    if lib is not None:
        total = int(sent.sum())
        lib.repro_philox_fill(
            u[:total], sent, n_active, w, round_ctr, max(1, int(threads))
        )
        return
    from ..rng import philox_uniforms

    pos = 0
    for a in range(n_active):
        k = int(sent[a])
        philox_uniforms(w[a], round_ctr, k, out=u[pos : pos + k])
        pos += k


# ---------------------------------------------------------------------------
# The compiled algorithm, as interpreted loops (numba's source of truth)
# ---------------------------------------------------------------------------


def _phase23_trial(
    ball_key,
    dest,
    i0,
    i1,
    t,
    state1,
    state2,
    capacity,
    is_raes,
    count,
    touched,
    acc,
    out_key,
    out_base,
    do_compact,
):
    """Phase 2 + 3 for one trial; the twin of ``round_trial`` in ``_kernels.c``.

    Batch counts and the accept rule over the ball range ``[i0, i1)``,
    then (when compacting) the trial's survivors written at
    ``out_key[out_base:]`` — the sequential loop packs trials
    contiguously, the chunked loop hands each trial its own input
    region.  Returns ``(survivors, accepted_balls)``; the
    count/touched/acc scratch arrives zeroed and is re-zeroed before
    returning.  Shared by :func:`_round_loops` and
    :func:`_round_loops_mt` (and jitted once for both by numba), so the
    accept rule has one Python source of truth.
    """
    n_s = state1.shape[1]
    acc_balls = 0
    kept = out_base
    if i1 - i0 >= n_s // 4:
        for i in range(i0, i1):
            count[dest[i]] += 1
        for s in range(n_s):
            cnt = count[s]
            if cnt == 0:
                continue
            c = state1[t, s] + cnt
            if not is_raes:
                state1[t, s] = c
            if c <= capacity:
                state2[t, s] = c
                acc[s] = 1
                acc_balls += cnt
        if do_compact:
            for i in range(i0, i1):
                out_key[kept] = ball_key[i]
                if acc[dest[i]] == 0:
                    kept += 1
        count[:n_s] = 0
        acc[:n_s] = 0
    else:
        nt = 0
        for i in range(i0, i1):
            s = dest[i]
            if count[s] == 0:
                touched[nt] = s
                nt += 1
            count[s] += 1
        for j in range(nt):
            s = touched[j]
            cnt = count[s]
            c = state1[t, s] + cnt
            if not is_raes:
                state1[t, s] = c
            if c <= capacity:
                state2[t, s] = c
                acc[s] = 1
                acc_balls += cnt
        if do_compact:
            for i in range(i0, i1):
                out_key[kept] = ball_key[i]
                if acc[dest[i]] == 0:
                    kept += 1
        for j in range(nt):
            count[touched[j]] = 0
            acc[touched[j]] = 0
    return kept - out_base, acc_balls


def _round_loops(
    u,
    ball_key,
    trial_ids,
    sent,
    reg_deg,
    indptr,
    degrees,
    indices,
    n_clients,
    block_clients,
    state1,
    state2,
    capacity,
    is_raes,
    dest,
    count,
    touched,
    acc,
    n_acc,
    out_key,
    do_compact,
    cur,
    seg_start,
    seg_end,
):
    """One round over all active trials; see ``_kernels.c`` for the spec.

    ``state1``/``state2`` are the policy's ``[R, n_servers]`` matrices:
    (cum_received, loads) for SAER, (loads, loads) for RAES — the
    aliasing makes the unified update of :func:`_phase23_trial` reduce
    to each policy's exact rule.  Returns the survivor count written to
    ``out_key``.
    """
    n_active = trial_ids.shape[0]
    pos = 0
    for a in range(n_active):
        seg_start[a] = pos
        pos += sent[a]
        seg_end[a] = pos
        cur[a] = seg_start[a]
    # phase 1: client-blocked destination gather
    v0 = 0
    while v0 < n_clients:
        if reg_deg > 0:
            block_end = (v0 + block_clients) * reg_deg
        else:
            block_end = v0 + block_clients
        for a in range(n_active):
            i = cur[a]
            e = seg_end[a]
            while i < e and ball_key[i] < block_end:
                if reg_deg > 0:
                    dg = reg_deg
                    row = np.int64(ball_key[i])
                else:
                    v = ball_key[i]
                    dg = np.int64(degrees[v])
                    row = np.int64(indptr[v])
                off = np.int64(u[i] * dg)
                if off > dg - 1:
                    off = dg - 1
                dest[i] = indices[row + off]
                i += 1
            cur[a] = i
        v0 += block_clients
    # phase 2 + 3 per trial: count, decide, compact (contiguous pack)
    out = 0
    for a in range(n_active):
        kept, acc_balls = _phase23_trial(
            ball_key, dest, seg_start[a], seg_end[a], trial_ids[a],
            state1, state2, capacity, is_raes, count, touched, acc,
            out_key, out, do_compact,
        )
        n_acc[a] = acc_balls
        out += kept
    return out


def _round_loops_mt(
    u,
    ball_key,
    trial_ids,
    sent,
    reg_deg,
    indptr,
    degrees,
    indices,
    n_clients,
    block_clients,
    state1,
    state2,
    capacity,
    is_raes,
    dest,
    counts,
    toucheds,
    accs,
    n_acc,
    out_key,
    do_compact,
    cur,
    seg_start,
    seg_end,
    chunk_starts,
    n_keep,
):
    """The trial-partitioned round; numba's ``prange`` source of truth.

    ``chunk_starts`` (``n_chunks + 1`` entries, chunks may be empty)
    partitions the active trials; chunk ``ci`` runs the whole
    gather→count→decide→compact chain for its trials on scratch row
    ``ci`` of ``counts``/``toucheds``/``accs`` (each ``[n_chunks,
    n_s]``), writing each trial's survivors into the trial's own input
    region of ``out_key`` and its survivor count into ``n_keep``.  The
    prefix-sum left-pack epilogue then copies each trial's run to its
    packed offset in ``ball_key`` — the *input* buffer, dead after
    phase 1, so the per-trial copies are disjoint and the C twin runs
    them in parallel — byte-identical to :func:`_round_loops` for any
    partition and any thread count.  Callers read survivors from
    ``ball_key`` (NOT ``out_key``) and must not swap their ping-pong
    buffers after a threaded round.  See ``repro_round_mt`` in
    ``_kernels.c`` for the compiled spec.
    """
    n_active = trial_ids.shape[0]
    pos = 0
    for a in range(n_active):
        seg_start[a] = pos
        pos += sent[a]
        seg_end[a] = pos
    n_chunks = chunk_starts.shape[0] - 1
    for ci in prange(n_chunks):
        a0 = chunk_starts[ci]
        a1 = chunk_starts[ci + 1]
        if a0 >= a1:
            continue
        count = counts[ci]
        touched = toucheds[ci]
        acc = accs[ci]
        # phase 1: client-blocked destination gather for this chunk
        for a in range(a0, a1):
            cur[a] = seg_start[a]
        v0 = 0
        while v0 < n_clients:
            if reg_deg > 0:
                block_end = (v0 + block_clients) * reg_deg
            else:
                block_end = v0 + block_clients
            for a in range(a0, a1):
                i = cur[a]
                e = seg_end[a]
                while i < e and ball_key[i] < block_end:
                    if reg_deg > 0:
                        dg = reg_deg
                        row = np.int64(ball_key[i])
                    else:
                        v = ball_key[i]
                        dg = np.int64(degrees[v])
                        row = np.int64(indptr[v])
                    off = np.int64(u[i] * dg)
                    if off > dg - 1:
                        off = dg - 1
                    dest[i] = indices[row + off]
                    i += 1
                cur[a] = i
            v0 += block_clients
        # phase 2 + 3 per trial, survivors land at the trial's own base
        for a in range(a0, a1):
            kept, acc_balls = _phase23_trial(
                ball_key, dest, seg_start[a], seg_end[a], trial_ids[a],
                state1, state2, capacity, is_raes, count, touched, acc,
                out_key, seg_start[a], do_compact,
            )
            n_acc[a] = acc_balls
            n_keep[a] = kept
    # prefix-sum left-pack into the dead input buffer: offsets first
    # (cur is scratch after phase 1), then disjoint per-trial copies
    out = 0
    for a in range(n_active):
        cur[a] = out
        out += n_keep[a]
    for a in prange(n_active):
        ks = seg_start[a]
        ko = cur[a]
        for j in range(n_keep[a]):
            ball_key[ko + j] = out_key[ks + j]
    return out


# ---------------------------------------------------------------------------
# Kernel implementations
# ---------------------------------------------------------------------------


class Kernel:
    """A round-kernel implementation; ``compiled`` marks fused-loop paths."""

    name: str = "abstract"
    compiled: bool = False

    def available(self) -> bool:
        return True

    def round_fn(self) -> Callable:
        """The per-round entry with the :func:`_round_loops` signature."""
        raise NotImplementedError(f"{self.name} has no fused round entry")

    def threaded_round_fn(self, threads: int) -> Callable | None:
        """The trial-partitioned entry (:func:`_round_loops_mt`
        signature), or ``None`` when this implementation has no
        threaded path on this install (the engine then warns once per
        (gate, threads) and runs the sequential kernel)."""
        return None

    def philox_round_fn(self) -> Callable | None:
        """The fused philox round (uniforms generated inline from
        counters), or ``None`` — gates without one consume a
        :func:`philox_fill` slab through their standard entries
        instead, with identical bits."""
        return None

    def philox_threaded_round_fn(self, threads: int) -> Callable | None:
        """Trial-partitioned twin of :meth:`philox_round_fn`, or ``None``."""
        return None


class NumpyKernel(Kernel):
    """Marker for the engine's vectorized reference loop."""

    name = "numpy"


class PythonKernel(Kernel):
    """Interpreted compiled-algorithm loops (parity testing / debugging)."""

    name = "python"
    compiled = True

    def round_fn(self) -> Callable:
        return _round_loops

    def threaded_round_fn(self, threads: int) -> Callable | None:
        # Interpreted execution is sequential regardless of `threads`,
        # but it runs the exact chunked algorithm — which is the point:
        # the parity suite can pin the threaded compaction path on any
        # install.
        return _round_loops_mt


class NumbaKernel(Kernel):
    """numba-jitted :func:`_round_loops`; unavailable without numba."""

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        self._jitted: Callable | None = None
        self._jitted_mt: Callable | None = None
        self._mt_failed = False

    def available(self) -> bool:
        try:
            import numba  # noqa: F401
        except ImportError:
            return False
        return True

    @staticmethod
    def _jit_helper(numba) -> None:
        # Rebind the shared per-trial helper to its jitted dispatcher so
        # the outer loops (compiled lazily, at first call) resolve the
        # global to compiled code.  Idempotent; interpreted callers just
        # get the faster dispatcher too.
        global _phase23_trial
        if not isinstance(_phase23_trial, numba.core.dispatcher.Dispatcher):
            _phase23_trial = numba.njit(cache=False, fastmath=False)(_phase23_trial)

    def round_fn(self) -> Callable:
        if self._jitted is None:
            import numba

            self._jit_helper(numba)
            self._jitted = numba.njit(cache=False, fastmath=False)(_round_loops)
        return self._jitted

    def threaded_round_fn(self, threads: int) -> Callable | None:
        if self._mt_failed:
            return None
        if self._jitted_mt is None:
            import numba

            try:
                # Rebind the module-level `prange` (plain range for the
                # interpreter) to numba.prange so parallel=True picks up
                # the chunk loop; numba resolves globals at compile time.
                globals()["prange"] = numba.prange
                self._jit_helper(numba)
                jitted = numba.njit(
                    cache=False, fastmath=False, parallel=True
                )(_round_loops_mt)
                # numba compiles lazily at first call, so probe with a
                # zero-trial invocation: a missing parallel target or
                # broken threading layer fails HERE, where we can fall
                # back, not mid-round inside the engine.
                _warm_mt(jitted)
                self._jitted_mt = jitted
            except Exception as exc:  # no parallel target / threading layer
                self._mt_failed = True
                self._mt_error = exc
                return None

        jitted = self._jitted_mt

        def call(*args):
            import numba

            try:
                cap = int(numba.get_num_threads())
                numba.set_num_threads(max(1, min(threads, cap)))
            except Exception:
                pass  # thread-count control is best-effort; results
                # are partition-determined either way
            return jitted(*args)

        return call


def _warm_mt(fn) -> None:
    """Call a threaded round entry on a zero-trial workload (both state
    widths), forcing compilation/thread-pool startup so failures surface
    at probe time."""
    i32 = np.empty(0, np.int32)
    i64 = np.empty(0, np.int64)
    for state_dtype in (np.int64, np.int32):
        state = np.empty((0, 1), state_dtype)
        fn(
            np.empty(0, np.float64), i32, i64, i64, 1, i32, i32, i32, 0, 1,
            state, state, 4, 0, i32, np.zeros((1, 1), state_dtype),
            np.empty((1, 1), np.int32), np.zeros((1, 1), np.uint8), i64,
            i32, 1, i64, i64, i64, np.zeros(2, np.int64), i64,
        )


class CextKernel(Kernel):
    """ctypes-loaded C implementation, compiled on demand from ``_kernels.c``.

    Two builds of the same source: the sequential object (the parity
    baseline) and an OpenMP object for the trial-partitioned entry.
    The OpenMP build is compile-probed on first threaded use; a failed
    probe (compiler without ``-fopenmp``) makes
    :meth:`threaded_round_fn` return ``None`` so the engine warns once
    and runs the sequential object — same results, no threads.
    """

    name = "cext"
    compiled = True

    def __init__(self) -> None:
        self._lib = None
        self._failed = False
        self._mt_lib = None
        self._mt_failed = False
        self._lock = threading.Lock()

    def _load(self):
        with self._lock:
            if self._lib is None and not self._failed:
                try:
                    self._lib = _load_cext_library()
                except Exception as exc:  # compiler missing, sandboxed, ...
                    self._failed = True
                    self._error = exc
        return self._lib

    def _load_mt(self):
        with self._lock:
            if self._mt_lib is None and not self._mt_failed:
                try:
                    self._mt_lib = _load_cext_library(openmp=True)
                except Exception as exc:  # -fopenmp unsupported, ...
                    self._mt_failed = True
                    self._mt_error = exc
        return self._mt_lib

    def available(self) -> bool:
        return self._load() is not None

    def round_fn(self) -> Callable:
        lib = self._load()
        if lib is None:
            raise RuntimeError(f"cext kernel unavailable: {self._error}")

        def call(u, ball_key, trial_ids, sent, reg_deg, indptr, degrees,
                 indices, n_clients, block_clients, state1, state2, capacity,
                 is_raes, dest, count, touched, acc, n_acc, out_key,
                 do_compact, cur, seg_start, seg_end):
            fn = lib.repro_round_i64 if state1.dtype == np.int64 else lib.repro_round_i32
            return fn(
                u, ball_key, trial_ids.shape[0], trial_ids, sent,
                reg_deg, indptr, degrees, indices, n_clients, block_clients,
                state1, state2, state1.shape[1], capacity, is_raes,
                dest, count, touched, acc, n_acc, out_key, do_compact,
                cur, seg_start, seg_end,
            )

        return call

    def threaded_round_fn(self, threads: int) -> Callable | None:
        lib = self._load_mt()
        if lib is None:
            return None

        def call(u, ball_key, trial_ids, sent, reg_deg, indptr, degrees,
                 indices, n_clients, block_clients, state1, state2, capacity,
                 is_raes, dest, counts, toucheds, accs, n_acc, out_key,
                 do_compact, cur, seg_start, seg_end, chunk_starts, n_keep):
            fn = (
                lib.repro_round_mt_i64
                if state1.dtype == np.int64
                else lib.repro_round_mt_i32
            )
            return fn(
                u, ball_key, trial_ids.shape[0], trial_ids, sent,
                reg_deg, indptr, degrees, indices, n_clients, block_clients,
                state1, state2, state1.shape[1], capacity, is_raes,
                dest, counts, toucheds, accs, n_acc, out_key, do_compact,
                cur, seg_start, seg_end,
                chunk_starts.shape[0] - 1, chunk_starts, n_keep, threads,
            )

        return call

    def philox_round_fn(self) -> Callable | None:
        """The fused philox sequential round, or ``None`` with no C lib.

        Same contract as :meth:`round_fn` except the arguments are
        prefixed with ``(words, round_ctr)`` and the slab argument
        shrinks to an ``[n_active, PHILOX_CHUNK]`` scratch — phase 1
        bulk-generates each trial's next 512 draws into its row just in
        time and consumes them from L2.  This is the philox mode's perf
        path: the full-size uniform slab is never written OR read.
        """
        lib = self._load()
        if lib is None:
            return None

        def call(words, round_ctr, u, ball_key, trial_ids, sent, reg_deg,
                 indptr, degrees, indices, n_clients, block_clients,
                 state1, state2, capacity, is_raes, dest, count, touched,
                 acc, n_acc, out_key, do_compact, cur, seg_start, seg_end):
            fn = (
                lib.repro_round_ph_i64
                if state1.dtype == np.int64
                else lib.repro_round_ph_i32
            )
            return fn(
                words, round_ctr, u, ball_key, trial_ids.shape[0],
                trial_ids, sent, reg_deg, indptr, degrees, indices,
                n_clients, block_clients, state1, state2, state1.shape[1],
                capacity, is_raes, dest, count, touched, acc, n_acc,
                out_key, do_compact, cur, seg_start, seg_end,
            )

        return call

    def philox_threaded_round_fn(self, threads: int) -> Callable | None:
        """The fused philox trial-partitioned round (OpenMP build), or
        ``None``; survivors land in ``ball_key`` like the mt entry."""
        lib = self._load_mt()
        if lib is None:
            return None

        def call(words, round_ctr, u, ball_key, trial_ids, sent, reg_deg,
                 indptr, degrees, indices, n_clients, block_clients,
                 state1, state2, capacity, is_raes, dest, counts, toucheds,
                 accs, n_acc, out_key, do_compact, cur, seg_start, seg_end,
                 chunk_starts, n_keep):
            fn = (
                lib.repro_round_ph_mt_i64
                if state1.dtype == np.int64
                else lib.repro_round_ph_mt_i32
            )
            return fn(
                words, round_ctr, u, ball_key, trial_ids.shape[0],
                trial_ids, sent, reg_deg, indptr, degrees, indices,
                n_clients, block_clients, state1, state2, state1.shape[1],
                capacity, is_raes, dest, counts, toucheds, accs, n_acc,
                out_key, do_compact, cur, seg_start, seg_end,
                chunk_starts.shape[0] - 1, chunk_starts, n_keep, threads,
            )

        return call


class CupyKernel(Kernel):
    """GPU twin of the fused philox round, gated on an importable cupy.

    Only meaningful with the philox seed lineage — counter-based draws
    are what make a device-resident round reproducible without
    streaming per-trial PCG64 state through the GPU; the engine rejects
    ``kernel="cupy"`` under the PCG64 modes outright.  The round itself
    lives in :mod:`repro.batch.device` as an xp-agnostic twin that runs
    on numpy or cupy arrays identically, so CI parity-pins the GPU
    semantics against the CPU gates without a GPU.  ``available()``
    requires cupy to import *and* see a device; anything else takes the
    standard warn-once fallback to numpy in :func:`resolve_kernel`.
    """

    name = "cupy"
    compiled = False

    def __init__(self) -> None:
        self._cupy = None
        self._checked = False

    def module(self):
        """The cupy module (probed once), or ``None``.  Tests inject a
        fake by setting ``_cupy``/``_checked`` directly."""
        if not self._checked:
            self._checked = True
            try:
                import cupy

                cupy.cuda.runtime.getDeviceCount()
                self._cupy = cupy
            except Exception:
                self._cupy = None
        return self._cupy

    def available(self) -> bool:
        return self.module() is not None


def _cc_candidates() -> list[str]:
    env = os.environ.get("CC")
    return [env] if env else ["cc", "gcc", "clang"]


def _load_cext_library(openmp: bool = False):
    """Compile (once, cached by source hash) and load ``_kernels.c``.

    ``openmp=True`` builds a second object with ``-fopenmp`` (cached
    under its own name); the compile itself is the probe — a compiler
    that lacks OpenMP fails it and the caller falls back.
    """
    src = Path(__file__).with_name("_kernels.c")
    source = src.read_bytes()
    tag = hashlib.sha256(source).hexdigest()[:16]
    cache_dir = os.environ.get(CACHE_ENV)
    if cache_dir:
        cache = Path(cache_dir)
    else:
        uid = os.getuid() if hasattr(os, "getuid") else "u"
        cache = Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"
    cache.mkdir(parents=True, exist_ok=True)
    stem = "_repro_kernels_omp" if openmp else "_repro_kernels"
    so = cache / f"{stem}_{tag}.so"
    if not so.exists():
        last_err: Exception | None = None
        done = False
        # -march=native first (the SIMD philox fill needs AVX2 to beat
        # the PCG64 fill; bit-safe here because the kernels are integer
        # arithmetic plus isolated double multiplies — no fuseable
        # multiply-add chains exist for -mfma to contract), plain -O3
        # as the portable fallback.
        for cc in _cc_candidates():
            for extra in (["-march=native"], []):
                tmp = so.with_name(f"{so.stem}.{os.getpid()}.tmp.so")
                cmd = [cc, "-O3", *extra, "-shared", "-fPIC"]
                if openmp:
                    cmd.append("-fopenmp")
                cmd += ["-o", str(tmp), str(src)]
                try:
                    subprocess.run(
                        cmd, check=True, capture_output=True, timeout=120
                    )
                    os.replace(tmp, so)  # atomic: workers race safely
                    last_err = None
                    done = True
                    break
                except Exception as exc:
                    last_err = exc
                    tmp.unlink(missing_ok=True)
            if done:
                break
        if last_err is not None:
            raise RuntimeError(
                f"C kernel build failed ({'OpenMP' if openmp else 'sequential'}): "
                f"{last_err}"
            )
    lib = ctypes.CDLL(str(so))
    _declare(lib.repro_round_i32, np.int32)
    _declare(lib.repro_round_i64, np.int64)
    _declare_mt(lib.repro_round_mt_i32, np.int32)
    _declare_mt(lib.repro_round_mt_i64, np.int64)
    _declare_ph(lib.repro_round_ph_i32, np.int32)
    _declare_ph(lib.repro_round_ph_i64, np.int64)
    _declare_ph_mt(lib.repro_round_ph_mt_i32, np.int32)
    _declare_ph_mt(lib.repro_round_ph_mt_i64, np.int64)
    _declare_fill(lib.repro_philox_fill)
    return lib


def _declare(fn, state_dtype) -> None:
    ptr = np.ctypeslib.ndpointer
    c = dict(flags="C_CONTIGUOUS")
    i64 = ctypes.c_int64
    fn.restype = i64
    fn.argtypes = [
        ptr(np.float64, **c),   # u
        ptr(np.int32, **c),     # ball_key
        i64,                    # n_active
        ptr(np.int64, **c),     # trial_ids
        ptr(np.int64, **c),     # sent
        i64,                    # reg_deg
        ptr(np.int32, **c),     # indptr
        ptr(np.int32, **c),     # degrees
        ptr(np.int32, **c),     # indices
        i64,                    # n_clients
        i64,                    # block_clients
        ptr(state_dtype, **c),  # state1
        ptr(state_dtype, **c),  # state2
        i64,                    # n_s
        i64,                    # capacity
        i64,                    # is_raes
        ptr(np.int32, **c),     # dest
        ptr(state_dtype, **c),  # count
        ptr(np.int32, **c),     # touched
        ptr(np.uint8, **c),     # acc
        ptr(np.int64, **c),     # n_acc
        ptr(np.int32, **c),     # out_key
        i64,                    # do_compact
        ptr(np.int64, **c),     # cur
        ptr(np.int64, **c),     # seg_start
        ptr(np.int64, **c),     # seg_end
    ]


def _declare_mt(fn, state_dtype) -> None:
    ptr = np.ctypeslib.ndpointer
    c = dict(flags="C_CONTIGUOUS")
    i64 = ctypes.c_int64
    fn.restype = i64
    fn.argtypes = [
        ptr(np.float64, **c),   # u
        ptr(np.int32, **c),     # ball_key
        i64,                    # n_active
        ptr(np.int64, **c),     # trial_ids
        ptr(np.int64, **c),     # sent
        i64,                    # reg_deg
        ptr(np.int32, **c),     # indptr
        ptr(np.int32, **c),     # degrees
        ptr(np.int32, **c),     # indices
        i64,                    # n_clients
        i64,                    # block_clients
        ptr(state_dtype, **c),  # state1
        ptr(state_dtype, **c),  # state2
        i64,                    # n_s
        i64,                    # capacity
        i64,                    # is_raes
        ptr(np.int32, **c),     # dest
        ptr(state_dtype, **c),  # counts  [n_chunks, n_s]
        ptr(np.int32, **c),     # toucheds [n_chunks, n_s]
        ptr(np.uint8, **c),     # accs     [n_chunks, n_s]
        ptr(np.int64, **c),     # n_acc
        ptr(np.int32, **c),     # out_key
        i64,                    # do_compact
        ptr(np.int64, **c),     # cur
        ptr(np.int64, **c),     # seg_start
        ptr(np.int64, **c),     # seg_end
        i64,                    # n_chunks
        ptr(np.int64, **c),     # chunk_starts [n_chunks + 1]
        ptr(np.int64, **c),     # n_keep
        i64,                    # n_threads
    ]


def _declare_ph(fn, state_dtype) -> None:
    # The fused philox sequential round: repro_round prefixed with
    # (words, round_ctr); the u slab stays as chunk scratch.
    _declare(fn, state_dtype)
    fn.argtypes = [
        np.ctypeslib.ndpointer(np.uint32, flags="C_CONTIGUOUS"),  # words
        ctypes.c_uint32,                                          # round_ctr
    ] + fn.argtypes


def _declare_ph_mt(fn, state_dtype) -> None:
    # The fused philox threaded round; same tail as _declare_mt.
    _declare_mt(fn, state_dtype)
    fn.argtypes = [
        np.ctypeslib.ndpointer(np.uint32, flags="C_CONTIGUOUS"),  # words
        ctypes.c_uint32,                                          # round_ctr
    ] + fn.argtypes


def _declare_fill(fn) -> None:
    ptr = np.ctypeslib.ndpointer
    c = dict(flags="C_CONTIGUOUS")
    fn.restype = None
    fn.argtypes = [
        ptr(np.float64, **c),   # u (canonical packed layout)
        ptr(np.int64, **c),     # sent (per active trial)
        ctypes.c_int64,         # n_active
        ptr(np.uint32, **c),    # words [n_active, 4]
        ctypes.c_uint32,        # round_ctr
        ctypes.c_int64,         # n_threads
    ]


# ---------------------------------------------------------------------------
# Registry / gate
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Kernel] = {
    "numpy": NumpyKernel(),
    "python": PythonKernel(),
    "numba": NumbaKernel(),
    "cext": CextKernel(),
    "cupy": CupyKernel(),
}

# Warn-once state for fallback warnings, keyed per (gate, threads):
# "numba is missing" at threads=1 and "numba is missing" at threads=4
# are different operational problems (the second also loses the thread
# budget), so each key warns independently — but only once.
_warned: set[tuple[str, int]] = set()


def _warn_once(key: tuple[str, int], message: str) -> None:
    if key not in _warned:
        _warned.add(key)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def available_kernels() -> list[str]:
    """Names of the kernel implementations usable on this install."""
    return [name for name, k in _REGISTRY.items() if k.available()]


def resolve_kernel(name: str | None = None, threads: int | None = None) -> Kernel:
    """Resolve the runtime gate: argument > ``REPRO_KERNELS`` > numpy.

    Unknown names raise; known-but-unavailable ones (numba not
    installed, no C compiler) warn once per (gate, threads) and fall
    back to the numpy reference so minimal installs keep working.
    ``threads`` only keys the warn-once state (callers that resolved a
    thread budget pass it through); it never changes which kernel is
    returned.
    """
    requested = name or os.environ.get(KERNELS_ENV) or DEFAULT_KERNEL
    requested = requested.strip().lower()
    try:
        kern = _REGISTRY[requested]
    except KeyError:
        raise ValueError(
            f"unknown kernel {requested!r}; known: {sorted(_REGISTRY)}"
        ) from None
    if not kern.available():
        _warn_once(
            (requested, resolve_threads(threads)),
            f"repro kernel {requested!r} is unavailable on this install; "
            f"falling back to the numpy reference path",
        )
        return _REGISTRY["numpy"]
    return kern


def resolve_threads(threads: int | None = None) -> int:
    """Resolve the kernel thread budget: argument > ``REPRO_KERNEL_THREADS`` > 1.

    Threads partition *trials*, never a single trial, and only the
    compiled kernels honour them (the numpy reference loop is
    single-threaded by design; it silently runs with 1).  Process-pool
    workers reset the environment half to 1 (see
    :mod:`repro.parallel.pool`), so an environment-wide budget never
    multiplies into processes × threads oversubscription — an explicit
    argument still wins there.
    """
    if threads is None:
        raw = os.environ.get(THREADS_ENV)
        if not raw:
            return 1
        try:
            threads = int(raw)
        except ValueError:
            raise ValueError(
                f"{THREADS_ENV} must be a positive integer; got {raw!r}"
            ) from None
    threads = int(threads)
    if threads < 1:
        raise ValueError(f"kernel threads must be >= 1; got {threads}")
    return threads


def resolve_seed_mode(mode: str | None = None) -> str:
    """Resolve the seed-lineage gate: argument > ``REPRO_SEED_MODE`` > pair.

    Plan execution always passes the plan's mode explicitly, so the
    environment variable can steer ad-hoc engine calls but never alter
    the bits of a plan run.
    """
    requested = mode or os.environ.get(SEED_MODE_ENV) or "pair"
    requested = requested.strip().lower()
    if requested not in SEED_MODES:
        raise ValueError(
            f"unknown seed mode {requested!r}; known: {list(SEED_MODES)}"
        )
    return requested


def resolve_threaded_round(kern: Kernel, threads: int) -> Callable | None:
    """``kern``'s trial-partitioned entry for ``threads`` > 1, or None.

    When the kernel has no threaded path on this install (OpenMP
    compile-probe failed, numba without a threaded build), warns once
    per (gate, threads) — the run then proceeds on the sequential
    kernel with identical results.
    """
    fn = kern.threaded_round_fn(threads)
    if fn is None:
        reason = getattr(kern, "_mt_error", None)
        detail = f" ({reason})" if reason is not None else ""
        _warn_once(
            (kern.name, threads),
            f"repro kernel {kern.name!r} has no threaded path on this "
            f"install{detail}; running the threads={threads} request on "
            f"the sequential kernel (identical results, no speedup)",
        )
    return fn


def trial_chunks(n_active: int, n_chunks: int, out: np.ndarray) -> np.ndarray:
    """Balanced partition of ``n_active`` trials into ``n_chunks`` chunks.

    Writes the ``n_chunks + 1`` boundary array into ``out`` and returns
    the filled view.  Purely a function of its arguments — chunking is
    data, which is what makes the threaded kernels deterministic.
    """
    bounds = out[: n_chunks + 1]
    base, rem = divmod(n_active, n_chunks)
    bounds[0] = 0
    sizes = bounds[1:]
    sizes[:] = base
    sizes[:rem] += 1
    np.cumsum(sizes, out=sizes)
    return bounds


def block_clients_for(n_clients: int, n_edges: int) -> int:
    """Phase-1 block size: keep a block's CSR rows ~L2-resident."""
    if n_clients <= 0 or n_edges <= 0:
        return max(1, n_clients)
    avg_row_bytes = max(1, (n_edges * 4) // n_clients)
    return max(8, min(n_clients, _BLOCK_BYTES // avg_row_bytes))
