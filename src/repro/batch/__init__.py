"""Trial-vectorized batched execution of the paper's protocols.

Where :mod:`repro.core` runs one protocol trial per call, this subsystem
runs ``R`` independent trials on the same graph as a single set of 2-D
numpy operations (trial axis × ball/server axis), with per-trial round
counters and early per-trial termination.  It is the in-process half of
the library's two-level parallelism model — batched trials *within* a
process, process-pool workers *across* sweep points (see
:mod:`repro.parallel`) — and is trial-for-trial bit-identical to the
reference engine under matching seeds.

Entry points: :func:`run_trials_batched` (generic),
:func:`run_saer_batched` / :func:`run_raes_batched` (convenience), and
:class:`BatchResult` with its ``to_run_results()`` adapter back to
per-trial :class:`~repro.core.results.RunResult` records.

The per-round hot loop also exists as fused compiled kernels behind a
runtime gate (:mod:`repro.batch.kernels`: ``kernel=`` argument or
``REPRO_KERNELS`` env var; numpy reference, C extension, numba —
bit-identical, unavailable paths fall back to numpy), with a
trial-partitioned threaded twin per compiled path (``threads=``
argument or ``REPRO_KERNEL_THREADS`` env var — bit-identical at every
thread count), and sweep results can travel as typed
:class:`ResultBlock` columns instead of per-trial dicts (the columnar
results spool of :mod:`repro.parallel.sweep` /
:mod:`repro.parallel.aggregate`).
"""

from .engine import run_raes_batched, run_saer_batched, run_trials_batched
from .kernels import (
    EngineBuffers,
    available_kernels,
    resolve_kernel,
    resolve_threads,
)
from .policies import BatchedRaesPolicy, BatchedSaerPolicy, BatchedServerPolicy
from .results import BatchResult, ResultBlock

__all__ = [
    "run_trials_batched",
    "run_saer_batched",
    "run_raes_batched",
    "BatchResult",
    "ResultBlock",
    "BatchedServerPolicy",
    "BatchedSaerPolicy",
    "BatchedRaesPolicy",
    "EngineBuffers",
    "available_kernels",
    "resolve_kernel",
    "resolve_threads",
]
