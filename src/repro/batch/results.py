"""Per-trial result arrays for a batched Monte-Carlo execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.config import ProtocolParams
from ..core.results import RunResult

__all__ = ["BatchResult"]


@dataclass
class BatchResult:
    """Outcome of ``R`` independent trials run by the batched engine.

    Scalar fields of :class:`~repro.core.results.RunResult` that vary per
    trial become length-``R`` arrays here; fields that are shared by
    construction (graph, parameters, total balls) stay scalar.  Trial
    ``r`` of a batch is, by the equivalence contract of
    :mod:`repro.batch.engine`, identical to the
    :class:`~repro.core.results.RunResult` the reference engine produces
    for the same seed — :meth:`to_run_results` materializes exactly those
    records.

    Attributes
    ----------
    completed, rounds, work, assigned_balls, max_load, blocked_servers:
        Per-trial arrays, shape ``[R]``; semantics per field match
        :class:`~repro.core.results.RunResult`.
    loads:
        Optional ``[R, n_servers]`` final load matrix (row ``r`` is trial
        ``r``'s per-server loads).
    seed_infos:
        Per-trial provenance strings (mirrors ``RunResult.seed_info``).
    """

    protocol: str
    graph_name: str
    n_clients: int
    n_servers: int
    params: ProtocolParams
    n_trials: int
    completed: np.ndarray
    rounds: np.ndarray
    work: np.ndarray
    total_balls: int
    assigned_balls: np.ndarray
    max_load: np.ndarray
    blocked_servers: np.ndarray
    loads: Optional[np.ndarray] = field(default=None, repr=False)
    seed_infos: Optional[list] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        for name in ("completed", "rounds", "work", "assigned_balls", "max_load", "blocked_servers"):
            arr = getattr(self, name)
            if arr.shape != (self.n_trials,):
                raise ValueError(
                    f"{name} must have shape ({self.n_trials},); got {arr.shape}"
                )
        if np.any(self.assigned_balls > self.total_balls) or np.any(self.assigned_balls < 0):
            raise ValueError("ball accounting broken: assigned outside [0, total]")
        if self.loads is not None and self.loads.shape != (self.n_trials, self.n_servers):
            raise ValueError(
                f"loads must have shape ({self.n_trials}, {self.n_servers}); "
                f"got {self.loads.shape}"
            )

    def __len__(self) -> int:
        return self.n_trials

    @property
    def alive_balls(self) -> np.ndarray:
        """Per-trial leftover balls (``total - assigned``)."""
        return self.total_balls - self.assigned_balls

    @property
    def completion_rate(self) -> float:
        """Fraction of trials that assigned every ball within the cap."""
        return float(self.completed.mean()) if self.n_trials else 0.0

    def to_run_results(self) -> list[RunResult]:
        """Materialize one :class:`RunResult` per trial (the adapter)."""
        out = []
        for r in range(self.n_trials):
            out.append(
                RunResult(
                    protocol=self.protocol,
                    graph_name=self.graph_name,
                    n_clients=self.n_clients,
                    n_servers=self.n_servers,
                    params=self.params,
                    completed=bool(self.completed[r]),
                    rounds=int(self.rounds[r]),
                    work=int(self.work[r]),
                    total_balls=self.total_balls,
                    assigned_balls=int(self.assigned_balls[r]),
                    alive_balls=int(self.total_balls - self.assigned_balls[r]),
                    max_load=int(self.max_load[r]),
                    blocked_servers=int(self.blocked_servers[r]),
                    loads=self.loads[r].copy() if self.loads is not None else None,
                    seed_info=self.seed_infos[r] if self.seed_infos else "",
                )
            )
        return out

    def summary(self) -> dict:
        """Flat aggregate dict (medians/means over trials) for tables."""
        rounds_done = self.rounds[self.completed]
        return {
            "protocol": self.protocol,
            "graph": self.graph_name,
            "n": self.n_clients,
            "c": self.params.c,
            "d": self.params.d,
            "trials": self.n_trials,
            "completion_rate": round(self.completion_rate, 4),
            "rounds_median": float(np.median(rounds_done)) if rounds_done.size else None,
            "rounds_max": int(self.rounds.max()) if self.n_trials else 0,
            "work_mean": float(self.work.mean()) if self.n_trials else 0.0,
            "max_load_worst": int(self.max_load.max()) if self.n_trials else 0,
            "capacity": self.params.capacity,
            "blocked_servers_mean": float(self.blocked_servers.mean()) if self.n_trials else 0.0,
        }
