"""Per-trial result arrays for a batched Monte-Carlo execution."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..core.config import ProtocolParams
from ..core.results import RunResult

__all__ = ["BatchResult", "ResultBlock"]


@dataclass
class BatchResult:
    """Outcome of ``R`` independent trials run by the batched engine.

    Scalar fields of :class:`~repro.core.results.RunResult` that vary per
    trial become length-``R`` arrays here; fields that are shared by
    construction (graph, parameters, total balls) stay scalar.  Trial
    ``r`` of a batch is, by the equivalence contract of
    :mod:`repro.batch.engine`, identical to the
    :class:`~repro.core.results.RunResult` the reference engine produces
    for the same seed — :meth:`to_run_results` materializes exactly those
    records.

    Attributes
    ----------
    completed, rounds, work, assigned_balls, max_load, blocked_servers:
        Per-trial arrays, shape ``[R]``; semantics per field match
        :class:`~repro.core.results.RunResult`.
    loads:
        Optional ``[R, n_servers]`` final load matrix (row ``r`` is trial
        ``r``'s per-server loads).
    seed_infos:
        Per-trial provenance strings (mirrors ``RunResult.seed_info``).
    """

    protocol: str
    graph_name: str
    n_clients: int
    n_servers: int
    params: ProtocolParams
    n_trials: int
    completed: np.ndarray
    rounds: np.ndarray
    work: np.ndarray
    total_balls: int
    assigned_balls: np.ndarray
    max_load: np.ndarray
    blocked_servers: np.ndarray
    loads: Optional[np.ndarray] = field(default=None, repr=False)
    seed_infos: Optional[list] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        for name in ("completed", "rounds", "work", "assigned_balls", "max_load", "blocked_servers"):
            arr = getattr(self, name)
            if arr.shape != (self.n_trials,):
                raise ValueError(
                    f"{name} must have shape ({self.n_trials},); got {arr.shape}"
                )
        if np.any(self.assigned_balls > self.total_balls) or np.any(self.assigned_balls < 0):
            raise ValueError("ball accounting broken: assigned outside [0, total]")
        if self.loads is not None and self.loads.shape != (self.n_trials, self.n_servers):
            raise ValueError(
                f"loads must have shape ({self.n_trials}, {self.n_servers}); "
                f"got {self.loads.shape}"
            )

    def __len__(self) -> int:
        return self.n_trials

    @property
    def alive_balls(self) -> np.ndarray:
        """Per-trial leftover balls (``total - assigned``)."""
        return self.total_balls - self.assigned_balls

    @property
    def completion_rate(self) -> float:
        """Fraction of trials that assigned every ball within the cap."""
        return float(self.completed.mean()) if self.n_trials else 0.0

    def to_run_results(self) -> list[RunResult]:
        """Materialize one :class:`RunResult` per trial (the adapter)."""
        out = []
        for r in range(self.n_trials):
            out.append(
                RunResult(
                    protocol=self.protocol,
                    graph_name=self.graph_name,
                    n_clients=self.n_clients,
                    n_servers=self.n_servers,
                    params=self.params,
                    completed=bool(self.completed[r]),
                    rounds=int(self.rounds[r]),
                    work=int(self.work[r]),
                    total_balls=self.total_balls,
                    assigned_balls=int(self.assigned_balls[r]),
                    alive_balls=int(self.total_balls - self.assigned_balls[r]),
                    max_load=int(self.max_load[r]),
                    blocked_servers=int(self.blocked_servers[r]),
                    loads=self.loads[r].copy() if self.loads is not None else None,
                    seed_info=self.seed_infos[r] if self.seed_infos else "",
                )
            )
        return out

    def summary(self) -> dict:
        """Flat aggregate dict (medians/means over trials) for tables."""
        rounds_done = self.rounds[self.completed]
        return {
            "protocol": self.protocol,
            "graph": self.graph_name,
            "n": self.n_clients,
            "c": self.params.c,
            "d": self.params.d,
            "trials": self.n_trials,
            "completion_rate": round(self.completion_rate, 4),
            "rounds_median": float(np.median(rounds_done)) if rounds_done.size else None,
            "rounds_max": int(self.rounds.max()) if self.n_trials else 0,
            "work_mean": float(self.work.mean()) if self.n_trials else 0.0,
            "max_load_worst": int(self.max_load.max()) if self.n_trials else 0,
            "capacity": self.params.capacity,
            "blocked_servers_mean": float(self.blocked_servers.mean()) if self.n_trials else 0.0,
        }


def _pyvalue(v):
    """numpy scalar → native python scalar (dicts stay json/printable)."""
    return v.item() if isinstance(v, np.generic) else v


def _column(values: list) -> np.ndarray:
    """A typed column for homogeneous values, object dtype otherwise.

    Integer columns are narrowed to the smallest dtype that holds their
    range: pickle encodes small python ints in 2-5 bytes, so an int64
    column would *grow* the wire payload the spool exists to shrink.
    Floats keep full precision.
    """
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError):
        arr = None
    if arr is None or arr.dtype.kind in "OUSV" or arr.ndim != 1:
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return arr
    if arr.dtype.kind in "iu" and arr.size:
        lo, hi = int(arr.min()), int(arr.max())
        for dt in (np.int8, np.int16, np.int32, np.int64):
            info = np.iinfo(dt)
            if info.min <= lo and hi <= info.max:
                return arr.astype(dt, copy=False)
    return arr


@dataclass
class ResultBlock:
    """One sweep point's trial records as typed columns.

    The columnar results spool: instead of shipping ``R`` per-trial
    dicts back from a worker (each pickled key by key), a batched sweep
    task returns one :class:`ResultBlock` — the shared point parameters
    once, the trial indices, and a structured array holding the
    per-trial fields as typed columns.  The parent side assembles
    blocks into a single columnar table
    (:func:`repro.parallel.aggregate.assemble_blocks`); dicts are
    materialized lazily only where legacy record consumers need them.

    Attributes
    ----------
    point:
        The sweep-point parameters shared by every row of the block.
    trials:
        Trial indices, shape ``[R]``.
    data:
        Structured array, shape ``[R]``, one field per record key.
    """

    point: dict
    trials: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.trials = np.asarray(self.trials, dtype=np.int64)
        if self.data.shape != self.trials.shape:
            raise ValueError(
                f"data shape {self.data.shape} disagrees with "
                f"trials shape {self.trials.shape}"
            )

    @classmethod
    def from_records(
        cls, point: Mapping, trials: Sequence[int], records: Sequence[Mapping]
    ) -> "ResultBlock":
        """Pack per-trial record dicts into a block.

        Columns cover the union of the records' keys (first-seen
        order); a record missing a key contributes ``None`` there — the
        one place columns differ from dicts, where the key would simply
        be absent (aggregation drops ``None`` either way).
        """
        records = list(records)
        if len(records) != len(trials):
            raise ValueError(
                f"{len(records)} records for {len(trials)} trials"
            )
        keys: list[str] = []
        for r in records:
            for k in r:
                if k not in keys:
                    keys.append(k)
        cols = {k: _column([r.get(k) for r in records]) for k in keys}
        dtype = np.dtype([(k, cols[k].dtype) for k in keys])
        data = np.empty(len(records), dtype=dtype)
        for k in keys:
            data[k] = cols[k]
        return cls(point=dict(point), trials=np.asarray(list(trials)), data=data)

    @classmethod
    def from_columns(
        cls, point: Mapping, trials: Sequence[int], columns: Mapping[str, Sequence]
    ) -> "ResultBlock":
        """Pack per-trial *columns* into a block — no per-dict loop.

        The columnar fast path for workers that already hold their
        results as arrays (e.g. straight off a
        :class:`~repro.batch.results.BatchResult`): each value is a
        length-``R`` array-like; integer columns are range-narrowed
        exactly as in :meth:`from_records`.  Key order becomes field
        order.
        """
        trials = np.asarray(list(trials))
        cols = {k: _column(v) for k, v in columns.items()}
        for k, col in cols.items():
            if col.shape != trials.shape:
                raise ValueError(
                    f"column {k!r} has shape {col.shape}; expected {trials.shape}"
                )
        dtype = np.dtype([(k, col.dtype) for k, col in cols.items()])
        data = np.empty(trials.size, dtype=dtype)
        for k, col in cols.items():
            data[k] = col
        return cls(point=dict(point), trials=trials, data=data)

    @property
    def n_trials(self) -> int:
        return int(self.trials.size)

    def __len__(self) -> int:
        return self.n_trials

    @property
    def fields(self) -> list[str]:
        """Per-trial field names (the structured dtype's columns)."""
        return list(self.data.dtype.names or ())

    def to_structured(self) -> np.ndarray:
        """The per-trial fields as a structured array (zero-copy)."""
        return self.data

    @classmethod
    def from_structured(
        cls, point: Mapping, trials: Sequence[int], data: np.ndarray
    ) -> "ResultBlock":
        """Wrap an existing structured array (zero-copy) as a block."""
        return cls(point=dict(point), trials=np.asarray(list(trials)), data=data)

    def records(self) -> list[dict]:
        """Materialize the legacy flat records: point + trial + fields."""
        names = self.fields
        out = []
        for i in range(self.n_trials):
            row = dict(self.point)
            row["trial"] = int(self.trials[i])
            for k in names:
                row[k] = _pyvalue(self.data[k][i])
            out.append(row)
        return out

    # -- durable-spool payload (npz-safe, no pickle) ------------------------

    def to_payload(self) -> dict[str, np.ndarray]:
        """The block as plain named arrays, safe for ``np.savez`` without pickle.

        The on-disk shape of the durable result spool
        (:mod:`repro.durable.spool`): the point parameters as one JSON
        string, the trial indices, the field order, and one array per
        field.  Object-dtype columns (ragged/mixed values) are
        JSON-encoded element-wise into unicode arrays — ``allow_pickle``
        stays off, so a torn or hostile block file can fail a checksum
        but never execute anything on load.
        """
        payload: dict[str, np.ndarray] = {
            "point": np.str_(json.dumps({k: _pyvalue(v) for k, v in self.point.items()})),
            "trials": self.trials,
            "field_names": np.asarray(self.fields, dtype="U64"),
        }
        json_fields = []
        for name in self.fields:
            col = self.data[name]
            if col.dtype.kind == "O":
                json_fields.append(name)
                col = np.asarray([json.dumps(_pyvalue(v)) for v in col])
            payload[f"field:{name}"] = col
        payload["json_fields"] = np.asarray(json_fields, dtype="U64")
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, np.ndarray]) -> "ResultBlock":
        """Rebuild a block written by :meth:`to_payload` (inverse, exact).

        Field order, dtypes, and values round-trip: typed columns come
        back verbatim, JSON-encoded object columns decode back to
        object dtype.
        """
        point = json.loads(str(payload["point"]))
        trials = np.asarray(payload["trials"], dtype=np.int64)
        names = [str(n) for n in np.asarray(payload["field_names"])]
        json_fields = {str(n) for n in np.asarray(payload["json_fields"])}
        cols: dict[str, np.ndarray] = {}
        for name in names:
            col = np.asarray(payload[f"field:{name}"])
            if name in json_fields:
                decoded = np.empty(col.size, dtype=object)
                decoded[:] = [json.loads(str(v)) for v in col]
                col = decoded
            cols[name] = col
        dtype = np.dtype([(n, cols[n].dtype) for n in names])
        data = np.empty(trials.size, dtype=dtype)
        for n in names:
            data[n] = cols[n]
        return cls(point=point, trials=trials, data=data)
