"""Online request arrival processes for the dynamic scenario (E12)."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["ArrivalProcess", "PoissonArrivals", "BatchArrivals", "HotspotArrivals"]


class ArrivalProcess:
    """Interface: per-round new-ball counts per client.

    ``sample(rng, n_clients, round_no)`` returns an int array of new
    balls appearing at each client at the start of that round.
    """

    def sample(self, rng: np.random.Generator, n_clients: int, round_no: int) -> np.ndarray:
        raise NotImplementedError

    def expected_per_round(self, n_clients: int) -> float:
        """Expected total arrivals per round (for capacity/stability math)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Poisson arrivals: total ``~Poisson(rate_per_client·n)`` per round,
    spread uniformly over clients.

    ``rate_per_client`` is the offered load knob of E12.  The system's
    service capacity is at most one assignment per arrival slot, and the
    burn/recovery cycle throttles effective capacity further, so backlog
    stability depends on this rate (the metastable-vs-divergent table).
    """

    rate_per_client: float

    def __post_init__(self) -> None:
        if self.rate_per_client < 0:
            raise ValueError("rate_per_client must be non-negative")

    def sample(self, rng: np.random.Generator, n_clients: int, round_no: int) -> np.ndarray:
        total = rng.poisson(self.rate_per_client * n_clients)
        if total == 0:
            return np.zeros(n_clients, dtype=np.int64)
        owners = rng.integers(0, n_clients, size=total)
        return np.bincount(owners, minlength=n_clients).astype(np.int64)

    def expected_per_round(self, n_clients: int) -> float:
        return self.rate_per_client * n_clients


@dataclass(frozen=True)
class BatchArrivals(ArrivalProcess):
    """Deterministic bursts: ``batch_size`` balls every ``period`` rounds.

    Exercises the protocol's burst absorption (worst case for the
    per-round threshold, since a burst concentrates arrivals in time).
    """

    batch_size: int
    period: int = 1

    def __post_init__(self) -> None:
        if self.batch_size < 0 or self.period < 1:
            raise ValueError("need batch_size >= 0 and period >= 1")

    def sample(self, rng: np.random.Generator, n_clients: int, round_no: int) -> np.ndarray:
        if round_no % self.period != 0:
            return np.zeros(n_clients, dtype=np.int64)
        owners = rng.integers(0, n_clients, size=self.batch_size)
        return np.bincount(owners, minlength=n_clients).astype(np.int64)

    def expected_per_round(self, n_clients: int) -> float:
        return self.batch_size / self.period


@dataclass(frozen=True)
class HotspotArrivals(ArrivalProcess):
    """Adversarial skew: a ``hot_fraction`` of clients absorbs
    ``hot_weight`` of the Poisson arrival mass.

    The bursty hot-client trace of the serving load generator: a few
    "celebrity" clients hammer their (fixed-size) neighborhoods while
    the rest of the graph idles, concentrating load on ``hot·Δ``
    servers — the worst case for the burn threshold, and the regime
    where SAER's anonymous-server spreading has to do all the work.
    The hot set is the first ``⌈hot_fraction·n⌉`` client ids so traces
    are reproducible across processes without sharing extra state.
    """

    rate_per_client: float
    hot_fraction: float = 0.01
    hot_weight: float = 0.9

    def __post_init__(self) -> None:
        if self.rate_per_client < 0:
            raise ValueError("rate_per_client must be non-negative")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ValueError("hot_weight must be in [0, 1]")

    def _n_hot(self, n_clients: int) -> int:
        return max(1, math.ceil(self.hot_fraction * n_clients))

    def sample(self, rng: np.random.Generator, n_clients: int, round_no: int) -> np.ndarray:
        total = rng.poisson(self.rate_per_client * n_clients)
        if total == 0:
            return np.zeros(n_clients, dtype=np.int64)
        n_hot = self._n_hot(n_clients)
        hot = rng.random(total) < self.hot_weight
        n_in_hot = int(np.count_nonzero(hot))
        owners = np.empty(total, dtype=np.int64)
        owners[:n_in_hot] = rng.integers(0, n_hot, size=n_in_hot)
        owners[n_in_hot:] = rng.integers(0, n_clients, size=total - n_in_hot)
        return np.bincount(owners, minlength=n_clients).astype(np.int64)

    def expected_per_round(self, n_clients: int) -> float:
        return self.rate_per_client * n_clients
