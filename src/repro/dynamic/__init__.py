"""The paper's §4 future-work scenario, built out: dynamic SAER.

"We are particularly intrigued by the analysis of our protocol … in the
presence of a dynamic framework where, for instance, the client requests
arrive on line and some random topology change may happen during the
protocol execution. … we believe that the simple structure of saer can
well manage such a dynamic scenario and achieves a metastable regime
with good performances."

This subpackage implements exactly that scenario:

* online ball arrivals (:class:`PoissonArrivals`, :class:`BatchArrivals`),
* random topology churn (:class:`RewireChurn` — clients resample their
  trusted server set),
* a SAER variant with *burn recovery* (a burned server resets after a
  fixed number of rounds — without recovery, sustained arrivals
  eventually burn every server and the system must diverge),
* metastability diagnostics on the backlog process (experiment E12).
"""

from .arrivals import ArrivalProcess, BatchArrivals, HotspotArrivals, PoissonArrivals
from .churn import RewireChurn
from .simulator import DynamicResult, run_dynamic_saer

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BatchArrivals",
    "HotspotArrivals",
    "RewireChurn",
    "DynamicResult",
    "run_dynamic_saer",
]
