"""Dynamic SAER: online arrivals, churn, and burn recovery (experiment E12).

Semantics (our concretization of §4's sketch — documented substitution):

* Time is still synchronous rounds.  At the start of each round new
  balls arrive per the :class:`~repro.dynamic.arrivals.ArrivalProcess`;
  each ball belongs to the client it arrived at and must be assigned to
  a server in that client's *current* neighborhood.
* Every alive ball is submitted each round to a uniform random current
  neighbor — the unchanged SAER client rule.
* Servers run the SAER rule *per epoch*: a server counts received balls
  and burns when the count exceeds ``⌊c·d⌋``; a burned server recovers
  after ``recovery`` rounds, resetting its received counter (modelling
  capacity that frees up as earlier work drains).  ``recovery=None``
  disables recovery — the static protocol, which must diverge under
  sustained arrivals (every server eventually burns; useful as the E12
  control row).
* With probability ``churn.rate`` a client's neighborhood is resampled
  each round (see :class:`~repro.dynamic.churn.RewireChurn`).

The round step itself lives in :class:`repro.serve.state.ServingState`
— the same mutable server-side state the live serving layer
(:mod:`repro.serve`) drives with real traffic — so the offline tables
and the service can never drift apart.  This function is the offline
harness over it: sample arrivals, admit, route, record the series.  It
is bit-identical to the pre-refactor monolithic simulator for any seed
(``tests/data/dynamic_golden.json`` pins the E12 control rows).

The interesting output is the *backlog* process (alive balls per round)
and per-ball assignment latency: the paper conjectures a metastable
regime — bounded backlog — for moderate offered load, which E12's table
exhibits, including the divergence above the capacity knee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ProtocolParams
from ..errors import ProtocolConfigError
from ..graphs.bipartite import BipartiteGraph
from .arrivals import ArrivalProcess
from .churn import RewireChurn

__all__ = ["DynamicResult", "run_dynamic_saer"]


@dataclass
class DynamicResult:
    """Series and summary statistics of a dynamic run.

    ``backlog[t]`` is the number of alive balls after round ``t``'s
    assignments; ``latencies`` collects rounds-to-assignment for every
    assigned ball.  :meth:`backlog_slope` and :meth:`is_metastable` are
    the stability diagnostics used by the E12 table.
    """

    horizon: int
    backlog: np.ndarray
    arrivals: np.ndarray
    assigned: np.ndarray
    burned_fraction: np.ndarray
    rewired_clients: np.ndarray
    latencies: np.ndarray
    params: ProtocolParams
    offered_load: float
    recovery: int | None
    dropped: int = 0
    #: Balls absorbed by Byzantine under-reporting servers (0 without a
    #: fault schedule); not counted in ``assigned``.
    byz_absorbed: int = 0

    def _second_half(self) -> np.ndarray:
        """The last ``⌈horizon/2⌉`` recorded rounds (never empty unless
        the series itself is): the window every "2nd half" diagnostic
        shares, clamped so ``horizon=1`` means the single round rather
        than an ill-defined half."""
        if self.backlog.size == 0:
            return self.backlog
        return self.backlog[min(self.horizon // 2, self.backlog.size - 1) :]

    def backlog_slope(self) -> float:
        """Least-squares slope of the backlog over the last half horizon.

        ≈0 (relative to the arrival rate) means the queue is not
        growing — the metastable signature; ≫0 means divergence.
        """
        half = self._second_half()
        if half.size < 2:
            return 0.0
        t = np.arange(half.size, dtype=np.float64)
        A = np.column_stack([np.ones_like(t), t])
        coef, *_ = np.linalg.lstsq(A, half.astype(np.float64), rcond=None)
        return float(coef[1])

    def is_metastable(self, tolerance: float = 0.05) -> bool:
        """Backlog growth below ``tolerance`` × arrival rate per round."""
        if self.offered_load == 0:
            return True
        return self.backlog_slope() <= tolerance * self.offered_load

    def stabilization_round(
        self, after: int = 0, factor: float = 2.0, window: int = 8
    ) -> int | None:
        """First round ≥ ``after`` where the backlog re-enters its band.

        The fault-tolerance diagnostic: pass the round a fault fired as
        ``after`` and get back the first round from which the next
        ``window`` rounds all stay below ``factor`` × the pre-fault mean
        backlog (the mean over rounds ``< after``, or the overall mean
        when ``after`` is 0).  ``None`` means the run never restabilized
        inside the horizon.
        """
        if self.backlog.size == 0:
            return 0
        base = self.backlog[:after] if after > 0 else self.backlog
        baseline = float(base.mean()) if base.size else 0.0
        # An idle pre-fault system has baseline 0; use the arrival rate
        # as the natural backlog scale instead of an impossible 0-band.
        band = factor * max(baseline, self.offered_load, 1.0)
        ok = self.backlog <= band
        w = max(1, min(window, self.backlog.size))
        for t in range(max(0, after), self.backlog.size - w + 1):
            if bool(ok[t : t + w].all()):
                return t
        return None

    def latency_stats(self) -> dict:
        if self.latencies.size == 0:
            return {
                "mean": float("nan"),
                "p50": float("nan"),
                "p95": float("nan"),
                "p99": float("nan"),
            }
        return {
            "mean": float(self.latencies.mean()),
            "p50": float(np.median(self.latencies)),
            "p95": float(np.quantile(self.latencies, 0.95)),
            "p99": float(np.quantile(self.latencies, 0.99)),
        }

    def summary(self) -> dict:
        """Scalar outcome record: one dict per run, E12's table rows.

        Every float is rounded the same way (3 decimals for latency
        quantiles, matching ``latency_mean``), and the ``horizon=1`` /
        empty-series corners resolve consistently: ``final_backlog`` and
        ``mean_backlog_2nd_half`` both describe the same single round
        when there is only one.
        """
        lat = self.latency_stats()
        half = self._second_half()
        return {
            "horizon": self.horizon,
            "offered_per_round": round(self.offered_load, 3),
            "recovery": self.recovery,
            "final_backlog": int(self.backlog[-1]) if self.backlog.size else 0,
            "mean_backlog_2nd_half": float(half.mean()) if half.size else 0.0,
            "backlog_slope": round(self.backlog_slope(), 4),
            "metastable": self.is_metastable(),
            "latency_mean": round(lat["mean"], 3),
            "latency_p50": round(lat["p50"], 3),
            "latency_p95": round(lat["p95"], 3),
            "latency_p99": round(lat["p99"], 3),
            "burned_frac_final": float(self.burned_fraction[-1])
            if self.burned_fraction.size
            else 0.0,
        }


def run_dynamic_saer(
    graph: BipartiteGraph,
    c: float,
    d: int,
    arrivals: ArrivalProcess,
    horizon: int,
    *,
    churn: RewireChurn | None = None,
    recovery: int | None = None,
    seed=None,
    kernel: str | None = None,
    faults=None,
) -> DynamicResult:
    """Simulate dynamic SAER for ``horizon`` rounds; see module docstring.

    ``d`` here only sets the burn threshold ``⌊c·d⌋`` (arriving balls
    are individual requests; the static protocol's per-client demand has
    no dynamic analogue).  ``kernel`` gates the round step like the
    batched engine (``None`` → ``REPRO_KERNELS`` → numpy); every gate is
    bit-identical.

    ``faults`` takes a :class:`repro.faults.FaultSchedule`: server
    crashes/stalls/Byzantine under-reporting overlay the route step and
    Byzantine clients rewrite the arrival counts, all from the
    schedule's own seed — the protocol RNG stream is untouched, so an
    empty schedule reproduces the fault-free run bit for bit.
    """
    from ..serve.state import ServingState

    if horizon < 1:
        raise ProtocolConfigError("horizon must be >= 1")
    state = ServingState(
        graph, c, d, recovery=recovery, churn=churn, seed=seed, kernel=kernel,
        faults=faults,
    )
    n_c = graph.n_clients

    backlog = np.zeros(horizon, dtype=np.int64)
    arr_series = np.zeros(horizon, dtype=np.int64)
    asg_series = np.zeros(horizon, dtype=np.int64)
    burned_frac = np.zeros(horizon, dtype=np.float64)
    rewired = np.zeros(horizon, dtype=np.int64)
    latencies: list[np.ndarray] = []

    for t in range(horizon):
        rewired[t] = state.round_begin()
        arr_series[t] = state.admit_counts(arrivals.sample(state.rng, n_c, t))
        out = state.route()
        if out.latencies.size:
            latencies.append(out.latencies)
        asg_series[t] = out.assigned
        backlog[t] = out.backlog
        burned_frac[t] = out.burned_fraction

    return DynamicResult(
        horizon=horizon,
        backlog=backlog,
        arrivals=arr_series,
        assigned=asg_series,
        burned_fraction=burned_frac,
        rewired_clients=rewired,
        latencies=np.concatenate(latencies) if latencies else np.empty(0, dtype=np.int64),
        params=state.params,
        offered_load=arrivals.expected_per_round(n_c),
        recovery=recovery,
        dropped=state.dropped,
        byz_absorbed=state.byz_absorbed,
    )
