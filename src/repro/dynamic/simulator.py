"""Dynamic SAER: online arrivals, churn, and burn recovery (experiment E12).

Semantics (our concretization of §4's sketch — documented substitution):

* Time is still synchronous rounds.  At the start of each round new
  balls arrive per the :class:`~repro.dynamic.arrivals.ArrivalProcess`;
  each ball belongs to the client it arrived at and must be assigned to
  a server in that client's *current* neighborhood.
* Every alive ball is submitted each round to a uniform random current
  neighbor — the unchanged SAER client rule.
* Servers run the SAER rule *per epoch*: a server counts received balls
  and burns when the count exceeds ``⌊c·d⌋``; a burned server recovers
  after ``recovery`` rounds, resetting its received counter (modelling
  capacity that frees up as earlier work drains).  ``recovery=None``
  disables recovery — the static protocol, which must diverge under
  sustained arrivals (every server eventually burns; useful as the E12
  control row).
* With probability ``churn.rate`` a client's neighborhood is resampled
  each round (see :class:`~repro.dynamic.churn.RewireChurn`).

The interesting output is the *backlog* process (alive balls per round)
and per-ball assignment latency: the paper conjectures a metastable
regime — bounded backlog — for moderate offered load, which E12's table
exhibits, including the divergence above the capacity knee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import ProtocolParams
from ..errors import ProtocolConfigError
from ..graphs.bipartite import BipartiteGraph
from ..rng import make_rng
from .arrivals import ArrivalProcess
from .churn import RewireChurn

__all__ = ["DynamicResult", "run_dynamic_saer"]


@dataclass
class DynamicResult:
    """Series and summary statistics of a dynamic run.

    ``backlog[t]`` is the number of alive balls after round ``t``'s
    assignments; ``latencies`` collects rounds-to-assignment for every
    assigned ball.  :meth:`backlog_slope` and :meth:`is_metastable` are
    the stability diagnostics used by the E12 table.
    """

    horizon: int
    backlog: np.ndarray
    arrivals: np.ndarray
    assigned: np.ndarray
    burned_fraction: np.ndarray
    rewired_clients: np.ndarray
    latencies: np.ndarray
    params: ProtocolParams
    offered_load: float
    recovery: int | None
    dropped: int = 0

    def backlog_slope(self) -> float:
        """Least-squares slope of the backlog over the last half horizon.

        ≈0 (relative to the arrival rate) means the queue is not
        growing — the metastable signature; ≫0 means divergence.
        """
        half = self.backlog[self.horizon // 2 :]
        if half.size < 2:
            return 0.0
        t = np.arange(half.size, dtype=np.float64)
        A = np.column_stack([np.ones_like(t), t])
        coef, *_ = np.linalg.lstsq(A, half.astype(np.float64), rcond=None)
        return float(coef[1])

    def is_metastable(self, tolerance: float = 0.05) -> bool:
        """Backlog growth below ``tolerance`` × arrival rate per round."""
        if self.offered_load == 0:
            return True
        return self.backlog_slope() <= tolerance * self.offered_load

    def latency_stats(self) -> dict:
        if self.latencies.size == 0:
            return {"mean": float("nan"), "p50": float("nan"), "p95": float("nan")}
        return {
            "mean": float(self.latencies.mean()),
            "p50": float(np.median(self.latencies)),
            "p95": float(np.quantile(self.latencies, 0.95)),
        }

    def summary(self) -> dict:
        lat = self.latency_stats()
        return {
            "horizon": self.horizon,
            "offered_per_round": round(self.offered_load, 3),
            "recovery": self.recovery,
            "final_backlog": int(self.backlog[-1]) if self.backlog.size else 0,
            "mean_backlog_2nd_half": float(self.backlog[self.horizon // 2 :].mean())
            if self.backlog.size
            else 0.0,
            "backlog_slope": round(self.backlog_slope(), 4),
            "metastable": self.is_metastable(),
            "latency_mean": round(lat["mean"], 3),
            "latency_p95": lat["p95"],
            "burned_frac_final": float(self.burned_fraction[-1])
            if self.burned_fraction.size
            else 0.0,
        }


def run_dynamic_saer(
    graph: BipartiteGraph,
    c: float,
    d: int,
    arrivals: ArrivalProcess,
    horizon: int,
    *,
    churn: RewireChurn | None = None,
    recovery: int | None = None,
    seed=None,
) -> DynamicResult:
    """Simulate dynamic SAER for ``horizon`` rounds; see module docstring.

    ``d`` here only sets the burn threshold ``⌊c·d⌋`` (arriving balls
    are individual requests; the static protocol's per-client demand has
    no dynamic analogue).
    """
    if horizon < 1:
        raise ProtocolConfigError("horizon must be >= 1")
    if recovery is not None and recovery < 1:
        raise ProtocolConfigError("recovery must be >= 1 when given")
    params = ProtocolParams(c=c, d=d)
    rng = make_rng(seed)
    n_c, n_s = graph.n_clients, graph.n_servers
    neighbor_lists = [graph.neighbors_of_client(v).copy() for v in range(n_c)]

    # Flat CSR view of the (mutable) neighbor lists, rebuilt only when
    # churn changes them — keeps the per-round destination gather fully
    # vectorized even with six-figure backlogs.
    def rebuild_flat():
        degs = np.array([nl.size for nl in neighbor_lists], dtype=np.int64)
        indptr = np.zeros(n_c + 1, dtype=np.int64)
        np.cumsum(degs, out=indptr[1:])
        indices = (
            np.concatenate(neighbor_lists) if indptr[-1] else np.empty(0, dtype=np.int64)
        )
        return degs, indptr, indices

    degs, indptr, indices = rebuild_flat()

    # Server state (SAER with optional epoch recovery).
    cum_received = np.zeros(n_s, dtype=np.int64)
    burned = np.zeros(n_s, dtype=bool)
    burn_clock = np.zeros(n_s, dtype=np.int64)
    capacity = params.capacity

    # Alive ball table: amortized-doubling buffers with an explicit
    # count, so arrivals append and acceptances compact in place instead
    # of rebuilding both arrays with np.concatenate every round (which
    # is O(rounds × backlog) over a run).
    ball_cap = 1024
    owners_buf = np.empty(ball_cap, dtype=np.int64)
    births_buf = np.empty(ball_cap, dtype=np.int64)
    n_alive = 0

    def _grow(need: int):
        nonlocal ball_cap, owners_buf, births_buf
        if need <= ball_cap:
            return
        while ball_cap < need:
            ball_cap *= 2
        new_owners = np.empty(ball_cap, dtype=np.int64)
        new_births = np.empty(ball_cap, dtype=np.int64)
        new_owners[:n_alive] = owners_buf[:n_alive]
        new_births[:n_alive] = births_buf[:n_alive]
        owners_buf, births_buf = new_owners, new_births

    backlog = np.zeros(horizon, dtype=np.int64)
    arr_series = np.zeros(horizon, dtype=np.int64)
    asg_series = np.zeros(horizon, dtype=np.int64)
    burned_frac = np.zeros(horizon, dtype=np.float64)
    rewired = np.zeros(horizon, dtype=np.int64)
    latencies: list[np.ndarray] = []
    dropped = 0

    for t in range(horizon):
        # Recovery of burned servers.
        if recovery is not None and burned.any():
            burn_clock[burned] += 1
            healed = burned & (burn_clock >= recovery)
            burned[healed] = False
            cum_received[healed] = 0
            burn_clock[healed] = 0
        # Churn.
        if churn is not None:
            rewired[t] = churn.apply(rng, neighbor_lists, n_s)
            if rewired[t]:
                degs, indptr, indices = rebuild_flat()
        # Arrivals (dropped at isolated clients — cannot ever be served).
        new_counts = arrivals.sample(rng, n_c, t)
        deg0 = degs == 0
        if deg0.any():
            dropped += int(new_counts[deg0].sum())
            new_counts[deg0] = 0
        arr_series[t] = int(new_counts.sum())
        if arr_series[t]:
            new_owners = np.repeat(np.arange(n_c, dtype=np.int64), new_counts)
            _grow(n_alive + new_owners.size)
            owners_buf[n_alive : n_alive + new_owners.size] = new_owners
            births_buf[n_alive : n_alive + new_owners.size] = t
            n_alive += new_owners.size
        if n_alive == 0:
            burned_frac[t] = burned.mean() if n_s else 0.0
            continue
        owners = owners_buf[:n_alive]
        births = births_buf[:n_alive]
        # Phase 1: every alive ball to a uniform current neighbor, via
        # the flat CSR view (vectorized gather).
        u = rng.random(n_alive)
        own_deg = degs[owners]
        offs = np.minimum((u * own_deg).astype(np.int64), own_deg - 1)
        dest = indices[indptr[owners] + offs]
        received = np.bincount(dest, minlength=n_s)
        # Phase 2: SAER rule.
        cum_received += received
        over = cum_received > capacity
        newly = over & ~burned
        accept = ~burned & ~over
        burned |= newly
        ok = accept[dest]
        if ok.any():
            latencies.append((t - births[ok]).astype(np.int64))
        asg_series[t] = int(np.count_nonzero(ok))
        # Boolean compaction of the survivors, in place.
        keep = ~ok
        kept = int(np.count_nonzero(keep))
        owners_buf[:kept] = owners[keep]
        births_buf[:kept] = births[keep]
        n_alive = kept
        backlog[t] = n_alive
        burned_frac[t] = float(burned.mean()) if n_s else 0.0

    return DynamicResult(
        horizon=horizon,
        backlog=backlog,
        arrivals=arr_series,
        assigned=asg_series,
        burned_fraction=burned_frac,
        rewired_clients=rewired,
        latencies=np.concatenate(latencies) if latencies else np.empty(0, dtype=np.int64),
        params=params,
        offered_load=arrivals.expected_per_round(n_c),
        recovery=recovery,
        dropped=dropped,
    )
