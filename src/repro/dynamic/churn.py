"""Random topology churn for the dynamic scenario (E12).

The paper's §4 mentions "some random topology change may happen during
the protocol execution".  We model the trust-subset flavour: each round,
every client independently resamples its *entire* server set with
probability ``rate`` (keeping its degree), as if its trust relations
were refreshed.  This preserves the degree profile on the client side
while continuously mixing the server side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RewireChurn"]


@dataclass(frozen=True)
class RewireChurn:
    """Per-round full-neighborhood rewiring with probability ``rate``.

    ``apply`` mutates the dynamic simulator's neighbor-list table in
    place (the immutable :class:`~repro.graphs.bipartite.BipartiteGraph`
    is never touched) and returns how many clients rewired.
    """

    rate: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")

    def apply(
        self,
        rng: np.random.Generator,
        neighbor_lists: list[np.ndarray],
        n_servers: int,
    ) -> int:
        if self.rate == 0.0:
            return 0
        n_clients = len(neighbor_lists)
        flips = np.flatnonzero(rng.random(n_clients) < self.rate)
        for v in flips.tolist():
            k = neighbor_lists[v].size
            if k == 0 or k > n_servers:
                continue
            # Distinct resample, degree preserved.  k is polylog-sized in
            # every E12 workload, so rejection sampling is O(k) expected.
            if k > n_servers // 8:
                fresh = rng.permutation(n_servers)[:k]
            else:
                fresh = np.unique(rng.integers(0, n_servers, size=int(k * 1.3) + 8))
                while fresh.size < k:
                    fresh = np.unique(
                        np.concatenate([fresh, rng.integers(0, n_servers, size=k)])
                    )
                if fresh.size > k:
                    fresh = rng.choice(fresh, size=k, replace=False)
            neighbor_lists[v] = np.sort(fresh.astype(np.int64))
        return int(flips.size)
