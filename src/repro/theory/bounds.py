"""Theorem-level constants and horizons as computable functions.

These are the quantities an experiment needs to *situate* a run against
the paper: the analysis threshold for ``c``, the ``3 log n`` completion
horizon, the minimum degree, and the work bound.  All logs follow the
base-2 convention justified in :mod:`repro.theory.recurrences`.
"""

from __future__ import annotations

import math

__all__ = [
    "c_min_regular",
    "c_min_almost_regular",
    "completion_horizon",
    "min_degree_required",
    "work_bound",
    "whp_failure_bound",
]


def c_min_regular(eta: float, d: int) -> float:
    """Lemma 4's requirement: ``c ≥ max(32, 288/(d·η))`` (regular case).

    ``η`` is the degree-density constant (``Δ ≥ η log² n``).  The paper
    stresses this is *not optimized*; experiment E6 shows single-digit
    ``c`` suffices in practice.
    """
    if eta <= 0 or d < 1:
        raise ValueError("need eta > 0 and d >= 1")
    return max(32.0, 288.0 / (d * eta))


def c_min_almost_regular(eta: float, d: int, rho: float) -> float:
    """Lemma 19's requirement: ``c ≥ max(32·ρ, 288/(η·d))``.

    ``ρ`` bounds ``Δ_max(S)/Δ_min(C)``; the regular case is ``ρ = 1``.
    """
    if rho < 1.0:
        raise ValueError("rho must be >= 1 (counting argument: Δ_min(C) <= Δ_max(S))")
    if eta <= 0 or d < 1:
        raise ValueError("need eta > 0 and d >= 1")
    return max(32.0 * rho, 288.0 / (eta * d))


def completion_horizon(n: int) -> int:
    """The proof's completion horizon ``⌈3 log₂ n⌉`` (Theorem 1 / Lemma 4).

    Within this many rounds every ball is assigned w.h.p. when the
    hypotheses hold; the union-bound arithmetic
    ``(1/2)^{3 log n} = n^{-3}`` pins the base to 2.
    """
    if n < 2:
        return 1
    return math.ceil(3.0 * math.log2(n))


def min_degree_required(n: int, eta: float) -> float:
    """Theorem 1's degree hypothesis ``Δ_min(C) ≥ η·log² n`` (base 2)."""
    if n < 2:
        return 0.0
    if eta <= 0:
        raise ValueError("eta must be positive")
    return eta * math.log2(n) ** 2


def work_bound(n: int, d: int, slack: float = 4.0) -> float:
    """A concrete Θ(n·d) work envelope for sanity checks.

    §3.2 shows the alive-ball count decays geometrically (factor ≤ 4/5
    per round while large), giving total work ``Θ(n·d)``.  With the
    Lemma-4 guarantee ``S_t ≤ 1/2``, each ball is re-sent with
    probability ≤ 1/2 per round, so expected sends per ball ≤ 2 and
    expected work ≤ ``2·2·n·d``.  ``slack`` converts that expectation
    into a generous test envelope (default 4 ⇒ bound ``4·n·d``
    messages ... i.e. ``2·slack_adjusted``); experiments report the
    measured constant.
    """
    if n < 1 or d < 1:
        raise ValueError("need n >= 1 and d >= 1")
    return slack * n * d


def whp_failure_bound(n: int) -> float:
    """The probability budget of Lemma 4/19: failure ≤ ``1/n²``.

    Useful when sizing Monte-Carlo trial counts: at ``n = 1024``,
    observing even one Lemma-4 violation in hundreds of trials would be
    wildly inconsistent with the theory (as long as ``c`` meets the
    analysis threshold).
    """
    if n < 2:
        return 1.0
    return 1.0 / (n * n)
