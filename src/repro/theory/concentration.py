"""Appendix-A concentration toolbox (Theorems 16 and 17) plus folklore bounds.

Implemented as plain tail-probability calculators so tests and
experiment annotations can quote the exact bound the paper invokes.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "chernoff_upper_tail",
    "chernoff_upper_tail_threshold",
    "mobd_tail",
    "one_choice_max_load_estimate",
    "binomial_upper_tail",
]


def chernoff_upper_tail(mu: float, eps: float) -> float:
    """Theorem 16: ``P(X ≥ (1+ε)μ) ≤ exp(-ε²μ/3)`` for ``ε ∈ (0, 1]``.

    Valid for sums of negatively associated 0/1 variables — the paper
    applies it with ``ε = 1`` to the request sums ``r_t(N(v))``
    (Lemma 10/11), whose summands ``z·X`` are negatively associated by
    Lemma 9(3).
    """
    if mu < 0:
        raise ValueError("mu must be non-negative")
    if not (0.0 < eps <= 1.0):
        raise ValueError("eps must be in (0, 1]")
    return math.exp(-(eps * eps) * mu / 3.0)


def chernoff_upper_tail_threshold(mu: float, prob: float) -> float:
    """Smallest ``ε ∈ (0, 1]`` with ``chernoff_upper_tail(mu, ε) ≤ prob``.

    Returns ``inf`` when even ``ε = 1`` cannot reach ``prob`` (i.e.
    ``μ < 3·ln(1/prob)``) — the regime where the paper switches from
    Stage I to Stage II because concentration on ``r_t`` fails below
    ``Θ(log n)``.
    """
    if mu <= 0:
        return math.inf
    if not (0.0 < prob < 1.0):
        raise ValueError("prob must be in (0, 1)")
    eps = math.sqrt(3.0 * math.log(1.0 / prob) / mu)
    return eps if eps <= 1.0 else math.inf


def mobd_tail(m_dev: float, betas) -> float:
    """Method of bounded differences: ``P(f - μ ≥ M) ≤ exp(-2M²/Σβ_j²)``.

    This is McDiarmid's inequality with the standard ``Σβ_j²``
    denominator.  (The paper's Theorem 17 statement prints ``Σβ_j`` —
    a typo; the §3.2 application with constant ``β_j = 2cd`` is
    unaffected up to constants.)
    """
    if m_dev < 0:
        raise ValueError("M must be non-negative")
    b = np.asarray(betas, dtype=np.float64)
    if b.size == 0 or np.any(b < 0):
        raise ValueError("betas must be a non-empty sequence of non-negative reals")
    denom = float(np.sum(b * b))
    if denom == 0.0:
        return 0.0 if m_dev > 0 else 1.0
    return math.exp(-2.0 * m_dev * m_dev / denom)


def one_choice_max_load_estimate(n: int) -> float:
    """The folklore ``ln n / ln ln n`` scale of one-choice max load.

    For n balls into n bins uniformly, the max load is
    ``(1 + o(1))·ln n/ln ln n`` w.h.p. — the baseline that best-of-k
    beats exponentially (§1.3).  Used to sanity-check the one-choice
    baseline's measured max load (within a small constant factor).
    """
    if n < 3:
        return float(n)
    return math.log(n) / math.log(math.log(n))


def binomial_upper_tail(n: int, p: float, k: int) -> float:
    """Exact ``P(Bin(n, p) ≥ k)`` via the regularized incomplete beta.

    Small utility used by tests to size rare-event assertions without
    pulling in a stats dependency beyond scipy.
    """
    from scipy.stats import binom

    if not (0 <= p <= 1):
        raise ValueError("p must be in [0, 1]")
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    return float(binom.sf(k - 1, n, p))
