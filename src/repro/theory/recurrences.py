"""The paper's recurrences: ``γ_t`` (eq. 11/32), ``δ_t`` (eq. 17/39), stage-I length.

A note on logarithm bases: the paper writes ``log`` throughout.  The
completion-time arithmetic in §3 ("the probability the ball is not
accepted for all rounds ``t ≤ 3 log n`` … is ``(1/2)^{3 log n} =
(1/n)^3``") only balances with ``log = log₂``, so horizon computations
in :mod:`repro.theory.bounds` use base 2.  The recurrences below take
whatever horizon the caller supplies, so the base question does not
arise here; where a ``log n`` appears *inside* a formula (``δ_t``,
stage-I threshold ``12 log n``) we follow the same base-2 convention.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "gamma_sequence",
    "gamma_products",
    "delta_sequence",
    "stage1_length",
    "stage1_length_bound",
    "alpha_for",
    "lemma12_holds",
]


def _log(n: float) -> float:
    """``log n`` in the paper's convention (base 2); see module docstring."""
    return math.log2(n)


def gamma_sequence(c: float, t_max: int, ratio: float = 1.0) -> np.ndarray:
    """The sequence ``γ_0..γ_{t_max}`` of recurrence (11) / (32).

    ``γ_0 = 1`` and ``γ_t = (2·ratio/c) · Σ_{i=1}^{t} Π_{j=0}^{i-1} γ_j``,
    where ``ratio = Δ_max(S)/Δ_min(C)`` (1 in the regular case, giving
    eq. 11; the primed sequence of eq. 32 otherwise).  Equivalent to the
    increment form (21): ``γ_{t+1} = γ_t + (2·ratio/c)·Π_{j≤t} γ_j``.

    The γ's are the conditional envelope for ``K_t`` during Stage I: the
    proof shows ``K_t ≤ γ_t`` w.h.p. round by round (Lemma 13/22).
    """
    if t_max < 0:
        raise ValueError("t_max must be >= 0")
    if c <= 0 or ratio <= 0:
        raise ValueError("c and ratio must be positive")
    coef = 2.0 * ratio / c
    out = np.empty(t_max + 1, dtype=np.float64)
    out[0] = 1.0
    prod = 1.0  # Π_{j=0}^{t-1} γ_j, starts as γ_0's contribution for i=1
    acc = 0.0  # Σ_{i=1}^{t} Π_{j<i} γ_j
    # For c below the Lemma-12 regime the sequence can diverge; let it
    # saturate to inf quietly (the divergence itself is the information).
    with np.errstate(over="ignore"):
        for t in range(1, t_max + 1):
            acc += prod
            out[t] = coef * acc
            prod *= out[t]
    return out


def gamma_products(c: float, t_max: int, ratio: float = 1.0) -> np.ndarray:
    """``P_t = Π_{j=0}^{t-1} γ_j`` for ``t = 0..t_max`` (``P_0 = 1``).

    This is the factor by which the conditional expectation of
    ``r_t(N(v))`` shrinks (Lemma 11: ``E[r_t(N(v)) | …] ≤ dΔ·P_{t}``),
    and Lemma 12 shows ``P_t ≤ α^{-t}``.
    """
    gam = gamma_sequence(c, max(t_max - 1, 0), ratio)
    out = np.empty(t_max + 1, dtype=np.float64)
    out[0] = 1.0
    for t in range(1, t_max + 1):
        out[t] = out[t - 1] * gam[t - 1]
    return out


def alpha_for(c: float, ratio: float = 1.0) -> float:
    """The decay base α of Lemma 12: largest α with ``2·ratio/c ≤ 1/α²``.

    Returns ``sqrt(c/(2·ratio))``.  Lemma 12 additionally needs
    ``α ≥ 2`` (i.e. ``c ≥ 8·ratio``); callers check that with
    :func:`lemma12_holds` or directly.  The paper takes ``c ≥ 32·ratio``
    so that ``α ≥ 4`` and ``P_T ≤ (1/4)^T``.
    """
    if c <= 0 or ratio <= 0:
        raise ValueError("c and ratio must be positive")
    return math.sqrt(c / (2.0 * ratio))


def lemma12_holds(c: float, t_max: int, ratio: float = 1.0) -> bool:
    """Numerically verify the claims of Lemma 12 up to ``t_max``.

    For ``α = alpha_for(c, ratio)`` with ``α ≥ 2``: (i) ``γ`` is
    non-decreasing, (ii) ``γ_t ≤ 1/α`` for ``t ≥ 1``, (iii) the product
    bound ``Π_{j=0}^{t-1} γ_j ≤ α^{-t}``.

    **Paper discrepancy note.** As printed, claim (iii) is quantified
    over ``t ≥ 1``, but at ``t = 1`` the product is ``γ_0 = 1 > 1/α`` —
    an off-by-one in the statement (the proof in Appendix B bounds the
    *terms* ``γ_t ≤ 1/α - 1/α^{t+1}``, which yields the product bound
    only from ``t = 2``; it is exactly tight there since
    ``γ_1 = 2/c = α^{-2}``).  We therefore verify (iii) for ``t ≥ 2``
    together with the corrected all-``t`` form
    ``Π_{j<t} γ_j ≤ α^{-(t-1)}``.  Nothing downstream is affected: the
    Lemma 13 application only needs geometric decay of the product.
    Returns False when ``α < 2`` (hypothesis not met) — useful for
    sweeping c.
    """
    alpha = alpha_for(c, ratio)
    if alpha < 2.0:
        return False
    gam = gamma_sequence(c, t_max, ratio)
    # "increasing" holds from t >= 1 (γ_0 = 1 sits above γ_1 = 2·ratio/c;
    # eq. 21 gives positive increments only between consecutive t >= 1).
    if np.any(np.diff(gam[1:]) < -1e-15):
        return False
    if t_max >= 1 and np.any(gam[1:] > 1.0 / alpha + 1e-12):
        return False
    prods = gamma_products(c, t_max, ratio)
    ts = np.arange(t_max + 1, dtype=np.float64)
    if t_max >= 2 and np.any(prods[2:] > alpha ** (-ts[2:]) + 1e-12):
        return False
    if t_max >= 1 and np.any(prods[1:] > alpha ** (-(ts[1:] - 1.0)) + 1e-12):
        return False
    return True


def stage1_length(n: int, d: int, delta: float, c: float, ratio: float = 1.0) -> int:
    """The stage-I length ``T``: the smallest ``T ≥ 1`` with
    ``d·Δ·Π_{j=0}^{T-1} γ_j ≤ 12 log n`` (eq. 14 / 36).

    ``delta`` is ``Δ`` in the regular case and ``Δ_max(S)`` in the
    general case (eq. 36 uses ``d·Δ_max(S)``).  Returns 1 when the
    threshold already holds at ``T = 1``.
    """
    if n < 2 or d < 1 or delta <= 0:
        raise ValueError("need n >= 2, d >= 1, delta > 0")
    target = 12.0 * _log(n)
    gam = gamma_sequence(c, 1, ratio)  # grown lazily below
    prod = 1.0
    t = 0
    # The cap prevents an infinite loop for c too small for decay; the
    # product then stops shrinking and we bail at the horizon.
    cap = max(64, int(10 * _log(n)))
    gammas = gamma_sequence(c, cap, ratio)
    for t in range(1, cap + 1):
        prod *= gammas[t - 1]
        if d * delta * prod <= target:
            return t
    return cap


def stage1_length_bound(n: int, d: int, delta: float) -> float:
    """The closed-form bound ``T ≤ ½·log(dΔ/(12 log n))`` from Lemma 13.

    Valid under ``c ≥ 32`` (α ≥ 4).  Can be < 1 when ``dΔ`` is already
    below ``12 log n``; callers should clamp as needed.
    """
    if n < 2 or d < 1 or delta <= 0:
        raise ValueError("need n >= 2, d >= 1, delta > 0")
    inner = d * delta / (12.0 * _log(n))
    return 0.5 * _log(max(inner, 1.0))


def delta_sequence(
    n: int,
    d: int,
    delta: float,
    c: float,
    t_start: int,
    t_end: int,
) -> np.ndarray:
    """The stage-II envelope ``δ_t = 1/4 + 24·t·log n/(c·d·Δ)`` (eq. 17 / 39).

    Returns the values for ``t = t_start..t_end`` inclusive.  In the
    general case pass ``delta = Δ_min(C)`` (eq. 39).  Lemma 14 needs
    ``δ_t ≤ 1/2`` throughout ``t ≤ 3 log n``, which the paper secures
    via ``c ≥ 288/(η·d)``.
    """
    if t_end < t_start:
        raise ValueError("t_end must be >= t_start")
    ts = np.arange(t_start, t_end + 1, dtype=np.float64)
    return 0.25 + 24.0 * ts * _log(n) / (c * d * delta)
