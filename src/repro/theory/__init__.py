"""The paper's analysis machinery as computable functions.

* :mod:`repro.theory.recurrences` — the sequences ``γ_t`` (eq. 11/32)
  and ``δ_t`` (eq. 17/39), stage-I length ``T``, and the Lemma-12
  property checker.
* :mod:`repro.theory.bounds` — the constants and horizons of Theorem 1 /
  Lemmas 4 and 19 (``c_min``, the ``3 log n`` horizon, work bounds).
* :mod:`repro.theory.concentration` — the Appendix-A toolbox: Chernoff
  for negatively associated variables (Theorem 16) and the method of
  bounded differences (Theorem 17).
"""

from .bounds import (
    c_min_almost_regular,
    c_min_regular,
    completion_horizon,
    min_degree_required,
    whp_failure_bound,
    work_bound,
)
from .concentration import (
    chernoff_upper_tail,
    chernoff_upper_tail_threshold,
    mobd_tail,
    one_choice_max_load_estimate,
)
from .recurrences import (
    alpha_for,
    delta_sequence,
    gamma_products,
    gamma_sequence,
    lemma12_holds,
    stage1_length,
)

__all__ = [
    "gamma_sequence",
    "gamma_products",
    "delta_sequence",
    "stage1_length",
    "alpha_for",
    "lemma12_holds",
    "c_min_regular",
    "c_min_almost_regular",
    "completion_horizon",
    "min_degree_required",
    "work_bound",
    "whp_failure_bound",
    "chernoff_upper_tail",
    "chernoff_upper_tail_threshold",
    "mobd_tail",
    "one_choice_max_load_estimate",
]
