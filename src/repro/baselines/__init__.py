"""Baseline allocation algorithms the paper compares against (§1.3).

Sequential (one ball at a time, servers disclose loads):

* :func:`one_choice` — throw each ball at one uniform neighbor; the
  folklore ``Θ(log n/log log n)`` max-load baseline.
* :func:`greedy_best_of_k` — Azar et al.'s best-of-k, restricted to
  neighborhoods as in Kenthapadi & Panigrahy [19].
* :func:`godfrey_greedy` — Godfrey's rule [17]: a uniformly random
  *least-loaded* server of the whole neighborhood.

Parallel (synchronous rounds, symmetric, non-adaptive):

* :func:`run_parallel_greedy` — the Adler–Chakrabarti–Rasmussen-style
  k-request/collision protocol [25].
* :func:`run_threshold_protocol` — the generic per-round threshold
  family [25, 22] (accept up to ``T`` balls per round, re-throw excess);
  SAER/RAES are the *cumulative*-threshold members of this family.

All baselines report the same work measure as the core engine (messages
= requests + replies) so cross-protocol tables are apples-to-apples.
The sequential ones additionally report ``steps`` (= balls placed) to
make the parallel-vs-sequential completion-time contrast explicit.
"""

from .results import BaselineResult
from .parallel_greedy import run_parallel_greedy
from .sequential import godfrey_greedy, greedy_best_of_k, one_choice
from .threshold import run_threshold_protocol

__all__ = [
    "BaselineResult",
    "one_choice",
    "greedy_best_of_k",
    "godfrey_greedy",
    "run_parallel_greedy",
    "run_threshold_protocol",
]
