"""Parallel k-request greedy with collisions (Adler et al. [25] style).

Round structure (the "grant / confirm" shape of symmetric, non-adaptive
parallel protocols on the complete graph, restricted here to
neighborhoods):

1. every alive ball sends a request to ``k`` admissible servers chosen
   independently and uniformly at random (with replacement);
2. every server *grants* up to ``grants_per_round`` of the requests it
   received this round (a uniform subset — symmetric tie-breaking);
3. a ball that received at least one grant picks its first granting
   server, confirms there, and retires; unconfirmed grants lapse (the
   server's slot is simply wasted that round).

Work: ``2k`` messages per alive ball per round (requests + replies) plus
2 per confirmation.  With ``r`` rounds and ``k`` choices this family
achieves max load ``O((log n/log log n)^{1/r})`` on the complete graph
([25], §1.3); here it runs on restricted topologies for the E9
comparison table.
"""

from __future__ import annotations

import numpy as np

from ..core.config import RunOptions
from ..errors import GraphValidationError, ProtocolConfigError
from ..graphs.bipartite import BipartiteGraph
from ..rng import make_rng
from .results import BaselineResult

__all__ = ["run_parallel_greedy"]


def run_parallel_greedy(
    graph: BipartiteGraph,
    d: int,
    k: int = 2,
    *,
    grants_per_round: int = 1,
    seed=None,
    options: RunOptions | None = None,
) -> BaselineResult:
    """Run the parallel k-request greedy; see module docstring."""
    if d < 1 or k < 1 or grants_per_round < 1:
        raise ProtocolConfigError("d, k and grants_per_round must all be >= 1")
    if graph.has_isolated_clients():
        raise GraphValidationError("isolated clients cannot place balls")
    rng = make_rng(seed)
    opts = options or RunOptions()
    n_c, n_s = graph.n_clients, graph.n_servers
    alive = np.full(n_c, d, dtype=np.int64)
    loads = np.zeros(n_s, dtype=np.int64)
    total = n_c * d
    assigned = 0
    work = 0
    rounds = 0
    cap_rounds = opts.cap_for(max(n_c, n_s))
    indptr, indices = graph.client_indptr, graph.client_indices
    degs = graph.client_degrees
    while assigned < total and rounds < cap_rounds:
        rounds += 1
        ball_owner = np.repeat(np.arange(n_c, dtype=np.int64), alive)
        n_balls = ball_owner.size
        # k requests per ball, flattened: request j of ball i at index i*k+j.
        req_ball = np.repeat(np.arange(n_balls, dtype=np.int64), k)
        owners = ball_owner[req_ball]
        u = rng.random(owners.size)
        deg = degs[owners]
        dest = indices[indptr[owners] + np.minimum((u * deg).astype(np.int64), deg - 1)]
        # Server grants: uniform subset of its batch, size <= grants_per_round.
        prio = rng.random(dest.size)
        order = np.lexsort((prio, dest))
        dsorted = dest[order]
        new_run = np.concatenate(([True], dsorted[1:] != dsorted[:-1]))
        starts = np.flatnonzero(new_run)
        run_id = np.cumsum(new_run.astype(np.int64)) - 1
        rank = np.arange(dest.size, dtype=np.int64) - starts[run_id]
        granted_sorted = rank < grants_per_round
        granted = np.zeros(dest.size, dtype=bool)
        granted[order] = granted_sorted
        # Ball confirms its first granted request (lowest request index).
        sentinel = np.iinfo(np.int64).max
        win = np.full(n_balls, sentinel, dtype=np.int64)
        gidx = np.flatnonzero(granted)
        np.minimum.at(win, req_ball[gidx], gidx)
        confirmed = win < sentinel
        conf_req = win[confirmed]
        conf_dest = dest[conf_req]
        loads += np.bincount(conf_dest, minlength=n_s)
        alive -= np.bincount(ball_owner[confirmed], minlength=n_c)
        got = int(np.count_nonzero(confirmed))
        assigned += got
        work += 2 * k * n_balls + 2 * got
    return BaselineResult(
        algorithm=f"parallel_greedy_k{k}",
        graph_name=graph.name,
        n_clients=n_c,
        n_servers=n_s,
        completed=assigned == total,
        rounds=rounds,
        steps=rounds,
        work=work,
        total_balls=total,
        assigned_balls=assigned,
        max_load=int(loads.max()) if n_s else 0,
        discloses_loads=False,
        loads=loads,
        params={"d": d, "k": k, "grants_per_round": grants_per_round},
    )
