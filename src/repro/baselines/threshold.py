"""The generic parallel threshold protocol family ([25]; also [22]).

Per round: every alive ball is thrown at one uniform random admissible
server; a server receiving a batch accepts up to ``T`` of them (a
uniformly random "fair" subset, as the paper describes: "the excess
balls are re-thrown in the next round") and rejects the rest.

Differences from SAER/RAES, which motivate the comparison table (E9):

* the threshold is *per round*, so a server's total load is bounded only
  by ``T × rounds`` unless a cumulative cap is also supplied;
* acceptance is per-ball, not per-batch, so servers must pick winners
  (slightly richer server logic, same 1-bit replies).

``cumulative_cap`` turns on a SAER-like lifetime bound: a server never
lets its total accepted load exceed the cap (this recovers a
RAES-flavoured rule with partial acceptance).
"""

from __future__ import annotations

import numpy as np

from ..core.config import RunOptions
from ..errors import GraphValidationError, ProtocolConfigError
from ..graphs.bipartite import BipartiteGraph
from ..rng import make_rng
from .results import BaselineResult

__all__ = ["run_threshold_protocol"]


def _select_winners(
    dest: np.ndarray,
    allowance: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Boolean mask of accepted balls: per server, a uniform subset of its
    batch of size ``min(batch, allowance[server])``.

    Implemented by ranking each ball within its destination's batch
    under a random priority and accepting ranks below the allowance —
    one sort, no per-server Python loop.
    """
    m = dest.size
    if m == 0:
        return np.zeros(0, dtype=bool)
    prio = rng.random(m)
    order = np.lexsort((prio, dest))
    dsorted = dest[order]
    # rank within each equal-dest run
    starts = np.flatnonzero(np.concatenate(([True], dsorted[1:] != dsorted[:-1])))
    run_id = np.cumsum(np.concatenate(([0], (dsorted[1:] != dsorted[:-1]).astype(np.int64))))
    rank = np.arange(m, dtype=np.int64) - starts[run_id]
    ok_sorted = rank < allowance[dsorted]
    ok = np.zeros(m, dtype=bool)
    ok[order] = ok_sorted
    return ok


def run_threshold_protocol(
    graph: BipartiteGraph,
    d: int,
    threshold: int,
    *,
    cumulative_cap: int | None = None,
    seed=None,
    options: RunOptions | None = None,
) -> BaselineResult:
    """Run the per-round threshold protocol; see module docstring.

    Parameters
    ----------
    threshold:
        Per-round acceptance budget ``T`` of every server.
    cumulative_cap:
        Optional lifetime load cap (``None`` = unbounded, the classic
        [25] setting).
    """
    if d < 1:
        raise ProtocolConfigError("d must be >= 1")
    if threshold < 1:
        raise ProtocolConfigError("threshold must be >= 1")
    if cumulative_cap is not None and cumulative_cap < 1:
        raise ProtocolConfigError("cumulative_cap must be >= 1 when given")
    if graph.has_isolated_clients():
        raise GraphValidationError("isolated clients cannot place balls")
    rng = make_rng(seed)
    opts = options or RunOptions()
    n_c, n_s = graph.n_clients, graph.n_servers
    alive = np.full(n_c, d, dtype=np.int64)
    loads = np.zeros(n_s, dtype=np.int64)
    total = n_c * d
    assigned = 0
    work = 0
    rounds = 0
    cap_rounds = opts.cap_for(max(n_c, n_s))
    indptr, indices = graph.client_indptr, graph.client_indices
    degs = graph.client_degrees
    while assigned < total and rounds < cap_rounds:
        rounds += 1
        senders = np.repeat(np.arange(n_c, dtype=np.int64), alive)
        u = rng.random(senders.size)
        deg = degs[senders]
        dest = indices[indptr[senders] + np.minimum((u * deg).astype(np.int64), deg - 1)]
        allowance = np.full(n_s, threshold, dtype=np.int64)
        if cumulative_cap is not None:
            allowance = np.minimum(allowance, np.maximum(cumulative_cap - loads, 0))
        ok = _select_winners(dest, allowance, rng)
        loads += np.bincount(dest[ok], minlength=n_s)
        alive -= np.bincount(senders[ok], minlength=n_c)
        got = int(np.count_nonzero(ok))
        assigned += got
        work += 2 * senders.size
    return BaselineResult(
        algorithm="threshold",
        graph_name=graph.name,
        n_clients=n_c,
        n_servers=n_s,
        completed=assigned == total,
        rounds=rounds,
        steps=rounds,
        work=work,
        total_balls=total,
        assigned_balls=assigned,
        max_load=int(loads.max()) if n_s else 0,
        discloses_loads=False,
        loads=loads,
        params={"d": d, "threshold": threshold, "cumulative_cap": cumulative_cap},
    )
