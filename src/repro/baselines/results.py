"""Shared result record for baseline allocators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["BaselineResult"]


@dataclass
class BaselineResult:
    """Outcome of a baseline allocation.

    ``rounds`` is 0 for sequential algorithms (they have no synchronous
    round structure; their time cost is ``steps`` sequential ball
    placements).  ``work`` counts messages exactly as the core engine
    does (each probe/request plus its reply).  ``discloses_loads``
    records whether the algorithm requires servers to reveal load
    information — the privacy axis the paper contrasts SAER against
    greedy on (§1.3).
    """

    algorithm: str
    graph_name: str
    n_clients: int
    n_servers: int
    completed: bool
    rounds: int
    steps: int
    work: int
    total_balls: int
    assigned_balls: int
    max_load: int
    discloses_loads: bool
    loads: Optional[np.ndarray] = field(default=None, repr=False)
    params: dict = field(default_factory=dict)

    @property
    def alive_balls(self) -> int:
        return self.total_balls - self.assigned_balls

    @property
    def work_per_ball(self) -> float:
        return self.work / self.total_balls if self.total_balls else 0.0

    def summary(self) -> dict:
        out = {
            "algorithm": self.algorithm,
            "graph": self.graph_name,
            "n": self.n_clients,
            "completed": self.completed,
            "rounds": self.rounds,
            "steps": self.steps,
            "work": self.work,
            "work_per_ball": round(self.work_per_ball, 3),
            "max_load": self.max_load,
            "discloses_loads": self.discloses_loads,
        }
        out.update(self.params)
        return out
