"""Sequential baselines on restricted topologies (§1.3 of the paper).

All three process balls one at a time in a (seeded) uniformly random
global order over (client, slot) pairs — the standard sequential model
where ball ``u`` sees the loads produced by balls ``u' < u``.

Work accounting: a load probe costs 2 messages (query + value), an
assignment costs 2 (placement + ack), mirroring the engine's
2-messages-per-request convention.  These algorithms *disclose server
loads to clients* — exactly the property the paper's threshold approach
avoids (remark after Algorithm 1).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphValidationError, ProtocolConfigError
from ..graphs.bipartite import BipartiteGraph
from ..rng import make_rng
from .results import BaselineResult

__all__ = ["one_choice", "greedy_best_of_k", "godfrey_greedy"]


def _ball_order(graph: BipartiteGraph, d: int, rng: np.random.Generator) -> np.ndarray:
    """Random global arrival order of the ``n·d`` balls (client ids)."""
    if d < 1:
        raise ProtocolConfigError("d must be >= 1")
    if graph.has_isolated_clients():
        raise GraphValidationError("isolated clients cannot place balls")
    owners = np.repeat(np.arange(graph.n_clients, dtype=np.int64), d)
    return rng.permutation(owners)


def one_choice(graph: BipartiteGraph, d: int, seed=None) -> BaselineResult:
    """Each ball goes to a single uniform random admissible server.

    The no-coordination baseline: max load ``Θ(log n/log log n)`` on the
    complete graph ([26], §1.3).  Fully vectorized — order does not
    matter when no load information is used.
    """
    rng = make_rng(seed)
    if graph.has_isolated_clients():
        raise GraphValidationError("isolated clients cannot place balls")
    owners = np.repeat(np.arange(graph.n_clients, dtype=np.int64), d)
    deg = graph.client_degrees[owners]
    u = rng.random(owners.size)
    offs = np.minimum((u * deg).astype(np.int64), deg - 1)
    dest = graph.client_indices[graph.client_indptr[owners] + offs]
    loads = np.bincount(dest, minlength=graph.n_servers).astype(np.int64)
    total = owners.size
    return BaselineResult(
        algorithm="one_choice",
        graph_name=graph.name,
        n_clients=graph.n_clients,
        n_servers=graph.n_servers,
        completed=True,
        rounds=0,
        steps=int(total),
        work=2 * int(total),
        total_balls=int(total),
        assigned_balls=int(total),
        max_load=int(loads.max()) if loads.size else 0,
        discloses_loads=False,
        loads=loads,
        params={"d": d},
    )


def greedy_best_of_k(graph: BipartiteGraph, d: int, k: int = 2, seed=None) -> BaselineResult:
    """Sequential best-of-k on neighborhoods (Azar et al. [3] / [19]).

    Each ball samples ``k`` servers independently and uniformly *with
    replacement* from its owner's neighborhood and joins the least
    loaded (ties → the first sampled).  With ``|N(u)| ≥ n^Ω(1/log log n)``
    this achieves ``Θ(log log n)`` max load [19].
    """
    if k < 1:
        raise ProtocolConfigError("k must be >= 1")
    rng = make_rng(seed)
    order = _ball_order(graph, d, rng)
    loads = np.zeros(graph.n_servers, dtype=np.int64)
    indptr, indices = graph.client_indptr, graph.client_indices
    degs = graph.client_degrees
    work = 0
    for v in order:
        deg = degs[v]
        u = rng.random(k)
        cand = indices[indptr[v] + np.minimum((u * deg).astype(np.int64), deg - 1)]
        best = cand[np.argmin(loads[cand])]
        loads[best] += 1
        work += 2 * k + 2  # k probes (+replies folded into the 2x) + placement
    total = order.size
    return BaselineResult(
        algorithm=f"greedy_best_of_{k}",
        graph_name=graph.name,
        n_clients=graph.n_clients,
        n_servers=graph.n_servers,
        completed=True,
        rounds=0,
        steps=int(total),
        work=int(work),
        total_balls=int(total),
        assigned_balls=int(total),
        max_load=int(loads.max()) if loads.size else 0,
        discloses_loads=True,
        loads=loads,
        params={"d": d, "k": k},
    )


def godfrey_greedy(graph: BipartiteGraph, d: int, seed=None) -> BaselineResult:
    """Godfrey's rule [17]: a uniform random *minimum-load* neighbor.

    Scans the whole neighborhood per ball (work ``Θ(n·Δ_max(C))``, as the
    paper notes in §1.3), achieving optimal max load when neighborhoods
    are ``Ω(log n)``-sized and near-uniform.
    """
    rng = make_rng(seed)
    order = _ball_order(graph, d, rng)
    loads = np.zeros(graph.n_servers, dtype=np.int64)
    indptr, indices = graph.client_indptr, graph.client_indices
    work = 0
    for v in order:
        row = indices[indptr[v] : indptr[v + 1]]
        row_loads = loads[row]
        lo = row_loads.min()
        mins = row[row_loads == lo]
        pick = mins[int(rng.integers(0, mins.size))]
        loads[pick] += 1
        work += 2 * row.size + 2  # probe the whole neighborhood + placement
    total = order.size
    return BaselineResult(
        algorithm="godfrey_greedy",
        graph_name=graph.name,
        n_clients=graph.n_clients,
        n_servers=graph.n_servers,
        completed=True,
        rounds=0,
        steps=int(total),
        work=int(work),
        total_balls=int(total),
        assigned_balls=int(total),
        max_load=int(loads.max()) if loads.size else 0,
        discloses_loads=True,
        loads=loads,
        params={"d": d},
    )
