"""The experiment catalog: one entry per regenerated paper claim.

Besides the claim metadata, every entry *declares* its execution-plan
support (``capabilities``): which :class:`repro.plan.RunPlan` axes the
runner's kwargs expose — ``backend``, ``graph_cache``, ``share_graph``,
``results``, ``kernel``, plus the universal ``trials`` / ``seed`` /
``processes``.  The CLI forwards overrides from these declarations (and
warns on unsupported flags) instead of probing runner signatures; a
consistency test asserts the declarations against the actual
signatures.  ``smoke`` holds tiny-scale kwargs the plan-smoke harness
(:mod:`repro.experiments.smoke`) uses to dry-run every experiment
through :func:`repro.plan.execute`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from ..errors import ExperimentError

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "list_experiments"]

#: Overrides every runner accepts (Monte-Carlo scale and dispatch).
_COMMON = ("trials", "seed", "processes")
#: The sweep runners' full plan-axis surface.  ``spool``/``resume`` are
#: the durable-execution axis (:mod:`repro.durable`): stream blocks to
#: a crash-survivable on-disk spool, resume an interrupted sweep.
_SWEEP = _COMMON + (
    "backend", "graph_cache", "results", "kernel", "kernel_threads",
    "spool", "resume", "seed_mode",
)


def _smoke(**kwargs) -> Mapping:
    """Freeze a smoke-kwargs dict (specs are immutable)."""
    return MappingProxyType(dict(kwargs))


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata tying a paper claim to the code that regenerates it.

    ``runner`` names the function in :mod:`repro.experiments.runners`;
    ``bench`` names the pytest-benchmark module; ``expected_shape`` is
    the acceptance criterion (shape, not absolute numbers — see
    DESIGN.md §5); ``capabilities`` declares which plan-axis overrides
    the runner accepts; ``smoke`` holds tiny-scale kwargs for the
    plan-smoke harness.
    """

    id: str
    title: str
    claim: str
    paper_ref: str
    runner: str
    bench: str
    expected_shape: str
    modules: tuple[str, ...] = field(default_factory=tuple)
    capabilities: tuple[str, ...] = _COMMON
    smoke: Mapping = field(default_factory=dict)


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.id: spec
    for spec in [
        ExperimentSpec(
            id="E1",
            title="Completion time is O(log n)",
            claim="saer(c,d) completes within 3·log n rounds w.h.p. on Δ-regular graphs with Δ = Ω(log² n)",
            paper_ref="Theorem 1 (completion); Lemma 4",
            runner="run_e01_completion",
            bench="benchmarks/bench_e01_completion_time.py",
            expected_shape="median rounds fit a + b·log2(n) with R² high; all runs within the 3·log2(n) horizon",
            modules=("repro.core.policies", "repro.graphs.generators", "repro.analysis.fitting"),
            capabilities=_SWEEP,
            smoke=_smoke(ns=(64, 128), trials=2),
        ),
        ExperimentSpec(
            id="E2",
            title="Total work is Θ(n)",
            claim="saer(c,d) exchanges Θ(n) messages in total, w.h.p.",
            paper_ref="Theorem 1 (work); §3.2",
            runner="run_e02_work",
            bench="benchmarks/bench_e02_work_linear.py",
            expected_shape="work/n flat across n; power-law exponent of work vs n ≈ 1",
            modules=("repro.core.engine", "repro.core.metrics"),
            capabilities=_SWEEP,
            smoke=_smoke(ns=(64, 128), trials=2),
        ),
        ExperimentSpec(
            id="E3",
            title="Max load never exceeds c·d",
            claim="on termination every server's load is at most c·d (protocol invariant)",
            paper_ref="§1.1 / remark (i) after Algorithm 1",
            runner="run_e03_max_load",
            bench="benchmarks/bench_e03_max_load.py",
            expected_shape="0 violations across all graph families and (c,d) settings",
            modules=("repro.core.policies",),
            smoke=_smoke(n=64, settings=((2.0, 2),), families=("regular",), trials=2),
        ),
        ExperimentSpec(
            id="E4",
            title="Burned fraction stays below 1/2",
            claim="S_t ≤ 1/2 for all t ≤ 3·log n, w.h.p., for c above the analysis threshold",
            paper_ref="Lemma 4 (regular); Lemma 19 (almost-regular)",
            runner="run_e04_burned_fraction",
            bench="benchmarks/bench_e04_burned_fraction.py",
            expected_shape="max_t S_t ≤ 1/2 in every trial at the paper's c; small even at practical c",
            modules=("repro.core.metrics",),
            smoke=_smoke(ns=(64,), trials=2, include_paper_c=False),
        ),
        ExperimentSpec(
            id="E5",
            title="RAES dominates SAER",
            claim="the accepted-requests process of raes stochastically dominates saer's",
            paper_ref="Corollary 2",
            runner="run_e05_dominance",
            bench="benchmarks/bench_e05_raes_dominance.py",
            expected_shape="under slot coupling: RAES alive set nested in SAER's every round; RAES completes no later, in 100% of coupled trials",
            modules=("repro.core.coupling",),
            smoke=_smoke(ns=(64,), cs=(1.5,), trials=2),
        ),
        ExperimentSpec(
            id="E6",
            title="Threshold behaviour in c",
            claim="a sufficiently large constant c makes the protocol terminate fast; the analysis constants (32, 288/(ηd)) are conservative",
            paper_ref="Theorem 1 ('sufficiently large c'); footnote 12",
            runner="run_e06_c_threshold",
            bench="benchmarks/bench_e06_c_threshold.py",
            expected_shape="failures / long completions at c near 1; fast and flat completion once c is a small constant",
            modules=("repro.core.policies",),
            capabilities=_SWEEP + ("share_graph",),
            smoke=_smoke(n=64, cs=(1.5, 4.0), trials=2),
        ),
        ExperimentSpec(
            id="E7",
            title="Degree hypothesis Δ = Ω(log² n)",
            claim="the guarantee needs Δ_min(C) ≥ η·log² n; dense graphs recover the Becchetti et al. regime",
            paper_ref="Theorem 1 hypothesis; §1.2 overview; §4 (open: o(log² n))",
            runner="run_e07_degree_sweep",
            bench="benchmarks/bench_e07_degree_sweep.py",
            expected_shape="completion degrades as Δ falls below ~log² n at fixed c; dense Δ behaves like the complete graph",
            modules=("repro.graphs.generators",),
            capabilities=_SWEEP,
            smoke=_smoke(n=64, trials=2),
        ),
        ExperimentSpec(
            id="E8",
            title="Almost-regular allowance",
            claim="the bound holds for any Δ_max(S)/Δ_min(C) ≤ ρ = O(1), including the √n-client / O(1)-server example",
            paper_ref="Theorem 1; discussion after it; Appendix D",
            runner="run_e08_almost_regular",
            bench="benchmarks/bench_e08_almost_regular.py",
            expected_shape="O(log n)-like completion persists across ρ = O(1) families incl. paper_extremal",
            modules=("repro.graphs.generators.paper_extremal", "repro.graphs.properties"),
            capabilities=_SWEEP,
            smoke=_smoke(n=64, ratios=(1, 2), trials=2),
        ),
        ExperimentSpec(
            id="E9",
            title="Baselines trade-off table",
            claim="sequential greedy gets lower max load but Θ(n·k) sequential steps and discloses loads; SAER gets O(d) load in O(log n) parallel rounds with 1-bit replies",
            paper_ref="§1.3; remark (ii) after Algorithm 1",
            runner="run_e09_baselines",
            bench="benchmarks/bench_e09_baselines.py",
            expected_shape="greedy max load < SAER max load ≤ c·d; SAER rounds ≪ greedy steps; disclosure column",
            modules=("repro.baselines",),
            smoke=_smoke(n=64, trials=2),
        ),
        ExperimentSpec(
            id="E10",
            title="Stage-I exponential decay",
            claim="r_t(N(v)) decays exponentially while Ω(log n); K_t stays below the γ_t envelope",
            paper_ref="Lemmas 11-13 (regular); 21-22 (general); recurrence (11)",
            runner="run_e10_stage1",
            bench="benchmarks/bench_e10_stage1_decay.py",
            expected_shape="measured K_t ≤ γ_t and measured r_t max ≤ 2dΔ·Πγ envelope at the paper's c",
            modules=("repro.theory.recurrences", "repro.core.metrics"),
            capabilities=("seed",),
            smoke=_smoke(n=256),
        ),
        ExperimentSpec(
            id="E11",
            title="Alive-ball decay factor 4/5",
            claim="while ≥ nd/log n balls are alive, their number shrinks by factor ≥ 4/5 per round w.h.p.",
            paper_ref="§3.2, eq. (20)",
            runner="run_e11_alive_decay",
            bench="benchmarks/bench_e11_alive_decay.py",
            expected_shape="per-round alive ratios ≤ 4/5 in the heavy regime across trials",
            modules=("repro.core.metrics",),
            smoke=_smoke(ns=(128,), trials=2),
        ),
        ExperimentSpec(
            id="E12",
            title="Dynamic metastability",
            claim="(§4 conjecture) with online arrivals and churn, saer with recovery reaches a metastable bounded-backlog regime below capacity",
            paper_ref="§4 Conclusions and Future Work",
            runner="run_e12_dynamic",
            bench="benchmarks/bench_e12_dynamic_metastable.py",
            expected_shape="backlog slope ≈ 0 below the capacity knee, divergent above; no-recovery control diverges",
            modules=("repro.dynamic",),
            smoke=_smoke(n=64, rates=(0.1, 1.0), horizon=60, trials=1),
        ),
        ExperimentSpec(
            id="S1",
            title="Serving layer under live traffic",
            claim="the micro-batched serving stack (repro.serve) assigns replayed arrival traces with simulator-identical round semantics, and sheds adversarial hot-client overload via its retry policy",
            paper_ref="§4 Conclusions and Future Work (the dynamic scenario, served live)",
            runner="run_s1_serve",
            bench="benchmarks/bench_serve.py",
            expected_shape="poisson trace: ~100% assignment at metastable latency; hotspot trace: partial assignment with the excess shed as retries within max_wait_rounds",
            modules=("repro.serve",),
            capabilities=("seed",),
            smoke=_smoke(n=128, rounds=30, rate=0.3),
        ),
        ExperimentSpec(
            id="F1",
            title="Fault tolerance vs faulty fraction f",
            claim="dynamic saer with recovery restabilizes after a fraction f of servers crash, stall, or turn Byzantine, degrading gracefully in f; the f=0 row is bit-identical to the fault-free run",
            paper_ref="§4 Conclusions and Future Work (robustness of the dynamic scenario)",
            runner="run_f1_faults",
            bench="benchmarks/bench_serve.py",
            expected_shape="backlog restabilizes after the fault for small f and degrades monotonically as f grows; byz_absorbed > 0 only for byz_server rows; f=0 matches the no-fault control",
            modules=("repro.faults", "repro.dynamic"),
            smoke=_smoke(
                n=64, horizon=60, trials=1,
                fractions=(0.2,), kinds=("crash",),
            ),
        ),
    ]
}


def get_experiment(exp_id: str) -> ExperimentSpec:
    """Look up an experiment by id (``"E1"``..``"E12"``, case-insensitive)."""
    key = exp_id.upper()
    if key not in EXPERIMENTS:
        raise ExperimentError(f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key]


def list_experiments() -> list[ExperimentSpec]:
    """All experiments in id order (paper claims E1..E12, then the
    subsystem scenarios S1..)."""
    return [EXPERIMENTS[k] for k in sorted(EXPERIMENTS, key=lambda s: (s[0], int(s[1:])))]
