"""Ablation experiments on the protocol's design choices (DESIGN.md §5).

SAER makes three distinctive design choices; each ablation isolates one:

* **A1 — batch rejection vs partial acceptance.**  A SAER server that
  trips the threshold rejects its *whole* round batch (which is what
  makes the burned-set analysis clean).  The ablation compares against
  a cumulative-cap threshold server that accepts as much of the batch
  as fits (``run_threshold_protocol`` with ``cumulative_cap``).
* **A2 — permanent burning vs transient saturation.**  SAER's burned
  state is permanent; RAES's saturation is per-round.  (E5 proves the
  dominance direction; the ablation quantifies the *cost* of burning:
  extra rounds and messages at equal load cap.)
* **A3 — with- vs without-replacement destination sampling.**  Algorithm
  1 line 3 samples neighbors with replacement; the variant sends a
  client's per-round requests to distinct servers, removing same-client
  collisions.

All three run on the same graphs with the same ``(c, d)``, in the
contended regime where the differences are visible.
"""

from __future__ import annotations

import math

from ..baselines.threshold import run_threshold_protocol
from ..core.engine import run_raes, run_saer
from ..parallel.aggregate import summarize
from ..parallel.pool import map_parallel
from ..rng import spawn_seeds
from .runners import _regular_degree

__all__ = ["run_ablations"]

_VARIANTS = (
    ("saer (baseline)", "A-", "batch reject, permanent burn, with replacement"),
    ("partial-accept", "A1", "accept what fits (cumulative cap), no burn"),
    ("raes (transient)", "A2", "batch reject, per-round saturation"),
    ("distinct-sampling", "A3", "saer with without-replacement destinations"),
)


def _ablation_task(task) -> dict:
    variant, n, c, d, degree, seed_seq = task
    from ..graphs.generators import random_regular_bipartite

    g_seed, p_seed = seed_seq.spawn(2)
    graph = random_regular_bipartite(n, degree, seed=g_seed)
    capacity = int(math.floor(c * d))
    if variant == "saer (baseline)":
        r = run_saer(graph, c, d, seed=p_seed)
        out = dict(
            completed=r.completed, rounds=r.rounds, work=r.work, max_load=r.max_load
        )
    elif variant == "partial-accept":
        b = run_threshold_protocol(
            graph, d, threshold=capacity, cumulative_cap=capacity, seed=p_seed
        )
        out = dict(
            completed=b.completed, rounds=b.rounds, work=b.work, max_load=b.max_load
        )
    elif variant == "raes (transient)":
        r = run_raes(graph, c, d, seed=p_seed)
        out = dict(
            completed=r.completed, rounds=r.rounds, work=r.work, max_load=r.max_load
        )
    elif variant == "distinct-sampling":
        r = run_saer(graph, c, d, seed=p_seed, sampling="without_replacement")
        out = dict(
            completed=r.completed, rounds=r.rounds, work=r.work, max_load=r.max_load
        )
    else:  # pragma: no cover
        raise ValueError(variant)
    out["variant"] = variant
    out["capacity"] = capacity
    return out


def run_ablations(
    n: int = 1024,
    c: float = 1.5,
    d: int = 4,
    trials: int = 8,
    seed=1717,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """Run all three ablations; one table row per variant."""
    degree = _regular_degree(n)
    variants = [v for v, _, _ in _VARIANTS]
    seeds = spawn_seeds(seed, len(variants) * trials)
    tasks = []
    i = 0
    for variant in variants:
        for _t in range(trials):
            tasks.append((variant, n, c, d, degree, seeds[i]))
            i += 1
    recs = map_parallel(_ablation_task, tasks, processes=processes)
    rows = []
    for variant, abl_id, description in _VARIANTS:
        bucket = [r for r in recs if r["variant"] == variant]
        done_rounds = [r["rounds"] for r in bucket if r["completed"]]
        rows.append(
            {
                "ablation": abl_id,
                "variant": variant,
                "design_choice": description,
                "trials": len(bucket),
                "completed": sum(r["completed"] for r in bucket),
                "rounds_median": summarize(done_rounds)["median"] if done_rounds else None,
                "work_per_client": round(
                    summarize([r["work"] / n for r in bucket])["mean"], 2
                ),
                "max_load_worst": max(r["max_load"] for r in bucket),
                "capacity": bucket[0]["capacity"] if bucket else None,
            }
        )
    meta = {"n": n, "c": c, "d": d, "records": recs}
    return rows, meta
