"""Plan-smoke: dry-run every registered experiment through the plan layer.

Every runner routes through :func:`repro.plan.execute`, so running each
registry entry at its tiny declared ``smoke`` scale — across every
backend its declared capabilities support — proves the whole dispatch
pipeline end-to-end (CLI axis vocabulary → registry capabilities →
runner plan builders → ``execute`` → parallel dispatch → results
spool).  CI runs this as its *plan-smoke* job so a new axis (backend,
executor, spool format) cannot land unwired from an experiment.

Use from the CLI (``repro-lb smoke``) or directly::

    from repro.experiments.smoke import run_plan_smoke
    rows, ok = run_plan_smoke()
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from . import runners as runner_mod
from .registry import list_experiments

__all__ = ["run_plan_smoke"]


def run_plan_smoke(
    backends: Sequence[str] = ("reference", "batched"),
    *,
    processes: int | None = 1,
    only: Iterable[str] | None = None,
    spool_root: str | None = None,
) -> tuple[list[dict], bool]:
    """Run every experiment at smoke scale under each supported backend.

    Experiments whose capabilities do not include ``backend`` have a
    single canonical execution path and run once.  With ``spool_root``,
    spool-capable experiments additionally route through the durable
    sink (each run gets its own ``<spool_root>/<id>-<backend>``
    directory), so the smoke also proves journal + block-file assembly
    end-to-end.  Returns ``(rows, ok)``: one row per (experiment,
    backend) with the produced row count and status, and ``ok`` — True
    iff every run produced a non-empty table without raising.
    """
    wanted = {e.strip().upper() for e in only} if only is not None else None
    out: list[dict] = []
    ok = True
    if wanted is not None:
        unknown = wanted - {spec.id for spec in list_experiments()}
        for exp_id in sorted(unknown):
            # A filter that matches nothing must not green-light the run.
            out.append(
                {
                    "experiment": exp_id,
                    "backend": "-",
                    "rows": 0,
                    "status": "error: unknown experiment id",
                }
            )
            ok = False
    for spec in list_experiments():
        if wanted is not None and spec.id not in wanted:
            continue
        fn = getattr(runner_mod, spec.runner)
        run_backends = list(backends) if "backend" in spec.capabilities else [None]
        for backend in run_backends:
            kwargs = dict(spec.smoke)
            if "processes" in spec.capabilities and processes is not None:
                kwargs["processes"] = processes
            if backend is not None:
                kwargs["backend"] = backend
            label = backend or "reference"
            if spool_root is not None and "spool" in spec.capabilities:
                kwargs["spool"] = os.path.join(spool_root, f"{spec.id}-{label}")
            try:
                rows, _meta = fn(**kwargs)
            except Exception as exc:  # a smoke harness reports, never raises
                out.append(
                    {
                        "experiment": spec.id,
                        "backend": label,
                        "rows": 0,
                        "status": f"error: {type(exc).__name__}: {exc}",
                    }
                )
                ok = False
                continue
            n_rows = len(rows)
            out.append(
                {
                    "experiment": spec.id,
                    "backend": label,
                    "rows": n_rows,
                    "status": "ok" if n_rows else "empty",
                }
            )
            ok = ok and n_rows > 0
    return out, ok
