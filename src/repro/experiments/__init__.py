"""Experiment registry and runners regenerating every paper claim.

The paper has no numeric tables (it is a theory paper), so each
"experiment" regenerates one quantitative claim — see DESIGN.md §5 for
the full index.  Each runner returns ``(rows, meta)`` where ``rows`` is
a list of table-row dicts and ``meta`` holds fits/derived scalars; the
benches in ``benchmarks/`` and the CLI print them via
:func:`repro.analysis.format_table`.
"""

from .registry import EXPERIMENTS, ExperimentSpec, get_experiment, list_experiments
from .smoke import run_plan_smoke
from .runners import (
    run_e01_completion,
    run_e02_work,
    run_e03_max_load,
    run_e04_burned_fraction,
    run_e05_dominance,
    run_e06_c_threshold,
    run_e07_degree_sweep,
    run_e08_almost_regular,
    run_e09_baselines,
    run_e10_stage1,
    run_e11_alive_decay,
    run_e12_dynamic,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "get_experiment",
    "list_experiments",
    "run_plan_smoke",
    "run_e01_completion",
    "run_e02_work",
    "run_e03_max_load",
    "run_e04_burned_fraction",
    "run_e05_dominance",
    "run_e06_c_threshold",
    "run_e07_degree_sweep",
    "run_e08_almost_regular",
    "run_e09_baselines",
    "run_e10_stage1",
    "run_e11_alive_decay",
    "run_e12_dynamic",
]
