"""Experiment runners: one function per registry entry, E1..E12.

Every runner returns ``(rows, meta)``: ``rows`` are table records ready
for :func:`repro.analysis.format_table`; ``meta`` carries fits and
derived scalars (and is what EXPERIMENTS.md quotes).  All workers are
module-level so the process pool can pickle them; every trial gets a
spawned seed, so runs are reproducible for a fixed root ``seed``
regardless of process count.

Default parameter choices were calibrated so the *shape* under test is
visible (see DESIGN.md §5):

* ``c = 1.5, d = 4`` — the contended-but-terminating regime where
  completion time clearly grows with ``log n``;
* ``c = 1.2`` — the burnout regime (all servers burn, protocol stalls);
* ``c ≥ 2`` — the comfortable regime (few burns, 3-4 rounds);
* the paper-scale ``c`` from :func:`repro.theory.c_min_regular` — the
  analysis regime where Lemma 4's ``S_t ≤ 1/2`` is guaranteed.
"""

from __future__ import annotations

import functools
import math
from typing import Mapping

import numpy as np

from ..analysis.fitting import fit_log2, fit_powerlaw
from ..analysis.stats import wilson_interval
from ..batch import run_trials_batched
from ..core.config import ProtocolParams, RunOptions
from ..core.coupling import run_coupled
from ..core.engine import run_raes, run_saer
from ..core.metrics import TraceLevel
from ..errors import ExperimentError
from ..baselines import (
    godfrey_greedy,
    greedy_best_of_k,
    one_choice,
    run_parallel_greedy,
    run_threshold_protocol,
)
from ..dynamic import PoissonArrivals, RewireChurn, run_dynamic_saer
from ..graphs import (
    degree_report,
    erdos_renyi_bipartite,
    geometric_bipartite,
    near_regular,
    paper_extremal,
    random_regular_bipartite,
    trust_subsets,
)
from ..graphs.io import cached_graph
from ..parallel.aggregate import aggregate_records, summarize
from ..parallel.pool import map_parallel, worker_state
from ..parallel.sweep import ParameterGrid, run_sweep
from ..theory.bounds import c_min_regular, completion_horizon
from ..theory.recurrences import delta_sequence, gamma_products, gamma_sequence, stage1_length

__all__ = [
    "run_e01_completion",
    "run_e02_work",
    "run_e03_max_load",
    "run_e04_burned_fraction",
    "run_e05_dominance",
    "run_e06_c_threshold",
    "run_e07_degree_sweep",
    "run_e08_almost_regular",
    "run_e09_baselines",
    "run_e10_stage1",
    "run_e11_alive_decay",
    "run_e12_dynamic",
]


def _regular_degree(n: int) -> int:
    """The experiments' canonical degree: ``Δ = ⌈log₂² n⌉`` (η ≈ 1, base 2)."""
    return max(2, math.ceil(math.log2(n) ** 2))


def _graph_spec(point: Mapping) -> tuple[str, "object", dict]:
    """Resolve a sweep point to ``(family, builder, params)``."""
    family = point.get("family", "regular")
    n = point["n"]
    if family == "regular":
        return family, random_regular_bipartite, {
            "n": n,
            "degree": point.get("degree", _regular_degree(n)),
        }
    if family == "trust":
        return family, trust_subsets, {
            "n_clients": n,
            "n_servers": n,
            "k": point.get("degree", _regular_degree(n)),
        }
    if family == "near_regular":
        lo = point.get("degree_lo", _regular_degree(n))
        hi = point.get("degree_hi", 2 * lo)
        return family, near_regular, {"n": n, "degree_lo": lo, "degree_hi": hi}
    if family == "paper_extremal":
        return family, paper_extremal, {"n": n, "eta": point.get("eta", 0.5)}
    if family == "er":
        return family, erdos_renyi_bipartite, {
            "n_clients": n,
            "n_servers": n,
            "p": point.get("p", _regular_degree(n) / n),
        }
    if family == "geometric":
        r = point.get("radius", math.sqrt(_regular_degree(n) / (math.pi * n)))
        return family, geometric_bipartite, {"n_clients": n, "n_servers": n, "radius": r}
    raise ValueError(f"unknown graph family {family!r}")


def _graph_for(point: Mapping, seed, cache_dir: str | None = None) -> "object":
    """Build the graph a sweep point asks for (worker-side).

    With ``cache_dir`` the build goes through the on-disk graph cache
    (:func:`repro.graphs.io.cached_graph`): repeated sweeps over the
    same ``(family, params, seed)`` pay construction once.
    """
    family, builder, params = _graph_spec(point)
    return cached_graph(builder, family, params, seed, cache_dir)


# ---------------------------------------------------------------------------
# E1 / E2 — completion time O(log n), work Θ(n)
# ---------------------------------------------------------------------------


def _saer_run_record(graph, point: Mapping, p_seed) -> dict:
    """One reference-engine SAER run on ``graph`` → the canonical record.

    The single source of the per-trial record schema; every execution
    path (fresh-graph, cached, shared-topology, batched) must emit
    these keys.
    """
    opts = RunOptions(max_rounds=point.get("max_rounds"))
    res = run_saer(graph, point["c"], point["d"], seed=p_seed, options=opts)
    rep = degree_report(graph)
    return {
        "completed": res.completed,
        "rounds": res.rounds,
        "work": res.work,
        "work_per_client": res.work_per_client,
        "max_load": res.max_load,
        "capacity": res.params.capacity,
        "blocked_servers": res.blocked_servers,
        "rho": rep.rho,
        "deg_min_c": rep.client_degree_min,
    }


def _saer_batch_records(graph, point: Mapping, p_seeds) -> list[dict]:
    """One batched-engine trial block on ``graph`` → canonical records
    (same schema as :func:`_saer_run_record`).

    Runs on the worker's persistent engine buffers
    (:func:`repro.parallel.pool.worker_state`), so a process sweeping
    many grid points allocates its staging arrays, received slab, and
    RNG read-ahead once.  The kernel gate (``REPRO_KERNELS`` /
    ``repro-lb --kernel``) is read inside the engine.
    """
    opts = RunOptions(max_rounds=point.get("max_rounds"))
    res = run_trials_batched(
        graph,
        ProtocolParams(c=point["c"], d=point["d"]),
        "saer",
        seeds=list(p_seeds),
        options=opts,
        buffers=worker_state().engine_buffers,
    )
    rep = degree_report(graph)
    n_c = graph.n_clients
    return [
        {
            "completed": bool(res.completed[i]),
            "rounds": int(res.rounds[i]),
            "work": int(res.work[i]),
            "work_per_client": float(res.work[i] / n_c) if n_c else 0.0,
            "max_load": int(res.max_load[i]),
            "capacity": res.params.capacity,
            "blocked_servers": int(res.blocked_servers[i]),
            "rho": rep.rho,
            "deg_min_c": rep.client_degree_min,
        }
        for i in range(res.n_trials)
    ]


def _saer_point(point: Mapping, seed_seq, trial: int, cache_dir: str | None = None) -> dict:
    """Worker shared by E1/E2/E6/E7/E8: one SAER run on a fresh graph."""
    g_seed, p_seed = seed_seq.spawn(2)
    return _saer_run_record(_graph_for(point, g_seed, cache_dir), point, p_seed)


def _saer_point_shared(graph, point: Mapping, seed_seq, trial: int) -> dict:
    """Graph-context twin of :func:`_saer_point`: the topology comes from
    the worker's zero-copy task graph instead of a per-trial build.

    Spawns the same ``(graph seed, protocol seed)`` pair as the
    per-trial worker and uses the protocol half, so a (point, trial)'s
    protocol stream is identical to the other execution paths; the
    statistical difference is that every record conditions on the one
    shared graph draw.
    """
    _g_seed, p_seed = seed_seq.spawn(2)
    return _saer_run_record(graph, point, p_seed)


def _saer_point_shared_batched(graph, point: Mapping, seed_seqs, trials) -> list[dict]:
    """Graph-context twin of :func:`_saer_point_batched`."""
    return _saer_batch_records(graph, point, [ss.spawn(2)[1] for ss in seed_seqs])


def _saer_point_batched(
    point: Mapping, seed_seqs, trials, cache_dir: str | None = None
) -> list[dict]:
    """Batched counterpart of :func:`_saer_point`: one task per sweep point.

    Spawns the same per-trial (graph seed, protocol seed) pairs as the
    reference worker, then runs every trial of the point on **one**
    shared graph (built from the first trial's graph seed) via
    :func:`repro.batch.run_trials_batched`.  Protocol randomness is
    per-trial and bit-identical to the reference engine; the statistical
    difference is that the batched backend conditions a point's trials
    on a single graph sample instead of redrawing the graph per trial
    (the protocol-level Monte-Carlo estimate, not the joint
    graph×protocol one).
    """
    pairs = [ss.spawn(2) for ss in seed_seqs]
    graph = _graph_for(point, pairs[0][0], cache_dir)
    return _saer_batch_records(graph, point, [p_seed for _g, p_seed in pairs])


def _saer_sweep(
    grid, *, trials, seed, processes, backend, graph=None, graph_cache=None,
    results="columnar",
):
    """Dispatch a SAER sweep to the reference or batched execution path.

    ``graph`` (a :class:`~repro.graphs.bipartite.BipartiteGraph` or
    :class:`~repro.parallel.SharedGraph`) pins one topology for every
    (point, trial) and ships it to workers zero-copy; ``graph_cache``
    routes worker-side graph builds through the on-disk cache.  The two
    are exclusive (a pinned graph is never rebuilt).

    ``results`` selects the return carrier (see
    :func:`repro.parallel.sweep.run_sweep`): the default ``"columnar"``
    ships typed :class:`~repro.batch.results.ResultBlock` arrays back
    from batched workers and hands runners a lazy
    :class:`~repro.parallel.aggregate.ResultTable`; ``"records"`` keeps
    the legacy list of dicts.  Record content is identical.
    """
    if backend == "reference":
        if graph is not None:
            return run_sweep(
                _saer_point_shared,
                grid,
                n_trials=trials,
                seed=seed,
                processes=processes,
                graph=graph,
                results=results,
            )
        point_fn = (
            functools.partial(_saer_point, cache_dir=graph_cache) if graph_cache else _saer_point
        )
        return run_sweep(
            point_fn, grid, n_trials=trials, seed=seed, processes=processes,
            results=results,
        )
    if backend == "batched":
        if graph is not None:
            return run_sweep(
                _saer_point_shared_batched,
                grid,
                n_trials=trials,
                seed=seed,
                processes=processes,
                backend="batched",
                graph=graph,
                results=results,
            )
        point_fn = (
            functools.partial(_saer_point_batched, cache_dir=graph_cache)
            if graph_cache
            else _saer_point_batched
        )
        return run_sweep(
            point_fn,
            grid,
            n_trials=trials,
            seed=seed,
            processes=processes,
            backend="batched",
            results=results,
        )
    raise ExperimentError(f"unknown backend {backend!r}; known: reference, batched")


def run_e01_completion(
    ns=(256, 512, 1024, 2048, 4096),
    c: float = 1.5,
    d: int = 4,
    trials: int = 10,
    seed=101,
    processes: int | None = None,
    backend: str = "reference",
    graph_cache: str | None = None,
    results: str = "columnar",
) -> tuple[list[dict], dict]:
    """E1: median completion rounds vs n, with the log fit and horizon."""
    grid = ParameterGrid(n=list(ns), c=[c], d=[d])
    recs = _saer_sweep(
        grid, trials=trials, seed=seed, processes=processes, backend=backend,
        graph_cache=graph_cache, results=results,
    )
    rec_rows = list(recs)  # materialize lazy rows once, not once per bucket
    rows = []
    for n in ns:
        bucket = [r for r in rec_rows if r["n"] == n]
        stats = summarize([r["rounds"] for r in bucket])
        rows.append(
            {
                "n": n,
                "degree": _regular_degree(n),
                "trials": len(bucket),
                "completed": sum(r["completed"] for r in bucket),
                "rounds_median": stats["median"],
                "rounds_mean": round(stats["mean"], 2),
                "rounds_max": stats["max"],
                "horizon_3log2n": completion_horizon(n),
                "within_horizon": all(
                    r["rounds"] <= completion_horizon(n) for r in bucket if r["completed"]
                ),
            }
        )
    fit = fit_log2([r["n"] for r in rows], [r["rounds_median"] for r in rows])
    pw = fit_powerlaw([r["n"] for r in rows], [max(r["rounds_median"], 1e-9) for r in rows])
    meta = {
        "c": c,
        "d": d,
        "backend": backend,
        "log2_fit": fit.describe(),
        "log2_r2": fit.r2,
        "power_exponent": pw.slope,
        "records": recs,
    }
    return rows, meta


def run_e02_work(
    ns=(256, 512, 1024, 2048, 4096),
    c: float = 1.5,
    d: int = 4,
    trials: int = 10,
    seed=202,
    processes: int | None = None,
    backend: str = "reference",
    graph_cache: str | None = None,
    results: str = "columnar",
) -> tuple[list[dict], dict]:
    """E2: work per client vs n (flat ⇔ Θ(n) total), plus power-law fit."""
    grid = ParameterGrid(n=list(ns), c=[c], d=[d])
    recs = _saer_sweep(
        grid, trials=trials, seed=seed, processes=processes, backend=backend,
        graph_cache=graph_cache, results=results,
    )
    rec_rows = list(recs)  # materialize lazy rows once, not once per bucket
    rows = []
    for n in ns:
        bucket = [r for r in rec_rows if r["n"] == n]
        wpc = summarize([r["work_per_client"] for r in bucket])
        rows.append(
            {
                "n": n,
                "trials": len(bucket),
                "work_mean": round(summarize([r["work"] for r in bucket])["mean"], 1),
                "work_per_client_mean": round(wpc["mean"], 3),
                "work_per_client_max": round(wpc["max"], 3),
                "naive_lower_bound": 2 * d,  # every ball must be sent (and answered) once
            }
        )
    pw = fit_powerlaw(
        [r["n"] for r in rows], [r["work_mean"] for r in rows]
    )
    meta = {
        "c": c,
        "d": d,
        "backend": backend,
        "power_fit": pw.describe(),
        "power_exponent": pw.slope,
        "records": recs,
    }
    return rows, meta


# ---------------------------------------------------------------------------
# E3 — max load <= c·d across families
# ---------------------------------------------------------------------------


def _family_point(point: Mapping, seed_seq, trial: int) -> dict:
    g_seed, p_seed = seed_seq.spawn(2)
    graph = _graph_for(point, g_seed)
    protocol = point.get("protocol", "saer")
    runner = run_saer if protocol == "saer" else run_raes
    res = runner(graph, point["c"], point["d"], seed=p_seed)
    loads = res.loads
    return {
        "completed": res.completed,
        "rounds": res.rounds,
        "max_load": res.max_load,
        "capacity": res.params.capacity,
        "violation": res.max_load > res.params.capacity,
        "p99_load": float(np.quantile(loads, 0.99)) if loads is not None else float("nan"),
        "mean_load": float(loads.mean()) if loads is not None else float("nan"),
    }


def run_e03_max_load(
    n: int = 1024,
    settings=((1.5, 4), (2.0, 2), (4.0, 2)),
    families=("regular", "trust", "near_regular", "er"),
    trials: int = 5,
    seed=303,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E3: the load invariant across graph families, protocols and (c,d)."""
    grid = ParameterGrid(
        family=list(families),
        protocol=["saer", "raes"],
        cd=list(settings),
    )
    points = []
    for p in grid.points():
        c, d = p.pop("cd")
        p.update(n=n, c=c, d=d)
        points.append(p)
    # run_sweep wants a grid; easier to map over explicit points × trials.
    from ..rng import spawn_seeds

    tasks = []
    seeds = spawn_seeds(seed, len(points) * trials)
    i = 0
    for p in points:
        for t in range(trials):
            tasks.append((p, seeds[i], t))
            i += 1
    recs = map_parallel(_E3Worker(), tasks, processes=processes)
    rows = aggregate_records(
        recs, group_by=["family", "protocol", "c", "d"], fields=["max_load", "p99_load", "rounds"]
    )
    violations = sum(r["violation"] for r in recs)
    for row in rows:
        row["capacity"] = int(math.floor(row["c"] * row["d"]))
        row["violations"] = sum(
            r["violation"]
            for r in recs
            if (r["family"], r["protocol"], r["c"], r["d"])
            == (row["family"], row["protocol"], row["c"], row["d"])
        )
    meta = {"total_runs": len(recs), "total_violations": violations, "records": recs}
    return rows, meta


class _E3Worker:
    """Picklable (point, seed, trial) adapter keeping point params in records."""

    def __call__(self, task):
        point, seed_seq, trial = task
        rec = _family_point(point, seed_seq, trial)
        out = dict(point)
        out["trial"] = trial
        out.update(rec)
        return out


# ---------------------------------------------------------------------------
# E4 — Lemma 4: S_t <= 1/2
# ---------------------------------------------------------------------------


def _burned_fraction_point(point: Mapping, seed_seq, trial: int) -> dict:
    g_seed, p_seed = seed_seq.spawn(2)
    graph = _graph_for(point, g_seed)
    res = run_saer(
        graph, point["c"], point["d"], seed=p_seed, trace=TraceLevel.FULL
    )
    horizon = completion_horizon(point["n"])
    s = np.asarray(res.trace.s_t, dtype=np.float64)
    s_in_horizon = s[: min(horizon, s.size)]
    return {
        "completed": res.completed,
        "rounds": res.rounds,
        "max_s_t": float(s_in_horizon.max()) if s_in_horizon.size else 0.0,
        "max_k_t": res.trace.max_k_t(),
        "lemma4_ok": bool(s_in_horizon.size == 0 or s_in_horizon.max() <= 0.5),
    }


def run_e04_burned_fraction(
    ns=(256, 1024, 4096),
    d: int = 4,
    trials: int = 10,
    include_paper_c: bool = True,
    seed=404,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E4: max_t S_t within the 3·log n horizon, at practical and paper c."""
    rows: list[dict] = []
    all_recs: list[dict] = []
    for n in ns:
        deg = _regular_degree(n)
        eta = deg / (math.log2(n) ** 2)
        c_values = [("practical-1.5", 1.5), ("practical-2", 2.0)]
        if include_paper_c:
            c_values.append(("paper", round(c_min_regular(eta, d), 1)))
        for label, c in c_values:
            grid = ParameterGrid(n=[n], c=[c], d=[d])
            recs = run_sweep(
                _burned_fraction_point, grid, n_trials=trials, seed=seed, processes=processes
            )
            all_recs.extend(recs)
            s_stats = summarize([r["max_s_t"] for r in recs])
            ok = sum(r["lemma4_ok"] for r in recs)
            rows.append(
                {
                    "n": n,
                    "c_regime": label,
                    "c": c,
                    "trials": len(recs),
                    "max_s_t_mean": round(s_stats["mean"], 4),
                    "max_s_t_worst": round(s_stats["max"], 4),
                    "bound": 0.5,
                    "lemma4_ok": f"{ok}/{len(recs)}",
                }
            )
    meta = {"d": d, "records": all_recs}
    return rows, meta


# ---------------------------------------------------------------------------
# E5 — Corollary 2: coupled dominance
# ---------------------------------------------------------------------------


def _coupled_point(point: Mapping, seed_seq, trial: int) -> dict:
    g_seed, p_seed = seed_seq.spawn(2)
    graph = _graph_for(point, g_seed)
    cp = run_coupled(graph, point["c"], point["d"], seed=p_seed)
    return {
        "nested": cp.nested_every_round,
        "raes_no_later": cp.raes_no_later,
        "saer_rounds": cp.saer.rounds,
        "raes_rounds": cp.raes.rounds,
        "saer_completed": cp.saer.completed,
        "raes_completed": cp.raes.completed,
        "alive_dominated": bool(np.all(cp.alive_raes <= cp.alive_saer)),
    }


def run_e05_dominance(
    ns=(256, 1024),
    cs=(1.5, 2.0),
    d: int = 4,
    trials: int = 10,
    seed=505,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E5: pathwise RAES-dominates-SAER under slot coupling."""
    grid = ParameterGrid(n=list(ns), c=list(cs), d=[d])
    recs = run_sweep(_coupled_point, grid, n_trials=trials, seed=seed, processes=processes)
    rows = []
    for n in ns:
        for c in cs:
            bucket = [r for r in recs if r["n"] == n and r["c"] == c]
            rows.append(
                {
                    "n": n,
                    "c": c,
                    "trials": len(bucket),
                    "nested_every_round": sum(r["nested"] for r in bucket),
                    "alive_dominated": sum(r["alive_dominated"] for r in bucket),
                    "raes_no_later": sum(r["raes_no_later"] for r in bucket),
                    "saer_rounds_mean": round(
                        summarize([r["saer_rounds"] for r in bucket])["mean"], 2
                    ),
                    "raes_rounds_mean": round(
                        summarize([r["raes_rounds"] for r in bucket])["mean"], 2
                    ),
                }
            )
    meta = {
        "d": d,
        "all_nested": all(r["nested"] for r in recs),
        "all_dominated": all(r["alive_dominated"] for r in recs),
        "records": recs,
    }
    return rows, meta


# ---------------------------------------------------------------------------
# E6 — threshold behaviour in c
# ---------------------------------------------------------------------------


def run_e06_c_threshold(
    n: int = 1024,
    cs=(1.0, 1.2, 1.35, 1.5, 2.0, 3.0, 4.0, 8.0, 16.0, 32.0),
    d: int = 4,
    trials: int = 10,
    seed=606,
    processes: int | None = None,
    backend: str = "reference",
    share_graph: bool = False,
    graph_cache: str | None = None,
    results: str = "columnar",
) -> tuple[list[dict], dict]:
    """E6: completion rate / speed as c sweeps from starvation to paper-scale.

    ``share_graph=True`` pins one Δ-regular topology (built once, cached
    when ``graph_cache`` is set) for the entire sweep and hands workers
    a zero-copy view instead of rebuilding per task — the scale-axis
    fast path, since every point of this sweep shares ``n`` and the
    degree.  The estimate then conditions on a single graph draw (the
    protocol-level Monte Carlo, like the batched backend's per-point
    conditioning, taken sweep-wide).
    """
    grid = ParameterGrid(n=[n], c=list(cs), d=[d])
    graph = None
    if share_graph:
        # Disjoint from the sweep's task seeds: the first len(grid)*trials
        # children are exactly the sweep's spawn, so take the next one.
        g_seed = np.random.SeedSequence(seed).spawn(len(grid) * trials + 1)[-1]
        graph = _graph_for({"n": n}, g_seed, graph_cache)
    recs = _saer_sweep(
        grid,
        trials=trials,
        seed=seed,
        processes=processes,
        backend=backend,
        graph=graph,
        graph_cache=None if share_graph else graph_cache,
        results=results,
    )
    rec_rows = list(recs)  # materialize lazy rows once, not once per bucket
    rows = []
    for c in cs:
        bucket = [r for r in rec_rows if r["c"] == c]
        done = sum(r["completed"] for r in bucket)
        rate, lo, hi = wilson_interval(done, len(bucket))
        done_rounds = [r["rounds"] for r in bucket if r["completed"]]
        rows.append(
            {
                "c": c,
                "capacity": int(math.floor(c * d)),
                "trials": len(bucket),
                "completion_rate": round(rate, 3),
                "rate_ci": f"[{lo:.2f},{hi:.2f}]",
                "rounds_median": summarize(done_rounds)["median"] if done_rounds else None,
                "work_per_client": round(
                    summarize([r["work_per_client"] for r in bucket])["mean"], 2
                ),
                "blocked_servers_mean": round(
                    summarize([r["blocked_servers"] for r in bucket])["mean"], 1
                ),
            }
        )
    meta = {
        "n": n,
        "d": d,
        "backend": backend,
        "share_graph": share_graph,
        "records": recs,
    }
    return rows, meta


# ---------------------------------------------------------------------------
# E7 — degree sweep around log² n
# ---------------------------------------------------------------------------


def run_e07_degree_sweep(
    n: int = 1024,
    c: float = 1.5,
    d: int = 4,
    trials: int = 10,
    seed=707,
    processes: int | None = None,
    backend: str = "reference",
    graph_cache: str | None = None,
    results: str = "columnar",
) -> tuple[list[dict], dict]:
    """E7: completion vs degree, from o(log² n) up to the complete graph."""
    log2n = math.log2(n)
    degree_specs = [
        ("log n", max(2, math.ceil(log2n))),
        ("log^1.5 n", max(2, math.ceil(log2n**1.5))),
        ("0.5·log² n", max(2, math.ceil(0.5 * log2n**2))),
        ("log² n", max(2, math.ceil(log2n**2))),
        ("sqrt n", math.ceil(math.sqrt(n))),
        ("n/4", n // 4),
        ("n (complete)", n),
    ]
    rows = []
    all_recs = []
    for label, deg in degree_specs:
        grid = ParameterGrid(n=[n], c=[c], d=[d], degree=[deg])
        recs = list(_saer_sweep(
            grid, trials=trials, seed=seed, processes=processes, backend=backend,
            graph_cache=graph_cache, results=results,
        ))
        all_recs.extend(recs)
        done = sum(r["completed"] for r in recs)
        rate, lo, hi = wilson_interval(done, len(recs))
        done_rounds = [r["rounds"] for r in recs if r["completed"]]
        rows.append(
            {
                "degree_regime": label,
                "degree": deg,
                "meets_hypothesis": deg >= log2n**2,
                "trials": len(recs),
                "completion_rate": round(rate, 3),
                "rounds_median": summarize(done_rounds)["median"] if done_rounds else None,
                "rounds_max": summarize(done_rounds)["max"] if done_rounds else None,
                "horizon": completion_horizon(n),
            }
        )
    meta = {"n": n, "c": c, "d": d, "backend": backend, "records": all_recs}
    return rows, meta


# ---------------------------------------------------------------------------
# E8 — almost-regular families
# ---------------------------------------------------------------------------


def run_e08_almost_regular(
    n: int = 1024,
    c: float = 2.0,
    d: int = 4,
    ratios=(1, 2, 4),
    trials: int = 8,
    seed=808,
    processes: int | None = None,
    backend: str = "reference",
    graph_cache: str | None = None,
    results: str = "columnar",
) -> tuple[list[dict], dict]:
    """E8: the ρ allowance — near-regular ratio sweep plus paper_extremal."""
    rows = []
    all_recs = []
    base = _regular_degree(n)
    for ratio in ratios:
        fam = "regular" if ratio == 1 else "near_regular"
        grid = ParameterGrid(
            n=[n],
            c=[c],
            d=[d],
            family=[fam],
            degree_lo=[base],
            degree_hi=[min(base * ratio, n)],
        )
        recs = list(_saer_sweep(
            grid, trials=trials, seed=seed, processes=processes, backend=backend,
            graph_cache=graph_cache, results=results,
        ))
        all_recs.extend(recs)
        done_rounds = [r["rounds"] for r in recs if r["completed"]]
        rows.append(
            {
                "family": f"near_regular ρ≈{ratio}" if ratio > 1 else "regular (ρ=1)",
                "rho_measured": round(summarize([r["rho"] for r in recs])["mean"], 2),
                "trials": len(recs),
                "completed": sum(r["completed"] for r in recs),
                "rounds_median": summarize(done_rounds)["median"] if done_rounds else None,
                "rounds_max": summarize(done_rounds)["max"] if done_rounds else None,
                "horizon": completion_horizon(n),
            }
        )
    # The paper's extremal example (√n-degree clients, O(1)-degree servers).
    grid = ParameterGrid(n=[n], c=[c], d=[d], family=["paper_extremal"], eta=[0.5])
    recs = list(_saer_sweep(
        grid, trials=trials, seed=seed, processes=processes, backend=backend,
        graph_cache=graph_cache, results=results,
    ))
    all_recs.extend(recs)
    done_rounds = [r["rounds"] for r in recs if r["completed"]]
    rows.append(
        {
            "family": "paper_extremal (√n clients, O(1) servers)",
            "rho_measured": round(summarize([r["rho"] for r in recs])["mean"], 2),
            "trials": len(recs),
            "completed": sum(r["completed"] for r in recs),
            "rounds_median": summarize(done_rounds)["median"] if done_rounds else None,
            "rounds_max": summarize(done_rounds)["max"] if done_rounds else None,
            "horizon": completion_horizon(n),
        }
    )
    meta = {"n": n, "c": c, "d": d, "backend": backend, "records": all_recs}
    return rows, meta


# ---------------------------------------------------------------------------
# E9 — baselines comparison
# ---------------------------------------------------------------------------


def _baseline_task(task) -> dict:
    algo, n, c, d, degree, seed_seq = task
    g_seed, a_seed = seed_seq.spawn(2)
    graph = random_regular_bipartite(n, degree, seed=g_seed)
    if algo == "saer":
        r = run_saer(graph, c, d, seed=a_seed)
        return {
            "algorithm": "saer",
            "rounds": r.rounds,
            "steps": r.rounds,
            "work": r.work,
            "max_load": r.max_load,
            "completed": r.completed,
            "discloses_loads": False,
        }
    if algo == "raes":
        r = run_raes(graph, c, d, seed=a_seed)
        return {
            "algorithm": "raes",
            "rounds": r.rounds,
            "steps": r.rounds,
            "work": r.work,
            "max_load": r.max_load,
            "completed": r.completed,
            "discloses_loads": False,
        }
    if algo == "threshold":
        b = run_threshold_protocol(graph, d, threshold=d, seed=a_seed)
    elif algo == "parallel_greedy":
        b = run_parallel_greedy(graph, d, k=2, seed=a_seed)
    elif algo == "one_choice":
        b = one_choice(graph, d, seed=a_seed)
    elif algo == "best_of_2":
        b = greedy_best_of_k(graph, d, k=2, seed=a_seed)
    elif algo == "godfrey":
        b = godfrey_greedy(graph, d, seed=a_seed)
    else:  # pragma: no cover
        raise ValueError(algo)
    return {
        "algorithm": b.algorithm,
        "rounds": b.rounds,
        "steps": b.steps,
        "work": b.work,
        "max_load": b.max_load,
        "completed": b.completed,
        "discloses_loads": b.discloses_loads,
    }


def run_e09_baselines(
    n: int = 1024,
    c: float = 2.0,
    d: int = 4,
    trials: int = 5,
    seed=909,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E9: SAER/RAES vs threshold, parallel greedy, and sequential baselines."""
    from ..rng import spawn_seeds

    algos = [
        "saer",
        "raes",
        "threshold",
        "parallel_greedy",
        "one_choice",
        "best_of_2",
        "godfrey",
    ]
    degree = _regular_degree(n)
    seeds = spawn_seeds(seed, len(algos) * trials)
    tasks = []
    i = 0
    for algo in algos:
        for _t in range(trials):
            tasks.append((algo, n, c, d, degree, seeds[i]))
            i += 1
    recs = map_parallel(_baseline_task, tasks, processes=processes)
    rows = aggregate_records(
        recs, group_by=["algorithm", "discloses_loads"], fields=["max_load", "rounds", "steps", "work"]
    )
    for row in rows:
        row["parallel_time"] = (
            f"{row['rounds_median']:.0f} rounds" if row["rounds_median"] > 0 else "sequential"
        )
    meta = {"n": n, "c": c, "d": d, "capacity": int(math.floor(c * d)), "records": recs}
    return rows, meta


# ---------------------------------------------------------------------------
# E10 — Stage-I decay vs the γ envelope
# ---------------------------------------------------------------------------


def run_e10_stage1(
    n: int = 4096,
    d: int = 4,
    c: float | None = None,
    contended_c: float = 1.5,
    seed=1010,
) -> tuple[list[dict], dict]:
    """E10: per-round K_t vs γ_t, and the contended-regime decay curve.

    Two runs on the same graph:

    * **analysis regime** — the paper's ``c`` (Lemma 12 needs ``c ≥ 32``
      for the α = 4 decay).  At feasible simulation sizes the process
      then finishes in 1-2 rounds, which is itself the finding: the
      γ-envelope is extremely conservative.  Rows verify ``K_t ≤ γ_t``
      and ``r_t(N(v)) ≤ 2dΔ·Π_{j<t} γ_j``.
    * **contended regime** — ``c = contended_c`` (outside Lemma 12's
      hypotheses; no γ comparison), where the multi-round geometric
      decay of ``r_t`` is actually visible; rows report the measured
      per-round decay ratio against the measured ``1 - S_{t-1}`` (the
      survival probability the proof's recursion is built on).
    """
    deg = _regular_degree(n)
    eta = deg / (math.log2(n) ** 2)
    c_val = c if c is not None else round(c_min_regular(eta, d), 1)
    g_seed, p_seed, p2_seed = np.random.SeedSequence(seed).spawn(3)
    graph = random_regular_bipartite(n, deg, seed=g_seed)

    rows: list[dict] = []
    res = run_saer(graph, c_val, d, seed=p_seed, trace=TraceLevel.FULL)
    horizon = min(res.rounds, completion_horizon(n))
    gam = gamma_sequence(c_val, horizon + 1)
    prods = gamma_products(c_val, horizon + 1)
    T = stage1_length(n, d, deg, c_val)
    for t in range(1, horizon + 1):
        k_meas = float(res.trace.k_t[t - 1])
        r_meas = int(res.trace.r_neigh_max[t - 1])
        envelope = 2.0 * d * deg * prods[t - 1]
        rows.append(
            {
                "regime": f"paper c={c_val}",
                "t": t,
                "stage": "I" if t < T else "II",
                "K_t_measured": round(k_meas, 5),
                "gamma_t": round(float(gam[t]), 5),
                "K_le_gamma": k_meas <= float(gam[t]) + 1e-12,
                "r_neigh_max": r_meas,
                "envelope": round(envelope, 2),
                "r_le_envelope": r_meas <= envelope + 1e-9,
                "S_t": round(float(res.trace.s_t[t - 1]), 5),
                "decay_ratio": None,
            }
        )
    paper_rows = list(rows)

    res2 = run_saer(graph, contended_c, d, seed=p2_seed, trace=TraceLevel.FULL)
    r_series = np.asarray(res2.trace.r_neigh_max, dtype=np.float64)
    s_series = np.asarray(res2.trace.s_t, dtype=np.float64)
    for t in range(1, res2.rounds + 1):
        ratio = (
            round(float(r_series[t - 1] / r_series[t - 2]), 3)
            if t >= 2 and r_series[t - 2] > 0
            else None
        )
        rows.append(
            {
                "regime": f"contended c={contended_c}",
                "t": t,
                "stage": "-",
                "K_t_measured": round(float(res2.trace.k_t[t - 1]), 5),
                "gamma_t": None,
                "K_le_gamma": None,
                "r_neigh_max": int(r_series[t - 1]),
                "envelope": None,
                "r_le_envelope": None,
                "S_t": round(float(s_series[t - 1]), 5),
                "decay_ratio": ratio,
            }
        )
    # Geometric decay diagnostic over the contended stage-I (r >= 12 log n).
    heavy = r_series >= 12 * math.log2(n)
    ratios = [
        r_series[i] / r_series[i - 1]
        for i in range(1, r_series.size)
        if heavy[i - 1] and r_series[i - 1] > 0
    ]
    meta = {
        "n": n,
        "d": d,
        "c_paper": c_val,
        "c_contended": contended_c,
        "degree": deg,
        "stage1_T": T,
        "paper_rounds": res.rounds,
        "contended_rounds": res2.rounds,
        "all_K_below_gamma": all(r["K_le_gamma"] for r in paper_rows),
        "all_r_below_envelope": all(r["r_le_envelope"] for r in paper_rows),
        "contended_decay_geometric_mean": round(float(np.exp(np.mean(np.log(ratios)))), 4)
        if ratios
        else None,
        "delta_envelope_max": float(
            delta_sequence(n, d, deg, c_val, T, max(T, horizon)).max()
        ),
    }
    return rows, meta


# ---------------------------------------------------------------------------
# E11 — alive-ball decay factor
# ---------------------------------------------------------------------------


def _alive_decay_point(point: Mapping, seed_seq, trial: int) -> dict:
    g_seed, p_seed = seed_seq.spawn(2)
    graph = _graph_for(point, g_seed)
    res = run_saer(graph, point["c"], point["d"], seed=p_seed, trace=TraceLevel.BASIC)
    alive = np.asarray(res.trace.alive_before, dtype=np.float64)
    n, d = point["n"], point["d"]
    heavy = alive >= n * d / math.log2(n)
    ratios = res.trace.alive_decay_ratios()
    heavy_ratios = ratios[heavy[:-1][: ratios.size]] if ratios.size else ratios
    return {
        "completed": res.completed,
        "rounds": res.rounds,
        "heavy_rounds": int(np.count_nonzero(heavy)),
        "max_heavy_ratio": float(heavy_ratios.max()) if heavy_ratios.size else 0.0,
        "mean_heavy_ratio": float(heavy_ratios.mean()) if heavy_ratios.size else 0.0,
    }


def run_e11_alive_decay(
    ns=(1024, 4096),
    c: float = 1.5,
    d: int = 4,
    trials: int = 10,
    seed=1111,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E11: per-round alive-ball shrink factor in the heavy regime vs 4/5."""
    grid = ParameterGrid(n=list(ns), c=[c], d=[d])
    recs = run_sweep(_alive_decay_point, grid, n_trials=trials, seed=seed, processes=processes)
    rows = []
    for n in ns:
        bucket = [r for r in recs if r["n"] == n]
        worst = summarize([r["max_heavy_ratio"] for r in bucket])
        mean = summarize([r["mean_heavy_ratio"] for r in bucket])
        rows.append(
            {
                "n": n,
                "trials": len(bucket),
                "heavy_rounds_mean": round(
                    summarize([r["heavy_rounds"] for r in bucket])["mean"], 1
                ),
                "decay_ratio_mean": round(mean["mean"], 3),
                "decay_ratio_worst": round(worst["max"], 3),
                "paper_bound": 0.8,
                "within_bound": worst["max"] <= 0.8,
            }
        )
    meta = {"c": c, "d": d, "records": recs}
    return rows, meta


# ---------------------------------------------------------------------------
# E12 — dynamic metastability
# ---------------------------------------------------------------------------


def _dynamic_task(task) -> dict:
    rate, recovery, churn_rate, n, c, d, horizon, seed_seq = task
    g_seed, s_seed = seed_seq.spawn(2)
    deg = _regular_degree(n)
    graph = trust_subsets(n, n, deg, seed=g_seed)
    res = run_dynamic_saer(
        graph,
        c,
        d,
        PoissonArrivals(rate),
        horizon,
        churn=RewireChurn(churn_rate) if churn_rate else None,
        recovery=recovery,
        seed=s_seed,
    )
    out = res.summary()
    out["rate"] = rate
    out["churn"] = churn_rate
    return out


def run_e12_dynamic(
    n: int = 512,
    c: float = 2.0,
    d: int = 4,
    rates=(0.2, 0.5, 1.0, 2.0),
    horizon: int = 400,
    recovery: int = 8,
    churn_rate: float = 0.02,
    trials: int = 3,
    seed=1212,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E12: backlog stability vs offered load, with/without burn recovery."""
    from ..rng import spawn_seeds

    combos = []
    for rate in rates:
        combos.append((rate, recovery, churn_rate))
    combos.append((rates[1], None, churn_rate))  # no-recovery control
    seeds = spawn_seeds(seed, len(combos) * trials)
    tasks = []
    i = 0
    for rate, rec, ch in combos:
        for _t in range(trials):
            tasks.append((rate, rec, ch, n, c, d, horizon, seeds[i]))
            i += 1
    recs = map_parallel(_dynamic_task, tasks, processes=processes)
    rows = []
    for rate, rec_param, ch in combos:
        bucket = [
            r for r in recs if (r["rate"], r["recovery"], r["churn"]) == (rate, rec_param, ch)
        ]
        rows.append(
            {
                "rate": rate,
                "offered_per_round": round(rate * n, 1),
                "recovery": rec_param,
                "churn": ch,
                "trials": len(bucket),
                "backlog_mean_2nd_half": round(
                    summarize([r["mean_backlog_2nd_half"] for r in bucket])["mean"], 1
                ),
                "backlog_slope": round(
                    summarize([r["backlog_slope"] for r in bucket])["mean"], 3
                ),
                "latency_mean": round(
                    summarize([r["latency_mean"] for r in bucket])["mean"], 3
                ),
                "burned_frac_final": round(
                    summarize([r["burned_frac_final"] for r in bucket])["mean"], 3
                ),
                "metastable": f"{sum(r['metastable'] for r in bucket)}/{len(bucket)}",
            }
        )
    meta = {"n": n, "c": c, "d": d, "horizon": horizon, "records": recs}
    return rows, meta
