"""Experiment runners: one function per registry entry, E1..E12.

Every runner returns ``(rows, meta)``: ``rows`` are table records ready
for :func:`repro.analysis.format_table`; ``meta`` carries fits and
derived scalars (and is what EXPERIMENTS.md quotes).  All workers are
module-level so the process pool can pickle them; every trial gets a
spawned seed, so runs are reproducible for a fixed root ``seed``
regardless of process count.

Runners are **thin plan builders**: each one maps its kwargs onto a
declarative :class:`repro.plan.RunPlan` (grid + trials + seed policy +
backend + graph provisioning + dispatch + results carrier) and hands it
to :func:`repro.plan.execute` — the single pipeline that owns backend
resolution, graph provisioning, pool dispatch, and the columnar results
spool.  What stays here is the science: the per-trial record functions
(``record(graph, point, seed) -> dict`` / ``batch(graph, point, seeds)
-> ResultBlock``) and the table-row assembly, which reads typed
:class:`~repro.parallel.aggregate.ResultTable` columns instead of
looping per-trial dicts.

Default parameter choices were calibrated so the *shape* under test is
visible (see DESIGN.md §5):

* ``c = 1.5, d = 4`` — the contended-but-terminating regime where
  completion time clearly grows with ``log n``;
* ``c = 1.2`` — the burnout regime (all servers burn, protocol stalls);
* ``c ≥ 2`` — the comfortable regime (few burns, 3-4 rounds);
* the paper-scale ``c`` from :func:`repro.theory.c_min_regular` — the
  analysis regime where Lemma 4's ``S_t ≤ 1/2`` is guaranteed.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..analysis.fitting import fit_log2, fit_powerlaw
from ..analysis.stats import wilson_interval
from ..batch import run_trials_batched
from ..batch.results import ResultBlock
from ..core.config import ProtocolParams, RunOptions
from ..core.coupling import run_coupled
from ..core.engine import run_raes, run_saer
from ..core.metrics import TraceLevel
from ..errors import ExperimentError
from ..baselines import (
    godfrey_greedy,
    greedy_best_of_k,
    one_choice,
    run_parallel_greedy,
    run_threshold_protocol,
)
from ..dynamic import PoissonArrivals, RewireChurn, run_dynamic_saer
from ..faults import FaultSchedule, FaultSpec
from ..graphs import degree_report, random_regular_bipartite
from ..graphs.families import build_point_graph, canonical_degree
from ..parallel.aggregate import aggregate_records, as_table, summarize
from ..parallel.pool import worker_state
from ..parallel.sweep import ParameterGrid
from ..plan import (
    BackendSpec,
    ExecSpec,
    GraphSpec,
    ResultSpec,
    RunPlan,
    SeedSpec,
    WorkSpec,
    execute,
)
from ..theory.bounds import c_min_regular, completion_horizon
from ..theory.recurrences import delta_sequence, gamma_products, gamma_sequence, stage1_length

__all__ = [
    "run_e01_completion",
    "run_e02_work",
    "run_e03_max_load",
    "run_e04_burned_fraction",
    "run_e05_dominance",
    "run_e06_c_threshold",
    "run_e07_degree_sweep",
    "run_e08_almost_regular",
    "run_e09_baselines",
    "run_e10_stage1",
    "run_e11_alive_decay",
    "run_e12_dynamic",
    "run_s1_serve",
    "run_f1_faults",
]


# The family vocabulary moved to repro.graphs.families in the plan-layer
# refactor; the old name stays as the local spelling (ablations.py and
# the row assemblies below use it for the canonical-degree column).
_regular_degree = canonical_degree


# ---------------------------------------------------------------------------
# E1 / E2 — completion time O(log n), work Θ(n)
# ---------------------------------------------------------------------------


def _saer_run_record(graph, point: Mapping, p_seed) -> dict:
    """One reference-engine SAER run on ``graph`` → the canonical record.

    The single source of the per-trial record schema; every execution
    path (fresh-graph, cached, shared-topology, batched) must emit
    these keys.
    """
    opts = RunOptions(max_rounds=point.get("max_rounds"))
    res = run_saer(graph, point["c"], point["d"], seed=p_seed, options=opts)
    rep = degree_report(graph)
    return {
        "completed": res.completed,
        "rounds": res.rounds,
        "work": res.work,
        "work_per_client": res.work_per_client,
        "max_load": res.max_load,
        "capacity": res.params.capacity,
        "blocked_servers": res.blocked_servers,
        "rho": rep.rho,
        "deg_min_c": rep.client_degree_min,
    }


def _saer_batch_block(
    graph, point: Mapping, p_seeds, kernel: str | None = None,
    threads: int | None = None, seed_mode: str | None = None,
) -> ResultBlock:
    """One batched-engine trial block on ``graph`` → a columnar
    :class:`~repro.batch.results.ResultBlock` (field-for-field the
    schema of :func:`_saer_run_record`, built straight from the engine's
    per-trial arrays — no per-dict loop; the plan executor unpacks it to
    records only when a legacy carrier was asked for).

    Runs on the worker's persistent engine buffers
    (:func:`repro.parallel.pool.worker_state`), so a process sweeping
    many grid points allocates its staging arrays, received slab, and
    RNG read-ahead once.  ``kernel`` pins the round-kernel gate and
    ``threads`` the compiled kernel's trial-partitioned thread budget
    (``None`` defers to ``REPRO_KERNELS`` / ``REPRO_KERNEL_THREADS``).
    ``seed_mode="philox"`` switches the per-trial draw stream to the
    counter-based Philox lineage (distinct bits from the default PCG64).
    """
    opts = RunOptions(max_rounds=point.get("max_rounds"))
    p_seeds = list(p_seeds)
    res = run_trials_batched(
        graph,
        ProtocolParams(c=point["c"], d=point["d"]),
        "saer",
        seeds=p_seeds,
        options=opts,
        kernel=kernel,
        threads=threads,
        seed_mode=seed_mode,
        buffers=worker_state().engine_buffers,
    )
    rep = degree_report(graph)
    n_c = graph.n_clients
    R = res.n_trials
    return ResultBlock.from_columns(
        point,
        range(R),
        {
            "completed": res.completed,
            "rounds": res.rounds,
            "work": res.work,
            "work_per_client": res.work / n_c if n_c else np.zeros(R),
            "max_load": res.max_load,
            "capacity": np.full(R, res.params.capacity),
            "blocked_servers": res.blocked_servers,
            "rho": np.full(R, rep.rho),
            "deg_min_c": np.full(R, rep.client_degree_min),
        },
    )


#: The SAER sweep's science, in the plan layer's two canonical shapes.
_SAER_WORK = WorkSpec(record=_saer_run_record, batch=_saer_batch_block, name="saer")


def _saer_plan(
    grid, *, trials, seed, processes, backend="reference", graph=None,
    graph_cache=None, results="columnar", kernel=None, kernel_threads=None,
    spool=None, seed_mode=None,
) -> RunPlan:
    """Map the historical SAER-runner kwargs onto a :class:`RunPlan`.

    ``graph`` (a :class:`~repro.graphs.bipartite.BipartiteGraph` or
    :class:`~repro.parallel.SharedGraph`) pins one topology for every
    (point, trial) and ships it to workers zero-copy; ``graph_cache``
    routes worker-side graph builds through the on-disk cache.  The two
    are exclusive (a pinned graph is never rebuilt).  ``kernel_threads``
    is the compiled round kernel's trial-partitioned thread budget
    (bit-identical at every count; capped by ``execute`` so threads ×
    processes stays within the core budget).  ``spool`` switches the
    results sink to the durable on-disk spool at that directory
    (crash-supervised, resumable; see :mod:`repro.durable`).  ``seed_mode``
    selects the trial seed lineage (``"pair"`` default; ``"philox"``
    needs the batched backend — see :class:`repro.plan.SeedSpec`).
    """
    if backend not in ("reference", "batched"):
        raise ExperimentError(f"unknown backend {backend!r}; known: reference, batched")
    if graph is not None:
        gspec = GraphSpec(mode="pinned", graph=graph)
    elif graph_cache:
        gspec = GraphSpec(mode="cached", cache_dir=graph_cache)
    else:
        gspec = GraphSpec()
    if spool:
        rspec = ResultSpec(mode=results, sink="spool", dir=str(spool))
    else:
        rspec = ResultSpec(mode=results)
    return RunPlan(
        grid=grid,
        work=_SAER_WORK,
        trials=trials,
        seeds=SeedSpec(root=seed, mode=seed_mode or "pair"),
        # The kernel gate and thread budget only exist on the batched
        # engine; reference runs ignore them (matching the old
        # REPRO_KERNELS / REPRO_KERNEL_THREADS env behaviour).
        backend=BackendSpec(
            name=backend,
            kernel=kernel if backend == "batched" else None,
            threads=kernel_threads if backend == "batched" else None,
        ),
        graph=gspec,
        execution=ExecSpec(processes=processes),
        results=rspec,
    )


def _part_dir(root: "str | None", index: int) -> "str | None":
    """Sub-spool directory for a runner that executes several plans.

    E7/E8 run one :func:`~repro.plan.execute` per sub-grid; each gets
    its own journal (fingerprints differ by design), so a runner-level
    ``--spool``/``--resume`` directory fans out into ``part-NN/``
    children.  ``None`` passes through (no spool).
    """
    if root is None:
        return None
    import os as _os

    return _os.path.join(str(root), f"part-{index:02d}")


def _saer_sweep(
    grid, *, trials, seed, processes, backend, graph=None, graph_cache=None,
    results="columnar", kernel=None, kernel_threads=None,
):
    """Deprecated shim: build the :class:`RunPlan` and execute it.

    Direct callers should migrate to ``execute(_saer_plan(...))`` — or
    better, build their own :class:`repro.plan.RunPlan`; this wrapper
    only survives so pre-plan call sites keep working.
    """
    return execute(
        _saer_plan(
            grid, trials=trials, seed=seed, processes=processes, backend=backend,
            graph=graph, graph_cache=graph_cache, results=results, kernel=kernel,
            kernel_threads=kernel_threads,
        )
    )


def run_e01_completion(
    ns=(256, 512, 1024, 2048, 4096),
    c: float = 1.5,
    d: int = 4,
    trials: int = 10,
    seed=101,
    processes: int | None = None,
    backend: str = "reference",
    graph_cache: str | None = None,
    results: str = "columnar",
    kernel: str | None = None,
    kernel_threads: int | None = None,
    spool: str | None = None,
    resume: str | None = None,
    seed_mode: str | None = None,
) -> tuple[list[dict], dict]:
    """E1: median completion rounds vs n, with the log fit and horizon."""
    grid = ParameterGrid(n=list(ns), c=[c], d=[d])
    recs = execute(_saer_plan(
        grid, trials=trials, seed=seed, processes=processes, backend=backend,
        graph_cache=graph_cache, results=results, kernel=kernel,
        kernel_threads=kernel_threads, spool=spool, seed_mode=seed_mode,
    ), resume=resume)
    table = as_table(recs)  # row assembly reads typed columns, not dicts
    rows = []
    for n in ns:
        bucket = table.where(n=n)
        rounds = bucket.column("rounds")
        completed = bucket.column("completed").astype(bool)
        stats = summarize(rounds)
        horizon = completion_horizon(n)
        rows.append(
            {
                "n": n,
                "degree": _regular_degree(n),
                "trials": len(bucket),
                "completed": int(completed.sum()),
                "rounds_median": stats["median"],
                "rounds_mean": round(stats["mean"], 2),
                "rounds_max": stats["max"],
                "horizon_3log2n": horizon,
                "within_horizon": bool(np.all(rounds[completed] <= horizon)),
            }
        )
    fit = fit_log2([r["n"] for r in rows], [r["rounds_median"] for r in rows])
    pw = fit_powerlaw([r["n"] for r in rows], [max(r["rounds_median"], 1e-9) for r in rows])
    meta = {
        "c": c,
        "d": d,
        "backend": backend,
        "log2_fit": fit.describe(),
        "log2_r2": fit.r2,
        "power_exponent": pw.slope,
        "records": recs,
    }
    return rows, meta


def run_e02_work(
    ns=(256, 512, 1024, 2048, 4096),
    c: float = 1.5,
    d: int = 4,
    trials: int = 10,
    seed=202,
    processes: int | None = None,
    backend: str = "reference",
    graph_cache: str | None = None,
    results: str = "columnar",
    kernel: str | None = None,
    kernel_threads: int | None = None,
    spool: str | None = None,
    resume: str | None = None,
    seed_mode: str | None = None,
) -> tuple[list[dict], dict]:
    """E2: work per client vs n (flat ⇔ Θ(n) total), plus power-law fit."""
    grid = ParameterGrid(n=list(ns), c=[c], d=[d])
    recs = execute(_saer_plan(
        grid, trials=trials, seed=seed, processes=processes, backend=backend,
        graph_cache=graph_cache, results=results, kernel=kernel,
        kernel_threads=kernel_threads, spool=spool, seed_mode=seed_mode,
    ), resume=resume)
    table = as_table(recs)
    rows = []
    for n in ns:
        bucket = table.where(n=n)
        wpc = summarize(bucket.column("work_per_client"))
        rows.append(
            {
                "n": n,
                "trials": len(bucket),
                "work_mean": round(summarize(bucket.column("work"))["mean"], 1),
                "work_per_client_mean": round(wpc["mean"], 3),
                "work_per_client_max": round(wpc["max"], 3),
                "naive_lower_bound": 2 * d,  # every ball must be sent (and answered) once
            }
        )
    pw = fit_powerlaw(
        [r["n"] for r in rows], [r["work_mean"] for r in rows]
    )
    meta = {
        "c": c,
        "d": d,
        "backend": backend,
        "power_fit": pw.describe(),
        "power_exponent": pw.slope,
        "records": recs,
    }
    return rows, meta


# ---------------------------------------------------------------------------
# E3 — max load <= c·d across families
# ---------------------------------------------------------------------------


def _family_record(graph, point: Mapping, p_seed) -> dict:
    """One run of the point's protocol on ``graph`` → the E3 record."""
    protocol = point.get("protocol", "saer")
    runner = run_saer if protocol == "saer" else run_raes
    res = runner(graph, point["c"], point["d"], seed=p_seed)
    loads = res.loads
    return {
        "completed": res.completed,
        "rounds": res.rounds,
        "max_load": res.max_load,
        "capacity": res.params.capacity,
        "violation": res.max_load > res.params.capacity,
        "p99_load": float(np.quantile(loads, 0.99)) if loads is not None else float("nan"),
        "mean_load": float(loads.mean()) if loads is not None else float("nan"),
    }


def run_e03_max_load(
    n: int = 1024,
    settings=((1.5, 4), (2.0, 2), (4.0, 2)),
    families=("regular", "trust", "near_regular", "er"),
    trials: int = 5,
    seed=303,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E3: the load invariant across graph families, protocols and (c,d)."""
    grid = ParameterGrid(
        family=list(families),
        protocol=["saer", "raes"],
        cd=list(settings),
    )
    # A non-cartesian design ((c, d) travels as one axis): expand to an
    # explicit point list — plans take those directly.
    points = []
    for p in grid.points():
        c, d = p.pop("cd")
        p.update(n=n, c=c, d=d)
        points.append(p)
    recs = execute(RunPlan(
        grid=points,
        work=WorkSpec(record=_family_record, name="e03-max-load"),
        trials=trials,
        seeds=SeedSpec(root=seed),
        execution=ExecSpec(processes=processes),
        results=ResultSpec(mode="columnar"),
    ))
    rows = aggregate_records(
        recs, group_by=["family", "protocol", "c", "d"], fields=["max_load", "p99_load", "rounds"]
    )
    violation = recs.column("violation")
    for row in rows:
        row["capacity"] = int(math.floor(row["c"] * row["d"]))
        row["violations"] = int(
            recs.where(
                family=row["family"], protocol=row["protocol"], c=row["c"], d=row["d"]
            )
            .column("violation")
            .sum()
        )
    meta = {
        "total_runs": len(recs),
        "total_violations": int(violation.sum()),
        "records": recs,
    }
    return rows, meta


# ---------------------------------------------------------------------------
# E4 — Lemma 4: S_t <= 1/2
# ---------------------------------------------------------------------------


def _burned_fraction_record(graph, point: Mapping, p_seed) -> dict:
    res = run_saer(
        graph, point["c"], point["d"], seed=p_seed, trace=TraceLevel.FULL
    )
    horizon = completion_horizon(point["n"])
    s = np.asarray(res.trace.s_t, dtype=np.float64)
    s_in_horizon = s[: min(horizon, s.size)]
    return {
        "completed": res.completed,
        "rounds": res.rounds,
        "max_s_t": float(s_in_horizon.max()) if s_in_horizon.size else 0.0,
        "max_k_t": res.trace.max_k_t(),
        "lemma4_ok": bool(s_in_horizon.size == 0 or s_in_horizon.max() <= 0.5),
    }


def run_e04_burned_fraction(
    ns=(256, 1024, 4096),
    d: int = 4,
    trials: int = 10,
    include_paper_c: bool = True,
    seed=404,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E4: max_t S_t within the 3·log n horizon, at practical and paper c."""
    rows: list[dict] = []
    all_recs: list[dict] = []
    for n in ns:
        deg = _regular_degree(n)
        eta = deg / (math.log2(n) ** 2)
        c_values = [("practical-1.5", 1.5), ("practical-2", 2.0)]
        if include_paper_c:
            c_values.append(("paper", round(c_min_regular(eta, d), 1)))
        for label, c in c_values:
            table = execute(RunPlan(
                grid=ParameterGrid(n=[n], c=[c], d=[d]),
                work=WorkSpec(record=_burned_fraction_record, name="e04-burned"),
                trials=trials,
                seeds=SeedSpec(root=seed),
                execution=ExecSpec(processes=processes),
                results=ResultSpec(mode="columnar"),
            ))
            all_recs.extend(table)
            s_stats = summarize(table.column("max_s_t"))
            ok = int(table.column("lemma4_ok").sum())
            rows.append(
                {
                    "n": n,
                    "c_regime": label,
                    "c": c,
                    "trials": len(table),
                    "max_s_t_mean": round(s_stats["mean"], 4),
                    "max_s_t_worst": round(s_stats["max"], 4),
                    "bound": 0.5,
                    "lemma4_ok": f"{ok}/{len(table)}",
                }
            )
    meta = {"d": d, "records": all_recs}
    return rows, meta


# ---------------------------------------------------------------------------
# E5 — Corollary 2: coupled dominance
# ---------------------------------------------------------------------------


def _coupled_record(graph, point: Mapping, p_seed) -> dict:
    cp = run_coupled(graph, point["c"], point["d"], seed=p_seed)
    return {
        "nested": cp.nested_every_round,
        "raes_no_later": cp.raes_no_later,
        "saer_rounds": cp.saer.rounds,
        "raes_rounds": cp.raes.rounds,
        "saer_completed": cp.saer.completed,
        "raes_completed": cp.raes.completed,
        "alive_dominated": bool(np.all(cp.alive_raes <= cp.alive_saer)),
    }


def run_e05_dominance(
    ns=(256, 1024),
    cs=(1.5, 2.0),
    d: int = 4,
    trials: int = 10,
    seed=505,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E5: pathwise RAES-dominates-SAER under slot coupling."""
    grid = ParameterGrid(n=list(ns), c=list(cs), d=[d])
    recs = execute(RunPlan(
        grid=grid,
        work=WorkSpec(record=_coupled_record, name="e05-dominance"),
        trials=trials,
        seeds=SeedSpec(root=seed),
        execution=ExecSpec(processes=processes),
        results=ResultSpec(mode="columnar"),
    ))
    rows = []
    for n in ns:
        for c in cs:
            bucket = recs.where(n=n, c=c)
            rows.append(
                {
                    "n": n,
                    "c": c,
                    "trials": len(bucket),
                    "nested_every_round": int(bucket.column("nested").sum()),
                    "alive_dominated": int(bucket.column("alive_dominated").sum()),
                    "raes_no_later": int(bucket.column("raes_no_later").sum()),
                    "saer_rounds_mean": round(
                        summarize(bucket.column("saer_rounds"))["mean"], 2
                    ),
                    "raes_rounds_mean": round(
                        summarize(bucket.column("raes_rounds"))["mean"], 2
                    ),
                }
            )
    meta = {
        "d": d,
        "all_nested": bool(np.all(recs.column("nested"))),
        "all_dominated": bool(np.all(recs.column("alive_dominated"))),
        "records": recs,
    }
    return rows, meta


# ---------------------------------------------------------------------------
# E6 — threshold behaviour in c
# ---------------------------------------------------------------------------


def run_e06_c_threshold(
    n: int = 1024,
    cs=(1.0, 1.2, 1.35, 1.5, 2.0, 3.0, 4.0, 8.0, 16.0, 32.0),
    d: int = 4,
    trials: int = 10,
    seed=606,
    processes: int | None = None,
    backend: str = "reference",
    share_graph: bool = False,
    graph_cache: str | None = None,
    results: str = "columnar",
    kernel: str | None = None,
    kernel_threads: int | None = None,
    spool: str | None = None,
    resume: str | None = None,
    seed_mode: str | None = None,
) -> tuple[list[dict], dict]:
    """E6: completion rate / speed as c sweeps from starvation to paper-scale.

    ``share_graph=True`` pins one Δ-regular topology (built once, cached
    when ``graph_cache`` is set) for the entire sweep and hands workers
    a zero-copy view instead of rebuilding per task — the scale-axis
    fast path, since every point of this sweep shares ``n`` and the
    degree.  The estimate then conditions on a single graph draw (the
    protocol-level Monte Carlo, like the batched backend's per-point
    conditioning, taken sweep-wide).
    """
    grid = ParameterGrid(n=[n], c=list(cs), d=[d])
    graph = None
    if share_graph:
        # Disjoint from the sweep's task seeds: the first len(grid)*trials
        # children are exactly the sweep's spawn, so take the next one.
        g_seed = np.random.SeedSequence(seed).spawn(len(grid) * trials + 1)[-1]
        graph = build_point_graph({"n": n}, g_seed, graph_cache)
    recs = execute(_saer_plan(
        grid,
        trials=trials,
        seed=seed,
        processes=processes,
        backend=backend,
        graph=graph,
        graph_cache=None if share_graph else graph_cache,
        results=results,
        kernel=kernel,
        kernel_threads=kernel_threads,
        spool=spool,
        seed_mode=seed_mode,
    ), resume=resume)
    table = as_table(recs)
    rows = []
    for c in cs:
        bucket = table.where(c=c)
        completed = bucket.column("completed").astype(bool)
        done = int(completed.sum())
        rate, lo, hi = wilson_interval(done, len(bucket))
        done_rounds = bucket.column("rounds")[completed]
        rows.append(
            {
                "c": c,
                "capacity": int(math.floor(c * d)),
                "trials": len(bucket),
                "completion_rate": round(rate, 3),
                "rate_ci": f"[{lo:.2f},{hi:.2f}]",
                "rounds_median": summarize(done_rounds)["median"] if done_rounds.size else None,
                "work_per_client": round(
                    summarize(bucket.column("work_per_client"))["mean"], 2
                ),
                "blocked_servers_mean": round(
                    summarize(bucket.column("blocked_servers"))["mean"], 1
                ),
            }
        )
    meta = {
        "n": n,
        "d": d,
        "backend": backend,
        "share_graph": share_graph,
        "records": recs,
    }
    return rows, meta


# ---------------------------------------------------------------------------
# E7 — degree sweep around log² n
# ---------------------------------------------------------------------------


def run_e07_degree_sweep(
    n: int = 1024,
    c: float = 1.5,
    d: int = 4,
    trials: int = 10,
    seed=707,
    processes: int | None = None,
    backend: str = "reference",
    graph_cache: str | None = None,
    results: str = "columnar",
    kernel: str | None = None,
    kernel_threads: int | None = None,
    spool: str | None = None,
    resume: str | None = None,
    seed_mode: str | None = None,
) -> tuple[list[dict], dict]:
    """E7: completion vs degree, from o(log² n) up to the complete graph."""
    log2n = math.log2(n)
    degree_specs = [
        ("log n", max(2, math.ceil(log2n))),
        ("log^1.5 n", max(2, math.ceil(log2n**1.5))),
        ("0.5·log² n", max(2, math.ceil(0.5 * log2n**2))),
        ("log² n", max(2, math.ceil(log2n**2))),
        ("sqrt n", math.ceil(math.sqrt(n))),
        ("n/4", n // 4),
        ("n (complete)", n),
    ]
    rows = []
    all_recs = []
    for part, (label, deg) in enumerate(degree_specs):
        grid = ParameterGrid(n=[n], c=[c], d=[d], degree=[deg])
        table = as_table(execute(_saer_plan(
            grid, trials=trials, seed=seed, processes=processes, backend=backend,
            graph_cache=graph_cache, results=results, kernel=kernel,
            kernel_threads=kernel_threads, spool=_part_dir(spool, part),
            seed_mode=seed_mode,
        ), resume=_part_dir(resume, part)))
        all_recs.extend(table)
        completed = table.column("completed").astype(bool)
        done = int(completed.sum())
        rate, lo, hi = wilson_interval(done, len(table))
        done_rounds = table.column("rounds")[completed]
        rows.append(
            {
                "degree_regime": label,
                "degree": deg,
                "meets_hypothesis": deg >= log2n**2,
                "trials": len(table),
                "completion_rate": round(rate, 3),
                "rounds_median": summarize(done_rounds)["median"] if done_rounds.size else None,
                "rounds_max": summarize(done_rounds)["max"] if done_rounds.size else None,
                "horizon": completion_horizon(n),
            }
        )
    meta = {"n": n, "c": c, "d": d, "backend": backend, "records": all_recs}
    return rows, meta


# ---------------------------------------------------------------------------
# E8 — almost-regular families
# ---------------------------------------------------------------------------


def run_e08_almost_regular(
    n: int = 1024,
    c: float = 2.0,
    d: int = 4,
    ratios=(1, 2, 4),
    trials: int = 8,
    seed=808,
    processes: int | None = None,
    backend: str = "reference",
    graph_cache: str | None = None,
    results: str = "columnar",
    kernel: str | None = None,
    kernel_threads: int | None = None,
    spool: str | None = None,
    resume: str | None = None,
    seed_mode: str | None = None,
) -> tuple[list[dict], dict]:
    """E8: the ρ allowance — near-regular ratio sweep plus paper_extremal."""
    rows = []
    all_recs = []
    base = _regular_degree(n)

    def _row(label: str, table) -> dict:
        completed = table.column("completed").astype(bool)
        done_rounds = table.column("rounds")[completed]
        return {
            "family": label,
            "rho_measured": round(summarize(table.column("rho"))["mean"], 2),
            "trials": len(table),
            "completed": int(completed.sum()),
            "rounds_median": summarize(done_rounds)["median"] if done_rounds.size else None,
            "rounds_max": summarize(done_rounds)["max"] if done_rounds.size else None,
            "horizon": completion_horizon(n),
        }

    for part, ratio in enumerate(ratios):
        fam = "regular" if ratio == 1 else "near_regular"
        grid = ParameterGrid(
            n=[n],
            c=[c],
            d=[d],
            family=[fam],
            degree_lo=[base],
            degree_hi=[min(base * ratio, n)],
        )
        table = as_table(execute(_saer_plan(
            grid, trials=trials, seed=seed, processes=processes, backend=backend,
            graph_cache=graph_cache, results=results, kernel=kernel,
            kernel_threads=kernel_threads, spool=_part_dir(spool, part),
            seed_mode=seed_mode,
        ), resume=_part_dir(resume, part)))
        all_recs.extend(table)
        rows.append(
            _row(f"near_regular ρ≈{ratio}" if ratio > 1 else "regular (ρ=1)", table)
        )
    # The paper's extremal example (√n-degree clients, O(1)-degree servers).
    grid = ParameterGrid(n=[n], c=[c], d=[d], family=["paper_extremal"], eta=[0.5])
    table = as_table(execute(_saer_plan(
        grid, trials=trials, seed=seed, processes=processes, backend=backend,
        graph_cache=graph_cache, results=results, kernel=kernel,
        kernel_threads=kernel_threads, spool=_part_dir(spool, len(ratios)),
        seed_mode=seed_mode,
    ), resume=_part_dir(resume, len(ratios))))
    all_recs.extend(table)
    rows.append(_row("paper_extremal (√n clients, O(1) servers)", table))
    meta = {"n": n, "c": c, "d": d, "backend": backend, "records": all_recs}
    return rows, meta


# ---------------------------------------------------------------------------
# E9 — baselines comparison
# ---------------------------------------------------------------------------


def _baseline_record(graph, point: Mapping, a_seed) -> dict:
    algo, c, d = point["algorithm"], point["c"], point["d"]
    if algo == "saer":
        r = run_saer(graph, c, d, seed=a_seed)
        return {
            "algorithm": "saer",
            "rounds": r.rounds,
            "steps": r.rounds,
            "work": r.work,
            "max_load": r.max_load,
            "completed": r.completed,
            "discloses_loads": False,
        }
    if algo == "raes":
        r = run_raes(graph, c, d, seed=a_seed)
        return {
            "algorithm": "raes",
            "rounds": r.rounds,
            "steps": r.rounds,
            "work": r.work,
            "max_load": r.max_load,
            "completed": r.completed,
            "discloses_loads": False,
        }
    if algo == "threshold":
        b = run_threshold_protocol(graph, d, threshold=d, seed=a_seed)
    elif algo == "parallel_greedy":
        b = run_parallel_greedy(graph, d, k=2, seed=a_seed)
    elif algo == "one_choice":
        b = one_choice(graph, d, seed=a_seed)
    elif algo == "best_of_2":
        b = greedy_best_of_k(graph, d, k=2, seed=a_seed)
    elif algo == "godfrey":
        b = godfrey_greedy(graph, d, seed=a_seed)
    else:  # pragma: no cover
        raise ValueError(algo)
    return {
        "algorithm": b.algorithm,
        "rounds": b.rounds,
        "steps": b.steps,
        "work": b.work,
        "max_load": b.max_load,
        "completed": b.completed,
        "discloses_loads": b.discloses_loads,
    }


def run_e09_baselines(
    n: int = 1024,
    c: float = 2.0,
    d: int = 4,
    trials: int = 5,
    seed=909,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E9: SAER/RAES vs threshold, parallel greedy, and sequential baselines."""
    algos = [
        "saer",
        "raes",
        "threshold",
        "parallel_greedy",
        "one_choice",
        "best_of_2",
        "godfrey",
    ]
    degree = _regular_degree(n)
    points = [
        {"algorithm": algo, "n": n, "c": c, "d": d, "degree": degree}
        for algo in algos
    ]
    recs = execute(RunPlan(
        grid=points,
        work=WorkSpec(record=_baseline_record, name="e09-baselines"),
        trials=trials,
        seeds=SeedSpec(root=seed),
        execution=ExecSpec(processes=processes),
        results=ResultSpec(mode="columnar"),
    ))
    rows = aggregate_records(
        recs, group_by=["algorithm", "discloses_loads"], fields=["max_load", "rounds", "steps", "work"]
    )
    for row in rows:
        row["parallel_time"] = (
            f"{row['rounds_median']:.0f} rounds" if row["rounds_median"] > 0 else "sequential"
        )
    meta = {"n": n, "c": c, "d": d, "capacity": int(math.floor(c * d)), "records": recs}
    return rows, meta


# ---------------------------------------------------------------------------
# E10 — Stage-I decay vs the γ envelope
# ---------------------------------------------------------------------------


def _stage1_record(graph, point: Mapping, seed_seq) -> dict:
    """One fully-traced SAER run on the pinned E10 topology.

    Runs under ``SeedSpec(mode="direct")``: the task seed *is* the
    protocol seed (no graph/protocol pair spawn — the graph is pinned
    and was built in the parent from its own seed).
    """
    res = run_saer(
        graph, point["c"], point["d"], seed=seed_seq, trace=TraceLevel.FULL
    )
    return {
        "rounds": res.rounds,
        "completed": res.completed,
        "k_t": np.asarray(res.trace.k_t, dtype=np.float64),
        "r_neigh_max": np.asarray(res.trace.r_neigh_max, dtype=np.int64),
        "s_t": np.asarray(res.trace.s_t, dtype=np.float64),
    }


def run_e10_stage1(
    n: int = 4096,
    d: int = 4,
    c: float | None = None,
    contended_c: float = 1.5,
    seed=1010,
) -> tuple[list[dict], dict]:
    """E10: per-round K_t vs γ_t, and the contended-regime decay curve.

    Two runs on the same graph:

    * **analysis regime** — the paper's ``c`` (Lemma 12 needs ``c ≥ 32``
      for the α = 4 decay).  At feasible simulation sizes the process
      then finishes in 1-2 rounds, which is itself the finding: the
      γ-envelope is extremely conservative.  Rows verify ``K_t ≤ γ_t``
      and ``r_t(N(v)) ≤ 2dΔ·Π_{j<t} γ_j``.
    * **contended regime** — ``c = contended_c`` (outside Lemma 12's
      hypotheses; no γ comparison), where the multi-round geometric
      decay of ``r_t`` is actually visible; rows report the measured
      per-round decay ratio against the measured ``1 - S_{t-1}`` (the
      survival probability the proof's recursion is built on).
    """
    deg = _regular_degree(n)
    eta = deg / (math.log2(n) ** 2)
    c_val = c if c is not None else round(c_min_regular(eta, d), 1)
    g_seed, p_seed, p2_seed = np.random.SeedSequence(seed).spawn(3)
    graph = random_regular_bipartite(n, deg, seed=g_seed)

    # Two runs, same pinned topology, explicitly supplied protocol seeds
    # (the historical 3-way spawn), one traced record per regime.
    paper_rec, contended_rec = execute(RunPlan(
        grid=[
            {"regime": "paper", "c": c_val, "d": d},
            {"regime": "contended", "c": contended_c, "d": d},
        ],
        work=WorkSpec(record=_stage1_record, name="e10-stage1"),
        trials=1,
        seeds=SeedSpec(mode="direct", seeds=(p_seed, p2_seed)),
        graph=GraphSpec(mode="pinned", graph=graph),
        execution=ExecSpec(mode="serial"),
    ))

    rows: list[dict] = []
    horizon = min(paper_rec["rounds"], completion_horizon(n))
    gam = gamma_sequence(c_val, horizon + 1)
    prods = gamma_products(c_val, horizon + 1)
    T = stage1_length(n, d, deg, c_val)
    for t in range(1, horizon + 1):
        k_meas = float(paper_rec["k_t"][t - 1])
        r_meas = int(paper_rec["r_neigh_max"][t - 1])
        envelope = 2.0 * d * deg * prods[t - 1]
        rows.append(
            {
                "regime": f"paper c={c_val}",
                "t": t,
                "stage": "I" if t < T else "II",
                "K_t_measured": round(k_meas, 5),
                "gamma_t": round(float(gam[t]), 5),
                "K_le_gamma": k_meas <= float(gam[t]) + 1e-12,
                "r_neigh_max": r_meas,
                "envelope": round(envelope, 2),
                "r_le_envelope": r_meas <= envelope + 1e-9,
                "S_t": round(float(paper_rec["s_t"][t - 1]), 5),
                "decay_ratio": None,
            }
        )
    paper_rows = list(rows)

    contended_rounds = contended_rec["rounds"]
    r_series = np.asarray(contended_rec["r_neigh_max"], dtype=np.float64)
    s_series = np.asarray(contended_rec["s_t"], dtype=np.float64)
    for t in range(1, contended_rounds + 1):
        ratio = (
            round(float(r_series[t - 1] / r_series[t - 2]), 3)
            if t >= 2 and r_series[t - 2] > 0
            else None
        )
        rows.append(
            {
                "regime": f"contended c={contended_c}",
                "t": t,
                "stage": "-",
                "K_t_measured": round(float(contended_rec["k_t"][t - 1]), 5),
                "gamma_t": None,
                "K_le_gamma": None,
                "r_neigh_max": int(r_series[t - 1]),
                "envelope": None,
                "r_le_envelope": None,
                "S_t": round(float(s_series[t - 1]), 5),
                "decay_ratio": ratio,
            }
        )
    # Geometric decay diagnostic over the contended stage-I (r >= 12 log n).
    heavy = r_series >= 12 * math.log2(n)
    ratios = [
        r_series[i] / r_series[i - 1]
        for i in range(1, r_series.size)
        if heavy[i - 1] and r_series[i - 1] > 0
    ]
    meta = {
        "n": n,
        "d": d,
        "c_paper": c_val,
        "c_contended": contended_c,
        "degree": deg,
        "stage1_T": T,
        "paper_rounds": paper_rec["rounds"],
        "contended_rounds": contended_rounds,
        "all_K_below_gamma": all(r["K_le_gamma"] for r in paper_rows),
        "all_r_below_envelope": all(r["r_le_envelope"] for r in paper_rows),
        "contended_decay_geometric_mean": round(float(np.exp(np.mean(np.log(ratios)))), 4)
        if ratios
        else None,
        "delta_envelope_max": float(
            delta_sequence(n, d, deg, c_val, T, max(T, horizon)).max()
        ),
    }
    return rows, meta


# ---------------------------------------------------------------------------
# E11 — alive-ball decay factor
# ---------------------------------------------------------------------------


def _alive_decay_record(graph, point: Mapping, p_seed) -> dict:
    res = run_saer(graph, point["c"], point["d"], seed=p_seed, trace=TraceLevel.BASIC)
    alive = np.asarray(res.trace.alive_before, dtype=np.float64)
    n, d = point["n"], point["d"]
    heavy = alive >= n * d / math.log2(n)
    ratios = res.trace.alive_decay_ratios()
    heavy_ratios = ratios[heavy[:-1][: ratios.size]] if ratios.size else ratios
    return {
        "completed": res.completed,
        "rounds": res.rounds,
        "heavy_rounds": int(np.count_nonzero(heavy)),
        "max_heavy_ratio": float(heavy_ratios.max()) if heavy_ratios.size else 0.0,
        "mean_heavy_ratio": float(heavy_ratios.mean()) if heavy_ratios.size else 0.0,
    }


def run_e11_alive_decay(
    ns=(1024, 4096),
    c: float = 1.5,
    d: int = 4,
    trials: int = 10,
    seed=1111,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E11: per-round alive-ball shrink factor in the heavy regime vs 4/5."""
    grid = ParameterGrid(n=list(ns), c=[c], d=[d])
    recs = execute(RunPlan(
        grid=grid,
        work=WorkSpec(record=_alive_decay_record, name="e11-alive-decay"),
        trials=trials,
        seeds=SeedSpec(root=seed),
        execution=ExecSpec(processes=processes),
        results=ResultSpec(mode="columnar"),
    ))
    rows = []
    for n in ns:
        bucket = recs.where(n=n)
        worst = summarize(bucket.column("max_heavy_ratio"))
        mean = summarize(bucket.column("mean_heavy_ratio"))
        rows.append(
            {
                "n": n,
                "trials": len(bucket),
                "heavy_rounds_mean": round(
                    summarize(bucket.column("heavy_rounds"))["mean"], 1
                ),
                "decay_ratio_mean": round(mean["mean"], 3),
                "decay_ratio_worst": round(worst["max"], 3),
                "paper_bound": 0.8,
                "within_bound": worst["max"] <= 0.8,
            }
        )
    meta = {"c": c, "d": d, "records": recs}
    return rows, meta


# ---------------------------------------------------------------------------
# E12 — dynamic metastability
# ---------------------------------------------------------------------------


def _dynamic_record(graph, point: Mapping, s_seed) -> dict:
    """One dynamic-arrivals run on the point's trust topology."""
    res = run_dynamic_saer(
        graph,
        point["c"],
        point["d"],
        PoissonArrivals(point["rate"]),
        point["horizon"],
        churn=RewireChurn(point["churn"]) if point["churn"] else None,
        recovery=point["recovery"],
        seed=s_seed,
    )
    # rate/churn (and every other point key) reach the record via the
    # sweep's point-merge; the summary only adds the run's outcomes.
    return res.summary()


def run_e12_dynamic(
    n: int = 512,
    c: float = 2.0,
    d: int = 4,
    rates=(0.2, 0.5, 1.0, 2.0),
    horizon: int = 400,
    recovery: int = 8,
    churn_rate: float = 0.02,
    trials: int = 3,
    seed=1212,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """E12: backlog stability vs offered load, with/without burn recovery."""
    combos = []
    for rate in rates:
        combos.append((rate, recovery, churn_rate))
    combos.append((rates[1], None, churn_rate))  # no-recovery control
    points = [
        {
            "rate": rate,
            "recovery": rec,
            "churn": ch,
            "n": n,
            "c": c,
            "d": d,
            "horizon": horizon,
            "family": "trust",
            "degree": _regular_degree(n),
        }
        for rate, rec, ch in combos
    ]
    recs = execute(RunPlan(
        grid=points,
        work=WorkSpec(record=_dynamic_record, name="e12-dynamic"),
        trials=trials,
        seeds=SeedSpec(root=seed),
        execution=ExecSpec(processes=processes),
        results=ResultSpec(mode="columnar"),
    ))
    rows = []
    for rate, rec_param, ch in combos:
        bucket = recs.where(rate=rate, recovery=rec_param, churn=ch)
        rows.append(
            {
                "rate": rate,
                "offered_per_round": round(rate * n, 1),
                "recovery": rec_param,
                "churn": ch,
                "trials": len(bucket),
                "backlog_mean_2nd_half": round(
                    summarize(bucket.column("mean_backlog_2nd_half"))["mean"], 1
                ),
                "backlog_slope": round(
                    summarize(bucket.column("backlog_slope"))["mean"], 3
                ),
                "latency_mean": round(
                    summarize(bucket.column("latency_mean"))["mean"], 3
                ),
                "burned_frac_final": round(
                    summarize(bucket.column("burned_frac_final"))["mean"], 3
                ),
                "metastable": f"{int(bucket.column('metastable').sum())}/{len(bucket)}",
            }
        )
    meta = {"n": n, "c": c, "d": d, "horizon": horizon, "records": recs}
    return rows, meta


# ---------------------------------------------------------------------------
# S1 — the serving layer under replayed live traffic
# ---------------------------------------------------------------------------


def _s1_row(trace_kind: str, run: dict, workers: int) -> dict:
    """One S1 table row from a driven loadgen run's raw tallies."""
    tally = run["tally"]
    lat = run["latencies"]
    return {
        "trace": trace_kind,
        "workers": workers,
        "balls": run["submitted"],
        "assigned": tally["assigned"],
        "dropped": tally["dropped"],
        "retried": tally["retry"],
        "assign_rate": round(tally["assigned"] / run["submitted"], 4)
        if run["submitted"]
        else float("nan"),
        "latency_p50": float(np.quantile(lat, 0.5)) if lat.size else float("nan"),
        "latency_p95": float(np.quantile(lat, 0.95)) if lat.size else float("nan"),
        "rounds": run["rounds"],
        "assigned_per_s": round(tally["assigned"] / run["wall_s"], 1)
        if run["wall_s"] > 0
        else float("nan"),
    }


def run_s1_serve(
    n: int = 1024,
    c: float = 2.0,
    d: int = 4,
    rounds: int = 200,
    rate: float = 0.5,
    recovery: int = 8,
    max_wait_rounds: int = 64,
    traces=("poisson", "hotspot"),
    seed=2024,
    fleet_workers: int = 2,
) -> tuple[list[dict], dict]:
    """S1: replay arrival traces through the live serving stack.

    One row per trace kind (uniform Poisson and the adversarial hotspot
    skew): the in-process *driven* load generator submits each round's
    arrivals to a :class:`~repro.serve.service.SaerService`, fires the
    micro-batched round, drains, and tallies every ball's outcome.
    Because the service's round step *is* the simulator's
    (:class:`~repro.serve.state.ServingState`), the poisson row's
    latency/backlog shape matches E12's metastable regime; the hotspot
    row overloads a few hot neighborhoods, and the service's
    ``max_wait_rounds`` policy sheds the excess as ``Retry`` instead of
    queueing it forever — the request/response behaviours the offline
    simulator has no analogue for.

    With ``fleet_workers >= 2`` a final row replays the poisson trace
    through the multi-process :class:`~repro.serve.fleet.FleetService`
    (``workers`` column > 1) — same offered load, servers sharded
    across worker processes, so the table shows the fleet's accounting
    staying consistent with the single-process rows.
    """
    from ..serve import FleetConfig, FleetService, SaerService, ServeConfig, ServingState
    from ..serve.loadgen import make_arrivals, run_inprocess, sample_trace

    g_seed, t_seed, *p_seeds = np.random.SeedSequence(seed).spawn(3 + len(traces))
    fleet_seed = p_seeds.pop()
    graph = build_point_graph(
        {"family": "trust", "n": n, "degree": _regular_degree(n)}, g_seed
    )
    rows = []
    kernel_name = None
    for trace_kind, p_seed in zip(traces, p_seeds):
        state = ServingState(
            graph, c, d, recovery=recovery, seed=p_seed, track_tags=True
        )
        kernel_name = state.kernel_name
        service = SaerService(
            state, ServeConfig(max_batch=1 << 30, max_wait_rounds=max_wait_rounds)
        )
        trace = sample_trace(
            make_arrivals(trace_kind, rate), n, rounds, t_seed
        )
        run = run_inprocess(service, trace)
        rows.append(_s1_row(trace_kind, run, workers=1))
    if fleet_workers >= 2:
        fleet = FleetService(
            graph,
            c,
            d,
            config=FleetConfig(
                workers=fleet_workers, max_wait_rounds=max_wait_rounds
            ),
            recovery=recovery,
            seed=fleet_seed,
        )
        try:
            trace = sample_trace(make_arrivals("poisson", rate), n, rounds, t_seed)
            run = run_inprocess(fleet, trace)
        finally:
            fleet.close()
        rows.append(_s1_row("poisson", run, workers=fleet_workers))
    meta = {
        "n": n,
        "c": c,
        "d": d,
        "rate": rate,
        "recovery": recovery,
        "max_wait_rounds": max_wait_rounds,
        "kernel": kernel_name,
        "fleet_workers": fleet_workers,
    }
    return rows, meta


# ---------------------------------------------------------------------------
# F1 — fault tolerance: protocol behaviour vs faulty fraction f
# ---------------------------------------------------------------------------


def _f1_record(graph, point: Mapping, s_seed) -> dict:
    """One faulted dynamic run; the schedule is rebuilt from the point's
    scalars (kind / f / start / seed) so points stay columnar-spoolable."""
    faults = None
    if point["f"] > 0:
        faults = FaultSchedule(
            (
                FaultSpec(
                    point["fault_kind"],
                    point["f"],
                    start=point["fault_start"],
                ),
            ),
            seed=point["fault_seed"],
        )
    res = run_dynamic_saer(
        graph,
        point["c"],
        point["d"],
        PoissonArrivals(point["rate"]),
        point["horizon"],
        recovery=point["recovery"],
        seed=s_seed,
        faults=faults,
    )
    rec = res.summary()
    stab = res.stabilization_round(after=point["fault_start"])
    rec["stabilized"] = stab is not None
    rec["stabilization_round"] = -1 if stab is None else stab
    rec["byz_absorbed"] = res.byz_absorbed
    return rec


def run_f1_faults(
    n: int = 512,
    c: float = 2.0,
    d: int = 4,
    rate: float = 0.5,
    horizon: int = 300,
    recovery: int = 8,
    fractions=(0.1, 0.2, 0.4),
    kinds=("crash", "stall", "byz_server"),
    fault_start: int | None = None,
    fault_seed: int = 11,
    trials: int = 3,
    seed=7001,
    processes: int | None = None,
) -> tuple[list[dict], dict]:
    """F1: f-tolerance sweep — dynamic SAER vs faulty participant fraction.

    A permanent fault fires at ``fault_start`` (default ``horizon // 4``,
    so a quarter of the run establishes the healthy baseline) knocking
    out / corrupting a fraction *f* of the servers; the table reports,
    per ``(kind, f)``, whether the backlog restabilizes
    (:meth:`~repro.dynamic.DynamicResult.stabilization_round`), how far
    the burned fraction climbs, and — for Byzantine servers — how many
    balls the liars silently absorbed.  ``f = 0`` is the control row and
    is *bit-identical* to a fault-free run (the fault RNG never touches
    the protocol stream).
    """
    if fault_start is None:
        fault_start = horizon // 4
    points = [
        {
            "fault_kind": "none",
            "f": 0.0,
            "fault_start": fault_start,
            "fault_seed": fault_seed,
            "rate": rate,
            "recovery": recovery,
            "n": n,
            "c": c,
            "d": d,
            "horizon": horizon,
            "family": "trust",
            "degree": _regular_degree(n),
        }
    ]
    for kind in kinds:
        for f in fractions:
            if f <= 0:
                continue
            points.append({**points[0], "fault_kind": kind, "f": f})
    recs = execute(RunPlan(
        grid=points,
        work=WorkSpec(record=_f1_record, name="f1-faults"),
        trials=trials,
        seeds=SeedSpec(root=seed),
        execution=ExecSpec(processes=processes),
        results=ResultSpec(mode="columnar"),
    ))
    rows = []
    for point in points:
        kind, f = point["fault_kind"], point["f"]
        bucket = recs.where(fault_kind=kind, f=f)
        stab_rounds = bucket.column("stabilization_round")
        stab_rounds = stab_rounds[stab_rounds >= 0]
        rows.append(
            {
                "kind": kind,
                "f": f,
                "trials": len(bucket),
                "backlog_mean_2nd_half": round(
                    summarize(bucket.column("mean_backlog_2nd_half"))["mean"], 1
                ),
                "backlog_slope": round(
                    summarize(bucket.column("backlog_slope"))["mean"], 3
                ),
                "burned_frac_final": round(
                    summarize(bucket.column("burned_frac_final"))["mean"], 3
                ),
                "latency_p95": round(
                    summarize(bucket.column("latency_p95"))["mean"], 3
                ),
                "byz_absorbed": int(bucket.column("byz_absorbed").sum()),
                "stabilized": f"{int(bucket.column('stabilized').sum())}/{len(bucket)}",
                "stabilization_round": round(float(stab_rounds.mean()), 1)
                if stab_rounds.size
                else None,
                "metastable": f"{int(bucket.column('metastable').sum())}/{len(bucket)}",
            }
        )
    meta = {
        "n": n,
        "c": c,
        "d": d,
        "rate": rate,
        "horizon": horizon,
        "recovery": recovery,
        "fault_start": fault_start,
        "fault_seed": fault_seed,
        "records": recs,
    }
    return rows, meta
