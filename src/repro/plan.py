"""Unified execution plans: one dispatch pipeline for every run axis.

Why
---
Every experiment in this library is the same shape of computation — a
grid of parameter points × independent Monte-Carlo trials — evaluated
under four orthogonal execution axes that grew one PR at a time:

* **backend** — the per-trial reference engine vs the trial-vectorized
  batched engine (plus its compiled round-kernel gate);
* **graph provisioning** — generate the topology worker-side, route
  builds through the on-disk graph cache, or pin one pre-built
  topology and ship it zero-copy
  (:class:`~repro.parallel.shared.SharedGraph` / fork inheritance);
* **dispatch** — serial in-process, a process pool, with persistent
  per-worker state (:func:`repro.parallel.pool.worker_state`);
* **results** — legacy per-trial record dicts vs the columnar
  :class:`~repro.batch.results.ResultBlock` spool assembled into a
  :class:`~repro.parallel.aggregate.ResultTable`.

Before this module each axis was plumbed through ad-hoc kwargs at every
layer (runner signatures, near-duplicate worker adapters, CLI signature
probing).  A :class:`RunPlan` declares all axes once; :func:`execute`
owns resolution and dispatch.  Adding a new backend, graph source,
executor, or spool format is a change *here*, not a five-file sweep.

How
---
A plan is data: ``RunPlan(grid, work, trials, seeds, backend, graph,
execution, results)`` where each field is a small frozen spec.  The
``work`` field carries the experiment's science as two canonical
callables:

* ``record(graph, point, seed)   -> dict`` — one trial;
* ``batch(graph, point, seeds)   -> list[dict] | ResultBlock`` — one
  point's whole trial block (optional; required by the batched
  backend; may accept ``kernel=`` for the compiled-kernel gate).

:func:`execute` wraps them in the **two** canonical picklable workers
(:class:`PerTrialWorker`, :class:`BatchWorker`) — these replace the
per-experiment adapter variants that previously lived in
``experiments/runners.py`` — and dispatches through
:func:`repro.parallel.sweep.run_sweep`, which owns seed spawning, the
pool, zero-copy graph installation, and columnar assembly.

Seed discipline
---------------
``SeedSpec(mode="pair")`` (default) reproduces the library's spawning
contract exactly: every (point, trial) task seed is spawned in
point-major order, and the worker splits it into a ``(graph seed,
protocol seed)`` pair — so a given (point, trial) sees bit-identical
randomness under every backend × graph × dispatch × results
combination.  ``mode="direct"`` hands the task seed straight to the
record function (no pair spawn); it requires a pinned graph, since
there is then no graph seed to build from.  ``mode="philox"`` keeps
the pair spawn but switches the batched engine to the counter-based
Philox lineage (:func:`repro.rng.philox_trial_words`): each trial's
protocol stream becomes a pure function of its spawned words and the
(round, slot) counter — its own golden lineage, deliberately NOT
bit-compatible with the PCG64 modes — which unlocks the fused
generate-at-consumption kernels and the ``cupy`` device gate.  It
requires the batched backend (``work.batch`` must accept
``seed_mode=``).
"""

from __future__ import annotations

import inspect
import os
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

from .errors import PlanError
from .graphs.families import build_point_graph
from .parallel.sweep import ParameterGrid, run_sweep

__all__ = [
    "BackendSpec",
    "GraphSpec",
    "SeedSpec",
    "ExecSpec",
    "ResultSpec",
    "WorkSpec",
    "RunPlan",
    "PerTrialWorker",
    "BatchWorker",
    "execute",
]

_BACKENDS = ("reference", "batched")
_KERNELS = ("numpy", "cext", "numba", "python")
_GRAPH_MODES = ("generate", "cached", "pinned")
_SEED_MODES = ("pair", "direct", "philox")
_EXEC_MODES = ("auto", "serial", "pool")
_RESULT_MODES = ("records", "columnar")
_RESULT_SINKS = ("memory", "spool")


@dataclass(frozen=True)
class BackendSpec:
    """Which engine runs a trial.

    ``name`` selects the per-trial ``"reference"`` engine or the
    trial-vectorized ``"batched"`` engine; ``kernel`` optionally pins
    the batched engine's round-kernel implementation (``numpy`` /
    ``cext`` / ``numba`` / ``python``; ``None`` defers to the
    ``REPRO_KERNELS`` environment gate).  ``threads`` is the compiled
    kernel's trial-partitioned thread budget (``None`` defers to
    ``REPRO_KERNEL_THREADS``; results are bit-identical at every
    thread count).  Both travel inside the pickled worker, so they
    reach pool processes without environment plumbing — and because
    pool workers reset the environment half of the thread gate to 1,
    ``threads`` is *the* way to thread kernels under pooled dispatch
    (:func:`execute` additionally caps it so threads × processes never
    exceeds the machine's cores).
    """

    name: str = "reference"
    kernel: str | None = None
    threads: int | None = None

    def validate(self) -> None:
        if self.name not in _BACKENDS:
            raise PlanError(
                f"unknown backend {self.name!r}; known: {', '.join(_BACKENDS)}"
            )
        if self.kernel is not None:
            if self.kernel not in _KERNELS:
                raise PlanError(
                    f"unknown kernel {self.kernel!r}; known: {', '.join(_KERNELS)}"
                )
            if self.name != "batched":
                raise PlanError(
                    "kernel= only applies to the batched backend "
                    f"(got backend={self.name!r})"
                )
        if self.threads is not None:
            if not isinstance(self.threads, int) or self.threads < 1:
                raise PlanError(
                    f"backend threads must be a positive int; got {self.threads!r}"
                )
            if self.name != "batched":
                raise PlanError(
                    "threads= only applies to the batched backend "
                    f"(got backend={self.name!r})"
                )


@dataclass(frozen=True)
class GraphSpec:
    """Where each task's topology comes from.

    * ``"generate"`` (default) — the worker builds the graph from the
      task's spawned graph seed via ``builder`` (default: the sweep
      family vocabulary, :func:`repro.graphs.families.build_point_graph`);
    * ``"cached"`` — same build, routed through the on-disk graph cache
      in ``cache_dir``;
    * ``"pinned"`` — one pre-built topology (a
      :class:`~repro.graphs.bipartite.BipartiteGraph` or pre-shared
      :class:`~repro.parallel.shared.SharedGraph`) for *every* task,
      installed once per worker zero-copy.
    """

    mode: str = "generate"
    cache_dir: str | None = None
    graph: object | None = None
    builder: Callable | None = None  # (point, seed, cache_dir) -> BipartiteGraph

    def validate(self) -> None:
        if self.mode not in _GRAPH_MODES:
            raise PlanError(
                f"unknown graph mode {self.mode!r}; known: {', '.join(_GRAPH_MODES)}"
            )
        if self.mode == "cached" and not self.cache_dir:
            raise PlanError("graph mode 'cached' needs cache_dir")
        if self.mode == "pinned" and self.graph is None:
            raise PlanError("graph mode 'pinned' needs a graph")
        if self.mode != "pinned" and self.graph is not None:
            raise PlanError(f"graph mode {self.mode!r} does not take a pinned graph")
        if self.mode != "cached" and self.cache_dir:
            raise PlanError(f"graph mode {self.mode!r} does not take cache_dir")


@dataclass(frozen=True)
class SeedSpec:
    """How per-task randomness is derived.

    ``root`` is spawned into one child per (point, trial) task in
    point-major order (the library-wide contract).  ``seeds`` instead
    supplies the task seeds explicitly (length = points × trials).
    ``mode="pair"`` (default) makes the worker split each task seed
    into a ``(graph, protocol)`` pair; ``mode="direct"`` hands it to
    the record function unsplit (requires a pinned graph);
    ``mode="philox"`` spawns pairs like ``"pair"`` but runs the
    batched engine under the counter-based Philox lineage (a distinct
    golden stream — see the module docstring).
    """

    root: object = None
    mode: str = "pair"
    seeds: tuple | None = None

    def validate(self) -> None:
        if self.mode not in _SEED_MODES:
            raise PlanError(
                f"unknown seed mode {self.mode!r}; known: {', '.join(_SEED_MODES)}"
            )
        if self.seeds is not None and self.root is not None:
            raise PlanError("pass either a root seed or explicit seeds, not both")


@dataclass(frozen=True)
class ExecSpec:
    """How tasks are dispatched.

    ``"serial"`` forces in-process execution (exact tracebacks, no
    pickling); ``"pool"``/``"auto"`` run on a process pool sized by
    ``processes`` (``None`` = all-but-two cores).  Pool workers are
    persistent for the whole map, so batched workers keep their
    :func:`~repro.parallel.pool.worker_state` engine buffers alive
    across grid points.

    ``retries`` and ``task_timeout`` shape the durable path's
    :class:`~repro.durable.supervisor.RetryPolicy` (spool-sink runs
    only): a grid point whose worker keeps dying or overstaying the
    timeout is quarantined as a structured failure row after
    ``retries`` attempts instead of killing the sweep.
    """

    mode: str = "auto"
    processes: int | None = None
    chunksize: int = 1
    retries: int = 3
    task_timeout: float | None = None

    def validate(self) -> None:
        if self.mode not in _EXEC_MODES:
            raise PlanError(
                f"unknown exec mode {self.mode!r}; known: {', '.join(_EXEC_MODES)}"
            )
        if self.mode == "serial" and self.processes not in (None, 0, 1):
            raise PlanError(
                f"exec mode 'serial' contradicts processes={self.processes}"
            )
        if self.chunksize < 1:
            raise PlanError(f"chunksize must be >= 1; got {self.chunksize}")
        if not isinstance(self.retries, int) or self.retries < 1:
            raise PlanError(f"retries must be a positive int; got {self.retries!r}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise PlanError(
                f"task_timeout must be positive; got {self.task_timeout!r}"
            )
        _warn_oversubscribed(self.processes)

    def resolve_processes(self) -> int | None:
        return 1 if self.mode == "serial" else self.processes


_OVERSUB_WARNED = False


def _warn_oversubscribed(processes: int | None) -> None:
    """Warn (once per process) when a plan asks for more workers than cores.

    Oversubscription is legal — tests on small boxes rely on it — but
    on production sweeps it usually means a copy-pasted process count,
    so the first offending plan gets a heads-up.
    """
    from .parallel.pool import available_cpus

    global _OVERSUB_WARNED
    cores = available_cpus()
    if _OVERSUB_WARNED or processes is None or processes <= cores:
        return
    _OVERSUB_WARNED = True
    warnings.warn(
        f"ExecSpec.processes={processes} exceeds available cpus={cores}; "
        "workers will time-slice cores (this warning is shown once)",
        stacklevel=3,
    )


@dataclass(frozen=True)
class ResultSpec:
    """The results carrier: legacy record dicts or the columnar spool.

    ``mode`` picks how rows travel and what :func:`execute` returns
    (``"records"`` → ``list[dict]``, ``"columnar"`` →
    :class:`~repro.parallel.aggregate.ResultTable`).  ``sink`` picks
    where they live: ``"memory"`` (default) assembles in RAM;
    ``"spool"`` streams every grid point's block to ``dir`` as an
    atomic checksummed file with a JSONL journal — the durable path
    (:mod:`repro.durable`): the sweep survives worker crashes, can be
    resumed bit-identically after a SIGKILL (``execute(plan,
    resume=dir)``), and the full result set never has to fit in RAM
    (:class:`~repro.durable.SpoolReader` iterates blocks lazily).
    """

    mode: str = "records"
    sink: str = "memory"
    dir: str | None = None

    def validate(self) -> None:
        if self.mode not in _RESULT_MODES:
            raise PlanError(
                f"unknown results mode {self.mode!r}; known: {', '.join(_RESULT_MODES)}"
            )
        if self.sink not in _RESULT_SINKS:
            raise PlanError(
                f"unknown results sink {self.sink!r}; known: {', '.join(_RESULT_SINKS)}"
            )
        if self.sink == "spool" and not self.dir:
            raise PlanError("results sink 'spool' needs dir")
        if self.sink != "spool" and self.dir:
            raise PlanError(f"results sink {self.sink!r} does not take dir")


@dataclass(frozen=True)
class WorkSpec:
    """The experiment's science, in the two canonical callable shapes.

    ``record(graph, point, seed) -> dict`` runs one trial on a resolved
    topology; ``batch(graph, point, seeds) -> list[dict] | ResultBlock``
    runs a point's whole trial block at once (the batched backend's
    entry; optional).  A ``batch`` callable may accept a ``kernel=``
    keyword to receive :attr:`BackendSpec.kernel`.  Both must be
    picklable (module-level functions).
    """

    record: Callable
    batch: Callable | None = None
    name: str = ""

    def validate(self) -> None:
        if not callable(self.record):
            raise PlanError("work.record must be callable")
        if self.batch is not None and not callable(self.batch):
            raise PlanError("work.batch must be callable when given")


@dataclass(frozen=True)
class RunPlan:
    """A declarative description of one grid × trials evaluation.

    ``grid`` is a :class:`~repro.parallel.sweep.ParameterGrid` or an
    explicit sequence of point dicts (for non-cartesian designs).
    Execute with :func:`execute`; derive variants with
    :meth:`override` (specs are frozen — plans are values).
    """

    grid: object
    work: WorkSpec
    trials: int = 1
    seeds: SeedSpec = field(default_factory=SeedSpec)
    backend: BackendSpec = field(default_factory=BackendSpec)
    graph: GraphSpec = field(default_factory=GraphSpec)
    execution: ExecSpec = field(default_factory=ExecSpec)
    results: ResultSpec = field(default_factory=ResultSpec)

    # -- derived views ---------------------------------------------------

    def points(self) -> list[dict]:
        """The grid's points as dicts (explicit point lists pass through)."""
        if hasattr(self.grid, "points"):
            return self.grid.points()
        return [dict(p) for p in self.grid]

    def n_tasks(self) -> int:
        return len(self.points()) * self.trials

    def override(self, **changes) -> "RunPlan":
        """A copy of this plan with dataclass fields replaced."""
        return replace(self, **changes)

    def describe(self) -> dict:
        """A flat, log-friendly summary of every axis."""
        return {
            "work": self.work.name or getattr(self.work.record, "__name__", "?"),
            "points": len(self.points()),
            "trials": self.trials,
            "backend": self.backend.name,
            "seed_mode": self.seeds.mode,
            "kernel": self.backend.kernel,
            "threads": self.backend.threads,
            "graph": self.graph.mode,
            "exec": self.execution.mode,
            "processes": self.execution.resolve_processes(),
            "results": self.results.mode,
            "sink": self.results.sink,
        }

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Check every axis and their cross-axis consistency."""
        if not isinstance(self.grid, ParameterGrid):
            if isinstance(self.grid, (str, bytes)) or not isinstance(
                self.grid, Sequence
            ):
                raise PlanError(
                    "grid must be a ParameterGrid or a sequence of point dicts"
                )
            for p in self.grid:
                if not isinstance(p, Mapping):
                    raise PlanError(f"explicit grid points must be dicts; got {p!r}")
        if not isinstance(self.trials, int) or self.trials < 0:
            raise PlanError(f"trials must be a non-negative int; got {self.trials!r}")
        self.work.validate()
        self.seeds.validate()
        self.backend.validate()
        self.graph.validate()
        self.execution.validate()
        self.results.validate()
        if self.backend.name == "batched" and self.work.batch is None:
            raise PlanError(
                "backend 'batched' needs work.batch (a block-of-trials callable)"
            )
        for kw, value in (("kernel", self.backend.kernel), ("threads", self.backend.threads)):
            if (
                value is not None
                and self.work.batch is not None
                and not _accepts_kw(self.work.batch, kw)
            ):
                # Fail here rather than as a TypeError inside a pool worker.
                raise PlanError(
                    f"backend.{kw}={value!r} is set but work.batch "
                    f"({getattr(self.work.batch, '__name__', self.work.batch)!r}) "
                    f"does not accept a {kw}= keyword"
                )
        if self.seeds.mode == "direct" and self.graph.mode != "pinned":
            raise PlanError(
                "seed mode 'direct' needs a pinned graph (there is no graph "
                "seed to build one from)"
            )
        if self.seeds.mode == "philox":
            if self.backend.name != "batched":
                raise PlanError(
                    "seed mode 'philox' needs backend 'batched' (the counter "
                    "lineage lives in the batched engine)"
                )
            if self.work.batch is not None and not _accepts_kw(
                self.work.batch, "seed_mode"
            ):
                raise PlanError(
                    "seed mode 'philox' is set but work.batch "
                    f"({getattr(self.work.batch, '__name__', self.work.batch)!r}) "
                    "does not accept a seed_mode= keyword"
                )
        if self.seeds.seeds is not None and len(self.seeds.seeds) != self.n_tasks():
            raise PlanError(
                f"explicit seeds: got {len(self.seeds.seeds)} for "
                f"{self.n_tasks()} (point, trial) tasks"
            )
        if self.results.sink == "spool":
            from .durable.journal import seed_token

            if seed_token(self.seeds) is None:
                raise PlanError(
                    "results sink 'spool' needs a reproducible seed lineage "
                    "(an int root or entropy-bearing SeedSequence); OS-entropy "
                    "seeds cannot resume bit-identically"
                )


def _accepts_kw(fn: Callable, name: str) -> bool:
    """Whether ``fn`` can receive the ``name=`` keyword."""
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins/extensions: assume yes
        return True
    return name in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


# ---------------------------------------------------------------------------
# The two canonical workers (picklable; replace per-experiment adapters).
# ---------------------------------------------------------------------------


class PerTrialWorker:
    """Canonical per-trial execution path: resolve graph, run ``record``.

    Handles every graph mode with the same seed discipline: under
    ``pair_seeds`` the task seed spawns a ``(graph, protocol)`` pair —
    pinned topologies consume only the protocol half, so a (point,
    trial)'s protocol stream is identical across graph modes; the
    statistical difference is only what the estimate conditions on.
    """

    def __init__(
        self,
        record: Callable,
        *,
        pinned: bool = False,
        pair_seeds: bool = True,
        builder: Callable | None = None,
        cache_dir: str | None = None,
    ):
        self.record = record
        self.pinned = pinned
        self.pair_seeds = pair_seeds
        self.builder = builder or build_point_graph
        self.cache_dir = cache_dir

    def __call__(self, *task) -> dict:
        if self.pinned:
            graph, point, seed_seq, _trial = task
        else:
            point, seed_seq, _trial = task
        if self.pair_seeds:
            g_seed, p_seed = seed_seq.spawn(2)
        else:
            g_seed, p_seed = None, seed_seq
        if not self.pinned:
            graph = self.builder(point, g_seed, self.cache_dir)
        return self.record(graph, point, p_seed)


class BatchWorker:
    """Canonical batched execution path: one task per point's trial block.

    Spawns the same per-trial ``(graph, protocol)`` seed pairs as
    :class:`PerTrialWorker`, builds one graph per point (from the first
    trial's graph seed) unless pinned, and hands the protocol seeds to
    ``batch`` — so trial ``r`` of a point consumes a protocol stream
    bit-identical to the reference path's; the batched backend
    conditions a point's trials on a single graph draw.
    """

    def __init__(
        self,
        batch: Callable,
        *,
        pinned: bool = False,
        pair_seeds: bool = True,
        builder: Callable | None = None,
        cache_dir: str | None = None,
        kernel: str | None = None,
        threads: int | None = None,
        seed_mode: str | None = None,
    ):
        self.batch = batch
        self.pinned = pinned
        self.pair_seeds = pair_seeds
        self.builder = builder or build_point_graph
        self.cache_dir = cache_dir
        self.kernel = kernel
        self.threads = threads
        self.seed_mode = seed_mode

    def __call__(self, *task):
        if self.pinned:
            graph, point, seed_seqs, _trials = task
        else:
            point, seed_seqs, _trials = task
        if self.pair_seeds:
            pairs = [ss.spawn(2) for ss in seed_seqs]
            p_seeds = [p_seed for _g_seed, p_seed in pairs]
        else:
            pairs = None
            p_seeds = list(seed_seqs)
        if not self.pinned:
            g_seed = pairs[0][0] if pairs else None
            graph = self.builder(point, g_seed, self.cache_dir)
        kwargs = {}
        if self.kernel is not None:
            kwargs["kernel"] = self.kernel
        if self.threads is not None:
            # Travels in the pickled worker: an explicit plan-level
            # thread budget reaches pool processes even though their
            # REPRO_KERNEL_THREADS environment half is reset to 1.
            kwargs["threads"] = self.threads
        if self.seed_mode is not None:
            kwargs["seed_mode"] = self.seed_mode
        return self.batch(graph, point, p_seeds, **kwargs)


# ---------------------------------------------------------------------------
# The single entry point.
# ---------------------------------------------------------------------------


def _capped_threads(plan: RunPlan) -> int | None:
    """The plan's kernel-thread budget, capped against its process count.

    Threads multiply processes — an explicit ``BackendSpec(threads=8)``
    on an 8-core box dispatched to an 8-worker pool would run 64
    runnable threads.  The cap keeps threads × processes at or below
    the core count (serial runs keep the full budget); the capped value
    travels inside the pickled worker.
    """
    threads = plan.backend.threads
    if threads is None or threads <= 1:
        return threads
    from .parallel.pool import available_cpus, default_processes

    nproc = plan.execution.resolve_processes()
    if nproc is None:
        # The batched backend dispatches one task per grid point.
        nproc = default_processes(len(plan.points()))
    if nproc <= 1:
        return threads
    cores = available_cpus()
    return max(1, min(threads, cores // nproc))


def _build_worker(plan: RunPlan):
    """The plan's canonical picklable worker + its sweep backend name."""
    pinned = plan.graph.mode == "pinned"
    # philox keeps the (graph, protocol) pair spawn — only the protocol
    # halves' interpretation changes, inside the engine
    pair = plan.seeds.mode in ("pair", "philox")
    cache_dir = plan.graph.cache_dir if plan.graph.mode == "cached" else None
    if plan.backend.name == "batched":
        worker = BatchWorker(
            plan.work.batch,
            pinned=pinned,
            pair_seeds=pair,
            builder=plan.graph.builder,
            cache_dir=cache_dir,
            kernel=plan.backend.kernel,
            threads=_capped_threads(plan),
            # Pin the plan's seed mode whenever the batch fn can take it:
            # a plan's bits must not depend on REPRO_SEED_MODE in the
            # worker's environment.  Legacy batch fns without the keyword
            # are only valid for non-philox modes (validate() enforces
            # this), where the engine default already matches "pair".
            seed_mode=(
                plan.seeds.mode
                if _accepts_kw(plan.work.batch, "seed_mode")
                else None
            ),
        )
        return worker, "batched"
    worker = PerTrialWorker(
        plan.work.record,
        pinned=pinned,
        pair_seeds=pair,
        builder=plan.graph.builder,
        cache_dir=cache_dir,
    )
    return worker, "per_trial"


def execute(plan: RunPlan, *, resume: str | os.PathLike | None = None):
    """Run a validated :class:`RunPlan`; the one dispatch pipeline.

    Owns backend resolution (reference/batched + kernel gate), graph
    provisioning (generate / cached / pinned zero-copy), dispatch
    (serial, pool, persistent workers), and the results carrier
    (``records`` → ``list[dict]``, ``columnar`` →
    :class:`~repro.parallel.aggregate.ResultTable`).  Record content is
    identical across every axis combination; seeds follow the
    (point, trial) spawning contract, so switching any axis never
    changes a trial's randomness.

    ``ResultSpec(sink="spool", dir=...)`` routes the run through the
    durable path (:mod:`repro.durable`): per-grid-point blocks stream
    to disk under a crash-supervised pool, and ``resume=dir`` replays
    the journal of an interrupted run — completed points load from
    their checksummed blocks, missing ones re-run with their original
    seeds, and the assembled table is bit-identical to a run that was
    never interrupted (a plan whose fingerprint disagrees with the
    journal raises :class:`~repro.errors.ResumeMismatchError` instead).
    ``resume=`` on a plan without a spool sink adopts ``dir`` as the
    spool, so ``execute(plan, resume=d)`` alone round-trips.
    """
    if resume is not None:
        rs = plan.results
        if rs.sink == "spool" and rs.dir and Path(rs.dir).resolve() != Path(resume).resolve():
            raise PlanError(
                f"resume={str(resume)!r} contradicts results.dir={rs.dir!r}"
            )
        plan = plan.override(results=replace(rs, sink="spool", dir=str(resume)))
    plan.validate()
    if plan.results.sink == "spool":
        return _execute_durable(plan)
    worker, sweep_backend = _build_worker(plan)
    return run_sweep(
        worker,
        plan.grid,
        n_trials=plan.trials,
        seed=plan.seeds.root,
        seeds=plan.seeds.seeds,
        processes=plan.execution.resolve_processes(),
        chunksize=plan.execution.chunksize,
        backend=sweep_backend,
        graph=plan.graph.graph if plan.graph.mode == "pinned" else None,
        results=plan.results.mode,
    )


def _execute_durable(plan: RunPlan):
    """The spool-sink pipeline: journal, supervised dispatch, assembly.

    The unit of work is one grid point under *both* backends — the
    reference backend's per-trial worker is looped over a point's trial
    block in-process (:class:`~repro.parallel.sweep._TrialBlockRunner`)
    — so every finished point is one atomic checksummed block file plus
    one journal line, and crash/timeout blame lands on whole points.
    Completed points found in a matching journal are skipped (their
    blocks re-verified by checksum first); quarantined or torn points
    re-run with the seeds the full spawn assigns them, which is what
    makes a resumed table bit-identical to an uninterrupted one.
    """
    from .durable.journal import JOURNAL_NAME, JournalWriter, plan_fingerprint
    from .durable.spool import SpoolReader, write_block
    from .durable.supervisor import RetryPolicy, TaskFailure
    from .errors import ResumeMismatchError
    from .parallel.pool import default_processes, map_parallel
    from .parallel.shared import graph_context
    from .parallel.sweep import _BatchPointRunner, _TrialBlockRunner
    from .rng import spawn_seeds

    points = plan.points()
    trials = plan.trials
    fingerprint = plan_fingerprint(plan)
    root = Path(plan.results.dir)
    root.mkdir(parents=True, exist_ok=True)
    journal_path = root / JOURNAL_NAME

    done: dict[int, dict] = {}
    fresh = not journal_path.exists()
    if not fresh:
        reader = SpoolReader(root)
        found = reader.header.get("fingerprint")
        if found != fingerprint:
            raise ResumeMismatchError(
                f"{journal_path}: journal belongs to a different plan "
                f"(fingerprint {str(found)[:12]}…, this plan {fingerprint[:12]}…)"
            )
        done = reader.verified_completed()
    pending = [i for i in range(len(points)) if i not in done]

    nproc = plan.execution.resolve_processes()
    if nproc is None:
        nproc = default_processes(max(1, len(pending)))

    if plan.seeds.seeds is not None:
        seeds = list(plan.seeds.seeds)
    else:
        seeds = spawn_seeds(plan.seeds.root, len(points) * trials)

    worker, sweep_backend = _build_worker(plan)
    pinned = plan.graph.mode == "pinned"
    if sweep_backend == "batched":
        runner = _BatchPointRunner(worker, with_graph=pinned, columnar=True)
    else:
        runner = _TrialBlockRunner(worker, with_graph=pinned)
    tasks = [
        (points[i], seeds[i * trials : (i + 1) * trials], list(range(trials)))
        for i in pending
    ]
    if trials == 0:
        tasks = []
        pending = []

    writer = JournalWriter(journal_path)
    try:
        if fresh:
            writer.write_header(
                fingerprint=fingerprint,
                work=plan.work.name or getattr(plan.work.record, "__name__", "?"),
                points=len(points),
                trials=trials,
                backend=plan.backend.name,
                processes=nproc,
            )

        def persist(pos: int, result) -> None:
            i = pending[pos]
            if result is None:
                return  # the supervisor lost the task terminally; leave it pending
            if isinstance(result, TaskFailure):
                writer.failure(
                    i,
                    point_params=points[i],
                    failure_kind=result.kind,
                    error=result.error,
                    exc_type=result.exc_type,
                    attempts=result.attempts,
                )
                return
            rel, sha = write_block(root, i, result)
            writer.block(
                i, file=rel, sha256=sha, rows=result.n_trials, point_params=points[i]
            )

        policy = RetryPolicy(
            max_attempts=plan.execution.retries,
            task_timeout=plan.execution.task_timeout,
            retry_exceptions=True,
            on_failure="return",
        )
        if tasks:
            if pinned:
                with graph_context(plan.graph.graph, processes=nproc) as (
                    _view,
                    initializer,
                    initargs,
                ):
                    map_parallel(
                        runner,
                        tasks,
                        processes=nproc,
                        initializer=initializer,
                        initargs=initargs,
                        policy=policy,
                        on_result=persist,
                    )
            else:
                map_parallel(
                    runner, tasks, processes=nproc, policy=policy, on_result=persist
                )
    finally:
        writer.close()

    table = SpoolReader(root).table()
    return table if plan.results.mode == "columnar" else table.to_records()
