"""Unified execution plans: one dispatch pipeline for every run axis.

Why
---
Every experiment in this library is the same shape of computation — a
grid of parameter points × independent Monte-Carlo trials — evaluated
under four orthogonal execution axes that grew one PR at a time:

* **backend** — the per-trial reference engine vs the trial-vectorized
  batched engine (plus its compiled round-kernel gate);
* **graph provisioning** — generate the topology worker-side, route
  builds through the on-disk graph cache, or pin one pre-built
  topology and ship it zero-copy
  (:class:`~repro.parallel.shared.SharedGraph` / fork inheritance);
* **dispatch** — serial in-process, a process pool, with persistent
  per-worker state (:func:`repro.parallel.pool.worker_state`);
* **results** — legacy per-trial record dicts vs the columnar
  :class:`~repro.batch.results.ResultBlock` spool assembled into a
  :class:`~repro.parallel.aggregate.ResultTable`.

Before this module each axis was plumbed through ad-hoc kwargs at every
layer (runner signatures, near-duplicate worker adapters, CLI signature
probing).  A :class:`RunPlan` declares all axes once; :func:`execute`
owns resolution and dispatch.  Adding a new backend, graph source,
executor, or spool format is a change *here*, not a five-file sweep.

How
---
A plan is data: ``RunPlan(grid, work, trials, seeds, backend, graph,
execution, results)`` where each field is a small frozen spec.  The
``work`` field carries the experiment's science as two canonical
callables:

* ``record(graph, point, seed)   -> dict`` — one trial;
* ``batch(graph, point, seeds)   -> list[dict] | ResultBlock`` — one
  point's whole trial block (optional; required by the batched
  backend; may accept ``kernel=`` for the compiled-kernel gate).

:func:`execute` wraps them in the **two** canonical picklable workers
(:class:`PerTrialWorker`, :class:`BatchWorker`) — these replace the
per-experiment adapter variants that previously lived in
``experiments/runners.py`` — and dispatches through
:func:`repro.parallel.sweep.run_sweep`, which owns seed spawning, the
pool, zero-copy graph installation, and columnar assembly.

Seed discipline
---------------
``SeedSpec(mode="pair")`` (default) reproduces the library's spawning
contract exactly: every (point, trial) task seed is spawned in
point-major order, and the worker splits it into a ``(graph seed,
protocol seed)`` pair — so a given (point, trial) sees bit-identical
randomness under every backend × graph × dispatch × results
combination.  ``mode="direct"`` hands the task seed straight to the
record function (no pair spawn); it requires a pinned graph, since
there is then no graph seed to build from.
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from .errors import PlanError
from .graphs.families import build_point_graph
from .parallel.sweep import ParameterGrid, run_sweep

__all__ = [
    "BackendSpec",
    "GraphSpec",
    "SeedSpec",
    "ExecSpec",
    "ResultSpec",
    "WorkSpec",
    "RunPlan",
    "PerTrialWorker",
    "BatchWorker",
    "execute",
]

_BACKENDS = ("reference", "batched")
_KERNELS = ("numpy", "cext", "numba", "python")
_GRAPH_MODES = ("generate", "cached", "pinned")
_SEED_MODES = ("pair", "direct")
_EXEC_MODES = ("auto", "serial", "pool")
_RESULT_MODES = ("records", "columnar")


@dataclass(frozen=True)
class BackendSpec:
    """Which engine runs a trial.

    ``name`` selects the per-trial ``"reference"`` engine or the
    trial-vectorized ``"batched"`` engine; ``kernel`` optionally pins
    the batched engine's round-kernel implementation (``numpy`` /
    ``cext`` / ``numba`` / ``python``; ``None`` defers to the
    ``REPRO_KERNELS`` environment gate).  ``threads`` is the compiled
    kernel's trial-partitioned thread budget (``None`` defers to
    ``REPRO_KERNEL_THREADS``; results are bit-identical at every
    thread count).  Both travel inside the pickled worker, so they
    reach pool processes without environment plumbing — and because
    pool workers reset the environment half of the thread gate to 1,
    ``threads`` is *the* way to thread kernels under pooled dispatch
    (:func:`execute` additionally caps it so threads × processes never
    exceeds the machine's cores).
    """

    name: str = "reference"
    kernel: str | None = None
    threads: int | None = None

    def validate(self) -> None:
        if self.name not in _BACKENDS:
            raise PlanError(
                f"unknown backend {self.name!r}; known: {', '.join(_BACKENDS)}"
            )
        if self.kernel is not None:
            if self.kernel not in _KERNELS:
                raise PlanError(
                    f"unknown kernel {self.kernel!r}; known: {', '.join(_KERNELS)}"
                )
            if self.name != "batched":
                raise PlanError(
                    "kernel= only applies to the batched backend "
                    f"(got backend={self.name!r})"
                )
        if self.threads is not None:
            if not isinstance(self.threads, int) or self.threads < 1:
                raise PlanError(
                    f"backend threads must be a positive int; got {self.threads!r}"
                )
            if self.name != "batched":
                raise PlanError(
                    "threads= only applies to the batched backend "
                    f"(got backend={self.name!r})"
                )


@dataclass(frozen=True)
class GraphSpec:
    """Where each task's topology comes from.

    * ``"generate"`` (default) — the worker builds the graph from the
      task's spawned graph seed via ``builder`` (default: the sweep
      family vocabulary, :func:`repro.graphs.families.build_point_graph`);
    * ``"cached"`` — same build, routed through the on-disk graph cache
      in ``cache_dir``;
    * ``"pinned"`` — one pre-built topology (a
      :class:`~repro.graphs.bipartite.BipartiteGraph` or pre-shared
      :class:`~repro.parallel.shared.SharedGraph`) for *every* task,
      installed once per worker zero-copy.
    """

    mode: str = "generate"
    cache_dir: str | None = None
    graph: object | None = None
    builder: Callable | None = None  # (point, seed, cache_dir) -> BipartiteGraph

    def validate(self) -> None:
        if self.mode not in _GRAPH_MODES:
            raise PlanError(
                f"unknown graph mode {self.mode!r}; known: {', '.join(_GRAPH_MODES)}"
            )
        if self.mode == "cached" and not self.cache_dir:
            raise PlanError("graph mode 'cached' needs cache_dir")
        if self.mode == "pinned" and self.graph is None:
            raise PlanError("graph mode 'pinned' needs a graph")
        if self.mode != "pinned" and self.graph is not None:
            raise PlanError(f"graph mode {self.mode!r} does not take a pinned graph")
        if self.mode != "cached" and self.cache_dir:
            raise PlanError(f"graph mode {self.mode!r} does not take cache_dir")


@dataclass(frozen=True)
class SeedSpec:
    """How per-task randomness is derived.

    ``root`` is spawned into one child per (point, trial) task in
    point-major order (the library-wide contract).  ``seeds`` instead
    supplies the task seeds explicitly (length = points × trials).
    ``mode="pair"`` (default) makes the worker split each task seed
    into a ``(graph, protocol)`` pair; ``mode="direct"`` hands it to
    the record function unsplit (requires a pinned graph).
    """

    root: object = None
    mode: str = "pair"
    seeds: tuple | None = None

    def validate(self) -> None:
        if self.mode not in _SEED_MODES:
            raise PlanError(
                f"unknown seed mode {self.mode!r}; known: {', '.join(_SEED_MODES)}"
            )
        if self.seeds is not None and self.root is not None:
            raise PlanError("pass either a root seed or explicit seeds, not both")


@dataclass(frozen=True)
class ExecSpec:
    """How tasks are dispatched.

    ``"serial"`` forces in-process execution (exact tracebacks, no
    pickling); ``"pool"``/``"auto"`` run on a process pool sized by
    ``processes`` (``None`` = all-but-two cores).  Pool workers are
    persistent for the whole map, so batched workers keep their
    :func:`~repro.parallel.pool.worker_state` engine buffers alive
    across grid points.
    """

    mode: str = "auto"
    processes: int | None = None
    chunksize: int = 1

    def validate(self) -> None:
        if self.mode not in _EXEC_MODES:
            raise PlanError(
                f"unknown exec mode {self.mode!r}; known: {', '.join(_EXEC_MODES)}"
            )
        if self.mode == "serial" and self.processes not in (None, 0, 1):
            raise PlanError(
                f"exec mode 'serial' contradicts processes={self.processes}"
            )
        if self.chunksize < 1:
            raise PlanError(f"chunksize must be >= 1; got {self.chunksize}")

    def resolve_processes(self) -> int | None:
        return 1 if self.mode == "serial" else self.processes


@dataclass(frozen=True)
class ResultSpec:
    """The results carrier: legacy record dicts or the columnar spool."""

    mode: str = "records"

    def validate(self) -> None:
        if self.mode not in _RESULT_MODES:
            raise PlanError(
                f"unknown results mode {self.mode!r}; known: {', '.join(_RESULT_MODES)}"
            )


@dataclass(frozen=True)
class WorkSpec:
    """The experiment's science, in the two canonical callable shapes.

    ``record(graph, point, seed) -> dict`` runs one trial on a resolved
    topology; ``batch(graph, point, seeds) -> list[dict] | ResultBlock``
    runs a point's whole trial block at once (the batched backend's
    entry; optional).  A ``batch`` callable may accept a ``kernel=``
    keyword to receive :attr:`BackendSpec.kernel`.  Both must be
    picklable (module-level functions).
    """

    record: Callable
    batch: Callable | None = None
    name: str = ""

    def validate(self) -> None:
        if not callable(self.record):
            raise PlanError("work.record must be callable")
        if self.batch is not None and not callable(self.batch):
            raise PlanError("work.batch must be callable when given")


@dataclass(frozen=True)
class RunPlan:
    """A declarative description of one grid × trials evaluation.

    ``grid`` is a :class:`~repro.parallel.sweep.ParameterGrid` or an
    explicit sequence of point dicts (for non-cartesian designs).
    Execute with :func:`execute`; derive variants with
    :meth:`override` (specs are frozen — plans are values).
    """

    grid: object
    work: WorkSpec
    trials: int = 1
    seeds: SeedSpec = field(default_factory=SeedSpec)
    backend: BackendSpec = field(default_factory=BackendSpec)
    graph: GraphSpec = field(default_factory=GraphSpec)
    execution: ExecSpec = field(default_factory=ExecSpec)
    results: ResultSpec = field(default_factory=ResultSpec)

    # -- derived views ---------------------------------------------------

    def points(self) -> list[dict]:
        """The grid's points as dicts (explicit point lists pass through)."""
        if hasattr(self.grid, "points"):
            return self.grid.points()
        return [dict(p) for p in self.grid]

    def n_tasks(self) -> int:
        return len(self.points()) * self.trials

    def override(self, **changes) -> "RunPlan":
        """A copy of this plan with dataclass fields replaced."""
        return replace(self, **changes)

    def describe(self) -> dict:
        """A flat, log-friendly summary of every axis."""
        return {
            "work": self.work.name or getattr(self.work.record, "__name__", "?"),
            "points": len(self.points()),
            "trials": self.trials,
            "backend": self.backend.name,
            "kernel": self.backend.kernel,
            "threads": self.backend.threads,
            "graph": self.graph.mode,
            "exec": self.execution.mode,
            "processes": self.execution.resolve_processes(),
            "results": self.results.mode,
        }

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Check every axis and their cross-axis consistency."""
        if not isinstance(self.grid, ParameterGrid):
            if isinstance(self.grid, (str, bytes)) or not isinstance(
                self.grid, Sequence
            ):
                raise PlanError(
                    "grid must be a ParameterGrid or a sequence of point dicts"
                )
            for p in self.grid:
                if not isinstance(p, Mapping):
                    raise PlanError(f"explicit grid points must be dicts; got {p!r}")
        if not isinstance(self.trials, int) or self.trials < 0:
            raise PlanError(f"trials must be a non-negative int; got {self.trials!r}")
        self.work.validate()
        self.seeds.validate()
        self.backend.validate()
        self.graph.validate()
        self.execution.validate()
        self.results.validate()
        if self.backend.name == "batched" and self.work.batch is None:
            raise PlanError(
                "backend 'batched' needs work.batch (a block-of-trials callable)"
            )
        for kw, value in (("kernel", self.backend.kernel), ("threads", self.backend.threads)):
            if (
                value is not None
                and self.work.batch is not None
                and not _accepts_kw(self.work.batch, kw)
            ):
                # Fail here rather than as a TypeError inside a pool worker.
                raise PlanError(
                    f"backend.{kw}={value!r} is set but work.batch "
                    f"({getattr(self.work.batch, '__name__', self.work.batch)!r}) "
                    f"does not accept a {kw}= keyword"
                )
        if self.seeds.mode == "direct" and self.graph.mode != "pinned":
            raise PlanError(
                "seed mode 'direct' needs a pinned graph (there is no graph "
                "seed to build one from)"
            )
        if self.seeds.seeds is not None and len(self.seeds.seeds) != self.n_tasks():
            raise PlanError(
                f"explicit seeds: got {len(self.seeds.seeds)} for "
                f"{self.n_tasks()} (point, trial) tasks"
            )


def _accepts_kw(fn: Callable, name: str) -> bool:
    """Whether ``fn`` can receive the ``name=`` keyword."""
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins/extensions: assume yes
        return True
    return name in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


# ---------------------------------------------------------------------------
# The two canonical workers (picklable; replace per-experiment adapters).
# ---------------------------------------------------------------------------


class PerTrialWorker:
    """Canonical per-trial execution path: resolve graph, run ``record``.

    Handles every graph mode with the same seed discipline: under
    ``pair_seeds`` the task seed spawns a ``(graph, protocol)`` pair —
    pinned topologies consume only the protocol half, so a (point,
    trial)'s protocol stream is identical across graph modes; the
    statistical difference is only what the estimate conditions on.
    """

    def __init__(
        self,
        record: Callable,
        *,
        pinned: bool = False,
        pair_seeds: bool = True,
        builder: Callable | None = None,
        cache_dir: str | None = None,
    ):
        self.record = record
        self.pinned = pinned
        self.pair_seeds = pair_seeds
        self.builder = builder or build_point_graph
        self.cache_dir = cache_dir

    def __call__(self, *task) -> dict:
        if self.pinned:
            graph, point, seed_seq, _trial = task
        else:
            point, seed_seq, _trial = task
        if self.pair_seeds:
            g_seed, p_seed = seed_seq.spawn(2)
        else:
            g_seed, p_seed = None, seed_seq
        if not self.pinned:
            graph = self.builder(point, g_seed, self.cache_dir)
        return self.record(graph, point, p_seed)


class BatchWorker:
    """Canonical batched execution path: one task per point's trial block.

    Spawns the same per-trial ``(graph, protocol)`` seed pairs as
    :class:`PerTrialWorker`, builds one graph per point (from the first
    trial's graph seed) unless pinned, and hands the protocol seeds to
    ``batch`` — so trial ``r`` of a point consumes a protocol stream
    bit-identical to the reference path's; the batched backend
    conditions a point's trials on a single graph draw.
    """

    def __init__(
        self,
        batch: Callable,
        *,
        pinned: bool = False,
        pair_seeds: bool = True,
        builder: Callable | None = None,
        cache_dir: str | None = None,
        kernel: str | None = None,
        threads: int | None = None,
    ):
        self.batch = batch
        self.pinned = pinned
        self.pair_seeds = pair_seeds
        self.builder = builder or build_point_graph
        self.cache_dir = cache_dir
        self.kernel = kernel
        self.threads = threads

    def __call__(self, *task):
        if self.pinned:
            graph, point, seed_seqs, _trials = task
        else:
            point, seed_seqs, _trials = task
        if self.pair_seeds:
            pairs = [ss.spawn(2) for ss in seed_seqs]
            p_seeds = [p_seed for _g_seed, p_seed in pairs]
        else:
            pairs = None
            p_seeds = list(seed_seqs)
        if not self.pinned:
            g_seed = pairs[0][0] if pairs else None
            graph = self.builder(point, g_seed, self.cache_dir)
        kwargs = {}
        if self.kernel is not None:
            kwargs["kernel"] = self.kernel
        if self.threads is not None:
            # Travels in the pickled worker: an explicit plan-level
            # thread budget reaches pool processes even though their
            # REPRO_KERNEL_THREADS environment half is reset to 1.
            kwargs["threads"] = self.threads
        return self.batch(graph, point, p_seeds, **kwargs)


# ---------------------------------------------------------------------------
# The single entry point.
# ---------------------------------------------------------------------------


def _capped_threads(plan: RunPlan) -> int | None:
    """The plan's kernel-thread budget, capped against its process count.

    Threads multiply processes — an explicit ``BackendSpec(threads=8)``
    on an 8-core box dispatched to an 8-worker pool would run 64
    runnable threads.  The cap keeps threads × processes at or below
    the core count (serial runs keep the full budget); the capped value
    travels inside the pickled worker.
    """
    threads = plan.backend.threads
    if threads is None or threads <= 1:
        return threads
    from .parallel.pool import default_processes

    nproc = plan.execution.resolve_processes()
    if nproc is None:
        # The batched backend dispatches one task per grid point.
        nproc = default_processes(len(plan.points()))
    if nproc <= 1:
        return threads
    cores = os.cpu_count() or 1
    return max(1, min(threads, cores // nproc))


def execute(plan: RunPlan):
    """Run a validated :class:`RunPlan`; the one dispatch pipeline.

    Owns backend resolution (reference/batched + kernel gate), graph
    provisioning (generate / cached / pinned zero-copy), dispatch
    (serial, pool, persistent workers), and the results carrier
    (``records`` → ``list[dict]``, ``columnar`` →
    :class:`~repro.parallel.aggregate.ResultTable`).  Record content is
    identical across every axis combination; seeds follow the
    (point, trial) spawning contract, so switching any axis never
    changes a trial's randomness.
    """
    plan.validate()
    pinned = plan.graph.mode == "pinned"
    pair = plan.seeds.mode == "pair"
    cache_dir = plan.graph.cache_dir if plan.graph.mode == "cached" else None
    if plan.backend.name == "batched":
        worker = BatchWorker(
            plan.work.batch,
            pinned=pinned,
            pair_seeds=pair,
            builder=plan.graph.builder,
            cache_dir=cache_dir,
            kernel=plan.backend.kernel,
            threads=_capped_threads(plan),
        )
        sweep_backend = "batched"
    else:
        worker = PerTrialWorker(
            plan.work.record,
            pinned=pinned,
            pair_seeds=pair,
            builder=plan.graph.builder,
            cache_dir=cache_dir,
        )
        sweep_backend = "per_trial"
    return run_sweep(
        worker,
        plan.grid,
        n_trials=plan.trials,
        seed=plan.seeds.root,
        seeds=plan.seeds.seeds,
        processes=plan.execution.resolve_processes(),
        chunksize=plan.execution.chunksize,
        backend=sweep_backend,
        graph=plan.graph.graph if pinned else None,
        results=plan.results.mode,
    )
