"""Cartesian parameter sweeps over Monte-Carlo trials.

A :class:`ParameterGrid` is an ordered dict of ``name -> values``; its
points enumerate the cartesian product in row-major order (first key
slowest), which keeps experiment tables stable across runs.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping, Sequence

import numpy as np

from ..rng import spawn_seeds
from .pool import map_parallel

__all__ = ["ParameterGrid", "run_sweep"]


class ParameterGrid:
    """An ordered cartesian product of named parameter values."""

    def __init__(self, **axes: Sequence):
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        for name, vals in axes.items():
            if len(vals) == 0:
                raise ValueError(f"axis {name!r} has no values")
        self.axes: dict[str, list] = {k: list(v) for k, v in axes.items()}

    def points(self) -> list[dict]:
        """All grid points as dicts, row-major (first axis slowest)."""
        names = list(self.axes)
        out = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            out.append(dict(zip(names, combo)))
        return out

    def __len__(self) -> int:
        n = 1
        for vals in self.axes.values():
            n *= len(vals)
        return n

    def __iter__(self):
        return iter(self.points())


class _PointRunner:
    """Picklable adapter: one sweep point × one trial → one record."""

    def __init__(self, point_fn: Callable[[Mapping, np.random.SeedSequence, int], dict]):
        self.point_fn = point_fn

    def __call__(self, task) -> dict:
        point, seed_seq, trial = task
        record = self.point_fn(point, seed_seq, trial)
        out = dict(point)
        out["trial"] = trial
        out.update(record)
        return out


def run_sweep(
    point_fn: Callable[[Mapping, np.random.SeedSequence, int], dict],
    grid: ParameterGrid,
    *,
    n_trials: int = 1,
    seed=None,
    processes: int | None = None,
    chunksize: int = 1,
) -> list[dict]:
    """Evaluate ``point_fn(point, seed_seq, trial)`` over grid × trials.

    Returns one flat record per (point, trial): the point's parameters,
    the trial index, and whatever dict the worker returned.  Every task
    gets an independent spawned seed; task order (and thus seeds) is
    deterministic in (point index, trial index).
    """
    points = grid.points()
    n_tasks = len(points) * n_trials
    seeds = spawn_seeds(seed, n_tasks)
    tasks = []
    i = 0
    for point in points:
        for trial in range(n_trials):
            tasks.append((point, seeds[i], trial))
            i += 1
    return map_parallel(_PointRunner(point_fn), tasks, processes=processes, chunksize=chunksize)
