"""Cartesian parameter sweeps over Monte-Carlo trials.

A :class:`ParameterGrid` is an ordered dict of ``name -> values``; its
points enumerate the cartesian product in row-major order (first key
slowest), which keeps experiment tables stable across runs.

Sweeps support both halves of the library's two-level parallelism model
(see :mod:`repro.parallel.pool`): ``backend="per_trial"`` fans every
(point, trial) pair out as its own pool task, while
``backend="batched"`` sends one task per grid point whose worker runs
the point's whole trial block at once — the shape the trial-vectorized
:mod:`repro.batch` engine wants — so processes parallelize across grid
points and the trial axis is vectorized within each process.  Per-task
seeds are spawned identically either way, so a given (point, trial)
sees the same seed under both backends.

Results travel back one of two ways (``results=``): ``"records"``, the
legacy flat ``list[dict]``; or ``"columnar"``, the results spool —
batched workers return one typed
:class:`~repro.batch.results.ResultBlock` per grid point (a structured
array instead of R pickled dicts), and the parent assembles the blocks
into a single :class:`~repro.parallel.aggregate.ResultTable` that
still behaves like a list of dicts.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping, Sequence

import numpy as np

from ..batch.results import ResultBlock
from ..rng import spawn_seeds
from .aggregate import ResultTable, assemble_blocks
from .pool import _map_with_graph
from .shared import current_task_graph

__all__ = ["ParameterGrid", "run_sweep"]


class ParameterGrid:
    """An ordered cartesian product of named parameter values."""

    def __init__(self, **axes: Sequence):
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        for name, vals in axes.items():
            if len(vals) == 0:
                raise ValueError(f"axis {name!r} has no values")
        self.axes: dict[str, list] = {k: list(v) for k, v in axes.items()}

    def points(self) -> list[dict]:
        """All grid points as dicts, row-major (first axis slowest)."""
        names = list(self.axes)
        out = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            out.append(dict(zip(names, combo)))
        return out

    def __len__(self) -> int:
        n = 1
        for vals in self.axes.values():
            n *= len(vals)
        return n

    def __iter__(self):
        return iter(self.points())


class _PointRunner:
    """Picklable adapter: one sweep point × one trial → one record.

    ``with_graph`` prepends the worker's zero-copy task graph to the
    call (previously a separate ``_GraphPointRunner`` class).
    """

    def __init__(
        self,
        point_fn: Callable[[Mapping, np.random.SeedSequence, int], dict],
        *,
        with_graph: bool = False,
    ):
        self.point_fn = point_fn
        self.with_graph = with_graph

    def __call__(self, task) -> dict:
        point, seed_seq, trial = task
        if self.with_graph:
            record = self.point_fn(current_task_graph(), point, seed_seq, trial)
        else:
            record = self.point_fn(point, seed_seq, trial)
        out = dict(point)
        out["trial"] = trial
        out.update(record)
        return out


class _BatchPointRunner:
    """Picklable adapter: one sweep point × a whole trial block → records.

    ``with_graph`` prepends the worker's zero-copy task graph;
    ``columnar`` packs the block's records into a typed
    :class:`~repro.batch.results.ResultBlock` worker-side, so the
    return payload is a handful of arrays instead of R dicts.  A
    ``point_fn`` may also return a :class:`ResultBlock` itself (built
    straight from engine arrays); it is validated and passed through —
    or unpacked to records when ``columnar`` is off.
    """

    def __init__(
        self,
        point_fn: Callable[[Mapping, Sequence, Sequence], list],
        *,
        with_graph: bool = False,
        columnar: bool = False,
    ):
        self.point_fn = point_fn
        self.with_graph = with_graph
        self.columnar = columnar

    def __call__(self, task):
        point, seed_seqs, trials = task
        if self.with_graph:
            result = self.point_fn(current_task_graph(), point, seed_seqs, trials)
        else:
            result = self.point_fn(point, seed_seqs, trials)
        if isinstance(result, ResultBlock):
            if result.n_trials != len(trials):
                raise ValueError(
                    f"batched point_fn returned a block of {result.n_trials} "
                    f"trials for {len(trials)} trials"
                )
            return result if self.columnar else result.records()
        records = list(result)
        if len(records) != len(trials):
            raise ValueError(
                f"batched point_fn returned {len(records)} records "
                f"for {len(trials)} trials"
            )
        if self.columnar:
            return ResultBlock.from_records(point, trials, records)
        out = []
        for trial, record in zip(trials, records):
            row = dict(point)
            row["trial"] = trial
            row.update(record)
            out.append(row)
        return out


class _TrialBlockRunner:
    """Picklable adapter: a *per-trial* worker run over a point's whole block.

    The durable path's unit of work is one grid point (one spooled
    block, one journal line), but the reference backend's worker is
    per-trial.  This adapter bridges them: the task carries a point's
    full seed slice, the worker loops the trials in order in-process,
    and the records pack into one :class:`~repro.batch.results.
    ResultBlock` — so both backends present the identical per-point
    task shape to the supervisor, and a given (point, trial) consumes
    exactly the seed it would under plain per-trial dispatch.
    """

    def __init__(self, trial_fn: Callable, *, with_graph: bool = False):
        self.trial_fn = trial_fn
        self.with_graph = with_graph

    def __call__(self, task) -> ResultBlock:
        point, seed_seqs, trials = task
        records = []
        for seed_seq, trial in zip(seed_seqs, trials):
            if self.with_graph:
                records.append(
                    self.trial_fn(current_task_graph(), point, seed_seq, trial)
                )
            else:
                records.append(self.trial_fn(point, seed_seq, trial))
        return ResultBlock.from_records(point, trials, records)


def run_sweep(
    point_fn: Callable,
    grid: "ParameterGrid | Sequence[Mapping]",
    *,
    n_trials: int = 1,
    seed=None,
    seeds: Sequence | None = None,
    processes: int | None = None,
    chunksize: int = 1,
    backend: str = "per_trial",
    graph=None,
    results: str = "records",
):
    """Evaluate a worker over grid × trials; one flat record per (point, trial).

    ``grid`` is a :class:`ParameterGrid` or an explicit sequence of
    point dicts (for non-cartesian designs — the order given is the
    sweep order).  ``seeds`` optionally supplies the per-(point, trial)
    seeds explicitly (length = points × trials, point-major) instead of
    spawning them from ``seed``.

    With ``backend="per_trial"`` (default) the worker is
    ``point_fn(point, seed_seq, trial) -> dict`` and every (point,
    trial) pair is its own pool task.  With ``backend="batched"`` the
    worker is ``point_fn(point, seed_seqs, trials) -> list[dict]`` and
    each grid point is one task carrying its full trial block — the
    natural entry for :func:`repro.batch.run_trials_batched` workers
    (processes across points, vectorized trials within).

    With ``graph=`` (a shared topology for *every* grid point — a
    :class:`~repro.graphs.bipartite.BipartiteGraph` or pre-shared
    :class:`~repro.parallel.shared.SharedGraph`), the CSR arrays are
    installed once per worker process instead of being pickled into
    each task, and the worker receives it as its first argument:
    ``point_fn(graph, point, seed_seq, trial)`` (or ``point_fn(graph,
    point, seed_seqs, trials)`` batched).

    ``results="records"`` returns the legacy flat ``list[dict]``;
    ``results="columnar"`` returns a
    :class:`~repro.parallel.aggregate.ResultTable` (a lazy
    sequence-of-dicts over typed columns).  Under the batched backend,
    columnar mode also switches the *worker return payload* to typed
    :class:`~repro.batch.results.ResultBlock` arrays — the spool that
    shrinks the pickle traffic back from the pool.  Record content is
    identical in all four combinations.

    Each record carries the point's parameters, the trial index, and
    whatever the worker returned.  Seeds are spawned deterministically
    in (point index, trial index) order under *both* backends, so a
    given (point, trial) always sees the same seed.
    """
    if backend not in ("per_trial", "batched"):
        raise ValueError(f"unknown backend {backend!r}; known: per_trial, batched")
    if results not in ("records", "columnar"):
        raise ValueError(f"unknown results mode {results!r}; known: records, columnar")
    columnar = results == "columnar"
    points = grid.points() if hasattr(grid, "points") else [dict(p) for p in grid]
    n_tasks = len(points) * n_trials
    if seeds is not None:
        if seed is not None:
            raise ValueError("pass either a root seed or explicit seeds, not both")
        seeds = list(seeds)
        if len(seeds) != n_tasks:
            raise ValueError(
                f"explicit seeds: got {len(seeds)} for {n_tasks} (point, trial) tasks"
            )
    else:
        seeds = spawn_seeds(seed, n_tasks)
    if backend == "per_trial":
        tasks = []
        i = 0
        for point in points:
            for trial in range(n_trials):
                tasks.append((point, seeds[i], trial))
                i += 1
        runner = _PointRunner(point_fn, with_graph=graph is not None)
        records = _map_with_graph(
            runner, tasks, graph, processes=processes, chunksize=chunksize
        )
        return ResultTable.from_records(records) if columnar else records
    if n_trials == 0:
        return ResultTable.from_records([]) if columnar else []
        # match per_trial: no records, no empty blocks to workers
    tasks = [
        (point, seeds[i * n_trials : (i + 1) * n_trials], list(range(n_trials)))
        for i, point in enumerate(points)
    ]
    runner = _BatchPointRunner(
        point_fn, with_graph=graph is not None, columnar=columnar
    )
    nested = _map_with_graph(
        runner, tasks, graph, processes=processes, chunksize=chunksize
    )
    if columnar:
        return assemble_blocks(nested)
    return [record for block in nested for record in block]
