"""Aggregation of trial records into table rows.

Two record carriers flow through this module:

* plain ``list[dict]`` — the legacy per-(point, trial) records;
* :class:`ResultTable` — the columnar results spool: one typed array
  per field, assembled from the :class:`~repro.batch.results.ResultBlock`
  blocks that batched sweep workers return.  A table quacks like a
  read-only list of dicts (rows are materialized lazily), so every
  legacy consumer keeps working, while :func:`aggregate_records` gets a
  vectorized group-by fast path over the columns.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..batch.results import _column, _pyvalue

__all__ = [
    "summarize",
    "aggregate_records",
    "ResultTable",
    "assemble_blocks",
    "as_table",
]


def _stats_from_array(arr: np.ndarray) -> dict:
    """The :func:`summarize` statistics for an already-float64 sample."""
    if arr.size == 0:
        return {
            "n": 0,
            "mean": math.nan,
            "std": math.nan,
            "min": math.nan,
            "median": math.nan,
            "max": math.nan,
            "q10": math.nan,
            "q90": math.nan,
            "ci95": math.nan,
        }
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": std,
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
        "q10": float(np.quantile(arr, 0.10)),
        "q90": float(np.quantile(arr, 0.90)),
        "ci95": 1.96 * std / math.sqrt(arr.size) if arr.size > 1 else 0.0,
    }


def summarize(values: Iterable[float]) -> dict:
    """Summary statistics of a sample: mean, std, quantiles, 95% CI.

    The CI half-width uses the normal approximation
    ``1.96·s/√n`` — adequate for the trial counts experiments use (≥10)
    and cheap; use :func:`repro.analysis.stats.bootstrap_ci` when the
    statistic is a quantile or the sample is tiny.  Accepts any
    iterable, including a typed :class:`ResultTable` column (no
    python-list round-trip then).
    """
    if not isinstance(values, np.ndarray):
        values = list(values)
    return _stats_from_array(np.asarray(values, dtype=np.float64))


def _missing_part(count: int) -> np.ndarray:
    """A ``None``-filled object column segment for an absent field."""
    part = np.empty(count, dtype=object)
    part[:] = None
    return part


def _concat_parts(parts: Sequence[np.ndarray], n: int) -> np.ndarray:
    """Concatenate column segments, degrading to object dtype when mixed."""
    try:
        return np.concatenate(parts)
    except (TypeError, ValueError):
        col = np.empty(n, dtype=object)
        pos = 0
        for part in parts:
            col[pos : pos + part.size] = list(part)
            pos += part.size
        return col


class ResultTable(Sequence):
    """Columnar sweep results that behave like a list of record dicts.

    ``table[i]`` materializes row ``i`` as a plain dict (python
    scalars), ``table.column(name)`` exposes the typed column array
    for vectorized consumers.  Built either from worker-side
    :class:`~repro.batch.results.ResultBlock` blocks
    (:meth:`from_blocks`) or from legacy record dicts
    (:meth:`from_records`).
    """

    def __init__(self, columns: dict[str, np.ndarray], n_rows: int):
        for name, col in columns.items():
            if col.shape != (n_rows,):
                raise ValueError(
                    f"column {name!r} has shape {col.shape}; expected ({n_rows},)"
                )
        self._columns = columns
        self._n = int(n_rows)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_blocks(cls, blocks: Sequence) -> "ResultTable":
        """Assemble per-point :class:`ResultBlock` s into one table.

        Point keys come first (in the first block's order), then
        ``trial``, then the per-trial fields — matching the key order
        of the legacy record dicts so materialized rows are
        indistinguishable.
        """
        blocks = list(blocks)
        n = sum(b.n_trials for b in blocks)
        columns: dict[str, np.ndarray] = {}
        if not blocks:
            return cls(columns, 0)
        point_keys: list[str] = []
        for b in blocks:
            for k in b.point:
                if k not in point_keys:
                    point_keys.append(k)
        for k in point_keys:
            parts = [np.full(b.n_trials, b.point.get(k)) for b in blocks]
            try:
                col = np.concatenate(parts) if parts else np.empty(0)
                if col.dtype.kind in "OUSV":
                    raise TypeError
            except (TypeError, ValueError):
                col = np.empty(n, dtype=object)
                pos = 0
                for b in blocks:
                    col[pos : pos + b.n_trials] = [b.point.get(k)] * b.n_trials
                    pos += b.n_trials
            columns[k] = col
        columns["trial"] = np.concatenate([b.trials for b in blocks])
        field_names: list[str] = []
        for b in blocks:
            for k in b.fields:
                if k not in field_names:
                    field_names.append(k)
        for k in field_names:
            # A block lacking the field contributes None — unless the
            # name is also one of its point keys (records that echo
            # their point params), where the point value is the honest
            # fill; durable failure blocks rely on this to keep their
            # grid params in the quarantine row.
            parts = [
                np.asarray(b.data[k])
                if k in b.fields
                else (
                    np.full(b.n_trials, b.point[k])
                    if k in b.point
                    else _missing_part(b.n_trials)
                )
                for b in blocks
            ]
            columns[k] = _concat_parts(parts, n)
        return cls(columns, n)

    @classmethod
    def from_records(cls, records: Sequence[Mapping]) -> "ResultTable":
        """Columnarize legacy record dicts (parent-side assembly)."""
        records = list(records)
        keys: list[str] = []
        for r in records:
            for k in r:
                if k not in keys:
                    keys.append(k)
        columns = {k: _column([r.get(k) for r in records]) for k in keys}
        return cls(columns, len(records))

    @classmethod
    def concat(cls, tables: Sequence["ResultTable"]) -> "ResultTable":
        """Stack tables row-wise (column union, first-seen order).

        A table missing a column contributes ``None`` there (object
        dtype), mirroring :meth:`from_blocks`' ragged-field handling.
        """
        tables = list(tables)
        if not tables:
            return cls({}, 0)
        names: list[str] = []
        for t in tables:
            for k in t.fields:
                if k not in names:
                    names.append(k)
        n = sum(len(t) for t in tables)
        columns: dict[str, np.ndarray] = {}
        for k in names:
            parts = [
                t._columns[k] if k in t._columns else _missing_part(len(t))
                for t in tables
            ]
            columns[k] = _concat_parts(parts, n)
        return cls(columns, n)

    # -- columnar access ---------------------------------------------------

    @property
    def columns(self) -> dict[str, np.ndarray]:
        return dict(self._columns)

    @property
    def fields(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        return self._columns[name]

    def where(self, **conditions) -> "ResultTable":
        """Rows whose columns equal the given values, as a new table.

        The columnar replacement for ``[r for r in recs if r[k] == v]``
        bucket loops: ``table.where(n=1024, c=1.5)`` filters every
        column by the conjunction of the equalities.
        """
        mask = np.ones(self._n, dtype=bool)
        for name, want in conditions.items():
            col = self._columns[name]
            if col.dtype == object:
                mask &= np.fromiter(
                    (v == want for v in col), dtype=bool, count=self._n
                )
            else:
                mask &= col == want
        columns = {k: c[mask] for k, c in self._columns.items()}
        return ResultTable(columns, int(np.count_nonzero(mask)))

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self._columns.values())

    # -- sequence-of-dicts compatibility -----------------------------------

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(self._n))]
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(i)
        return {k: _pyvalue(col[i]) for k, col in self._columns.items()}

    def to_records(self) -> list[dict]:
        return [self[i] for i in range(self._n)]

    def equals(self, other) -> bool:
        """Row-for-row value equality with any record carrier.

        Compares materialized rows (python scalars), not column dtypes
        — the library's bit-identity contract is about record *values*,
        and equal values may ride in differently-narrowed columns
        depending on whether a table was assembled from blocks or
        records.  ``other`` may be a :class:`ResultTable` or a plain
        record list.
        """
        if isinstance(other, ResultTable):
            if len(self) != len(other) or self.fields != other.fields:
                return False
            other = other.to_records()
        else:
            other = list(other)
            if len(self) != len(other):
                return False
        return self.to_records() == [dict(r) for r in other]

    def __repr__(self) -> str:
        return f"ResultTable(rows={self._n}, fields={list(self._columns)})"


def assemble_blocks(blocks: Sequence) -> ResultTable:
    """Worker blocks → one columnar :class:`ResultTable`."""
    return ResultTable.from_blocks(blocks)


def as_table(records) -> ResultTable:
    """Coerce any record carrier to a :class:`ResultTable`.

    Tables pass through untouched; record lists are columnarized.  The
    entry every row-assembly consumer uses so it can work on typed
    columns regardless of the ``results=`` mode a sweep ran under.
    """
    if isinstance(records, ResultTable):
        return records
    return ResultTable.from_records(list(records))


def aggregate_records(
    records: Sequence[Mapping],
    group_by: Sequence[str],
    fields: Sequence[str],
) -> list[dict]:
    """Group flat records and summarize numeric fields per group.

    Returns one row per distinct ``group_by`` tuple (in first-seen
    order) with columns ``{field}_{stat}`` for each requested field plus
    the grouping keys.  Boolean fields aggregate to their mean (i.e. a
    rate), which is how completion rates are reported.

    A :class:`ResultTable` input takes a vectorized group-by over the
    typed columns instead of iterating dicts; both paths produce
    identical rows.
    """
    if isinstance(records, ResultTable):
        try:
            return _aggregate_table(records, group_by, fields)
        except TypeError:
            # un-sortable object columns: fall back to the dict path
            pass
    groups: dict[tuple, list[Mapping]] = defaultdict(list)
    order: list[tuple] = []
    for rec in records:
        key = tuple(rec[k] for k in group_by)
        if key not in groups:
            order.append(key)
        groups[key].append(rec)
    rows: list[dict] = []
    for key in order:
        bucket = groups[key]
        row: dict = dict(zip(group_by, key))
        row["trials"] = len(bucket)
        for f in fields:
            vals = [float(rec[f]) for rec in bucket if rec.get(f) is not None]
            stats = summarize(vals)
            row[f"{f}_mean"] = stats["mean"]
            row[f"{f}_median"] = stats["median"]
            row[f"{f}_max"] = stats["max"]
            row[f"{f}_ci95"] = stats["ci95"]
        rows.append(row)
    return rows


def _aggregate_table(
    table: ResultTable, group_by: Sequence[str], fields: Sequence[str]
) -> list[dict]:
    """Vectorized group-by over a columnar table (first-seen order)."""
    n = len(table)
    if n == 0:
        return []
    # Factorize each key column, then combine into one group code.
    codes = np.zeros(n, dtype=np.int64)
    key_columns = []
    for name in group_by:
        col = table.column(name)
        uniq, inv = np.unique(col, return_inverse=True)
        codes = codes * len(uniq) + inv
        key_columns.append(col)
    _uniq_codes, first_idx, inv = np.unique(codes, return_index=True, return_inverse=True)
    # Rank groups by first appearance so row order matches the dict path.
    seen_order = np.argsort(first_idx, kind="stable")
    rank = np.empty_like(seen_order)
    rank[seen_order] = np.arange(seen_order.size)
    group_of_row = rank[inv]
    perm = np.argsort(group_of_row, kind="stable")  # rows grouped, original order kept
    counts = np.bincount(group_of_row, minlength=seen_order.size)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    first_rows = first_idx[seen_order]

    field_vals = {}
    for f in fields:
        if f not in table.fields:
            # dict path treats a missing field as None everywhere
            field_vals[f] = (np.empty(0, dtype=np.float64), np.zeros(n, dtype=bool))
            continue
        col = table.column(f)
        if col.dtype == object:
            colp = col[perm]
            keep = np.array([v is not None for v in colp], dtype=bool)
            vals = np.array([float(v) for v in colp[keep]], dtype=np.float64)
            field_vals[f] = (vals, keep)
        else:
            field_vals[f] = (col[perm].astype(np.float64, copy=False), None)

    rows: list[dict] = []
    for g in range(seen_order.size):
        lo, hi = starts[g], starts[g] + counts[g]
        row: dict = {
            name: _pyvalue(col[first_rows[g]])
            for name, col in zip(group_by, key_columns)
        }
        row["trials"] = int(counts[g])
        for f in fields:
            vals, keep = field_vals[f]
            if keep is None:
                seg = vals[lo:hi]
            else:
                # object column: vals holds only the non-None entries in
                # permuted order — recover this group's slice via keep.
                offset = int(np.count_nonzero(keep[:lo]))
                seg = vals[offset : offset + int(np.count_nonzero(keep[lo:hi]))]
            stats = _stats_from_array(seg)
            row[f"{f}_mean"] = stats["mean"]
            row[f"{f}_median"] = stats["median"]
            row[f"{f}_max"] = stats["max"]
            row[f"{f}_ci95"] = stats["ci95"]
        rows.append(row)
    return rows
