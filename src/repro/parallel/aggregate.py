"""Aggregation of trial records into table rows."""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["summarize", "aggregate_records"]


def summarize(values: Iterable[float]) -> dict:
    """Summary statistics of a sample: mean, std, quantiles, 95% CI.

    The CI half-width uses the normal approximation
    ``1.96·s/√n`` — adequate for the trial counts experiments use (≥10)
    and cheap; use :func:`repro.analysis.stats.bootstrap_ci` when the
    statistic is a quantile or the sample is tiny.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {
            "n": 0,
            "mean": math.nan,
            "std": math.nan,
            "min": math.nan,
            "median": math.nan,
            "max": math.nan,
            "q10": math.nan,
            "q90": math.nan,
            "ci95": math.nan,
        }
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": std,
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "max": float(arr.max()),
        "q10": float(np.quantile(arr, 0.10)),
        "q90": float(np.quantile(arr, 0.90)),
        "ci95": 1.96 * std / math.sqrt(arr.size) if arr.size > 1 else 0.0,
    }


def aggregate_records(
    records: Sequence[Mapping],
    group_by: Sequence[str],
    fields: Sequence[str],
) -> list[dict]:
    """Group flat records and summarize numeric fields per group.

    Returns one row per distinct ``group_by`` tuple (in first-seen
    order) with columns ``{field}_{stat}`` for each requested field plus
    the grouping keys.  Boolean fields aggregate to their mean (i.e. a
    rate), which is how completion rates are reported.
    """
    groups: dict[tuple, list[Mapping]] = defaultdict(list)
    order: list[tuple] = []
    for rec in records:
        key = tuple(rec[k] for k in group_by)
        if key not in groups:
            order.append(key)
        groups[key].append(rec)
    rows: list[dict] = []
    for key in order:
        bucket = groups[key]
        row: dict = dict(zip(group_by, key))
        row["trials"] = len(bucket)
        for f in fields:
            vals = [float(rec[f]) for rec in bucket if rec.get(f) is not None]
            stats = summarize(vals)
            row[f"{f}_mean"] = stats["mean"]
            row[f"{f}_median"] = stats["median"]
            row[f"{f}_max"] = stats["max"]
            row[f"{f}_ci95"] = stats["ci95"]
        rows.append(row)
    return rows
