"""Trial-level parallelism and parameter sweeps.

The protocols themselves are simulated (the GIL makes thread-level
parallelism useless for this workload), so the library scales along two
composable axes — the **two-level parallelism model**:

1. **Across processes**: independent Monte-Carlo trials and sweep
   points run on ``ProcessPoolExecutor`` workers, each with a
   ``SeedSequence.spawn``-ed private stream (never share or reuse
   streams across processes).
2. **Within a process**: with ``backend="batched"``, a worker receives
   a whole block of trials and executes it through the trial-vectorized
   engine of :mod:`repro.batch` as single 2-D numpy operations instead
   of a per-trial python loop.

:func:`monte_carlo` splits trials into per-worker blocks;
:func:`run_sweep` assigns one block per grid point (processes across
grid points, vectorized trials within each).  Per-trial seeds are
spawned identically under both backends, so the backend choice never
changes which seed a trial sees.

A third lever removes the *topology* from the task payload: with
``graph=`` both entry points install the CSR arrays once per worker —
fork page inheritance or a :class:`~repro.parallel.shared.SharedGraph`
shared-memory mapping — instead of pickling the graph into every task
(see :mod:`repro.parallel.shared`).
"""

from .aggregate import ResultTable, aggregate_records, as_table, assemble_blocks, summarize
from .pool import WorkerState, available_cpus, map_parallel, monte_carlo, worker_state
from .shared import SharedGraph, current_task_graph, graph_context
from .sweep import ParameterGrid, run_sweep

__all__ = [
    "available_cpus",
    "map_parallel",
    "monte_carlo",
    "ParameterGrid",
    "run_sweep",
    "summarize",
    "aggregate_records",
    "as_table",
    "assemble_blocks",
    "ResultTable",
    "SharedGraph",
    "current_task_graph",
    "graph_context",
    "worker_state",
    "WorkerState",
]
