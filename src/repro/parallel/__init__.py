"""Trial-level parallelism and parameter sweeps.

The protocols themselves are simulated (the GIL makes thread-level
parallelism useless for this workload), so the parallel axis of the
library is *across* independent Monte-Carlo trials and sweep points:
``ProcessPoolExecutor`` workers, each with a ``SeedSequence.spawn``-ed
private stream (never share or reuse streams across processes).
"""

from .aggregate import aggregate_records, summarize
from .pool import map_parallel, monte_carlo
from .sweep import ParameterGrid, run_sweep

__all__ = [
    "map_parallel",
    "monte_carlo",
    "ParameterGrid",
    "run_sweep",
    "summarize",
    "aggregate_records",
]
