"""Process-pool execution of independent trials.

Workers receive a private :class:`numpy.random.SeedSequence`, spawned
from one root seed, so results are reproducible regardless of how many
processes run the trials or in what order they complete — results are
always returned in submission order.

``processes=None`` picks a sensible default (all-but-two cores, capped
by the task count); ``processes<=1`` runs serially in-process, which is
what tests use and what debugging wants (no pickling, real tracebacks).

Two-level parallelism
---------------------
The library scales Monte-Carlo work along two orthogonal axes:

1. **Across processes** (this module): independent tasks — trials or
   whole trial blocks — are farmed to ``ProcessPoolExecutor`` workers.
   This is the only way to use more cores (the protocols are simulated
   in numpy; the GIL rules out threads).
2. **Within a process** (:mod:`repro.batch`): ``backend="batched"``
   hands a worker a whole *block* of trials at once, which the
   trial-vectorized engine executes as single 2-D numpy operations —
   typically 4-8× the per-trial throughput of calling
   :func:`repro.core.engine.run_protocol` in a loop.

The two compose: :func:`monte_carlo` with ``backend="batched"`` splits
the trial list into per-worker blocks (processes × batched trials), and
:func:`repro.parallel.sweep.run_sweep` does the same with one block per
grid point.  Per-trial seeds are spawned identically under either
backend, so switching backends never changes which seed a trial gets.

Persistent workers
------------------
Pool workers live for the whole map, so per-process scratch survives
from task to task.  :func:`worker_state` exposes that as an explicit
cache: batched engine workers fetch
``worker_state().engine_buffers`` and hand it to
:func:`repro.batch.run_trials_batched`, which then reuses one set of
staging arrays, the received slab, and the RNG read-ahead slab across
every grid point the process executes instead of reallocating per
task.  (Serial runs get the same object in the parent — reuse is free
there too.)

Kernel threads under pooled dispatch
------------------------------------
The compiled round kernels have their own thread axis
(``REPRO_KERNEL_THREADS`` / ``threads=``; see
:mod:`repro.batch.kernels`).  Threads *multiply* processes, so a pool
worker inheriting an environment-wide thread budget would oversubscribe
the machine (processes × threads runnable threads).  Every pool spawned
here therefore resets ``REPRO_KERNEL_THREADS`` to 1 inside its workers:
the environment gate parallelizes serial runs, while pooled runs thread
their kernels only through an explicit budget that travels in the task
callable (e.g. ``BackendSpec.threads``, which :func:`repro.plan.execute`
caps so threads × processes stays within the core count).
"""

from __future__ import annotations

import math
import os
from typing import Callable, Mapping, Sequence, TypeVar

import numpy as np

from ..durable.supervisor import RetryPolicy, supervised_map
from ..rng import spawn_seeds
from .aggregate import ResultTable
from .shared import current_task_graph, graph_context

__all__ = [
    "map_parallel", "monte_carlo", "available_cpus", "default_processes",
    "worker_state", "WorkerState",
]


def available_cpus() -> int:
    """Cores this process may actually run on, at least 1.

    ``os.cpu_count()`` reports the machine; a container pinned to 2 of
    64 cores (cgroup cpusets, taskset, SLURM) still sees 64 from it and
    every sizing heuristic oversubscribes 32×.  The scheduler affinity
    mask is the real budget — fall back to ``cpu_count`` only where the
    call does not exist (macOS, Windows).
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1

T = TypeVar("T")
R = TypeVar("R")


class WorkerState:
    """Per-process scratch kept alive across pool tasks.

    Today this carries the batched engine's
    :class:`~repro.batch.kernels.EngineBuffers`; anything else a worker
    wants to keep warm across tasks belongs here too.
    """

    def __init__(self) -> None:
        self._engine_buffers = None

    @property
    def engine_buffers(self):
        if self._engine_buffers is None:
            from ..batch.kernels import EngineBuffers

            self._engine_buffers = EngineBuffers()
        return self._engine_buffers


_WORKER_STATE: WorkerState | None = None


def worker_state() -> WorkerState:
    """This process's persistent :class:`WorkerState` (created lazily)."""
    global _WORKER_STATE
    if _WORKER_STATE is None:
        _WORKER_STATE = WorkerState()
    return _WORKER_STATE


def default_processes(n_tasks: int) -> int:
    """All-but-two cores, at least 1, never more than the task count."""
    cores = available_cpus()
    return max(1, min(n_tasks, cores - 2 if cores > 2 else 1))


def _pool_worker_init(initializer: Callable | None, initargs: tuple) -> None:
    """Initializer run in every pool worker before its first task.

    Defaults the kernel thread gate to 1 (processes are the outer
    parallel axis here; an inherited ``REPRO_KERNEL_THREADS`` would
    multiply into processes × threads oversubscription — an explicit
    ``threads=`` argument travelling in the task callable still wins),
    then chains the caller's own initializer (e.g. the zero-copy graph
    installer).
    """
    from ..batch.kernels import THREADS_ENV

    os.environ[THREADS_ENV] = "1"
    if initializer is not None:
        initializer(*initargs)


def map_parallel(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    processes: int | None = None,
    chunksize: int = 1,
    initializer: Callable | None = None,
    initargs: tuple = (),
    policy: "RetryPolicy | None" = None,
    on_result: Callable[[int, object], None] | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` across processes, order-preserving.

    ``fn`` and the items must be picklable (define workers at module
    top level).  With ``processes<=1`` this is a plain list
    comprehension — zero overhead, exact tracebacks (``initializer`` is
    not invoked; serial callers already run in the parent, where any
    task context is installed directly).

    Pooled dispatch runs under the crash supervisor
    (:func:`repro.durable.supervisor.supervised_map`) rather than bare
    ``pool.map``: a worker killed mid-task (OOM, SIGKILL) no longer
    aborts the whole map — the pool is rebuilt and the lost tasks
    retried with capped deterministic backoff, up to ``policy``'s
    attempt budget (default: 3 attempts, then raise
    :class:`~repro.errors.WorkerCrashError`).  Ordinary exceptions
    raised *by ``fn``* still propagate immediately under the default
    policy, exactly as before.  Pass a custom
    :class:`~repro.durable.supervisor.RetryPolicy` for per-task
    timeouts, exception retries, or quarantine-instead-of-raise
    (``on_failure="return"``), and ``on_result`` to observe each task's
    outcome in completion order — the hook the durable result spool
    persists blocks through.  ``chunksize`` is accepted for
    compatibility; the supervisor dispatches one task per future, which
    is what gives it per-task crash/timeout granularity.
    """
    items = list(items)
    if not items:
        return []
    nproc = default_processes(len(items)) if processes is None else processes
    if nproc <= 1:
        if policy is None and on_result is None:
            return [fn(x) for x in items]
        return supervised_map(fn, items, processes=1, policy=policy, on_result=on_result)
    return supervised_map(
        fn,
        items,
        processes=nproc,
        initializer=_pool_worker_init,
        initargs=(initializer, initargs),
        policy=policy,
        on_result=on_result,
    )


def monte_carlo(
    trial_fn: Callable,
    n_trials: int,
    *,
    seed=None,
    processes: int | None = None,
    chunksize: int = 1,
    backend: str = "per_trial",
    batch_size: int | None = None,
    graph=None,
    results: str = "records",
) -> "list | ResultTable":
    """Run independent Monte-Carlo trials; the entry point every runner uses.

    With ``backend="per_trial"`` (default), ``trial_fn(seed_seq,
    trial_index)`` is called once per trial.  With ``backend="batched"``,
    ``trial_fn(seed_seqs, trial_indices)`` is called once per *block* of
    trials and must return one result per trial (in order) — the natural
    shape for :func:`repro.batch.run_trials_batched`-based workers.
    Blocks are sized by ``batch_size`` (default: one block per worker
    process) and distributed across the pool, composing in-process trial
    vectorization with process parallelism.

    With ``graph=`` (a :class:`~repro.graphs.bipartite.BipartiteGraph`
    or a pre-shared :class:`~repro.parallel.shared.SharedGraph`), the
    topology is installed **once per worker** — fork page inheritance or
    a shared-memory mapping, never a per-task pickle — and ``trial_fn``
    receives it as its first argument: ``trial_fn(graph, seed_seq,
    trial_index)`` (or ``trial_fn(graph, seed_seqs, trial_indices)``
    batched).  See :mod:`repro.parallel.shared`.

    ``results="columnar"`` returns the per-trial records as a
    :class:`~repro.parallel.aggregate.ResultTable` (row-for-row equal
    to the ``"records"`` list — trial results must then be dicts).
    Under the batched backend each worker spools its block's records
    into typed columns before pickling, so the return payload is a
    handful of arrays per block instead of one dict per trial — the
    same columnar spool :func:`repro.parallel.sweep.run_sweep` uses.

    Each trial gets its own spawned :class:`~numpy.random.SeedSequence`
    — the *same* one under any backend/graph/results combination — and
    results are returned in trial order.
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    if backend not in ("per_trial", "batched"):
        raise ValueError(f"unknown backend {backend!r}; known: per_trial, batched")
    if results not in ("records", "columnar"):
        raise ValueError(f"unknown results mode {results!r}; known: records, columnar")
    columnar = results == "columnar"
    seeds = spawn_seeds(seed, n_trials)
    if backend == "per_trial":
        tasks = list(zip(seeds, range(n_trials)))
        runner = _TrialRunner(trial_fn, with_graph=graph is not None)
        out = _map_with_graph(
            runner, tasks, graph, processes=processes, chunksize=chunksize
        )
        return ResultTable.from_records(_require_records(out)) if columnar else out
    if n_trials == 0:
        return ResultTable.from_records([]) if columnar else []
    if batch_size is None:
        nproc = default_processes(n_trials) if processes is None else max(1, processes)
        batch_size = math.ceil(n_trials / nproc)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1; got {batch_size}")
    blocks = [
        (seeds[i : i + batch_size], list(range(i, min(i + batch_size, n_trials))))
        for i in range(0, n_trials, batch_size)
    ]
    runner = _BatchTrialRunner(
        trial_fn, with_graph=graph is not None, columnar=columnar
    )
    nested = _map_with_graph(
        runner, blocks, graph, processes=processes, chunksize=chunksize
    )
    if columnar:
        return ResultTable.concat(nested)
    return [result for block in nested for result in block]


def _require_records(results: Sequence) -> Sequence:
    """Columnar mode needs dict-like trial results; say so clearly."""
    for r in results:
        if not isinstance(r, Mapping):
            raise ValueError(
                "results='columnar' needs dict-like trial results; "
                f"got {type(r).__name__}"
            )
    return results


def _map_with_graph(fn, tasks, graph, *, processes, chunksize):
    """map_parallel, optionally under a zero-copy task-graph context."""
    if graph is None:
        return map_parallel(fn, tasks, processes=processes, chunksize=chunksize)
    nproc = default_processes(len(tasks)) if processes is None else processes
    with graph_context(graph, processes=nproc) as (_view, initializer, initargs):
        return map_parallel(
            fn,
            tasks,
            processes=nproc,
            chunksize=chunksize,
            initializer=initializer,
            initargs=initargs,
        )


class _TrialRunner:
    """Picklable adapter turning (seed, index) tuples into trial calls.

    With ``with_graph`` the worker's zero-copy task graph is prepended
    to the call (the graph-context twin that used to be its own class).
    """

    def __init__(self, trial_fn: Callable, *, with_graph: bool = False):
        self.trial_fn = trial_fn
        self.with_graph = with_graph

    def __call__(self, task: tuple[np.random.SeedSequence, int]) -> R:
        seed_seq, index = task
        if self.with_graph:
            return self.trial_fn(current_task_graph(), seed_seq, index)
        return self.trial_fn(seed_seq, index)


class _BatchTrialRunner:
    """Picklable adapter calling a batch-capable trial function once per block.

    With ``columnar`` the block's records are spooled into a typed
    :class:`~repro.parallel.aggregate.ResultTable` worker-side, so the
    return payload pickles as a few arrays instead of one dict per
    trial.
    """

    def __init__(
        self, trial_fn: Callable, *, with_graph: bool = False, columnar: bool = False
    ):
        self.trial_fn = trial_fn
        self.with_graph = with_graph
        self.columnar = columnar

    def __call__(self, block):
        seed_seqs, indices = block
        if self.with_graph:
            results = self.trial_fn(current_task_graph(), seed_seqs, indices)
        else:
            results = self.trial_fn(seed_seqs, indices)
        results = list(results)
        if len(results) != len(indices):
            raise ValueError(
                f"batched trial_fn returned {len(results)} results "
                f"for {len(indices)} trials"
            )
        if self.columnar:
            return ResultTable.from_records(_require_records(results))
        return results
