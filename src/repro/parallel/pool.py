"""Process-pool execution of independent trials.

Workers receive a private :class:`numpy.random.SeedSequence`, spawned
from one root seed, so results are reproducible regardless of how many
processes run the trials or in what order they complete — results are
always returned in submission order.

``processes=None`` picks a sensible default (all-but-two cores, capped
by the task count); ``processes<=1`` runs serially in-process, which is
what tests use and what debugging wants (no pickling, real tracebacks).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from ..rng import spawn_seeds

__all__ = ["map_parallel", "monte_carlo", "default_processes"]

T = TypeVar("T")
R = TypeVar("R")


def default_processes(n_tasks: int) -> int:
    """All-but-two cores, at least 1, never more than the task count."""
    cores = os.cpu_count() or 1
    return max(1, min(n_tasks, cores - 2 if cores > 2 else 1))


def map_parallel(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    processes: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """``[fn(x) for x in items]`` across processes, order-preserving.

    ``fn`` and the items must be picklable (define workers at module
    top level).  With ``processes<=1`` this is a plain list
    comprehension — zero overhead, exact tracebacks.
    """
    items = list(items)
    if not items:
        return []
    nproc = default_processes(len(items)) if processes is None else processes
    if nproc <= 1:
        return [fn(x) for x in items]
    with ProcessPoolExecutor(max_workers=nproc) as pool:
        return list(pool.map(fn, items, chunksize=max(1, chunksize)))


def monte_carlo(
    trial_fn: Callable[[np.random.SeedSequence, int], R],
    n_trials: int,
    *,
    seed=None,
    processes: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Run ``trial_fn(seed_seq, trial_index)`` for independent trials.

    Each trial gets its own spawned :class:`~numpy.random.SeedSequence`;
    the list of results is in trial order.  This is the entry point every
    experiment runner uses.
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    seeds = spawn_seeds(seed, n_trials)
    tasks = list(zip(seeds, range(n_trials)))
    return map_parallel(
        _TrialRunner(trial_fn), tasks, processes=processes, chunksize=chunksize
    )


class _TrialRunner:
    """Picklable adapter turning (seed, index) tuples into trial calls."""

    def __init__(self, trial_fn: Callable[[np.random.SeedSequence, int], R]):
        self.trial_fn = trial_fn

    def __call__(self, task: tuple[np.random.SeedSequence, int]) -> R:
        seed_seq, index = task
        return self.trial_fn(seed_seq, index)
