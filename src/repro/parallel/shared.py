"""Zero-copy graph sharing across process-pool workers.

Why
---
At ``n ≥ 10⁵`` the CSR topology is tens to hundreds of MB.  Shipping it
inside every pool task (or regenerating it worker-side) makes the
*scale* axis serialization-bound: each task pays a pickle, a pipe
transfer, and an unpickle of arrays that never change during a sweep.

This module moves the graph out of the task payload:

* :class:`SharedGraph` copies the four CSR arrays into one
  :class:`multiprocessing.shared_memory.SharedMemory` block.  The
  handle pickles as a name plus array metadata (a few hundred bytes);
  workers attach and build a :class:`~repro.graphs.bipartite.BipartiteGraph`
  whose arrays are *views* into the block — no copy, ever.
* On ``fork`` start methods there is an even cheaper path: the parent
  installs the graph in a module global before the pool forks, and
  workers inherit the pages copy-on-write.  :func:`graph_context` picks
  the right mechanism automatically.

The worker-side entry is :func:`current_task_graph`, used by the
graph-aware adapters in :mod:`repro.parallel.pool` and
:mod:`repro.parallel.sweep` (``monte_carlo(..., graph=...)`` /
``run_sweep(..., graph=...)``).
"""

from __future__ import annotations

import multiprocessing
import secrets
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..graphs.bipartite import BipartiteGraph

__all__ = ["SharedGraph", "current_task_graph", "graph_context"]

_ALIGN = 64  # cache-line alignment for each array within the block

_CSR_FIELDS = ("client_indptr", "client_indices", "server_indptr", "server_indices")


def _unregister_attachment(shm: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from reaping a segment we only attached to.

    On Python < 3.13 every ``SharedMemory(name=...)`` attach registers
    the segment with the *attaching* process's resource tracker, which
    unlinks it when that process exits — destroying the parent's block
    mid-run.  Owners keep their registration; attachments drop theirs.
    """
    try:  # pragma: no cover - defensive against tracker internals moving
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


class SharedGraph:
    """A picklable zero-copy handle to a graph in shared memory.

    Create with :meth:`share` in the parent; pass the handle to workers
    (cheap — only metadata travels); read ``.graph`` anywhere to get a
    :class:`BipartiteGraph` backed by the shared block.  The creating
    process must keep the handle alive and call :meth:`unlink` (or use
    it as a context manager) when the fleet is done.
    """

    def __init__(
        self,
        shm_name: str,
        n_clients: int,
        n_servers: int,
        graph_name: str,
        layout: list[tuple[str, str, int, int]],
        *,
        _shm: shared_memory.SharedMemory | None = None,
        _owner: bool = False,
    ):
        self.shm_name = shm_name
        self.n_clients = n_clients
        self.n_servers = n_servers
        self.graph_name = graph_name
        self.layout = layout  # (field, dtype str, offset, length) per array
        self._shm = _shm
        self._owner = _owner
        self._graph: BipartiteGraph | None = None

    # -- construction ---------------------------------------------------

    @classmethod
    def share(cls, graph: BipartiteGraph) -> "SharedGraph":
        """Copy ``graph``'s CSR arrays into a fresh shared-memory block."""
        arrays = {f: np.ascontiguousarray(getattr(graph, f)) for f in _CSR_FIELDS}
        layout: list[tuple[str, str, int, int]] = []
        offset = 0
        for field, arr in arrays.items():
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
            layout.append((field, arr.dtype.str, offset, arr.size))
            offset += arr.nbytes
        name = f"repro-graph-{secrets.token_hex(8)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
        for (field, dtype, off, length), arr in zip(layout, arrays.values()):
            dst = np.ndarray(length, dtype=dtype, buffer=shm.buf, offset=off)
            dst[:] = arr
        return cls(
            name,
            graph.n_clients,
            graph.n_servers,
            graph.name,
            layout,
            _shm=shm,
            _owner=True,
        )

    # -- worker-side access ---------------------------------------------

    def _attach(self) -> shared_memory.SharedMemory:
        if self._shm is None:
            shm = shared_memory.SharedMemory(name=self.shm_name, create=False)
            _unregister_attachment(shm)
            self._shm = shm
        return self._shm

    @property
    def graph(self) -> BipartiteGraph:
        """The shared graph as zero-copy array views (attach on first use)."""
        if self._graph is None:
            shm = self._attach()
            fields = {
                field: np.ndarray(length, dtype=dtype, buffer=shm.buf, offset=off)
                for field, dtype, off, length in self.layout
            }
            self._graph = BipartiteGraph(
                n_clients=self.n_clients,
                n_servers=self.n_servers,
                name=self.graph_name,
                **fields,
            )
        return self._graph

    @property
    def nbytes(self) -> int:
        """Size of the shared payload in bytes."""
        _f, dtype, off, length = self.layout[-1]
        return off + length * np.dtype(dtype).itemsize

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (workers; owner keeps the block)."""
        self._graph = None
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the block (owner only; call once the pool is done)."""
        owned = self._shm if self._owner else None
        self.close()
        if owned is None and self._owner:
            owned = shared_memory.SharedMemory(name=self.shm_name, create=False)
            _unregister_attachment(owned)
        if owned is not None:
            # Under fork the pool workers share the parent's resource
            # tracker, so their attach-time unregister may have dropped
            # our registration; re-registering makes the unregister
            # inside unlink() a no-op instead of a tracker KeyError.
            try:  # pragma: no cover - tracker internals
                resource_tracker.register(owned._name, "shared_memory")  # type: ignore[attr-defined]
            except Exception:
                pass
            owned.unlink()

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    # -- pickling: metadata only -----------------------------------------

    def __getstate__(self) -> dict:
        return {
            "shm_name": self.shm_name,
            "n_clients": self.n_clients,
            "n_servers": self.n_servers,
            "graph_name": self.graph_name,
            "layout": self.layout,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedGraph(shm={self.shm_name!r}, graph={self.graph_name!r}, "
            f"nbytes={self.nbytes})"
        )


# ---------------------------------------------------------------------------
# Worker-side task-graph slot + the context manager that fills it.
# ---------------------------------------------------------------------------

# One graph per worker process, installed either by fork inheritance or
# by the pool initializer before any task runs.
_TASK_GRAPH: BipartiteGraph | None = None


def current_task_graph() -> BipartiteGraph:
    """The graph installed for this worker's tasks (see :func:`graph_context`)."""
    if _TASK_GRAPH is None:
        raise RuntimeError(
            "no task graph installed in this process; run the task through "
            "monte_carlo/run_sweep with graph=... (or call graph_context)"
        )
    return _TASK_GRAPH


def _install_task_graph(payload: "SharedGraph | BipartiteGraph") -> None:
    """Pool initializer: map the shared block (or adopt a plain graph)."""
    global _TASK_GRAPH
    _TASK_GRAPH = payload.graph if isinstance(payload, SharedGraph) else payload


@contextmanager
def graph_context(graph: "BipartiteGraph | SharedGraph", *, processes: int):
    """Yield ``(graph_view, initializer, initargs)`` for a worker pool.

    Chooses the cheapest sharing mechanism:

    * serial (``processes <= 1``): no sharing needed — the caller uses
      the graph directly;
    * ``fork`` start method with a plain graph: install in the parent's
      module global pre-fork; children inherit the pages copy-on-write
      (true zero-copy, no initializer);
    * otherwise (``spawn``/``forkserver``, or an explicit
      :class:`SharedGraph`): a shared-memory block plus an initializer
      that attaches each worker once.

    The shared block (when one is created here) is unlinked on exit.
    """
    global _TASK_GRAPH
    view = graph.graph if isinstance(graph, SharedGraph) else graph
    needs_pool_init = processes > 1 and (
        isinstance(graph, SharedGraph)
        or multiprocessing.get_start_method(allow_none=False) != "fork"
    )
    own_block: SharedGraph | None = None
    if needs_pool_init:
        if isinstance(graph, SharedGraph):
            handle = graph  # caller owns the lifecycle
        else:
            handle = own_block = SharedGraph.share(graph)
        initializer, initargs = _install_task_graph, (handle,)
    else:
        # Serial execution reads the parent's slot directly; fork pools
        # inherit it copy-on-write.  Either way, no initializer.
        initializer, initargs = None, ()
    prev = _TASK_GRAPH
    _TASK_GRAPH = view
    try:
        yield view, initializer, initargs
    finally:
        _TASK_GRAPH = prev
        if own_block is not None:
            own_block.unlink()
