"""repro.faults — declarative fault injection and self-healing policies.

The well-behaved protocol meets misbehaving participants: seeded,
deterministic, picklable fault declarations
(:class:`FaultSpec` / :class:`FaultSchedule`) that thread through all
three execution layers —

* the **dynamic simulator**: ``run_dynamic_saer(..., faults=schedule)``
  overlays server crashes/stalls/Byzantine under-reporting and client
  duplicate-spray/misroute onto the arrival rounds;
* the **serving layer**: :class:`~repro.serve.ServingState` applies the
  same overlays live, and :class:`HealthPolicy`/:class:`HealthTracker`
  close the loop — quarantine unresponsive servers, readmit them on
  probation;
* the **batch engine**: ``run_trials_batched(..., faults=schedule)``
  wraps the built-in policies (:mod:`repro.faults.policies`) so
  :class:`~repro.plan.RunPlan` grids can sweep the faulty fraction *f*.

All fault randomness lives in the schedule's own seed; the protocol RNG
stream is untouched, so ``f=0`` is bit-identical to a fault-free run in
every layer and a seeded schedule reproduces exactly across kernel
gates, thread counts, and processes.  The F1 registry experiment
(``repro-lb run F1``) is the f-tolerance sweep built on these pieces.
"""

from .health import HealthPolicy, HealthTracker
from .policies import (
    FaultyBatchedRaesPolicy,
    FaultyBatchedSaerPolicy,
    faulty_policy_factory,
)
from .spec import (
    CLIENT_KINDS,
    FAULT_KINDS,
    SERVER_KINDS,
    FaultSchedule,
    FaultSpec,
    MaterializedFaults,
    stalled,
)

__all__ = [
    "FaultSpec",
    "FaultSchedule",
    "MaterializedFaults",
    "stalled",
    "FAULT_KINDS",
    "SERVER_KINDS",
    "CLIENT_KINDS",
    "HealthPolicy",
    "HealthTracker",
    "FaultyBatchedSaerPolicy",
    "FaultyBatchedRaesPolicy",
    "faulty_policy_factory",
]
