"""Fault-injecting wrappers for the trial-batched engine.

The batched engine's Phase-2 state is ``cum_received`` / ``loads``
matrices of shape ``[R, n_servers]``, and both decision paths
(:meth:`decide_dense` / :meth:`decide_sparse`) fire **exactly once per
round**.  Server-side faults therefore inject as a column overlay
around the unmodified decide step:

* crashed / stalled servers: their ``cum_received`` columns are pinned
  above capacity for the round (reject everything) and restored after —
  the balls never reached them, so their counters do not advance;
* Byzantine under-reporters: their columns are zeroed at every round
  boundary, so they accept up to capacity *every* round and never
  appear burned; the balls they really absorbed accumulate in the
  :attr:`byz_absorbed` per-trial ledger.

Because these are **subclasses** of the built-in policies, the engine's
``_compiled_supported`` exact-type check automatically routes them down
the numpy decide path — which is bit-identical to the fused kernels —
so no fault logic ever touches compiled code, and a seeded schedule
produces identical columns at every kernel gate and thread count.
Client-side fault kinds have no meaning in the static batch setting
(demands are fixed, there are no arrivals) and are rejected up front.
"""

from __future__ import annotations

import numpy as np

from ..batch.policies import BatchedRaesPolicy, BatchedSaerPolicy
from ..errors import FaultSpecError
from .spec import FaultSchedule, MaterializedFaults

__all__ = ["FaultyBatchedSaerPolicy", "FaultyBatchedRaesPolicy", "faulty_policy_factory"]


class _FaultOverlayMixin:
    """Shared pre/post overlay around the wrapped decide step."""

    def _init_faults(self, faults: MaterializedFaults) -> None:
        self.faults = faults
        self.byz_absorbed = np.zeros(self.n_trials, dtype=np.int64)

    def _pre(self):
        ov = self.faults.server_overlay(self.rounds_seen)
        if ov is None:
            return None
        rej, byz = ov
        saved = self.cum_received[:, rej].copy() if rej.size else None
        if rej.size:
            self.cum_received[:, rej] = self.capacity + 1
        if byz.size:
            self.cum_received[:, byz] = 0
        return rej, byz, saved

    def _post(self, pre) -> None:
        if pre is None:
            return
        rej, byz, saved = pre
        if byz.size:
            after = self.cum_received[:, byz]
            absorbed = np.where(after <= self.capacity, after, 0)
            self.byz_absorbed += absorbed.sum(axis=1, dtype=np.int64)
            self.cum_received[:, byz] = 0
            # Every ball a liar absorbed is in the ledger; its reported
            # load stays 0 (it under-reports, after all) so honest
            # ``loads`` + ``byz_absorbed`` partition the assigned balls.
            self.loads[:, byz] = 0
        if rej.size:
            self.cum_received[:, rej] = saved

    def decide_dense(self, trials, received):
        pre = self._pre()
        accept = super().decide_dense(trials, received)
        self._post(pre)
        self.rounds_seen += 1
        return accept

    def decide_sparse(self, ball_keys):
        pre = self._pre()
        accept = super().decide_sparse(ball_keys)
        self._post(pre)
        self.rounds_seen += 1
        return accept


class FaultyBatchedSaerPolicy(_FaultOverlayMixin, BatchedSaerPolicy):
    """SAER over a trial axis with a server-fault overlay per round."""

    def __init__(self, n_trials, n_servers, capacity, faults: MaterializedFaults):
        super().__init__(n_trials, n_servers, capacity)
        self._init_faults(faults)


class FaultyBatchedRaesPolicy(_FaultOverlayMixin, BatchedRaesPolicy):
    """RAES with a server-fault overlay: crash/stall pin ``loads`` above
    capacity for the round (RAES keeps no cumulative counter, so the
    overlay targets the only rejection state it has); ``byz_server``
    zeroes the column each round — a server that under-reports its load
    accepts every batch.
    """

    def __init__(self, n_trials, n_servers, capacity, faults: MaterializedFaults):
        super().__init__(n_trials, n_servers, capacity)
        self._init_faults(faults)

    # RAES has no cum_received; alias the overlay onto loads.  The
    # absorbed ledger reads the post-round load directly.
    @property
    def cum_received(self):
        return self.loads

    @cum_received.setter
    def cum_received(self, value):  # pragma: no cover - mixin symmetry
        self.loads = value


def faulty_policy_factory(protocol: str, schedule: FaultSchedule, n_clients: int):
    """A policy factory for :func:`repro.batch.run_trials_batched`.

    Returns ``factory(n_trials, n_servers, capacity)`` building the
    fault-wrapped counterpart of the named built-in protocol.  Client
    fault kinds are rejected: the static engine has no arrival process
    to transform.
    """
    if not schedule.server_kinds_only:
        bad = sorted({s.kind for s in schedule.specs if not s.is_server_kind})
        raise FaultSpecError(
            "the batch engine supports server fault kinds only "
            f"(got {', '.join(bad)}); client kinds need the dynamic "
            "simulator or the serving layer"
        )
    cls = {"saer": FaultyBatchedSaerPolicy, "raes": FaultyBatchedRaesPolicy}.get(protocol)
    if cls is None:
        raise FaultSpecError(
            f"faults wrap the built-in 'saer'/'raes' policies; got {protocol!r}"
        )

    def factory(n_trials: int, n_servers: int, capacity: int):
        return cls(n_trials, n_servers, capacity, schedule.materialize(n_clients, n_servers))

    return factory
