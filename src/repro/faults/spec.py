"""Declarative, seeded, deterministic fault injection.

A :class:`FaultSpec` declares *one* fault population: which kind of
misbehaviour, what fraction of the relevant side (servers or clients)
exhibits it, and over which rounds it is active.  A
:class:`FaultSchedule` bundles several specs with one seed; both are
small frozen dataclasses, picklable by construction, so they travel
through :class:`~repro.plan.RunPlan` grids and multiprocessing workers
unchanged.

Fault kinds
-----------

``crash``
    The faulty servers are down while active: every ball routed to them
    is rejected, and — unlike a protocol burn — their cumulative
    received counter does not advance (the balls never reached them).
    With ``start``/``end`` this is a crash-recover window; with
    ``period``/``duty`` it is a flapping server.
``stall``
    A slow server, modelled as a deterministic duty cycle: down on
    ``duty`` out of every ``period`` rounds (default 3 of 4 → it serves
    at quarter speed).  Same per-round mechanics as ``crash``.
``byz_server``
    A Byzantine server that **under-reports load**: at every round
    boundary it claims an empty counter, so it accepts up to
    ``⌊c·d⌋`` fresh balls *every* round forever and never appears
    burned.  The balls it really absorbed are tracked in a separate
    ledger (``byz_absorbed``), never in the honest protocol state.
``byz_client_dup``
    Byzantine clients that spray duplicates: every arrival at a faulty
    client is multiplied by ``factor`` (the extras are adversarial —
    in the serving layer they carry no caller future).
``byz_client_misroute``
    Byzantine clients that mis-report destinations: each of their balls
    is routed through a uniformly random client's neighborhood instead
    of their own (drawn from the fault RNG, never the protocol RNG).

Determinism
-----------

All fault randomness comes from the schedule's own seed:
``materialize()`` draws the faulty index sets from per-spec child
streams of ``SeedSequence(seed)``, and runtime draws (misroute targets)
come from a dedicated runtime stream.  The protocol RNG is never
touched, which is what makes the ``f=0`` path bit-identical to a
fault-free run and a seeded schedule reproducible across kernel gates,
thread counts, and processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FaultSpecError

__all__ = [
    "FAULT_KINDS",
    "SERVER_KINDS",
    "CLIENT_KINDS",
    "FaultSpec",
    "FaultSchedule",
    "MaterializedFaults",
    "stalled",
]

SERVER_KINDS = ("crash", "stall", "byz_server")
CLIENT_KINDS = ("byz_client_dup", "byz_client_misroute")
FAULT_KINDS = SERVER_KINDS + CLIENT_KINDS

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault population; see the module docstring for kinds.

    ``fraction``
        Fraction of the relevant side (servers for server kinds,
        clients for client kinds) that is faulty, in ``[0, 1]``.
    ``start`` / ``end``
        Active on rounds ``start <= t < end`` (``end=None`` → forever).
    ``period`` / ``duty``
        Within the window, active on rounds where
        ``(t - start) % period < duty`` — ``period=1, duty=1`` (the
        default) means every round; ``stall`` defaults to 3-of-4.
    ``factor``
        Duplicate-spray multiplier for ``byz_client_dup`` (each arrival
        becomes ``factor`` balls); ignored by other kinds.
    """

    kind: str
    fraction: float
    start: int = 0
    end: int | None = None
    period: int = 1
    duty: int = 1
    factor: int = 2

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if not (0.0 <= self.fraction <= 1.0):
            raise FaultSpecError(f"fraction must be in [0, 1]; got {self.fraction}")
        if self.start < 0:
            raise FaultSpecError(f"start must be >= 0; got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise FaultSpecError(
                f"end must be > start; got start={self.start}, end={self.end}"
            )
        if self.period < 1:
            raise FaultSpecError(f"period must be >= 1; got {self.period}")
        if not (1 <= self.duty <= self.period):
            raise FaultSpecError(
                f"duty must be in [1, period={self.period}]; got {self.duty}"
            )
        if self.factor < 1:
            raise FaultSpecError(f"factor must be >= 1; got {self.factor}")

    @property
    def is_server_kind(self) -> bool:
        return self.kind in SERVER_KINDS

    def active(self, t: int) -> bool:
        """Whether this fault is live in round ``t``."""
        if t < self.start:
            return False
        if self.end is not None and t >= self.end:
            return False
        return (t - self.start) % self.period < self.duty


def stalled(fraction: float, **kwargs) -> FaultSpec:
    """Convenience: a ``stall`` spec with the canonical 3-of-4 duty."""
    kwargs.setdefault("period", 4)
    kwargs.setdefault("duty", 3)
    return FaultSpec("stall", fraction, **kwargs)


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded bundle of :class:`FaultSpec` declarations.

    Picklable and layer-agnostic: hand it to
    :class:`~repro.serve.ServingState`, :func:`~repro.dynamic.run_dynamic_saer`,
    or :func:`~repro.batch.run_trials_batched` and each layer calls
    :meth:`materialize` against its own population sizes.  An empty
    schedule (or every spec at ``fraction=0``) injects nothing and the
    host layers take their unmodified fast path.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        specs = tuple(self.specs)
        for s in specs:
            if not isinstance(s, FaultSpec):
                raise FaultSpecError(f"specs must be FaultSpec instances; got {s!r}")
        object.__setattr__(self, "specs", specs)

    @property
    def server_kinds_only(self) -> bool:
        return all(s.is_server_kind for s in self.specs)

    def materialize(self, n_clients: int, n_servers: int) -> "MaterializedFaults":
        """Draw the faulty index sets for concrete population sizes."""
        return MaterializedFaults(self, n_clients, n_servers)


def _draw_set(rng: np.random.Generator, n: int, fraction: float) -> np.ndarray:
    k = int(round(fraction * n))
    if k <= 0 or n <= 0:
        return _EMPTY
    idx = rng.choice(n, size=min(k, n), replace=False)
    return np.sort(idx).astype(np.int64)


class MaterializedFaults:
    """A :class:`FaultSchedule` bound to concrete population sizes.

    Owns the drawn faulty index sets (one per spec, from per-spec child
    seeds — adding a spec never reshuffles the others) plus a dedicated
    runtime RNG for misroute target draws.  The per-round queries are
    cheap: empty arrays when nothing is active, so the host layers'
    fault hooks short-circuit to their unmodified code paths.
    """

    def __init__(self, schedule: FaultSchedule, n_clients: int, n_servers: int):
        self.schedule = schedule
        self.n_clients = int(n_clients)
        self.n_servers = int(n_servers)
        children = np.random.SeedSequence(schedule.seed).spawn(len(schedule.specs) + 1)
        self._rt_rng = np.random.Generator(np.random.PCG64(children[-1]))
        self.members: list[np.ndarray] = []
        for spec, child in zip(schedule.specs, children):
            rng = np.random.Generator(np.random.PCG64(child))
            n = self.n_servers if spec.is_server_kind else self.n_clients
            self.members.append(_draw_set(rng, n, spec.fraction))

    # -- server-side overlay ------------------------------------------------

    def server_overlay(self, t: int) -> tuple[np.ndarray, np.ndarray] | None:
        """``(reject_idx, byz_idx)`` active in round ``t``, or ``None``.

        ``reject_idx`` are crashed/stalled servers (accept nothing,
        counters frozen); ``byz_idx`` are under-reporting servers.  The
        sets are disjoint — a server both crashed and Byzantine is down
        (crash wins).
        """
        reject: list[np.ndarray] = []
        byz: list[np.ndarray] = []
        for spec, idx in zip(self.schedule.specs, self.members):
            if idx.size == 0 or not spec.is_server_kind or not spec.active(t):
                continue
            (byz if spec.kind == "byz_server" else reject).append(idx)
        if not reject and not byz:
            return None
        rej = np.unique(np.concatenate(reject)) if reject else _EMPTY
        bz = np.unique(np.concatenate(byz)) if byz else _EMPTY
        if rej.size and bz.size:
            bz = np.setdiff1d(bz, rej, assume_unique=True)
        return rej, bz

    # -- client-side arrival transforms ------------------------------------

    def _active_client(self, t: int, kind: str):
        for spec, idx in zip(self.schedule.specs, self.members):
            if spec.kind == kind and idx.size and spec.active(t):
                yield spec, idx

    def transform_counts(self, t: int, counts: np.ndarray) -> np.ndarray:
        """Apply client-kind faults to a per-client arrival-count vector.

        Returns ``counts`` unchanged (same object) when nothing is
        active — the fault-free path never copies.
        """
        out = counts
        for spec, idx in self._active_client(t, "byz_client_dup"):
            if out is counts:
                out = np.asarray(counts).copy()
            out[idx] *= spec.factor
        for _spec, idx in self._active_client(t, "byz_client_misroute"):
            if out is counts:
                out = np.asarray(counts).copy()
            moved = out[idx].sum()
            if moved:
                out[idx] = 0
                targets = self._rt_rng.integers(0, self.n_clients, size=int(moved))
                np.add.at(out, targets, 1)
        return out

    def transform_owners(
        self, t: int, owners: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply client-kind faults to individually submitted balls.

        Returns ``(owners, extra_owners)``: ``owners`` possibly remapped
        (misroute), ``extra_owners`` the adversarial duplicates (dup
        spray) to admit *without* caller futures.  Both are the inputs
        unchanged / empty when nothing is active.
        """
        out = owners
        extras: list[np.ndarray] = []
        for spec, idx in self._active_client(t, "byz_client_dup"):
            mask = np.isin(out, idx)
            k = int(np.count_nonzero(mask))
            if k:
                extras.append(np.repeat(out[mask], spec.factor - 1))
        for _spec, idx in self._active_client(t, "byz_client_misroute"):
            mask = np.isin(out, idx)
            k = int(np.count_nonzero(mask))
            if k:
                if out is owners:
                    out = owners.copy()
                out[mask] = self._rt_rng.integers(0, self.n_clients, size=k)
        extra = np.concatenate(extras) if extras else _EMPTY
        return out, extra

    # -- checkpointing ------------------------------------------------------

    def state(self) -> dict:
        """Runtime state beyond the (re-derivable) member sets."""
        return {"rt_rng": self._rt_rng.bit_generator.state}

    def set_state(self, state: dict) -> None:
        self._rt_rng.bit_generator.state = state["rt_rng"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(
            f"{s.kind}×{m.size}" for s, m in zip(self.schedule.specs, self.members)
        )
        return f"MaterializedFaults({kinds or 'none'}, seed={self.schedule.seed})"
